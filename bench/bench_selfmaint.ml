(* E21: what the self-maintenance certificate buys at commit time.

   The orders dashboard (join + selection, projecting both candidate
   keys) is maintained over identical delete-only streams twice: once
   forced [Differential] (screen + truth-table evaluation against the
   base relations) and once forced [Self_maintain] (key-indexed drain of
   the materialization, zero base-relation reads — enforced by the
   Database read probe inside the engine).  The comparison is the
   maintenance evaluation phase (screen_ns + eval_ns summed over the
   stream), the part the certificate eliminates; apply time is identical
   work in both runs.

   Like E20, the two arms run in interleaved pairs and the reported
   ratio is the median of per-pair ratios, so machine-load drift cancels
   instead of biasing one arm. *)

open Relalg
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Generate = Workload.Generate
module Rng = Workload.Rng

let commits = 60
let batch = 12
let order_count = 4_000
let customer_count = 200

(* Scenario.orders draws oids uniformly, so duplicates are possible; the
   keyed-drain certificate needs oid to really be a candidate key.  Build
   the same shape with sequential oids (and Scenario's distinct-cid
   customers idea) instead.  Delete-only streams keep both keys keys. *)
let build_db rng =
  let regions = [| "north"; "south"; "east"; "west" |] in
  let customer_schema =
    Schema.make
      [ ("cid", Value.Int_ty); ("region", Value.Str_ty); ("status", Value.Int_ty) ]
  in
  let order_schema =
    Schema.make
      [
        ("oid", Value.Int_ty);
        ("cid", Value.Int_ty);
        ("amount", Value.Int_ty);
        ("priority", Value.Int_ty);
      ]
  in
  let customers = Relation.create customer_schema in
  for cid = 0 to customer_count - 1 do
    Relation.add customers
      [|
        Value.Int cid;
        Generate.value rng (Generate.Strings regions);
        Generate.value rng (Generate.Uniform (0, 3));
      |]
  done;
  let orders = Relation.create order_schema in
  for oid = 0 to order_count - 1 do
    Relation.add orders
      [|
        Value.Int oid;
        Generate.value rng (Generate.Uniform (0, customer_count - 1));
        Generate.value rng (Generate.Uniform (1, 1000));
        Generate.value rng (Generate.Uniform (0, 5));
      |]
  done;
  let db = Database.create () in
  Database.register db "customers" customers;
  Database.register db "orders" orders;
  db

let dashboard_expr =
  let open Condition.Formula.Dsl in
  Query.Expr.(
    project
      [ "oid"; "cid"; "amount" ]
      (select
         ((v "amount" >% i 900) &&% (v "region" =% s "north"))
         (join (base "orders") (base "customers"))))

let keys = [ ("orders", [ "oid" ]); ("customers", [ "cid" ]) ]

type arm_result = {
  eval_ns : int;  (** screen + truth-table / drain phases *)
  total_ns : int;
  self_maintained : int;
}

let run_arm strategy =
  let rng = Rng.make 2101 in
  let db = build_db rng in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"dashboard"
       ~options:{ Maintenance.default_options with strategy }
       ~keys dashboard_expr);
  let eval_ns = ref 0 and total_ns = ref 0 in
  for _ = 1 to commits do
    let txn =
      (* Delete-only: sampled from the live contents, no columns needed. *)
      Generate.transaction rng db "orders"
        ~columns:
          [
            Generate.Uniform (0, order_count - 1);
            Generate.Uniform (0, customer_count - 1);
            Generate.Uniform (1, 1000);
            Generate.Uniform (0, 5);
          ]
        ~inserts:0 ~deletes:batch
    in
    List.iter
      (fun (r : Maintenance.report) ->
        eval_ns := !eval_ns + r.Maintenance.screen_ns + r.Maintenance.eval_ns;
        total_ns := !total_ns + r.Maintenance.total_ns)
      (Manager.commit mgr txn)
  done;
  assert (Manager.all_consistent mgr);
  {
    eval_ns = !eval_ns;
    total_ns = !total_ns;
    self_maintained = (Manager.stats mgr "dashboard").Manager.self_maintained;
  }

let measure ?(pairs = 5) () =
  (* Warm-up pair, then interleaved measured pairs; median ratio. *)
  ignore (run_arm Maintenance.Differential);
  ignore (run_arm Maintenance.Self_maintain);
  let samples =
    List.init pairs (fun _ ->
        let differential = run_arm Maintenance.Differential in
        let certified = run_arm Maintenance.Self_maintain in
        (differential, certified))
  in
  let ratio (d, c) = float_of_int d.eval_ns /. float_of_int (max 1 c.eval_ns) in
  let sorted =
    List.sort (fun a b -> Float.compare (ratio a) (ratio b)) samples
  in
  List.nth sorted (pairs / 2)

let e21_json () =
  let differential, certified = measure () in
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.Str "orders-dashboard delete-only");
      ("commits", Obs.Json.Int commits);
      ("batch", Obs.Json.Int batch);
      ("differential_eval_ns", Obs.Json.Int differential.eval_ns);
      ("self_maintain_eval_ns", Obs.Json.Int certified.eval_ns);
      ( "eval_reduction",
        Obs.Json.Float
          (float_of_int differential.eval_ns
          /. float_of_int (max 1 certified.eval_ns)) );
      ("differential_total_ns", Obs.Json.Int differential.total_ns);
      ("self_maintain_total_ns", Obs.Json.Int certified.total_ns);
      ("self_maintained_commits", Obs.Json.Int certified.self_maintained);
    ]

let run () =
  Bench_util.section
    "E21: self-maintenance vs differential (orders dashboard, delete-only)";
  let differential, certified = measure () in
  Bench_util.print_table
    ~header:[ "strategy"; "eval phase"; "total"; "SM commits" ]
    [
      [
        "differential";
        Bench_util.fmt_time (float_of_int differential.eval_ns *. 1e-9);
        Bench_util.fmt_time (float_of_int differential.total_ns *. 1e-9);
        string_of_int differential.self_maintained;
      ];
      [
        "self-maintain";
        Bench_util.fmt_time (float_of_int certified.eval_ns *. 1e-9);
        Bench_util.fmt_time (float_of_int certified.total_ns *. 1e-9);
        string_of_int certified.self_maintained;
      ];
    ];
  Printf.printf
    "\neval-phase reduction: %.2fx over %d delete-only commits (batch %d); \
     the certified arm never reads a base relation (probe-enforced)\n"
    (float_of_int differential.eval_ns /. float_of_int (max 1 certified.eval_ns))
    commits batch
