(* Shared measurement and reporting helpers for the benchmark harness.

   Macro experiments (whole-transaction maintenance) are timed with
   wall-clock medians over repeated fresh runs; micro experiments go
   through Bechamel's OLS estimator. *)

let now () = Unix.gettimeofday ()

(* Median wall-clock seconds of [repeats] one-shot calls.  [f] receives the
   trial index so callers can rotate through pre-built inputs (maintenance
   mutates state, so a trial cannot be replayed). *)
let time_trials ~repeats f =
  let times =
    Array.init repeats (fun trial ->
        let t0 = now () in
        f trial;
        now () -. t0)
  in
  Array.sort compare times;
  times.(repeats / 2)

let time_once f =
  let t0 = now () in
  f ();
  now () -. t0

(* On/off overhead measured as the MEDIAN of per-pair ratios over
   [pairs] interleaved runs: the two arms of a pair execute back to
   back, so machine-load drift hits both alike and cancels in the
   ratio — which separate disabled-phase/enabled-phase timing does not
   survive (a GC pause or a noisy neighbour in one phase shows up as a
   phantom overhead, or as a phantom speedup).  One untimed warm-up
   pair settles the allocator first.  Returns
   [(on_seconds, off_seconds, overhead_pct)] of the median-ratio pair,
   so the gated number is the median, never a lucky minimum. *)
let overhead_pairs ?(pairs = 5) ~off ~on () =
  ignore (time_once off);
  ignore (time_once on);
  let samples =
    List.init pairs (fun _ ->
        let off_t = time_once off in
        let on_t = time_once on in
        (on_t, off_t, on_t /. off_t))
  in
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) samples
  in
  let on_t, off_t, ratio = List.nth sorted (pairs / 2) in
  (on_t, off_t, (ratio -. 1.0) *. 100.0)

let fmt_time seconds =
  if seconds < 1e-6 then Printf.sprintf "%.0f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Printf.sprintf "%.1f us" (seconds *. 1e6)
  else if seconds < 1.0 then Printf.sprintf "%.2f ms" (seconds *. 1e3)
  else Printf.sprintf "%.2f s" seconds

let fmt_speedup x =
  if x >= 100.0 then Printf.sprintf "%.0fx" x else Printf.sprintf "%.1fx" x

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let section title =
  let rule = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" rule title rule

(* Aligned ASCII table. *)
let print_table ~header rows =
  let columns = List.length header in
  let width i =
    List.fold_left
      (fun w row -> max w (String.length (List.nth row i)))
      (String.length (List.nth header i))
      rows
  in
  let widths = List.init columns width in
  let render row =
    String.concat "  "
      (List.map2
         (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
         row widths)
  in
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

(* ------------------------------------------------------------------ *)
(* Bechamel integration: one Test.make per experiment, shared runner.  *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Runs a grouped benchmark and returns (full name, ns/run) estimates. *)
let run_bechamel ?(quota = 0.5) tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> (name, est) :: acc
      | Some _ | None -> acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_bechamel ~title results =
  banner title;
  print_table
    ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) -> [ name; fmt_time (ns *. 1e-9) ])
       results)
