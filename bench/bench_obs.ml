(* E17: telemetry-driven perf snapshot.

   Runs a canonical mixed workload (the orders dashboard plus a two-view
   pair workload, adaptive strategy) with the metrics registry on, then
   reports per-view maintenance latency percentiles and the advisor's
   predicted-vs-actual calibration.  [write_snapshot] serializes the same
   data as BENCH_IVM.json so successive PRs can be compared by tools
   rather than by reading tables. *)

module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Advisor = Ivm.Advisor
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let snapshot_path = "BENCH_IVM.json"

(* The canonical workload: deterministic, a few hundred commits, covers
   both advisor outcomes (small batches keep differential winning, the
   churn phase pushes past the crossover into recomputation). *)
let run_canonical_workload ?policy () =
  let rng = Rng.make 900 in
  let adaptive =
    { Maintenance.default_options with strategy = Maintenance.Adaptive }
  in
  let open Condition.Formula.Dsl in
  let sc = Scenario.orders ~rng ~customers:200 ~orders:4_000 in
  let db = sc.Scenario.db in
  let mgr = Manager.create ?policy db in
  ignore
    (Manager.define_view mgr ~name:"dashboard" ~options:adaptive
       Query.Expr.(
         project
           [ "oid"; "cid"; "amount" ]
           (select
              ((v "amount" >% i 900) &&% (v "region" =% s "north"))
              (join (base "orders") (base "customers")))));
  ignore
    (Manager.define_view mgr ~name:"hot_orders" ~options:adaptive
       Query.Expr.(
         project [ "oid"; "amount" ] (select (v "amount" >% i 950) (base "orders"))));
  let columns = Scenario.columns_of sc "orders" in
  (* Steady phase: small batches, differential territory. *)
  for _ = 1 to 150 do
    let txn = Generate.transaction rng db "orders" ~columns ~inserts:4 ~deletes:4 in
    ignore (Manager.commit mgr txn)
  done;
  (* Churn phase: batches past the E9 crossover, recompute territory. *)
  for _ = 1 to 10 do
    let txn =
      Generate.transaction rng db "orders" ~columns ~inserts:400 ~deletes:400
    in
    ignore (Manager.commit mgr txn)
  done;
  mgr

(* E20: happy-path journaling overhead.  The same canonical workload under
   the default Abort policy (every commit journaled for rollback) and under
   Unprotected (no journal), telemetry off.  The two policies run in
   interleaved pairs and the reported overhead is the median of the
   per-pair ratios: machine-load drift hits both members of a pair alike
   and cancels in the ratio, which a min-of-N over separate phases does
   not survive (the snapshot gate holds this to 5%, so the measurement
   must be robust, not just fast). *)
let measure_resilience ?(pairs = 7) () =
  Bench_util.overhead_pairs ~pairs
    ~off:(fun () ->
      ignore (run_canonical_workload ~policy:Resilience.Policy.Unprotected ()))
    ~on:(fun () ->
      ignore (run_canonical_workload ~policy:Resilience.Policy.Abort ()))
    ()

let resilience_json () =
  let protected_, unprotected, overhead_pct = measure_resilience () in
  Obs.Json.Obj
    [
      ("policy", Obs.Json.Str (Resilience.Policy.name Resilience.Policy.Abort));
      ("protected_ns", Obs.Json.Int (int_of_float (protected_ *. 1e9)));
      ("unprotected_ns", Obs.Json.Int (int_of_float (unprotected *. 1e9)));
      ("journal_overhead_pct", Obs.Json.Float overhead_pct);
    ]

(* E22: flight-recorder overhead.  The provenance ring is always on, so
   its cost must be demonstrably negligible; same interleaved-pairs
   median methodology as E20 — recorder-off and recorder-on runs
   alternate, so load drift cancels in the per-pair ratio. *)
let measure_recorder ?(pairs = 7) () =
  let once recording () =
    Obs.Provenance.set_recording recording;
    Fun.protect
      ~finally:(fun () -> Obs.Provenance.set_recording true)
      (fun () -> ignore (run_canonical_workload ()))
  in
  Bench_util.overhead_pairs ~pairs ~off:(once false) ~on:(once true) ()

let provenance_json () =
  let on, off, overhead_pct = measure_recorder () in
  Obs.Json.Obj
    [
      ("capacity", Obs.Json.Int Obs.Provenance.recorder_capacity);
      ("recorded", Obs.Json.Int (Obs.Provenance.recorded ()));
      ("recorder_on_ns", Obs.Json.Int (int_of_float (on *. 1e9)));
      ("recorder_off_ns", Obs.Json.Int (int_of_float (off *. 1e9)));
      ("recorder_overhead_pct", Obs.Json.Float overhead_pct);
    ]

let with_fresh_registry f =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Advisor.reset_samples ();
  Obs.Control.with_enabled f

let view_entry mgr name =
  let stats = Manager.stats mgr name in
  let hist = Obs.Metrics.histogram ~labels:[ ("view", name) ] "ivm_maintenance_ns" in
  let latency =
    match hist with
    | None -> []
    | Some h ->
      [
        ("p50_ns", Obs.Json.Float h.Obs.Metrics.p50);
        ("p95_ns", Obs.Json.Float h.Obs.Metrics.p95);
        ("p99_ns", Obs.Json.Float h.Obs.Metrics.p99);
        ("mean_ns", Obs.Json.Float h.Obs.Metrics.mean);
        ("max_ns", Obs.Json.Int h.Obs.Metrics.max);
      ]
  in
  Obs.Json.Obj
    ([
       ("name", Obs.Json.Str name);
       ("commits", Obs.Json.Int stats.Manager.commits);
       ("recomputations", Obs.Json.Int stats.Manager.recomputations);
       ("self_maintained", Obs.Json.Int stats.Manager.self_maintained);
       ("rows_evaluated", Obs.Json.Int stats.Manager.rows_evaluated);
       ("screened_out", Obs.Json.Int stats.Manager.screened_out);
       ("screened_kept", Obs.Json.Int stats.Manager.screened_kept);
       ("maintenance_ns", Obs.Json.Int stats.Manager.maintenance_ns);
     ]
    @ latency)

let snapshot_json mgr =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.Str "ivm-maintenance");
      (* v2: adds the E18 "parallel" domain-scaling section;
         v3: adds the E20 "resilience" journaling-overhead section;
         v4: adds the E21 "self_maintenance" eval-phase comparison, a
             "self_maintained" count per view, and the third advisor arm
             in calibration/pairs;
         v5: adds the E22 "provenance" recorder-overhead section and
             switches advisor pairs to a fixed-size deterministic
             reservoir sample;
         v6: splits the E18 "parallel" section into "per_view" (commit
             fan-out over independent views) and "sharded" (E23:
             intra-view hash-sharded evaluation) sub-sections, each
             with its own curve and speedup fields;
         v7: adds the E24 "aggregate" section (incremental grouped
             aggregate maintenance vs full recompute, with the groups
             touched and MIN/MAX rescan counts);
         v8: adds the E25 "durability" section (write-ahead-log
             overhead vs the in-memory pipeline, and the recovery-time
             curve over log length). *)
      ("schema_version", Obs.Json.Int 8);
      ("generator", Obs.Json.Str "bench/main.exe");
      ( "views",
        Obs.Json.List
          (List.map (fun name -> view_entry mgr name) (Manager.view_names mgr))
      );
      ( "advisor",
        Obs.Json.Obj
          [
            ("calibration", Advisor.calibration_json ());
            ("pairs", Advisor.reservoir_json ());
          ] );
      ("metrics", Obs.Metrics.snapshot ());
      ("parallel", Bench_parallel.scaling_json ());
      ("resilience", resilience_json ());
      ("self_maintenance", Bench_selfmaint.e21_json ());
      ("aggregate", Bench_aggregate.e24_json ());
      ("durability", Bench_durability.e25_json ());
      ("provenance", provenance_json ());
    ]

(* Always runs the canonical workload fresh so the snapshot is
   self-contained no matter which bench sections ran before it. *)
let write_snapshot () =
  let mgr = with_fresh_registry (fun () -> run_canonical_workload ()) in
  Obs.Json.to_file snapshot_path (snapshot_json mgr);
  Printf.printf "\nwrote %s (per-view latency percentiles + advisor \
                 predicted-vs-actual pairs)\n"
    snapshot_path

let run () =
  Bench_util.section "E17: telemetry snapshot (lib/obs metrics registry)";
  let mgr = with_fresh_registry (fun () -> run_canonical_workload ()) in
  Bench_util.banner "per-view maintenance latency (from ivm_maintenance_ns)";
  let rows =
    List.map
      (fun name ->
        let stats = Manager.stats mgr name in
        let fmt_of p =
          match
            Obs.Metrics.histogram ~labels:[ ("view", name) ] "ivm_maintenance_ns"
          with
          | None -> "-"
          | Some h ->
            Bench_util.fmt_time
              (p h *. 1e-9)
        in
        [
          name;
          string_of_int stats.Manager.commits;
          string_of_int stats.Manager.recomputations;
          fmt_of (fun h -> h.Obs.Metrics.p50);
          fmt_of (fun h -> h.Obs.Metrics.p95);
          fmt_of (fun h -> h.Obs.Metrics.p99);
          Bench_util.fmt_time (float_of_int stats.Manager.maintenance_ns *. 1e-9);
        ])
      (Manager.view_names mgr)
  in
  Bench_util.print_table
    ~header:[ "view"; "commits"; "recomputed"; "p50"; "p95"; "p99"; "total" ]
    rows;
  Bench_util.banner "advisor calibration (predicted cost units vs measured ns)";
  Format.printf "%a@." Advisor.pp_calibration (Advisor.calibrate ());
  let agreements_by_outcome =
    let samples = Advisor.samples () in
    List.map
      (fun arm ->
        let of_kind =
          List.filter (fun (s : Advisor.sample) -> s.Advisor.used = arm) samples
        in
        [ Advisor.arm_name arm; string_of_int (List.length of_kind) ])
      [ Advisor.Differential; Advisor.Recompute; Advisor.Self_maintain ]
  in
  Bench_util.print_table ~header:[ "strategy used"; "samples" ]
    agreements_by_outcome;
  Bench_util.banner "E20: commit journaling overhead (abort policy vs unprotected)";
  let protected_, unprotected, overhead_pct = measure_resilience () in
  Bench_util.print_table
    ~header:[ "policy"; "elapsed"; "overhead" ]
    [
      [ "unprotected"; Bench_util.fmt_time unprotected; "-" ];
      [
        "abort (journaled)";
        Bench_util.fmt_time protected_;
        Printf.sprintf "%+.2f%%" overhead_pct;
      ];
    ];
  Bench_util.banner
    "E22: flight-recorder overhead (provenance ring on vs off)";
  let on, off, recorder_pct = measure_recorder () in
  Bench_util.print_table
    ~header:[ "recorder"; "elapsed"; "overhead" ]
    [
      [ "off"; Bench_util.fmt_time off; "-" ];
      [ "on"; Bench_util.fmt_time on; Printf.sprintf "%+.2f%%" recorder_pct ];
    ];
  Printf.printf
    "\nThe snapshot of this section is what main.exe serializes to %s;\n\
     compare it across PRs with tools/validate_snapshot.exe, or against a\n\
     committed baseline with tools/bench_diff.exe.\n"
    snapshot_path
