(* Benchmark harness: regenerates every paper artifact (P1-P4) and runs
   the quantitative evaluation (E1-E12) described in DESIGN.md.

   Run everything:        dune exec bench/main.exe
   Run a single section:  dune exec bench/main.exe -- tables screening
   Sections: tables screening views sat ablation crossover snapshot obs
   parallel selfmaint aggregate durability *)

let sections =
  [
    ("tables", Bench_tables.run);
    ("screening", Bench_screening.run);
    ("views", Bench_views.run);
    ("sat", Bench_sat.run);
    ("ablation", Bench_ablation.run);
    ("crossover", Bench_crossover.run);
    ("snapshot", Bench_snapshot.run);
    ("obs", Bench_obs.run);
    ("parallel", Bench_parallel.run);
    ("selfmaint", Bench_selfmaint.run);
    ("aggregate", Bench_aggregate.run);
    ("durability", Bench_durability.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  Printf.printf
    "Efficiently Updating Materialized Views (SIGMOD 1986) - benchmark harness\n";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 1)
    requested;
  (* Every harness run leaves a machine-readable perf snapshot behind,
     regenerated from the canonical workload so it is comparable across
     runs regardless of which sections were requested. *)
  Bench_obs.write_snapshot ()
