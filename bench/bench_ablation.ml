(* E8b-E8e, E12: ablations of the design choices DESIGN.md calls out. *)

open Relalg
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Delta = Ivm.Delta
module Delta_eval = Ivm.Delta_eval
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng
open Bechamel

(* Time Maintenance.view_delta under given options for a fixed prepared
   net (deletions applied), leaving the database unchanged afterwards. *)
let time_view_delta ~db ~view ~net options =
  Maintenance.apply_deletes db net;
  let t =
    Bench_util.time_trials ~repeats:5 (fun _ ->
        ignore (Maintenance.view_delta ~options view ~db ~net))
  in
  (* Undo the deletions to restore the pre-state. *)
  List.iter
    (fun (name, (_, deletes)) ->
      let r = Database.find db name in
      List.iter (fun t -> Relation.add r t) deletes)
    net;
  t

let e8b () =
  Bench_util.banner
    "E8b: shared sub-join prefixes across truth-table rows (reuse on/off)";
  let rng = Rng.make 800 in
  let scenario, names = Scenario.chain ~rng ~p:3 ~size:10_000 ~key_range:3_000 in
  let db = scenario.Scenario.db in
  let view =
    View.define ~name:"chain" ~db
      Query.Expr.(join_all (List.map Query.Expr.base names))
  in
  let rows =
    List.map
      (fun batch ->
        let txn =
          Generate.mixed_transaction rng db
            (List.map
               (fun name ->
                 (name, Scenario.columns_of scenario name, batch, batch))
               names)
        in
        let net = Transaction.net_effect db txn in
        let greedy =
          time_view_delta ~db ~view ~net
            { Maintenance.default_options with reuse = false; order = `Greedy }
        in
        let fixed =
          time_view_delta ~db ~view ~net
            {
              Maintenance.default_options with
              reuse = false;
              order = `Declaration;
            }
        in
        let reused =
          time_view_delta ~db ~view ~net
            { Maintenance.default_options with reuse = true }
        in
        [
          Printf.sprintf "k=3, %d ins + %d del per relation" batch batch;
          Bench_util.fmt_time fixed;
          Bench_util.fmt_time reused;
          Bench_util.fmt_speedup (fixed /. reused);
          Bench_util.fmt_time greedy;
        ])
      [ 5; 50; 500 ]
  in
  Bench_util.print_table
    ~header:
      [
        "workload";
        "fixed order";
        "fixed + reuse";
        "reuse speedup";
        "greedy (no reuse)";
      ]
    rows;
  Printf.printf
    "\nReuse helps against its like-for-like baseline (fixed join order),\n\
     but the greedy delta-first order avoids the large old|x|old prefixes\n\
     altogether and wins overall - the join-order effect the paper hints\n\
     at dominates the subexpression-sharing effect it conjectures.\n"

let e8c () =
  Bench_util.banner
    "E8c: join order - greedy (delta first) vs declaration order";
  (* Delta on the LAST source: declaration order joins the two full
     relations first, greedy starts from the delta. *)
  let rng = Rng.make 810 in
  let scenario, names = Scenario.chain ~rng ~p:3 ~size:10_000 ~key_range:3_000 in
  let db = scenario.Scenario.db in
  let view =
    View.define ~name:"chain" ~db
      Query.Expr.(join_all (List.map Query.Expr.base names))
  in
  let last = List.nth names 2 in
  let rows =
    List.map
      (fun batch ->
        let txn =
          Generate.mixed_transaction rng db
            [ (last, Scenario.columns_of scenario last, batch, batch) ]
        in
        let net = Transaction.net_effect db txn in
        let greedy =
          time_view_delta ~db ~view ~net
            { Maintenance.default_options with order = `Greedy }
        in
        let declaration =
          time_view_delta ~db ~view ~net
            { Maintenance.default_options with order = `Declaration }
        in
        [
          Printf.sprintf "delta=%d on %s" (2 * batch) last;
          Bench_util.fmt_time greedy;
          Bench_util.fmt_time declaration;
          Bench_util.fmt_speedup (declaration /. greedy);
        ])
      [ 5; 50 ]
  in
  Bench_util.print_table
    ~header:[ "workload"; "greedy"; "declaration"; "greedy speedup" ]
    rows

let e8d () =
  Bench_util.banner
    "E8d: literal tagged evaluator vs insert/delete pair evaluator";
  let rng = Rng.make 820 in
  let scenario, db, view =
    Bench_data.join_setup ~rng ~size_r:300 ~size_s:300 ~key_range:30
  in
  let txn =
    Generate.mixed_transaction rng db
      [
        ("R", Scenario.columns_of scenario "R", 5, 5);
        ("S", Scenario.columns_of scenario "S", 5, 5);
      ]
  in
  let net = Transaction.net_effect db txn in
  Maintenance.apply_deletes db net;
  let spj = View.spj view in
  let inputs_pair, inputs_tagged =
    List.split
      (List.map
         (fun (s : Query.Spj.source) ->
           let q = View.qualified_schema view ~alias:s.Query.Spj.alias in
           let old_part = Relation.reschema (Database.find db s.Query.Spj.relation) q in
           let delta =
             match List.assoc_opt s.Query.Spj.relation net with
             | Some entry -> Delta.of_lists q entry
             | None -> Delta.empty q
           in
           ( { Delta_eval.alias = s.Query.Spj.alias; old_part; delta = Some delta },
             ( s.Query.Spj.alias,
               Ivm.Tagged_eval.of_parts ~old_part ~delta ) ))
         spj.Query.Spj.sources)
  in
  let pair_time =
    Bench_util.time_trials ~repeats:5 (fun _ ->
        ignore (Delta_eval.eval ~spj ~inputs:inputs_pair ()))
  in
  let tagged_time =
    Bench_util.time_trials ~repeats:5 (fun _ ->
        ignore (Ivm.Tagged_eval.eval_spj ~spj ~inputs:inputs_tagged))
  in
  List.iter
    (fun (name, (_, deletes)) ->
      let r = Database.find db name in
      List.iter (fun t -> Relation.add r t) deletes)
    net;
  Bench_util.print_table
    ~header:[ "evaluator"; "time (|R|=|S|=300, delta=20)" ]
    [
      [ "pair (production)"; Bench_util.fmt_time pair_time ];
      [ "tagged (reference)"; Bench_util.fmt_time tagged_time ];
      [
        "pair speedup";
        Bench_util.fmt_speedup (tagged_time /. pair_time);
      ];
    ]

let e8e () =
  Bench_util.banner "E8e: hash join vs nested-loop join (micro)";
  let rng = Rng.make 830 in
  let scenario = Scenario.pair ~rng ~size_r:2000 ~size_s:2000 ~key_range:200 in
  let db = scenario.Scenario.db in
  let r = Database.find db "R" and s = Database.find db "S" in
  let s_renamed = Ops.rename (fun a -> "s." ^ a) s in
  let keys = [ ("B", "s.B") ] in
  let results =
    Bench_util.run_bechamel ~quota:0.5
      (Test.make_grouped ~name:"e8e" ~fmt:"%s/%s"
         [
           Test.make ~name:"hash join"
             (Staged.stage (fun () -> ignore (Ops.equijoin r s_renamed ~keys)));
           Test.make ~name:"nested loop"
             (Staged.stage (fun () ->
                  ignore (Ops.nested_loop_join r s_renamed ~keys)));
         ])
  in
  Bench_util.print_table
    ~header:[ "join (2k x 2k)"; "time/run" ]
    (List.map
       (fun (name, ns) -> [ name; Bench_util.fmt_time (ns *. 1e-9) ])
       results)

let e12 () =
  Bench_util.banner
    "E12: tableau join minimization - redundant self-join folded at define time";
  let rng = Rng.make 840 in
  let scenario = Scenario.pair ~rng ~size_r:10_000 ~size_s:10_000 ~key_range:5_000 in
  let db = scenario.Scenario.db in
  let expr = Query.Expr.(join (base "S") (base "S")) in
  let minimized = View.define ~name:"min" ~db expr in
  let unminimized = View.define ~minimize:false ~name:"raw" ~db expr in
  let txn =
    Generate.transaction rng db "S"
      ~columns:(Scenario.columns_of scenario "S") ~inserts:20 ~deletes:20
  in
  let net = Transaction.net_effect db txn in
  let t_min = time_view_delta ~db ~view:minimized ~net Maintenance.default_options
  in
  let t_raw =
    time_view_delta ~db ~view:unminimized ~net Maintenance.default_options
  in
  Bench_util.print_table
    ~header:[ "view"; "sources"; "delta time"; "" ]
    [
      [
        "minimized";
        string_of_int (List.length (View.spj minimized).Query.Spj.sources);
        Bench_util.fmt_time t_min;
        "";
      ];
      [
        "unminimized";
        string_of_int (List.length (View.spj unminimized).Query.Spj.sources);
        Bench_util.fmt_time t_raw;
        Printf.sprintf "minimization speedup %s"
          (Bench_util.fmt_speedup (t_raw /. t_min));
      ];
    ]

let e14 () =
  Bench_util.banner
    "E14: Yannakakis semijoin reduction vs binary hash joins (adversarial chain)";
  (* Every pairwise join explodes (hot keys on both ends of the chain) but
     the full join is almost empty; full reduction prunes the hot groups
     before any join materializes. *)
  let n = 2_000 in
  let db = Database.create () in
  let schema2 a b = Schema.make [ (a, Value.Int_ty); (b, Value.Int_ty) ] in
  let r1 = Relation.create (schema2 "A" "B") in
  let r2 = Relation.create (schema2 "B" "C") in
  let r3 = Relation.create (schema2 "C" "D") in
  for k = 0 to (n / 2) - 1 do
    (* R1: hot B = 0. *)
    Relation.add r1 (Tuple.of_ints [ k; 0 ]);
    (* R2: group 1 joins R1's hot side but has cold C; group 2 has cold B
       and hot C = 0. *)
    Relation.add r2 (Tuple.of_ints [ 0; 2_000_000 + k ]);
    Relation.add r2 (Tuple.of_ints [ 1_000_000 + k; 0 ]);
    (* R3: hot C = 0. *)
    Relation.add r3 (Tuple.of_ints [ 0; k ])
  done;
  (* One witness path so the output is non-empty. *)
  Relation.add r1 (Tuple.of_ints [ 999; 555_000 ]);
  Relation.add r2 (Tuple.of_ints [ 555_000; 555_001 ]);
  Relation.add r3 (Tuple.of_ints [ 555_001; 999 ]);
  Database.register db "R1" r1;
  Database.register db "R2" r2;
  Database.register db "R3" r3;
  let lookup name = Relation.schema (Database.find db name) in
  let spj =
    Query.Spj.compile lookup
      Query.Expr.(join_all [ base "R1"; base "R2"; base "R3" ])
  in
  let sources =
    List.map
      (fun (s : Query.Spj.source) ->
        ( s.Query.Spj.alias,
          Relation.reschema
            (Database.find db s.Query.Spj.relation)
            (Query.Spj.qualified_schema lookup s) ))
      spj.Query.Spj.sources
  in
  let planner_time =
    Bench_util.time_trials ~repeats:3 (fun _ ->
        ignore
          (Query.Planner.run ~sources ~condition_dnf:spj.Query.Spj.condition_dnf
             ~projection:spj.Query.Spj.projection ()))
  in
  let yannakakis_time =
    Bench_util.time_trials ~repeats:3 (fun _ ->
        ignore (Query.Hypergraph.eval ~lookup ~sources spj))
  in
  Bench_util.print_table
    ~header:[ "evaluator"; "time (3-way chain, |Ri| ~ 2k, 1 result)" ]
    [
      [ "greedy binary hash joins"; Bench_util.fmt_time planner_time ];
      [ "Yannakakis (full reduction)"; Bench_util.fmt_time yannakakis_time ];
      [
        "reduction speedup";
        Bench_util.fmt_speedup (planner_time /. yannakakis_time);
      ];
    ]

let e15 () =
  Bench_util.banner
    "E15: maintained secondary index on the join key (probe vs scan)";
  (* Differential maintenance of R |x| S joins the tiny R-delta against
     all of S; without an index every truth-table row rebuilds a hash of
     one side and scans the other. *)
  let rows =
    List.map
      (fun indexed ->
        let rng = Rng.make 850 in
        let scenario, db, view =
          Bench_data.join_setup ~rng ~size_r:100_000 ~size_s:100_000
            ~key_range:50_000
        in
        if indexed then begin
          ignore (Relalg.Index.build (Database.find db "R") [ "B" ]);
          ignore (Relalg.Index.build (Database.find db "S") [ "B" ])
        end;
        let txn =
          Generate.mixed_transaction rng db
            [ ("R", Scenario.columns_of scenario "R", 5, 5) ]
        in
        let net = Transaction.net_effect db txn in
        let t = time_view_delta ~db ~view ~net Maintenance.default_options in
        [
          (if indexed then "indexed S.B (maintained)" else "no index");
          Bench_util.fmt_time t;
        ])
      [ false; true ]
  in
  Bench_util.print_table
    ~header:[ "configuration"; "view delta (|R|=|S|=100k, delta=10)" ]
    rows

let e16 () =
  Bench_util.banner
    "E16: telemetry overhead on the hot screening loop (disabled vs enabled)";
  (* The --no-obs guard: with telemetry off, every instrumentation point
     in the screening path must cost no more than an atomic load and a
     branch.  Screen a large update set through the Theorem 4.1 screen
     with the registry disabled and enabled and compare. *)
  let rng = Rng.make 860 in
  let scenario = Scenario.pair ~rng ~size_r:1_000 ~size_s:1_000 ~key_range:100 in
  let db = scenario.Scenario.db in
  (* A condition the screen must actually test per tuple (Example
     4.1-shaped: the B = C join atom links the delta to the condition). *)
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"screened" ~db
      Query.Expr.(
        project [ "A"; "C" ]
          (select ((v "A" <% i 500_000) &&% (v "C" >% i 50))
             (join (base "R") (base "S"))))
  in
  let screen = View.screen_for view ~alias:"R" in
  let qualified = View.qualified_schema view ~alias:"R" in
  let tuples =
    List.init 20_000 (fun _ ->
        Generate.tuple rng (Scenario.columns_of scenario "R"))
  in
  let delta = Ivm.Delta.of_lists qualified (tuples, []) in
  (* Each timed arm screens the delta several times so a single
     measurement is long enough to mean something; the disabled and
     enabled arms run as interleaved pairs and the reported overhead is
     the median of the per-pair ratios (Bench_util.overhead_pairs), the
     same methodology as E20/E22 — separate-phase timing was showing
     ±8% phantom "overheads" that were pure load drift. *)
  let screen_batch () =
    for _ = 1 to 10 do
      ignore (Ivm.Irrelevance.screen_delta_stats screen delta)
    done
  in
  Obs.Control.disable ();
  let enabled, disabled, overhead_pct =
    Bench_util.overhead_pairs
      ~off:(fun () ->
        Obs.Control.disable ();
        screen_batch ())
      ~on:(fun () -> Obs.Control.with_enabled screen_batch)
      ()
  in
  Obs.Control.with_enabled (fun () -> Obs.Metrics.reset ());
  Bench_util.print_table
    ~header:[ "telemetry"; "screen 10 x 20k tuples"; "overhead (median of 5 pairs)" ]
    [
      [ "disabled (--no-obs)"; Bench_util.fmt_time disabled; "baseline" ];
      [
        "enabled";
        Bench_util.fmt_time enabled;
        Printf.sprintf "%+.1f%%" overhead_pct;
      ];
    ];
  Printf.printf
    "\nCounter updates are batched per screen_delta call (two adds per\n\
     delta, not per tuple), so even the enabled registry stays within\n\
     noise; the disabled path is one atomic load and a branch, the <5%%\n\
     guard the instrumentation budget requires.\n"

let run () =
  Bench_util.section "Ablations (E8b-E8e, E12, E14, E15, E16)";
  e8b ();
  e8c ();
  e8d ();
  e8e ();
  e12 ();
  e14 ();
  e15 ();
  e16 ()
