(* E25: durable commit pipeline — WAL overhead and recovery time.

   Two questions gate this experiment.  First, what does durability cost
   on the happy path?  The same canonical small-batch workload runs with
   the WAL off and on (group commit, one fsync per [group_commit]
   records), the two pipelines advancing in alternating commit slices —
   the median trial ratio is the overhead, held to 10% by the snapshot
   gate.  Second, how does recovery scale?  A
   WAL-only log (no mid-run checkpoints) of N commits is recovered into
   a fresh manager for N in {50, 200, 800}: replay must touch exactly N
   records and the wall-clock curve shows the cost a checkpoint cadence
   amortizes. *)

module Manager = Ivm.Manager
module Maintenance = Ivm.Maintenance
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let group_commit = 64

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ivm-bench-%s-%d" name (Unix.getpid ()))

let clean dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* The E25 workload: the orders dashboard under small mixed batches —
   differential maintenance territory, where per-commit WAL framing is
   the largest relative cost.  [setup] returns the manager plus a
   one-commit thunk so callers can put scenario construction outside a
   timed region. *)
let setup ?durability () =
  let rng = Rng.make 925 in
  let sc = Scenario.orders ~rng ~customers:200 ~orders:4_000 in
  let db = sc.Scenario.db in
  let mgr = Manager.create ?durability db in
  let open Condition.Formula.Dsl in
  ignore
    (Manager.define_view mgr ~name:"dashboard"
       Query.Expr.(
         project
           [ "oid"; "cid"; "amount" ]
           (select
              ((v "amount" >% i 900) &&% (v "region" =% s "north"))
              (join (base "orders") (base "customers")))));
  ignore
    (Manager.define_view mgr ~name:"hot_orders"
       Query.Expr.(
         project [ "oid"; "amount" ] (select (v "amount" >% i 950) (base "orders"))));
  let columns = Scenario.columns_of sc "orders" in
  let commit () =
    let txn =
      Generate.transaction rng db "orders" ~columns ~inserts:4 ~deletes:4
    in
    ignore (Manager.commit mgr txn)
  in
  (mgr, commit)

let run_workload ?durability ~transactions () =
  let mgr, commit = setup ?durability () in
  for _ = 1 to transactions do
    commit ()
  done;
  mgr

let overhead_transactions = 300
let chunk = 25

(* The gated number is steady-state commit cost, so the timed region is
   the commit loop alone: scenario construction is identical on both
   sides and only adds noise, and the first commit of each side is
   untimed because on the durable side it writes the baseline
   checkpoint — a one-shot setup cost amortized over the log's
   lifetime, not a per-commit price (the recovery curve below accounts
   for checkpoint cost explicitly).  Within a trial the two pipelines
   advance in alternating [chunk]-commit slices, so a load spike or GC
   pause lands on both sides of the ratio instead of inflating one arm;
   the reported number is the median trial ratio. *)
let one_trial dir () =
  (* Every trial writes a fresh log: leftover durable state would
     demand recovery before the first commit. *)
  clean dir;
  let durability =
    Durability.Config.make
      ~fsync:(Durability.Config.Every group_commit)
      ~checkpoint_every:0 dir
  in
  let _off_mgr, commit_off = setup () in
  let _on_mgr, commit_on = setup ~durability () in
  commit_off ();
  commit_on ();
  let off_t = ref 0.0 and on_t = ref 0.0 in
  for _ = 1 to overhead_transactions / chunk do
    off_t :=
      !off_t
      +. Bench_util.time_once (fun () ->
             for _ = 1 to chunk do
               commit_off ()
             done);
    on_t :=
      !on_t
      +. Bench_util.time_once (fun () ->
             for _ = 1 to chunk do
               commit_on ()
             done)
  done;
  (!on_t, !off_t, !on_t /. !off_t)

let measure_overhead ?(trials = 5) () =
  let dir = tmp "e25-wal" in
  Fun.protect
    ~finally:(fun () -> clean dir)
    (fun () ->
      ignore (one_trial dir ());
      let samples = List.init trials (fun _ -> one_trial dir ()) in
      let sorted =
        List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) samples
      in
      let on_t, off_t, ratio = List.nth sorted (trials / 2) in
      (on_t, off_t, (ratio -. 1.0) *. 100.0))

let curve_points = [ 50; 200; 800 ]

let measure_recovery () =
  List.map
    (fun commits ->
      let dir = tmp (Printf.sprintf "e25-recovery-%d" commits) in
      clean dir;
      Fun.protect
        ~finally:(fun () -> clean dir)
        (fun () ->
          let durability () =
            (* [Never]: building the log should not pay per-record
               syncs; recovery cost is what is being measured. *)
            Durability.Config.make ~fsync:Durability.Config.Never
              ~checkpoint_every:0 dir
          in
          ignore
            (run_workload ~durability:(durability ()) ~transactions:commits ());
          (* Build the empty manager outside the timer: scenario
             construction is not recovery cost. *)
          let mgr = run_workload ~durability:(durability ()) ~transactions:0 () in
          let info = ref None in
          let seconds =
            Bench_util.time_once (fun () -> info := Some (Manager.recover mgr))
          in
          let info = Option.get !info in
          (commits, seconds, info.Manager.records_replayed)))
    curve_points

(* Both the table and the snapshot JSON want the same numbers; measure
   once per process. *)
let results =
  lazy
    (let wal, in_memory, overhead_pct = measure_overhead () in
     let curve = measure_recovery () in
     (wal, in_memory, overhead_pct, curve))

let e25_json () =
  let wal, in_memory, overhead_pct, curve = Lazy.force results in
  Obs.Json.Obj
    [
      ("fsync_every", Obs.Json.Int group_commit);
      ("in_memory_ns", Obs.Json.Int (int_of_float (in_memory *. 1e9)));
      ("wal_ns", Obs.Json.Int (int_of_float (wal *. 1e9)));
      ("wal_overhead_pct", Obs.Json.Float overhead_pct);
      ( "recovery_curve",
        Obs.Json.List
          (List.map
             (fun (commits, seconds, replayed) ->
               Obs.Json.Obj
                 [
                   ("commits", Obs.Json.Int commits);
                   ("recovery_ns", Obs.Json.Int (int_of_float (seconds *. 1e9)));
                   ("records_replayed", Obs.Json.Int replayed);
                   ( "records_per_sec",
                     Obs.Json.Float (float_of_int replayed /. seconds) );
                 ])
             curve) );
      ( "records_replayed_total",
        Obs.Json.Int (List.fold_left (fun acc (_, _, r) -> acc + r) 0 curve) );
    ]

let run () =
  Bench_util.section
    "E25: durable commit pipeline (WAL overhead and recovery time)";
  let wal, in_memory, overhead_pct, curve = Lazy.force results in
  Bench_util.banner
    (Printf.sprintf
       "write-ahead logging overhead (%d commits, group commit every %d)"
       overhead_transactions group_commit);
  Bench_util.print_table
    ~header:[ "pipeline"; "elapsed"; "overhead" ]
    [
      [ "in-memory"; Bench_util.fmt_time in_memory; "-" ];
      [
        Printf.sprintf "wal (fsync every %d)" group_commit;
        Bench_util.fmt_time wal;
        Printf.sprintf "%+.2f%%" overhead_pct;
      ];
    ];
  Bench_util.banner "recovery time vs log length (no mid-run checkpoints)";
  Bench_util.print_table
    ~header:[ "commits"; "recovery"; "records replayed"; "records/s" ]
    (List.map
       (fun (commits, seconds, replayed) ->
         [
           string_of_int commits;
           Bench_util.fmt_time seconds;
           string_of_int replayed;
           Printf.sprintf "%.0f" (float_of_int replayed /. seconds);
         ])
       curve);
  Printf.printf
    "\nReplay touches exactly one record per commit; a checkpoint cadence\n\
     (--checkpoint-every) bounds the tail and turns recovery into a\n\
     constant-time restore plus the few records since the last snapshot.\n"
