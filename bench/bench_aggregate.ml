(* E24: incremental aggregate maintenance vs full recompute.

   A grouped revenue rollup gamma[cid; COUNT, SUM(amount), MIN(amount)]
   over the orders table is maintained across identical mixed
   insert/delete streams twice: once forced [Differential] (per-group
   ring deltas, MIN rescans only when an extremum's support drains) and
   once forced [Recompute] (re-evaluate the whole grouping every
   commit).  The comparison is whole-commit maintenance time (total_ns
   summed over the stream): for aggregates the win is in the apply path
   too — the differential arm touches only the groups the batch hits,
   the recompute arm rebuilds every accumulator.

   Like E20/E21, the two arms run in interleaved pairs and the reported
   ratio is the median of per-pair ratios, so machine-load drift cancels
   instead of biasing one arm. *)

open Relalg
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Generate = Workload.Generate
module Rng = Workload.Rng

let commits = 60
let batch = 12
let order_count = 4_000
let customer_count = 200

let order_columns =
  [
    Generate.Uniform (0, (order_count * 10) + 100);
    Generate.Uniform (0, customer_count - 1);
    Generate.Uniform (1, 1000);
    Generate.Uniform (0, 5);
  ]

let build_db rng =
  let order_schema =
    Schema.make
      [
        ("oid", Value.Int_ty);
        ("cid", Value.Int_ty);
        ("amount", Value.Int_ty);
        ("priority", Value.Int_ty);
      ]
  in
  let orders = Relation.create order_schema in
  for _ = 1 to order_count do
    Relation.add orders
      (Array.of_list (List.map (Generate.value rng) order_columns))
  done;
  let db = Database.create () in
  Database.register db "orders" orders;
  db

let rollup_expr =
  Query.Expr.(
    group_by ~keys:[ "cid" ]
      [
        { Query.Aggregate.func = Count; output = "n_orders" };
        { Query.Aggregate.func = Sum "amount"; output = "revenue" };
        { Query.Aggregate.func = Min "amount"; output = "min_amount" };
      ]
      (base "orders"))

type arm_result = {
  total_ns : int;
  eval_ns : int;  (** screen + delta-evaluation phases *)
  groups_touched : int;
  rescans : int;
}

let run_arm strategy =
  let rng = Rng.make 1986 in
  let db = build_db rng in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"revenue"
       ~options:{ Maintenance.default_options with strategy }
       rollup_expr);
  let total_ns = ref 0
  and eval_ns = ref 0
  and groups = ref 0
  and rescans = ref 0 in
  for _ = 1 to commits do
    let txn =
      Generate.transaction rng db "orders" ~columns:order_columns
        ~inserts:(batch / 2) ~deletes:(batch / 2)
    in
    List.iter
      (fun (r : Maintenance.report) ->
        total_ns := !total_ns + r.Maintenance.total_ns;
        eval_ns := !eval_ns + r.Maintenance.screen_ns + r.Maintenance.eval_ns;
        groups := !groups + r.Maintenance.groups_touched;
        rescans := !rescans + r.Maintenance.rescans)
      (Manager.commit mgr txn)
  done;
  assert (Manager.all_consistent mgr);
  {
    total_ns = !total_ns;
    eval_ns = !eval_ns;
    groups_touched = !groups;
    rescans = !rescans;
  }

let measure ?(pairs = 5) () =
  (* Warm-up pair, then interleaved measured pairs; median ratio. *)
  ignore (run_arm Maintenance.Differential);
  ignore (run_arm Maintenance.Recompute);
  let samples =
    List.init pairs (fun _ ->
        let differential = run_arm Maintenance.Differential in
        let recompute = run_arm Maintenance.Recompute in
        (differential, recompute))
  in
  let ratio (d, r) =
    float_of_int r.total_ns /. float_of_int (max 1 d.total_ns)
  in
  let sorted =
    List.sort (fun a b -> Float.compare (ratio a) (ratio b)) samples
  in
  List.nth sorted (pairs / 2)

let e24_json () =
  let differential, recompute = measure () in
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.Str "orders revenue rollup, mixed batches");
      ("commits", Obs.Json.Int commits);
      ("batch", Obs.Json.Int batch);
      ("differential_total_ns", Obs.Json.Int differential.total_ns);
      ("recompute_total_ns", Obs.Json.Int recompute.total_ns);
      ( "speedup",
        Obs.Json.Float
          (float_of_int recompute.total_ns
          /. float_of_int (max 1 differential.total_ns)) );
      ("differential_eval_ns", Obs.Json.Int differential.eval_ns);
      ("recompute_eval_ns", Obs.Json.Int recompute.eval_ns);
      ("groups_touched", Obs.Json.Int differential.groups_touched);
      ("rescans", Obs.Json.Int differential.rescans);
    ]

let run () =
  Bench_util.section
    "E24: incremental aggregates vs recompute (orders revenue rollup)";
  let differential, recompute = measure () in
  Bench_util.print_table
    ~header:[ "strategy"; "eval phase"; "total"; "groups"; "rescans" ]
    [
      [
        "differential";
        Bench_util.fmt_time (float_of_int differential.eval_ns *. 1e-9);
        Bench_util.fmt_time (float_of_int differential.total_ns *. 1e-9);
        string_of_int differential.groups_touched;
        string_of_int differential.rescans;
      ];
      [
        "recompute";
        Bench_util.fmt_time (float_of_int recompute.eval_ns *. 1e-9);
        Bench_util.fmt_time (float_of_int recompute.total_ns *. 1e-9);
        string_of_int recompute.groups_touched;
        string_of_int recompute.rescans;
      ];
    ];
  Printf.printf
    "\nmaintenance speedup: %.2fx over %d mixed commits (batch %d); the \
     differential arm touches only the groups each batch hits and rescans a \
     group only when a MIN extremum's support drains to zero\n"
    (float_of_int recompute.total_ns
    /. float_of_int (max 1 differential.total_ns))
    commits batch
