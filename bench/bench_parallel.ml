(* E18: multicore scaling of the maintenance engine.

   The same orders workload — eight independent select/join views over
   customers ⋈ orders, a deterministic transaction stream — is replayed
   through managers configured with 1, 2, 4 and 8 domains.  Views are
   data-independent (Manager.commit fans them out over the lib/exec
   pool), so the curve measures how far commit throughput scales with
   the domain count on this machine.  [scaling_json] re-runs a smaller
   version of the same sweep and serializes the curve into the
   BENCH_IVM.json snapshot (schema_version 2). *)

module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let view_count = 8
let domain_counts = [ 1; 2; 4; 8 ]

let define_views mgr =
  let open Condition.Formula.Dsl in
  let regions = [| "north"; "south"; "east"; "west" |] in
  for k = 0 to view_count - 1 do
    let region = regions.(k mod Array.length regions) in
    let threshold = 400 + (50 * k) in
    ignore
      (Manager.define_view mgr
         ~name:(Printf.sprintf "dash%d" k)
         Query.Expr.(
           project
             [ "oid"; "cid"; "amount" ]
             (select
                ((v "amount" >% i threshold) &&% (v "region" =% s region))
                (join (base "orders") (base "customers")))))
  done

(* One full replay: build the scenario, define the views, drive the
   transaction stream, return elapsed seconds of the commit loop.  The
   seed fixes scenario and stream, so every domain count processes
   identical work. *)
let run_workload ~domains ~orders ~transactions ~batch seed =
  let rng = Rng.make seed in
  let sc = Scenario.orders ~rng ~customers:300 ~orders in
  let db = sc.Scenario.db in
  let mgr = Manager.create ~domains db in
  define_views mgr;
  let columns = Scenario.columns_of sc "orders" in
  Bench_util.time_once (fun () ->
      for _ = 1 to transactions do
        let txn =
          Generate.transaction rng db "orders" ~columns
            ~inserts:(batch / 2)
            ~deletes:(batch - (batch / 2))
        in
        ignore (Manager.commit mgr txn)
      done)

let curve ~orders ~transactions ~batch seed =
  List.map
    (fun domains ->
      (domains, run_workload ~domains ~orders ~transactions ~batch seed))
    domain_counts

let speedup_at ~base results domains =
  match List.assoc_opt domains results with
  | Some t when t > 0.0 -> base /. t
  | Some _ | None -> 0.0

let scaling_json () =
  let transactions = 30 and batch = 16 in
  let results = curve ~orders:4_000 ~transactions ~batch 7_700 in
  let base = List.assoc 1 results in
  Obs.Json.Obj
    [
      ("experiment", Obs.Json.Str "E18");
      ("scenario", Obs.Json.Str "orders");
      ("views", Obs.Json.Int view_count);
      ("transactions", Obs.Json.Int transactions);
      ("batch", Obs.Json.Int batch);
      ("cores_available", Obs.Json.Int (Domain.recommended_domain_count ()));
      ( "curve",
        Obs.Json.List
          (List.map
             (fun (domains, elapsed) ->
               Obs.Json.Obj
                 [
                   ("domains", Obs.Json.Int domains);
                   ("elapsed_ns", Obs.Json.Int (int_of_float (elapsed *. 1e9)));
                   ( "commits_per_sec",
                     Obs.Json.Float (float_of_int transactions /. elapsed) );
                   ("speedup", Obs.Json.Float (base /. elapsed));
                 ])
             results) );
      ("speedup_at_2", Obs.Json.Float (speedup_at ~base results 2));
      ("speedup_at_4", Obs.Json.Float (speedup_at ~base results 4));
      ("speedup_at_8", Obs.Json.Float (speedup_at ~base results 8));
    ]

let run () =
  Bench_util.section
    "E18: domain-pool scaling (orders scenario, 8 independent views)";
  let transactions = 60 and batch = 16 in
  let results = curve ~orders:6_000 ~transactions ~batch 7_700 in
  let base = List.assoc 1 results in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores available: %d (Domain.recommended_domain_count)\n" cores;
  let max_domains = List.fold_left max 1 domain_counts in
  if cores < max_domains then
    Printf.printf
      "note: only %d hardware core(s) for up to %d domains — speedups at \
       oversubscribed domain counts are not credible on this machine and \
       are recorded, not gated.\n"
      cores max_domains;
  Bench_util.banner
    (Printf.sprintf "commit throughput, %d txns x %d views, batch %d"
       transactions view_count batch)
  ;
  Bench_util.print_table
    ~header:[ "domains"; "elapsed"; "commits/s"; "speedup" ]
    (List.map
       (fun (domains, elapsed) ->
         [
           string_of_int domains;
           Bench_util.fmt_time elapsed;
           Printf.sprintf "%.1f" (float_of_int transactions /. elapsed);
           Bench_util.fmt_speedup (base /. elapsed);
         ])
       results);
  Printf.printf
    "\nViews are maintained as independent pool tasks; with a single\n\
     hardware core (cores available = 1) the curve stays flat and the\n\
     extra domains only add scheduling overhead — the engine falls back\n\
     to inline execution at domains=1.\n"
