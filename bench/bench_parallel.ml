(* E18/E23: multicore scaling of the maintenance engine, along both
   axes the executor offers.

   E18 (per_view): eight independent select/join views over
   customers ⋈ orders replayed through managers configured with 1, 2, 4
   and 8 domains.  Views are data-independent (Manager.commit fans them
   out over the lib/exec pool), so the curve measures how far commit
   throughput scales with view-level parallelism alone.

   E23 (sharded): ONE view over a larger customers ⋈ orders join, same
   domain sweep.  With a single view there is nothing to fan out, so
   any speedup must come from inside the view: Delta_eval hash-shards
   each truth-table row's largest operand (customers, above the
   shard_min threshold) across the pool and merges the per-shard
   results — the multiset merge is bit-identical to the sequential
   evaluation, so the curve isolates the intra-view axis.

   Both seeds fix scenario and stream, so every domain count processes
   identical work.  [scaling_json] re-runs smaller versions of both
   sweeps and serializes the curves into the BENCH_IVM.json snapshot
   (schema_version 6). *)

module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let view_count = 8
let domain_counts = [ 1; 2; 4; 8 ]

let define_dashboard_views mgr =
  let open Condition.Formula.Dsl in
  let regions = [| "north"; "south"; "east"; "west" |] in
  for k = 0 to view_count - 1 do
    let region = regions.(k mod Array.length regions) in
    let threshold = 400 + (50 * k) in
    ignore
      (Manager.define_view mgr
         ~name:(Printf.sprintf "dash%d" k)
         Query.Expr.(
           project
             [ "oid"; "cid"; "amount" ]
             (select
                ((v "amount" >% i threshold) &&% (v "region" =% s region))
                (join (base "orders") (base "customers")))))
  done

(* One full E18 replay: build the scenario, define the eight views,
   drive the transaction stream, return elapsed seconds of the commit
   loop. *)
let run_per_view ~domains ~orders ~transactions ~batch seed =
  let rng = Rng.make seed in
  let sc = Scenario.orders ~rng ~customers:300 ~orders in
  let db = sc.Scenario.db in
  let mgr = Manager.create ~domains db in
  define_dashboard_views mgr;
  let columns = Scenario.columns_of sc "orders" in
  Bench_util.time_once (fun () ->
      for _ = 1 to transactions do
        let txn =
          Generate.transaction rng db "orders" ~columns
            ~inserts:(batch / 2)
            ~deletes:(batch - (batch / 2))
        in
        ignore (Manager.commit mgr txn)
      done)

(* One full E23 replay: a single wide join view, so the only available
   parallelism is the intra-view sharding inside Delta_eval.  The
   customers side is the largest operand of every surviving truth-table
   row and sits well above Delta_eval.default_shard_min, so each row is
   split into pool-size hash shards. *)
let run_sharded ~domains ~customers ~orders ~transactions ~batch seed =
  let rng = Rng.make seed in
  let sc = Scenario.orders ~rng ~customers ~orders in
  let db = sc.Scenario.db in
  let mgr = Manager.create ~domains db in
  let open Condition.Formula.Dsl in
  ignore
    (Manager.define_view mgr ~name:"big_join"
       Query.Expr.(
         project
           [ "oid"; "cid"; "amount"; "region" ]
           (select (v "amount" >% i 100)
              (join (base "orders") (base "customers")))));
  let columns = Scenario.columns_of sc "orders" in
  Bench_util.time_once (fun () ->
      for _ = 1 to transactions do
        let txn =
          Generate.transaction rng db "orders" ~columns
            ~inserts:(batch / 2)
            ~deletes:(batch - (batch / 2))
        in
        ignore (Manager.commit mgr txn)
      done)

let curve run = List.map (fun domains -> (domains, run ~domains)) domain_counts

let speedup_at ~base results domains =
  match List.assoc_opt domains results with
  | Some t when t > 0.0 -> base /. t
  | Some _ | None -> 0.0

let scenario_json ~scenario ~views ~transactions ~batch results =
  let base = List.assoc 1 results in
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.Str scenario);
      ("views", Obs.Json.Int views);
      ("transactions", Obs.Json.Int transactions);
      ("batch", Obs.Json.Int batch);
      ( "curve",
        Obs.Json.List
          (List.map
             (fun (domains, elapsed) ->
               Obs.Json.Obj
                 [
                   ("domains", Obs.Json.Int domains);
                   ("elapsed_ns", Obs.Json.Int (int_of_float (elapsed *. 1e9)));
                   ( "commits_per_sec",
                     Obs.Json.Float (float_of_int transactions /. elapsed) );
                   ("speedup", Obs.Json.Float (base /. elapsed));
                 ])
             results) );
      ("speedup_at_2", Obs.Json.Float (speedup_at ~base results 2));
      ("speedup_at_4", Obs.Json.Float (speedup_at ~base results 4));
      ("speedup_at_8", Obs.Json.Float (speedup_at ~base results 8));
    ]

let scaling_json () =
  let pv_transactions = 30 and pv_batch = 16 in
  let per_view =
    curve (fun ~domains ->
        run_per_view ~domains ~orders:4_000 ~transactions:pv_transactions
          ~batch:pv_batch 7_700)
  in
  let sh_transactions = 8 and sh_batch = 256 in
  let sharded =
    curve (fun ~domains ->
        run_sharded ~domains ~customers:6_000 ~orders:8_000
          ~transactions:sh_transactions ~batch:sh_batch 7_710)
  in
  Obs.Json.Obj
    [
      ("experiment", Obs.Json.Str "E18");
      ("cores_available", Obs.Json.Int (Domain.recommended_domain_count ()));
      ( "per_view",
        scenario_json ~scenario:"orders" ~views:view_count
          ~transactions:pv_transactions ~batch:pv_batch per_view );
      ( "sharded",
        scenario_json ~scenario:"orders-wide" ~views:1
          ~transactions:sh_transactions ~batch:sh_batch sharded );
    ]

let print_curve ~transactions results =
  let base = List.assoc 1 results in
  Bench_util.print_table
    ~header:[ "domains"; "elapsed"; "commits/s"; "speedup" ]
    (List.map
       (fun (domains, elapsed) ->
         [
           string_of_int domains;
           Bench_util.fmt_time elapsed;
           Printf.sprintf "%.1f" (float_of_int transactions /. elapsed);
           Bench_util.fmt_speedup (base /. elapsed);
         ])
       results)

let run () =
  Bench_util.section
    "E18/E23: domain-pool scaling (per-view fan-out vs intra-view sharding)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores available: %d (Domain.recommended_domain_count)\n" cores;
  let max_domains = List.fold_left max 1 domain_counts in
  if cores < max_domains then
    Printf.printf
      "note: only %d hardware core(s) for up to %d domains — speedups at \
       oversubscribed domain counts are not credible on this machine and \
       are recorded, not gated.\n"
      cores max_domains;
  let transactions = 60 and batch = 16 in
  Bench_util.banner
    (Printf.sprintf
       "E18 per-view: commit throughput, %d txns x %d views, batch %d"
       transactions view_count batch);
  print_curve ~transactions
    (curve (fun ~domains ->
         run_per_view ~domains ~orders:6_000 ~transactions ~batch 7_700));
  let sh_transactions = 10 and sh_batch = 256 in
  Bench_util.banner
    (Printf.sprintf
       "E23 sharded: 1 wide join view, %d txns, batch %d, |customers|=6k"
       sh_transactions sh_batch);
  print_curve ~transactions:sh_transactions
    (curve (fun ~domains ->
         run_sharded ~domains ~customers:6_000 ~orders:8_000
           ~transactions:sh_transactions ~batch:sh_batch 7_710));
  Printf.printf
    "\nPer-view: views are maintained as independent pool tasks, so the\n\
     curve tops out at min(views, domains).  Sharded: a single view has\n\
     no task-level parallelism at all — the speedup comes from\n\
     Delta_eval hash-sharding each truth-table row's largest operand\n\
     across the pool, with a merge that is bit-identical to the\n\
     sequential result.  With a single hardware core both curves stay\n\
     flat and the extra domains only add scheduling overhead — the\n\
     engine falls back to inline execution at domains=1.\n"
