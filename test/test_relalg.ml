open Relalg
open Helpers

(* ------------------------------------------------------------------ *)
(* Value                                                              *)
(* ------------------------------------------------------------------ *)

let value_tests =
  [
    quick "equal int" (fun () ->
        Alcotest.(check bool) "5 = 5" true (Value.equal (Int 5) (Int 5)));
    quick "equal cross-type" (fun () ->
        Alcotest.(check bool) "5 <> \"5\"" false
          (Value.equal (Int 5) (Str "5")));
    quick "compare ints" (fun () ->
        Alcotest.(check bool) "3 < 7" true (Value.compare (Int 3) (Int 7) < 0));
    quick "compare strings" (fun () ->
        Alcotest.(check bool) "a < b" true
          (Value.compare (Str "a") (Str "b") < 0));
    quick "ints sort before strings" (fun () ->
        Alcotest.(check bool) "Int < Str" true
          (Value.compare (Int 1000) (Str "") < 0));
    quick "hash consistent with equal" (fun () ->
        Alcotest.(check int) "same hash" (Value.hash (Int 42))
          (Value.hash (Int 42)));
    quick "ty_of" (fun () ->
        Alcotest.(check bool) "int ty" true (Value.ty_of (Int 1) = Value.Int_ty);
        Alcotest.(check bool) "str ty" true
          (Value.ty_of (Str "x") = Value.Str_ty));
    quick "int extraction" (fun () ->
        Alcotest.(check int) "int payload" 7 (Value.int (Int 7));
        Alcotest.check_raises "str is not int"
          (Invalid_argument "Value.int: \"x\" is not an integer") (fun () ->
            ignore (Value.int (Str "x"))));
    quick "str extraction" (fun () ->
        Alcotest.(check string) "str payload" "hi" (Value.str (Str "hi")));
    quick "to_string" (fun () ->
        Alcotest.(check string) "int" "12" (Value.to_string (Int 12));
        Alcotest.(check string) "str" "ab" (Value.to_string (Str "ab")));
  ]

(* ------------------------------------------------------------------ *)
(* Attr                                                               *)
(* ------------------------------------------------------------------ *)

let attr_tests =
  [
    quick "qualify" (fun () ->
        Alcotest.(check string) "qualified" "o.price"
          (Attr.qualify ~alias:"o" "price"));
    quick "base of qualified" (fun () ->
        Alcotest.(check string) "base" "price" (Attr.base "o.price"));
    quick "base of plain" (fun () ->
        Alcotest.(check string) "unchanged" "price" (Attr.base "price"));
    quick "alias_of" (fun () ->
        Alcotest.(check (option string)) "some" (Some "o")
          (Attr.alias_of "o.price");
        Alcotest.(check (option string)) "none" None (Attr.alias_of "price"));
    quick "is_qualified" (fun () ->
        Alcotest.(check bool) "yes" true (Attr.is_qualified "a.b");
        Alcotest.(check bool) "no" false (Attr.is_qualified "ab"));
  ]

(* ------------------------------------------------------------------ *)
(* Schema                                                             *)
(* ------------------------------------------------------------------ *)

let schema_tests =
  [
    quick "make rejects duplicates" (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Schema.make: duplicate attribute \"A\"")
          (fun () -> ignore (int_schema [ "A"; "B"; "A" ])));
    quick "position" (fun () ->
        let s = int_schema [ "A"; "B"; "C" ] in
        Alcotest.(check int) "B at 1" 1 (Schema.position s "B"));
    quick "position_opt missing" (fun () ->
        Alcotest.(check (option int)) "missing" None
          (Schema.position_opt (int_schema [ "A" ]) "Z"));
    quick "arity and names" (fun () ->
        let s = int_schema [ "X"; "Y" ] in
        Alcotest.(check int) "arity" 2 (Schema.arity s);
        Alcotest.(check (list string)) "names" [ "X"; "Y" ] (Schema.names s));
    quick "common keeps first order" (fun () ->
        let a = int_schema [ "A"; "B"; "C" ] in
        let b = int_schema [ "C"; "B"; "D" ] in
        Alcotest.(check (list string)) "common" [ "B"; "C" ] (Schema.common a b));
    quick "disjoint" (fun () ->
        Alcotest.(check bool) "disjoint" true
          (Schema.disjoint (int_schema [ "A" ]) (int_schema [ "B" ]));
        Alcotest.(check bool) "overlap" false
          (Schema.disjoint (int_schema [ "A" ]) (int_schema [ "A" ])));
    quick "concat requires disjoint" (fun () ->
        Alcotest.check_raises "overlap"
          (Invalid_argument "Schema.concat: schemas share attribute names")
          (fun () ->
            ignore (Schema.concat (int_schema [ "A" ]) (int_schema [ "A" ]))));
    quick "project returns positions" (fun () ->
        let s = int_schema [ "A"; "B"; "C" ] in
        let sub, positions = Schema.project s [ "C"; "A" ] in
        Alcotest.(check (list string)) "sub names" [ "C"; "A" ]
          (Schema.names sub);
        Alcotest.(check (array int)) "positions" [| 2; 0 |] positions);
    quick "project missing raises" (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Schema.project (int_schema [ "A" ]) [ "Z" ])));
    quick "qualify" (fun () ->
        let s = Schema.qualify ~alias:"r" (int_schema [ "A"; "B" ]) in
        Alcotest.(check (list string)) "qualified" [ "r.A"; "r.B" ]
          (Schema.names s));
    quick "rename detects collisions" (fun () ->
        Alcotest.check_raises "collision"
          (Invalid_argument "Schema.make: duplicate attribute \"x\"")
          (fun () ->
            ignore (Schema.rename (fun _ -> "x") (int_schema [ "A"; "B" ]))));
    quick "equal" (fun () ->
        Alcotest.check schema_testable "same" (int_schema [ "A" ])
          (int_schema [ "A" ]);
        Alcotest.(check bool) "different order" false
          (Schema.equal (int_schema [ "A"; "B" ]) (int_schema [ "B"; "A" ])));
    quick "mixed types" (fun () ->
        let s = Schema.make [ ("n", Value.Str_ty); ("k", Value.Int_ty) ] in
        Alcotest.(check bool) "n is str" true (Schema.ty s "n" = Value.Str_ty);
        Alcotest.(check bool) "k is int" true (Schema.ty_at s 1 = Value.Int_ty));
  ]

(* ------------------------------------------------------------------ *)
(* Tuple                                                              *)
(* ------------------------------------------------------------------ *)

let tuple_tests =
  [
    quick "of_ints" (fun () ->
        Alcotest.check tuple_testable "ints"
          [| Value.Int 1; Value.Int 2 |]
          (Tuple.of_ints [ 1; 2 ]));
    quick "project" (fun () ->
        Alcotest.check tuple_testable "projected" (Tuple.of_ints [ 3; 1 ])
          (Tuple.project [| 2; 0 |] (Tuple.of_ints [ 1; 2; 3 ])));
    quick "concat" (fun () ->
        Alcotest.check tuple_testable "concat" (Tuple.of_ints [ 1; 2; 3 ])
          (Tuple.concat (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 2; 3 ])));
    quick "value by name" (fun () ->
        let s = int_schema [ "A"; "B" ] in
        Alcotest.check value_testable "B" (Value.Int 9)
          (Tuple.value s (Tuple.of_ints [ 4; 9 ]) "B"));
    quick "equal tuples share hash" (fun () ->
        let a = Tuple.of_ints [ 1; 2; 3 ] and b = Tuple.of_ints [ 1; 2; 3 ] in
        Alcotest.(check bool) "equal" true (Tuple.equal a b);
        Alcotest.(check int) "hash" (Tuple.hash a) (Tuple.hash b));
    quick "compare is lexicographic" (fun () ->
        Alcotest.(check bool) "(1,2) < (1,3)" true
          (Tuple.compare (Tuple.of_ints [ 1; 2 ]) (Tuple.of_ints [ 1; 3 ]) < 0);
        Alcotest.(check bool) "shorter first" true
          (Tuple.compare (Tuple.of_ints [ 9 ]) (Tuple.of_ints [ 1; 1 ]) < 0));
    quick "check arity" (fun () ->
        Alcotest.check_raises "arity"
          (Invalid_argument "Tuple.check: arity 1, schema expects 2")
          (fun () ->
            Tuple.check (int_schema [ "A"; "B" ]) (Tuple.of_ints [ 1 ])));
    quick "check types" (fun () ->
        let s = Schema.make [ ("A", Value.Str_ty) ] in
        Alcotest.check_raises "type"
          (Invalid_argument "Tuple.check: type mismatch at attribute A")
          (fun () -> Tuple.check s (Tuple.of_ints [ 1 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Relation                                                           *)
(* ------------------------------------------------------------------ *)

let relation_tests =
  [
    quick "add and count" (fun () ->
        let r = Relation.create (int_schema [ "A" ]) in
        Relation.add r (Tuple.of_ints [ 1 ]);
        Relation.add ~count:2 r (Tuple.of_ints [ 1 ]);
        Alcotest.(check int) "count" 3 (Relation.count r (Tuple.of_ints [ 1 ]));
        Alcotest.(check int) "cardinal" 1 (Relation.cardinal r);
        Alcotest.(check int) "total" 3 (Relation.total r));
    quick "update to zero removes" (fun () ->
        let r = counted_rel [ "A" ] [ ([ 1 ], 2) ] in
        Relation.update r (Tuple.of_ints [ 1 ]) (-2);
        Alcotest.(check bool) "gone" false (Relation.mem r (Tuple.of_ints [ 1 ]));
        Alcotest.(check int) "total" 0 (Relation.total r));
    quick "negative count raises" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        Alcotest.(check bool) "raises" true
          (try
             Relation.update r (Tuple.of_ints [ 1 ]) (-2);
             false
           with Relation.Negative_count _ -> true));
    quick "remove absent raises" (fun () ->
        let r = Relation.create (int_schema [ "A" ]) in
        Alcotest.(check bool) "raises" true
          (try
             Relation.remove r (Tuple.of_ints [ 5 ]);
             false
           with Relation.Negative_count _ -> true));
    quick "add rejects non-positive count" (fun () ->
        let r = Relation.create (int_schema [ "A" ]) in
        Alcotest.check_raises "zero"
          (Invalid_argument "Relation.add: count must be positive") (fun () ->
            Relation.add ~count:0 r (Tuple.of_ints [ 1 ])));
    quick "union sums counts" (fun () ->
        let a = counted_rel [ "A" ] [ ([ 1 ], 1); ([ 2 ], 2) ] in
        let b = counted_rel [ "A" ] [ ([ 2 ], 3); ([ 3 ], 1) ] in
        check_rel "union"
          (counted_rel [ "A" ] [ ([ 1 ], 1); ([ 2 ], 5); ([ 3 ], 1) ])
          (Relation.union a b));
    quick "diff subtracts counts" (fun () ->
        let a = counted_rel [ "A" ] [ ([ 1 ], 3); ([ 2 ], 1) ] in
        let b = counted_rel [ "A" ] [ ([ 1 ], 1); ([ 2 ], 1) ] in
        check_rel "diff"
          (counted_rel [ "A" ] [ ([ 1 ], 2) ])
          (Relation.diff a b));
    quick "diff underflow raises" (fun () ->
        let a = rel [ "A" ] [ [ 1 ] ] in
        let b = counted_rel [ "A" ] [ ([ 1 ], 2) ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Relation.diff a b);
             false
           with Relation.Negative_count _ -> true));
    quick "equal is counter-sensitive" (fun () ->
        let a = counted_rel [ "A" ] [ ([ 1 ], 2) ] in
        let b = counted_rel [ "A" ] [ ([ 1 ], 1) ] in
        Alcotest.(check bool) "not equal" false (Relation.equal a b);
        Alcotest.(check bool) "set equal" true (Relation.set_equal a b));
    quick "copy is deep" (fun () ->
        let a = rel [ "A" ] [ [ 1 ] ] in
        let b = Relation.copy a in
        Relation.add b (Tuple.of_ints [ 2 ]);
        Alcotest.(check int) "a unchanged" 1 (Relation.cardinal a);
        Alcotest.(check int) "b grew" 2 (Relation.cardinal b));
    quick "reschema shares storage" (fun () ->
        let a = rel [ "A"; "B" ] [ [ 1; 2 ] ] in
        let b = Relation.reschema a (int_schema [ "r.A"; "r.B" ]) in
        Alcotest.(check int) "same contents" 1 (Relation.cardinal b);
        Alcotest.(check (list string)) "renamed" [ "r.A"; "r.B" ]
          (Schema.names (Relation.schema b)));
    quick "reschema arity mismatch" (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Relation.reschema: arity mismatch") (fun () ->
            ignore (Relation.reschema (rel [ "A" ] [ [ 1 ] ]) (int_schema [ "A"; "B" ]))));
    quick "of_tuples accumulates duplicates" (fun () ->
        let r =
          Relation.of_tuples (int_schema [ "A" ])
            [ Tuple.of_ints [ 1 ]; Tuple.of_ints [ 1 ] ]
        in
        Alcotest.(check int) "count 2" 2 (Relation.count r (Tuple.of_ints [ 1 ])));
    quick "sorted_elements sorted" (fun () ->
        let r = rel [ "A" ] [ [ 3 ]; [ 1 ]; [ 2 ] ] in
        Alcotest.(check (list (pair (list int) int)))
          "sorted"
          [ ([ 1 ], 1); ([ 2 ], 1); ([ 3 ], 1) ]
          (ints_contents r));
    quick "to_ascii shows counters when needed" (fun () ->
        let r = counted_rel [ "A" ] [ ([ 1 ], 2) ] in
        Alcotest.(check bool) "has # column" true
          (String.length (Relation.to_ascii r) > 0
          && String.contains (Relation.to_ascii r) '#'));
  ]

(* ------------------------------------------------------------------ *)
(* Ops — the redefined counted operators of Section 5.2               *)
(* ------------------------------------------------------------------ *)

let ops_tests =
  [
    quick "select preserves counters" (fun () ->
        let r = counted_rel [ "A" ] [ ([ 1 ], 2); ([ 5 ], 1) ] in
        check_rel "filtered"
          (counted_rel [ "A" ] [ ([ 1 ], 2) ])
          (Ops.select (fun t -> Value.int (Tuple.get t 0) < 3) r));
    quick "project sums counters (Example 5.1 data)" (fun () ->
        (* r = {(1,10), (2,10), (3,20)} projected on B gives 10 with
           counter 2 and 20 with counter 1. *)
        let r = rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
        check_rel "projected"
          (counted_rel [ "B" ] [ ([ 10 ], 2); ([ 20 ], 1) ])
          (Ops.project r [ "B" ]));
    quick "projection distributes over difference with counters" (fun () ->
        (* The whole point of the multiplicity counter: pi(r1 - r2) =
           pi(r1) - pi(r2). *)
        let r1 = rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
        let r2 = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        check_rel "distributive"
          (Ops.project (Relation.diff r1 r2) [ "B" ])
          (Relation.diff (Ops.project r1 [ "B" ]) (Ops.project r2 [ "B" ])));
    quick "product multiplies counters" (fun () ->
        let a = counted_rel [ "A" ] [ ([ 1 ], 2) ] in
        let b = counted_rel [ "B" ] [ ([ 7 ], 3) ] in
        check_rel "product"
          (counted_rel [ "A"; "B" ] [ ([ 1; 7 ], 6) ])
          (Ops.product a b));
    quick "natural join on shared attribute" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ] in
        let s = rel [ "B"; "C" ] [ [ 10; 5 ]; [ 10; 6 ]; [ 30; 7 ] ] in
        check_rel "join"
          (rel [ "A"; "B"; "C" ] [ [ 1; 10; 5 ]; [ 1; 10; 6 ] ])
          (Ops.natural_join r s));
    quick "natural join without shared attrs is a product" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        let s = rel [ "B" ] [ [ 2 ] ] in
        check_rel "product" (rel [ "A"; "B" ] [ [ 1; 2 ] ])
          (Ops.natural_join r s));
    quick "natural join multiplies counters (paper's '*')" (fun () ->
        let r = counted_rel [ "A"; "B" ] [ ([ 1; 10 ], 2) ] in
        let s = counted_rel [ "B"; "C" ] [ ([ 10; 5 ], 3) ] in
        check_rel "counted join"
          (counted_rel [ "A"; "B"; "C" ] [ ([ 1; 10; 5 ], 6) ])
          (Ops.natural_join r s));
    quick "equijoin keeps both sides" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        let s = rel [ "C"; "D" ] [ [ 10; 5 ] ] in
        check_rel "equijoin"
          (rel [ "A"; "B"; "C"; "D" ] [ [ 1; 10; 10; 5 ] ])
          (Ops.equijoin r s ~keys:[ ("B", "C") ]));
    quick "equijoin equals nested loop" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 30 ] ] in
        let s = rel [ "C"; "D" ] [ [ 10; 1 ]; [ 30; 2 ]; [ 40; 3 ] ] in
        check_rel "same"
          (Ops.equijoin r s ~keys:[ ("B", "C") ])
          (Ops.nested_loop_join r s ~keys:[ ("B", "C") ]));
    quick "equijoin without keys is a product" (fun () ->
        let r = rel [ "A" ] [ [ 1 ]; [ 2 ] ] in
        let s = rel [ "B" ] [ [ 3 ] ] in
        check_rel "product" (rel [ "A"; "B" ] [ [ 1; 3 ]; [ 2; 3 ] ])
          (Ops.equijoin r s ~keys:[]));
    quick "join with both sides empty" (fun () ->
        let r = Relation.create (int_schema [ "A"; "B" ]) in
        let s = Relation.create (int_schema [ "B"; "C" ]) in
        Alcotest.(check int) "empty" 0
          (Relation.cardinal (Ops.natural_join r s)));
    quick "rename" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        let renamed = Ops.rename (fun a -> "x." ^ a) r in
        Alcotest.(check (list string)) "renamed" [ "x.A" ]
          (Schema.names (Relation.schema renamed)));
  ]

(* ------------------------------------------------------------------ *)
(* Database                                                           *)
(* ------------------------------------------------------------------ *)

let database_tests =
  [
    quick "register and find" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        Alcotest.(check int) "found" 1 (Relation.cardinal (Database.find db "R")));
    quick "register duplicate raises" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [] ) ] in
        Alcotest.check_raises "dup"
          (Invalid_argument "Database.register: \"R\" already exists")
          (fun () -> Database.register db "R" (rel [ "A" ] [])));
    quick "find missing raises the typed exception" (fun () ->
        Alcotest.check_raises "missing" (Database.Unknown_relation "Z")
          (fun () -> ignore (Database.find (Database.create ()) "Z")));
    quick "names sorted" (fun () ->
        let db = db_of [ ("B", rel [ "X" ] []); ("A", rel [ "Y" ] []) ] in
        Alcotest.(check (list string)) "sorted" [ "A"; "B" ] (Database.names db));
    quick "copy is deep" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let db2 = Database.copy db in
        Relation.add (Database.find db2 "R") (Tuple.of_ints [ 2 ]);
        Alcotest.(check int) "original intact" 1
          (Relation.cardinal (Database.find db "R")));
  ]

(* ------------------------------------------------------------------ *)
(* Transaction                                                        *)
(* ------------------------------------------------------------------ *)

let transaction_tests =
  let fresh_db () =
    db_of
      [
        ("R", rel [ "A" ] [ [ 1 ]; [ 2 ] ]);
        ("S", rel [ "B" ] [ [ 10 ] ]);
      ]
  in
  [
    quick "simple insert" (fun () ->
        let db = fresh_db () in
        let net = Transaction.net_effect db [ Transaction.insert "R" (Tuple.of_ints [ 3 ]) ] in
        Alcotest.(check int) "one entry" 1 (List.length net);
        let inserts, deletes = List.assoc "R" net in
        Alcotest.(check int) "one insert" 1 (List.length inserts);
        Alcotest.(check int) "no delete" 0 (List.length deletes));
    quick "insert then delete cancels" (fun () ->
        let db = fresh_db () in
        let t = Tuple.of_ints [ 3 ] in
        let net =
          Transaction.net_effect db
            [ Transaction.insert "R" t; Transaction.delete "R" t ]
        in
        Alcotest.(check int) "empty net" 0 (List.length net));
    quick "delete then reinsert cancels" (fun () ->
        let db = fresh_db () in
        let t = Tuple.of_ints [ 1 ] in
        let net =
          Transaction.net_effect db
            [ Transaction.delete "R" t; Transaction.insert "R" t ]
        in
        Alcotest.(check int) "empty net" 0 (List.length net));
    quick "strict insert of existing raises" (fun () ->
        let db = fresh_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Transaction.net_effect db
                  [ Transaction.insert "R" (Tuple.of_ints [ 1 ]) ]);
             false
           with Transaction.Invalid _ -> true));
    quick "strict delete of absent raises" (fun () ->
        let db = fresh_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Transaction.net_effect db
                  [ Transaction.delete "R" (Tuple.of_ints [ 99 ]) ]);
             false
           with Transaction.Invalid _ -> true));
    quick "non-strict ignores no-ops" (fun () ->
        let db = fresh_db () in
        let net =
          Transaction.net_effect ~strict:false db
            [
              Transaction.insert "R" (Tuple.of_ints [ 1 ]);
              Transaction.delete "R" (Tuple.of_ints [ 99 ]);
            ]
        in
        Alcotest.(check int) "empty" 0 (List.length net));
    quick "multi-relation net is sorted by name" (fun () ->
        let db = fresh_db () in
        let net =
          Transaction.net_effect db
            [
              Transaction.insert "S" (Tuple.of_ints [ 20 ]);
              Transaction.insert "R" (Tuple.of_ints [ 5 ]);
            ]
        in
        Alcotest.(check (list string)) "sorted" [ "R"; "S" ]
          (List.map fst net));
    quick "net does not modify the database" (fun () ->
        let db = fresh_db () in
        ignore
          (Transaction.net_effect db
             [ Transaction.insert "R" (Tuple.of_ints [ 3 ]) ]);
        Alcotest.(check int) "unchanged" 2
          (Relation.cardinal (Database.find db "R")));
    quick "apply installs the net effect" (fun () ->
        let db = fresh_db () in
        let net =
          Transaction.net_effect db
            [
              Transaction.insert "R" (Tuple.of_ints [ 3 ]);
              Transaction.delete "R" (Tuple.of_ints [ 1 ]);
            ]
        in
        Transaction.apply db net;
        check_rel "final" (rel [ "A" ] [ [ 2 ]; [ 3 ] ]) (Database.find db "R"));
    quick "sequential equivalence" (fun () ->
        (* Applying the net effect equals applying the ops one by one. *)
        let db1 = fresh_db () and db2 = fresh_db () in
        let t3 = Tuple.of_ints [ 3 ] and t1 = Tuple.of_ints [ 1 ] in
        let txn =
          [
            Transaction.insert "R" t3;
            Transaction.delete "R" t3;
            Transaction.delete "R" t1;
            Transaction.insert "R" t3;
          ]
        in
        Transaction.apply db1 (Transaction.net_effect db1 txn);
        List.iter
          (fun op ->
            match op with
            | Transaction.Insert (n, t) -> Relation.add (Database.find db2 n) t
            | Transaction.Delete (n, t) ->
              Relation.remove (Database.find db2 n) t)
          txn;
        check_rel "same final state" (Database.find db2 "R")
          (Database.find db1 "R"));
    quick "of_sets drops empty entries" (fun () ->
        let net =
          Transaction.of_sets
            [ ("B", ([], [])); ("A", ([ Tuple.of_ints [ 1 ] ], [])) ]
        in
        Alcotest.(check (list string)) "only A" [ "A" ] (List.map fst net));
    quick "type checking inside transactions" (fun () ->
        let db = fresh_db () in
        Alcotest.(check bool) "bad arity rejected" true
          (try
             ignore
               (Transaction.net_effect db
                  [ Transaction.insert "R" (Tuple.of_ints [ 1; 2 ]) ]);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Domain bounds                                                      *)
(* ------------------------------------------------------------------ *)

let bounds_tests =
  [
    quick "bounded schema exposes its bounds" (fun () ->
        let s =
          Schema.make_bounded
            [ ("A", Value.Int_ty, Some (0, 9)); ("B", Value.Int_ty, None) ]
        in
        Alcotest.(check (option (pair int int))) "A" (Some (0, 9))
          (Schema.bounds s "A");
        Alcotest.(check (option (pair int int))) "B" None (Schema.bounds s "B"));
    quick "bounds survive qualify, project and concat" (fun () ->
        let s = Schema.make_bounded [ ("A", Value.Int_ty, Some (1, 5)) ] in
        let q = Schema.qualify ~alias:"r" s in
        Alcotest.(check (option (pair int int))) "qualified" (Some (1, 5))
          (Schema.bounds q "r.A");
        let sub, _ = Schema.project q [ "r.A" ] in
        Alcotest.(check (option (pair int int))) "projected" (Some (1, 5))
          (Schema.bounds sub "r.A");
        let c = Schema.concat q (int_schema [ "X" ]) in
        Alcotest.(check (option (pair int int))) "concatenated" (Some (1, 5))
          (Schema.bounds c "r.A"));
    quick "bounds on strings rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.make_bounded [ ("n", Value.Str_ty, Some (0, 1)) ]);
             false
           with Invalid_argument _ -> true));
    quick "empty domain rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.make_bounded [ ("A", Value.Int_ty, Some (5, 4)) ]);
             false
           with Invalid_argument _ -> true));
    quick "tuple check enforces bounds" (fun () ->
        let s = Schema.make_bounded [ ("A", Value.Int_ty, Some (0, 9)) ] in
        Tuple.check s (Tuple.of_ints [ 9 ]);
        Alcotest.(check bool) "raises" true
          (try
             Tuple.check s (Tuple.of_ints [ 10 ]);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* CSV serialization                                                  *)
(* ------------------------------------------------------------------ *)

let contains_substring needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i =
    i + n <= h && (String.sub haystack i n = needle || at (i + 1))
  in
  at 0

let csv_tests =
  let roundtrip r = Csv.of_string (Csv.to_string r) in
  [
    quick "integer relation round-trips" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ] ] in
        check_rel "roundtrip" r (roundtrip r));
    quick "counters round-trip" (fun () ->
        let r = counted_rel [ "A" ] [ ([ 1 ], 3); ([ 2 ], 1) ] in
        check_rel "roundtrip" r (roundtrip r));
    quick "strings with commas and quotes round-trip" (fun () ->
        let schema =
          Schema.make [ ("id", Value.Int_ty); ("name", Value.Str_ty) ]
        in
        let r =
          Relation.of_tuples schema
            [
              [| Value.Int 1; Value.Str "plain" |];
              [| Value.Int 2; Value.Str "with, comma" |];
              [| Value.Int 3; Value.Str "say \"hi\"" |];
              [| Value.Int 4; Value.Str "" |];
              [| Value.Int 5; Value.Str " padded " |];
              [| Value.Int 6; Value.Str "12345" |];
            ]
        in
        check_rel "roundtrip" r (roundtrip r));
    quick "bounds round-trip through the header" (fun () ->
        let schema = Schema.make_bounded [ ("A", Value.Int_ty, Some (0, 9)) ] in
        let r = Relation.of_tuples schema [ Tuple.of_ints [ 5 ] ] in
        let back = roundtrip r in
        Alcotest.(check (option (pair int int))) "bounds" (Some (0, 9))
          (Schema.bounds (Relation.schema back) "A"));
    quick "empty relation round-trips" (fun () ->
        let r = rel [ "A" ] [] in
        check_rel "roundtrip" r (roundtrip r));
    quick "random relations round-trip" (fun () ->
        let rng = Workload.Rng.make 5 in
        for _ = 1 to 50 do
          let schema =
            Schema.make [ ("k", Value.Int_ty); ("s", Value.Str_ty) ]
          in
          let r = Relation.create schema in
          let pool = [| "a"; "b,c"; "\""; " x"; ""; "0"; "long text here" |] in
          for _ = 1 to Workload.Rng.int rng 20 do
            Relation.add
              ~count:(1 + Workload.Rng.int rng 3)
              r
              [|
                Value.Int (Workload.Rng.range rng ~lo:(-50) ~hi:50);
                Value.Str (Workload.Rng.choice rng pool);
              |]
          done;
          check_rel "roundtrip" r (roundtrip r)
        done);
    quick "parse errors carry line numbers" (fun () ->
        List.iter
          (fun (text, fragment) ->
            match Csv.of_string text with
            | _ -> Alcotest.fail ("expected failure for " ^ fragment)
            | exception Csv.Parse_error message ->
              Alcotest.(check bool)
                (Printf.sprintf "mentions %s" fragment)
                true
                (contains_substring fragment message))
          [
            ("A:int\nx\n", "not an integer");
            ("A:int\n1,2\n", "expected 1 cells");
            ("A:what\n", "unknown type");
            ("A:int,#,B:int\n", "last header column");
            ("A:int\n\"1\n", "unterminated");
          ]);
    quick "database save and load round-trips" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A" ] [ [ 1 ]; [ 2 ] ]);
              ("S", counted_rel [ "B" ] [ ([ 7 ], 2) ]);
            ]
        in
        let dir = Filename.temp_file "ivm" "dir" in
        Sys.remove dir;
        Csv.save_database ~dir db;
        let back = Csv.load_database ~dir in
        Alcotest.(check (list string)) "names" [ "R"; "S" ] (Database.names back);
        check_rel "R" (Database.find db "R") (Database.find back "R");
        check_rel "S" (Database.find db "S") (Database.find back "S"));
  ]


(* ------------------------------------------------------------------ *)
(* Secondary indexes                                                  *)
(* ------------------------------------------------------------------ *)

let index_tests =
  let matches index key =
    let out = ref [] in
    Index.iter_matches index key (fun t c -> out := (Array.to_list t, c) :: !out);
    List.sort compare !out
  in
  [
    quick "build indexes existing tuples" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
        let index = Index.build r [ "B" ] in
        Alcotest.(check int) "two keys" 2 (Index.key_count index);
        Alcotest.(check (list (pair (list value_testable) int)))
          "B=10"
          [ ([ Value.Int 1; Value.Int 10 ], 1); ([ Value.Int 2; Value.Int 10 ], 1) ]
          (matches index (Tuple.of_ints [ 10 ])));
    quick "index follows inserts and deletes" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        let index = Index.build r [ "B" ] in
        Relation.add r (Tuple.of_ints [ 2; 10 ]);
        Relation.add r (Tuple.of_ints [ 3; 30 ]);
        Relation.remove r (Tuple.of_ints [ 1; 10 ]);
        Alcotest.(check int) "keys" 2 (Index.key_count index);
        Alcotest.(check int) "B=10 matches" 1
          (List.length (matches index (Tuple.of_ints [ 10 ]))));
    quick "index follows counters" (fun () ->
        let r = Relation.create (int_schema [ "A"; "B" ]) in
        let index = Index.build r [ "B" ] in
        Relation.add ~count:3 r (Tuple.of_ints [ 1; 10 ]);
        Relation.update r (Tuple.of_ints [ 1; 10 ]) (-2);
        Alcotest.(check (list (pair (list value_testable) int)))
          "count 1"
          [ ([ Value.Int 1; Value.Int 10 ], 1) ]
          (matches index (Tuple.of_ints [ 10 ])));
    quick "empty key bucket disappears" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        let index = Index.build r [ "B" ] in
        Relation.remove r (Tuple.of_ints [ 1; 10 ]);
        Alcotest.(check int) "no keys" 0 (Index.key_count index));
    quick "find by storage id survives reschema" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        ignore (Index.build r [ "B" ]);
        let view = Relation.reschema r (int_schema [ "r.A"; "r.B" ]) in
        Alcotest.(check bool) "found" true
          (Index.find view ~positions:[| 1 |] <> None));
    quick "copy does not share the index" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        ignore (Index.build r [ "B" ]);
        Alcotest.(check bool) "copy unfound" true
          (Index.find (Relation.copy r) ~positions:[| 1 |] = None));
    quick "drop stops maintenance and lookup" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        ignore (Index.build r [ "B" ]);
        Index.drop r [ "B" ];
        Alcotest.(check bool) "gone" true
          (Index.find r ~positions:[| 1 |] = None);
        (* Updating after drop must not raise. *)
        Relation.add r (Tuple.of_ints [ 2; 20 ]));
    quick "build is idempotent" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 10 ] ] in
        let i1 = Index.build r [ "B" ] in
        let i2 = Index.build r [ "B" ] in
        Alcotest.(check bool) "same index" true (i1 == i2));
    quick "indexed planner joins agree with unindexed" (fun () ->
        let rng = Workload.Rng.make 61 in
        let scenario =
          Workload.Scenario.pair ~rng ~size_r:300 ~size_s:300 ~key_range:40
        in
        let db = scenario.Workload.Scenario.db in
        ignore (Index.build (Database.find db "S") [ "B" ]);
        let view =
          Ivm.View.define ~name:"ix" ~db
            Query.Expr.(join (base "R") (base "S"))
        in
        for _ = 1 to 15 do
          let txn =
            Workload.Generate.mixed_transaction rng db
              [
                ("R", Workload.Scenario.columns_of scenario "R", 2, 2);
                ("S", Workload.Scenario.columns_of scenario "S", 2, 2);
              ]
          in
          ignore (Ivm.Maintenance.process ~views:[ view ] ~db txn)
        done;
        Alcotest.(check bool) "consistent" true (Ivm.View.consistent view db));
  ]

let () =
  Alcotest.run "relalg"
    [
      ("value", value_tests);
      ("attr", attr_tests);
      ("schema", schema_tests);
      ("tuple", tuple_tests);
      ("relation", relation_tests);
      ("ops", ops_tests);
      ("database", database_tests);
      ("transaction", transaction_tests);
      ("bounds", bounds_tests);
      ("csv", csv_tests);
      ("index", index_tests);
    ]
