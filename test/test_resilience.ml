(* The fault-tolerant commit pipeline: deterministic fault injection,
   the undo-log journal, bounded retry, transactional abort (torn-commit
   regression), per-view quarantine with self-healing, the disabled
   ladder and explicit repair, refresh hardening, and the commit fast
   path for untouched views.

   Manager tests pin ~domains:1 so the single failure each scenario
   injects lands deterministically; the multi-domain interleavings are
   covered by the fault-injected oracle properties in test_oracle.ml and
   the tools/check.sh fuzz gates. *)

open Relalg
open Helpers
module Fault = Resilience.Fault
module Journal = Resilience.Journal
module Retry = Resilience.Retry
module Policy = Resilience.Policy
module Manager = Ivm.Manager
module View = Ivm.View

(* Every test that arms injection must disarm it, or it would leak into
   the rest of the suite (the fault state is process-wide). *)
let with_faults ?seed ?only ~rate f =
  Fault.configure ?seed ?only ~rate ();
  Fun.protect ~finally:Fault.disable f

(* ------------------------------------------------------------------ *)
(* Fault points                                                        *)
(* ------------------------------------------------------------------ *)

let fires () =
  match Fault.point "p" with
  | () -> false
  | exception Fault.Injected "p" -> true

let fault_tests =
  [
    quick "inactive by default; rate 0 deactivates" (fun () ->
        Alcotest.(check bool) "off at start" false (Fault.active ());
        Fault.point "p";
        with_faults ~rate:0.0 (fun () ->
            Alcotest.(check bool) "rate 0 is off" false (Fault.active ());
            Fault.point "p"));
    quick "rate 1 fires on every occurrence and counts" (fun () ->
        with_faults ~rate:1.0 (fun () ->
            for _ = 1 to 5 do
              Alcotest.(check bool) "fires" true (fires ())
            done;
            Alcotest.(check int) "counted" 5 (Fault.injected ())));
    quick "same seed, same fault sequence" (fun () ->
        let sequence () =
          with_faults ~seed:7 ~rate:0.3 (fun () ->
              List.init 200 (fun _ -> fires ()))
        in
        let first = sequence () in
        Alcotest.(check (list bool)) "replay identical" first (sequence ());
        let hits = List.length (List.filter Fun.id first) in
        Alcotest.(check bool)
          (Printf.sprintf "%d hits of 200 near rate 0.3" hits)
          true
          (hits > 20 && hits < 120));
    quick "only-filter restricts injection to the named points" (fun () ->
        with_faults ~only:[ "a" ] ~rate:1.0 (fun () ->
            Fault.point "b";
            match Fault.point "a" with
            | () -> Alcotest.fail "filtered point did not fire"
            | exception Fault.Injected "a" -> ()));
    quick "hash_unit stays in [0, 1)" (fun () ->
        for k = 0 to 999 do
          let u = Fault.hash_unit ~seed:k "point" (k * 17) in
          Alcotest.(check bool) "in range" true (u >= 0.0 && u < 1.0)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let journal_tests =
  [
    quick "update performs the mutation and rollback undoes it" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        let j = Journal.create () in
        Journal.update j r (Tuple.of_ints [ 2 ]) 1;
        Journal.update j r (Tuple.of_ints [ 1 ]) 1;
        Journal.update j r (Tuple.of_ints [ 1 ]) (-2);
        Alcotest.(check int) "three entries" 3 (Journal.entries j);
        Alcotest.(check bool) "mutations landed" true
          (Relation.mem r (Tuple.of_ints [ 2 ]));
        Alcotest.(check int) "net count" 0 (Relation.count r (Tuple.of_ints [ 1 ]));
        Journal.rollback j;
        check_rel "exact pre-state" (rel [ "A" ] [ [ 1 ] ]) r;
        Alcotest.(check int) "journal drained" 0 (Journal.entries j));
    quick "a rejected update records nothing" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        let j = Journal.create () in
        (match Journal.update j r (Tuple.of_ints [ 9 ]) (-1) with
        | () -> Alcotest.fail "negative count accepted"
        | exception Relation.Negative_count _ -> ());
        Alcotest.(check int) "no entry" 0 (Journal.entries j);
        Journal.rollback j;
        check_rel "untouched" (rel [ "A" ] [ [ 1 ] ]) r);
    quick "record_restore reinstalls the saved relation" (fun () ->
        let original = rel [ "A" ] [ [ 1 ]; [ 2 ] ] in
        let current = ref original in
        let j = Journal.create () in
        Journal.record_restore j
          ~install:(fun saved -> current := saved)
          ~saved:!current;
        current := rel [ "A" ] [ [ 9 ] ];
        Journal.rollback j;
        Alcotest.(check bool) "same relation back" true (!current == original));
    quick "append merges a sub-journal after the parent's entries" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        let main = Journal.create () and sub = Journal.create () in
        Journal.update main r (Tuple.of_ints [ 2 ]) 1;
        Journal.update sub r (Tuple.of_ints [ 3 ]) 1;
        Journal.update sub r (Tuple.of_ints [ 2 ]) 1;
        Journal.append ~into:main sub;
        Alcotest.(check int) "sub emptied" 0 (Journal.entries sub);
        Alcotest.(check int) "main holds all" 3 (Journal.entries main);
        Journal.rollback main;
        check_rel "both undone" (rel [ "A" ] [ [ 1 ] ]) r);
    quick "bytes grows with recorded history" (fun () ->
        let r = rel [ "A"; "B" ] [ [ 1; 2 ] ] in
        let j = Journal.create () in
        Alcotest.(check int) "empty" 0 (Journal.bytes j);
        Journal.update j r (Tuple.of_ints [ 3; 4 ]) 1;
        let after_update = Journal.bytes j in
        Alcotest.(check bool) "update accounted" true (after_update > 0);
        Journal.record_restore j ~install:(fun _ -> ()) ~saved:r;
        Alcotest.(check bool) "restore accounted" true
          (Journal.bytes j > after_update);
        Journal.rollback j);
  ]

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let fast_retry = { Retry.attempts = 3; backoff_ns = 1_000; jitter = 0.5; seed = 1 }

let retry_tests =
  [
    quick "first-try success retries nothing" (fun () ->
        let retries = ref 0 in
        match
          Retry.run ~on_retry:(fun ~attempt:_ _ -> incr retries) fast_retry
            (fun () -> 42)
        with
        | Ok v ->
          Alcotest.(check int) "value" 42 v;
          Alcotest.(check int) "no retries" 0 !retries
        | Error _ -> Alcotest.fail "unexpected failure");
    quick "transient failures clear within the budget" (fun () ->
        let calls = ref 0 in
        let result =
          Retry.run fast_retry (fun () ->
              incr calls;
              if !calls < 3 then failwith "transient";
              !calls)
        in
        (match result with
        | Ok v -> Alcotest.(check int) "succeeded on the last try" 3 v
        | Error _ -> Alcotest.fail "budget should have sufficed");
        Alcotest.(check int) "three calls" 3 !calls);
    quick "exhaustion returns the last failure" (fun () ->
        let attempts_seen = ref [] in
        match
          Retry.run
            ~on_retry:(fun ~attempt _ -> attempts_seen := attempt :: !attempts_seen)
            fast_retry
            (fun () -> failwith "permanent")
        with
        | Ok _ -> Alcotest.fail "cannot succeed"
        | Error (Failure m, _) ->
          Alcotest.(check string) "last error" "permanent" m;
          Alcotest.(check (list int))
            "a retry notification per re-attempt" [ 2; 1 ] !attempts_seen
        | Error _ -> Alcotest.fail "unexpected exception");
  ]

(* ------------------------------------------------------------------ *)
(* Transactional commit (Abort policy)                                 *)
(* ------------------------------------------------------------------ *)

let example_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 5; 2 ]; [ 9; 4 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 2; 7 ]; [ 4; 1 ] ]);
    ]

let join_expr = Query.Expr.(join (base "R") (base "S"))

(* Torn-commit regression.  Sabotage the materialization so the view
   delta's delete underflows mid-apply — after the base deletions have
   landed and sibling work may have run — and check the abort restores
   the exact pre-commit state, sabotage included. *)
let torn_commit () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 db in
  let v = Manager.define_view mgr ~name:"v" join_expr in
  let g = Manager.define_view mgr ~name:"g" Query.Expr.(base "S") in
  Relation.update (View.contents v) (Tuple.of_ints [ 1; 2; 7 ]) (-1);
  let saved_v = Relation.copy (View.contents v) in
  let saved_g = Relation.copy (View.contents g) in
  let saved_r = Relation.copy (Database.find db "R") in
  let saved_s = Relation.copy (Database.find db "S") in
  let txn =
    [
      Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]);
      Transaction.insert "S" (Tuple.of_ints [ 9; 9 ]);
    ]
  in
  (match Manager.commit mgr txn with
  | _ -> Alcotest.fail "the sabotaged delete must fail the commit"
  | exception Manager.Commit_failed { phase; outcomes; _ } ->
    Alcotest.(check string) "failed maintaining views" "maintain" phase;
    (match List.assoc "v" outcomes with
    | Manager.Faulted { error; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "underflow reported: %s" error)
        true
        (String.length error > 0)
    | _ -> Alcotest.fail "v should be the faulted view"));
  check_rel "R rolled back" saved_r (Database.find db "R");
  check_rel "S rolled back" saved_s (Database.find db "S");
  check_rel "v rolled back (sabotage preserved)" saved_v (View.contents v);
  check_rel "g rolled back" saved_g (View.contents g);
  Alcotest.(check bool) "nobody was quarantined" true
    (List.for_all (fun (_, h) -> h = Manager.Healthy) (Manager.health mgr));
  Alcotest.(check int) "no stats landed" 0 (Manager.stats mgr "v").Manager.commits

let unprotected_commit_tears () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 ~policy:Policy.Unprotected db in
  let v = Manager.define_view mgr ~name:"v" join_expr in
  Relation.update (View.contents v) (Tuple.of_ints [ 1; 2; 7 ]) (-1);
  (match Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]) ] with
  | _ -> Alcotest.fail "must raise"
  | exception Relation.Negative_count _ -> ());
  (* The legacy behaviour this PR protects against: the base deletion
     stays applied even though maintenance died. *)
  Alcotest.(check bool) "base deletion not rolled back" false
    (Relation.mem (Database.find db "R") (Tuple.of_ints [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Quarantine, self-heal, disable, repair                              *)
(* ------------------------------------------------------------------ *)

let quarantine_isolates_and_heals () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 ~policy:Policy.Quarantine db in
  let bad = Manager.define_view mgr ~name:"bad" join_expr in
  let good = Manager.define_view mgr ~name:"good" Query.Expr.(base "S") in
  Relation.update (View.contents bad) (Tuple.of_ints [ 1; 2; 7 ]) (-1);
  let txn =
    [
      Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]);
      Transaction.insert "S" (Tuple.of_ints [ 9; 9 ]);
    ]
  in
  let reports = Manager.commit mgr txn in
  Alcotest.(check int) "only the healthy sibling reports" 1 (List.length reports);
  (match Manager.view_health mgr "bad" with
  | Manager.Quarantined q ->
    Alcotest.(check int) "fresh quarantine" 0 q.Manager.heal_failures
  | _ -> Alcotest.fail "bad should be quarantined");
  Alcotest.(check bool) "siblings committed" true
    (Relation.mem (View.contents good) (Tuple.of_ints [ 9; 9 ]));
  Alcotest.(check bool) "base updates committed" false
    (Relation.mem (Database.find db "R") (Tuple.of_ints [ 1; 2 ]));
  Alcotest.(check bool) "net banked for the heal" true
    (Manager.pending mgr "bad" <> []);
  (* The heal's differential drain replays the same underflow, so it has
     to fall through to the recompute rung of the ladder. *)
  Alcotest.(check bool) "heals" true (Manager.heal mgr "bad");
  Alcotest.(check bool) "healthy after heal" true
    (Manager.view_health mgr "bad" = Manager.Healthy);
  check_rel "contents correct after heal"
    (Query.Eval.eval db join_expr)
    (View.contents bad);
  Alcotest.(check bool) "everything consistent" true (Manager.all_consistent mgr)

let self_heal_on_next_commit () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 ~policy:Policy.Quarantine db in
  let bad = Manager.define_view mgr ~name:"bad" join_expr in
  Relation.update (View.contents bad) (Tuple.of_ints [ 1; 2; 7 ]) (-1);
  ignore (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]) ]);
  Alcotest.(check bool) "quarantined after the failure" true
    (match Manager.view_health mgr "bad" with
    | Manager.Quarantined _ -> true
    | _ -> false);
  (* The next commit heals first, then maintains the healed view. *)
  ignore (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 3; 2 ]) ]);
  Alcotest.(check bool) "healthy again" true
    (Manager.view_health mgr "bad" = Manager.Healthy);
  check_rel "caught up with both commits"
    (Query.Eval.eval db join_expr)
    (View.contents bad)

let disable_after_exhausted_heals_then_repair () =
  let db = example_db () in
  let mgr =
    Manager.create ~domains:1 ~policy:Policy.Quarantine
      ~retry:{ fast_retry with attempts = 1 }
      db
  in
  ignore (Manager.define_view mgr ~name:"v" join_expr);
  with_faults ~only:[ "eval"; "recompute" ] ~rate:1.0 (fun () ->
      ignore
        (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]) ]);
      Alcotest.(check bool) "quarantined by the injected fault" true
        (match Manager.view_health mgr "v" with
        | Manager.Quarantined _ -> true
        | _ -> false);
      (* Both heal rungs stay fault-saturated: each round fails, and the
         third failed round disables the view. *)
      for round = 1 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "heal round %d fails" round)
          false (Manager.heal mgr "v")
      done;
      match Manager.view_health mgr "v" with
      | Manager.Disabled q ->
        Alcotest.(check int) "three exhausted rounds" 3 q.Manager.heal_failures
      | _ -> Alcotest.fail "view should be disabled");
  Alcotest.(check bool) "disabled views do not self-heal" false
    (Manager.heal mgr "v");
  Alcotest.(check bool) "consistent is false while disabled" false
    (Manager.consistent mgr "v");
  (* repair bypasses the instrumented path, so it works even under
     saturation; faults are off here anyway. *)
  Alcotest.(check bool) "repair revives" true (Manager.repair mgr "v");
  Alcotest.(check bool) "healthy and correct" true (Manager.consistent mgr "v");
  Alcotest.(check bool) "repair of a healthy view is a no-op" false
    (Manager.repair mgr "v")

(* ------------------------------------------------------------------ *)
(* Refresh hardening                                                   *)
(* ------------------------------------------------------------------ *)

let refresh_survives_mid_drain_failure () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 db in
  let dv =
    Manager.define_view mgr ~name:"dv" ~mode:Manager.Deferred
      Query.Expr.(base "R")
  in
  ignore (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 3; 4 ]) ]);
  ignore (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 9; 4 ]) ]);
  let saved_r = Relation.copy (Database.find db "R") in
  let saved_dv = Relation.copy (View.contents dv) in
  let pending_before = Manager.pending mgr "dv" in
  with_faults ~only:[ "eval" ] ~rate:1.0 (fun () ->
      match Manager.refresh mgr "dv" with
      | _ -> Alcotest.fail "the injected fault must escape refresh"
      | exception Fault.Injected _ -> ());
  (* The failed drain must be a perfect no-op: rewound insertions
     restored, materialization untouched, deltas still banked. *)
  check_rel "base restored after the failed drain" saved_r
    (Database.find db "R");
  check_rel "materialization untouched" saved_dv (View.contents dv);
  Alcotest.(check bool) "pending still banked" true
    (Manager.pending mgr "dv" = pending_before);
  (match Manager.refresh mgr "dv" with
  | Some _ -> ()
  | None -> Alcotest.fail "deferred view must produce a report");
  check_rel "caught up after the retry"
    (Query.Eval.eval db Query.Expr.(base "R"))
    (View.contents dv);
  Alcotest.(check bool) "consistent" true (Manager.consistent mgr "dv")

(* ------------------------------------------------------------------ *)
(* Commit fast path                                                    *)
(* ------------------------------------------------------------------ *)

let untouched_views_skip_maintenance () =
  let db = example_db () in
  let mgr = Manager.create ~domains:1 db in
  ignore (Manager.define_view mgr ~name:"s_only" Query.Expr.(base "S"));
  let reports =
    Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 3; 4 ]) ]
  in
  Alcotest.(check int) "no report for the untouched view" 0
    (List.length reports);
  Alcotest.(check int) "no stats either" 0
    (Manager.stats mgr "s_only").Manager.commits;
  let reports =
    Manager.commit mgr [ Transaction.insert "S" (Tuple.of_ints [ 5; 5 ]) ]
  in
  Alcotest.(check int) "touched commit maintains it" 1 (List.length reports);
  Alcotest.(check int) "and lands stats" 1
    (Manager.stats mgr "s_only").Manager.commits;
  Alcotest.(check bool) "still consistent" true (Manager.all_consistent mgr)

(* ------------------------------------------------------------------ *)
(* Abort is all-or-nothing under random faulted streams                *)
(* ------------------------------------------------------------------ *)

(* The oracle harness checks exactly the Abort contract after every
   commit: either the commit succeeded and all materializations match
   the from-scratch recompute, or it raised [Commit_failed] and base
   relations and materializations are bit-identical to the reference's
   pre-commit deep copy. *)
let abort_all_or_nothing seed =
  let s = Oracle.Stream.generate ~domains:1 ~seed ~transactions:10 () in
  match Oracle.Harness.run ~fault_rate:0.3 ~policy:Policy.Abort s with
  | None -> true
  | Some d ->
    QCheck.Test.fail_reportf "%s@.%s"
      (Format.asprintf "%a" Oracle.Harness.pp_divergence d)
      (Format.asprintf "%a" Oracle.Stream.pp s)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"commit under Abort either succeeds or changes nothing"
         QCheck.(int_range 0 1_000_000)
         abort_all_or_nothing);
  ]

let () =
  Alcotest.run "resilience"
    [
      ("fault injection", fault_tests);
      ("journal", journal_tests);
      ("retry", retry_tests);
      ( "transactional commit",
        [
          quick "abort restores the exact pre-commit state" torn_commit;
          quick "unprotected policy keeps the legacy torn behaviour"
            unprotected_commit_tears;
        ] );
      ( "quarantine",
        [
          quick "a failing view is isolated and heals on demand"
            quarantine_isolates_and_heals;
          quick "quarantined views self-heal on the next commit"
            self_heal_on_next_commit;
          quick "exhausted heals disable the view; repair revives it"
            disable_after_exhausted_heals_then_repair;
        ] );
      ( "refresh",
        [
          quick "a mid-drain failure is a perfect no-op"
            refresh_survives_mid_drain_failure;
        ] );
      ( "fast path",
        [ quick "untouched views skip maintenance" untouched_views_skip_maintenance ] );
      ("properties", property_tests);
    ]
