(* The observability pipeline end to end: Theorem 4.1 screening verdicts
   (Irrelevance.explain and the per-rule drop counts), the provenance
   commit record's JSON round-trip (property-tested), the always-on
   flight-recorder ring and its post-mortem dumps on aborted commits,
   OpenMetrics exposition conformance, the bench_diff comparison logic
   behind the CI regression gate, and the advisor's deterministic
   reservoir sample. *)

open Relalg
open Helpers
module Irrelevance = Ivm.Irrelevance
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module View = Ivm.View
module Delta = Ivm.Delta
module Advisor = Ivm.Advisor
module Fault = Resilience.Fault
module Flight = Resilience.Flight
open Condition.Formula.Dsl

let reset_obs () =
  Obs.Control.disable ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Provenance.reset ();
  Obs.Provenance.set_recording true;
  Advisor.reset_samples ()

(* ------------------------------------------------------------------ *)
(* Irrelevance.explain: Example 4.1 verdicts                           *)
(* ------------------------------------------------------------------ *)

(* u = project[A,D] select[A<10 && C>5 && B=C] (R x S), the paper's
   Example 4.1.  Insertions into R are screened per Theorem 4.1:
   (9,10) joins S(10,20) — relevant; (11,10) fails A<10 after
   substitution; (9,3) forces C=3 against C>5, a negative cycle in the
   difference-constraint graph. *)
let example_4_1 () =
  let db =
    db_of
      [
        ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 5; 10 ] ]);
        ("S", rel [ "C"; "D" ] [ [ 2; 10 ]; [ 10; 20 ] ]);
      ]
  in
  let mgr = Manager.create db in
  Manager.define_view mgr ~name:"u"
    Query.Expr.(
      project [ "A"; "D" ]
        (select
           ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
           (product (base "R") (base "S"))))

let rule_testable =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Irrelevance.rule_id r))
    ( = )

let explain_tests =
  [
    quick "rule ids are stable (check.sh and dumps grep for them)" (fun () ->
        Alcotest.(check (list string)) "ids"
          [
            "IVM011:invariant-unsat"; "IVM001:substituted-false";
            "IVM001:string-conflict"; "IVM001:negative-cycle";
          ]
          (List.map Irrelevance.rule_id Irrelevance.all_rules));
    quick "example 4.1: per-tuple verdicts name the refuting rule" (fun () ->
        let view = example_4_1 () in
        let screen = View.screen_for view ~alias:"R" in
        let explain row = Irrelevance.explain screen (Tuple.of_ints row) in
        Alcotest.(check (option rule_testable)) "R(9,10) relevant" None
          (explain [ 9; 10 ]);
        Alcotest.(check (option rule_testable)) "R(11,10): A<10 fails"
          (Some Irrelevance.Substituted_false)
          (explain [ 11; 10 ]);
        Alcotest.(check (option rule_testable)) "R(9,3): B=C vs C>5 cycles"
          (Some Irrelevance.Negative_cycle)
          (explain [ 9; 3 ]));
    quick "explain agrees with relevant" (fun () ->
        let view = example_4_1 () in
        let screen = View.screen_for view ~alias:"R" in
        List.iter
          (fun row ->
            let t = Tuple.of_ints row in
            Alcotest.(check bool)
              (Printf.sprintf "agreement on (%d,%d)" (List.nth row 0)
                 (List.nth row 1))
              (Irrelevance.relevant screen t)
              (Irrelevance.explain screen t = None))
          [ [ 9; 10 ]; [ 11; 10 ]; [ 9; 3 ]; [ 0; 0 ]; [ 5; 100 ] ]);
    quick "screen_delta_explain counts drops per rule" (fun () ->
        let view = example_4_1 () in
        let screen = View.screen_for view ~alias:"R" in
        let raw =
          Delta.of_lists
            (View.qualified_schema view ~alias:"R")
            ( [
                Tuple.of_ints [ 9; 10 ]; Tuple.of_ints [ 11; 10 ];
                Tuple.of_ints [ 9; 3 ];
              ],
              [] )
        in
        let _, (kept, dropped), rules =
          Irrelevance.screen_delta_explain screen raw
        in
        Alcotest.(check int) "kept" 1 kept;
        Alcotest.(check int) "dropped" 2 dropped;
        Alcotest.(check (option int)) "one substituted-false" (Some 1)
          (List.assoc_opt Irrelevance.Substituted_false rules);
        Alcotest.(check (option int)) "one negative-cycle" (Some 1)
          (List.assoc_opt Irrelevance.Negative_cycle rules);
        Alcotest.(check int) "counts cover all drops" dropped
          (List.fold_left (fun acc (_, n) -> acc + n) 0 rules));
  ]

(* ------------------------------------------------------------------ *)
(* Provenance commit records: JSON round-trip                          *)
(* ------------------------------------------------------------------ *)

(* Random commit records.  Strings mix quotes, backslashes and newlines
   to exercise the JSON escaper; predicted costs are quarter-integers so
   the printer's integral-float shortcut (Float 3.0 prints as "3" and
   reparses as Int, which the parser must accept back as a float) and the
   fractional path are both hit. *)
let commit_gen =
  let open QCheck.Gen in
  let ( let* ) = ( >>= ) in
  let name =
    oneofl [ "v"; "orders"; "a\\b"; "say \"hi\""; "line\nbreak"; "" ]
  in
  let rule_id =
    oneofl
      [
        "IVM011:invariant-unsat"; "IVM001:substituted-false";
        "IVM001:negative-cycle"; "IVM051:keyed-drain";
      ]
  in
  let cost = map (fun k -> float_of_int k /. 4.0) (int_range 0 4000) in
  let advisor =
    let* predicted_differential = cost in
    let* predicted_recompute = cost in
    let* predicted_self_maintain = option cost in
    let* chosen = oneofl [ "differential"; "recompute"; "self-maintain" ] in
    return
      {
        Obs.Provenance.predicted_differential; predicted_recompute;
        predicted_self_maintain; chosen;
      }
  in
  let view =
    let* view = name in
    let* strategy = oneofl [ "differential"; "recompute"; "self_maintain" ] in
    let* fallback = option name in
    let* advisor = option advisor in
    let* screen_rules = list_size (int_range 0 3) (pair rule_id (int_range 1 99)) in
    let* screened_kept = int_range 0 1000 in
    let* screened_out = int_range 0 1000 in
    let* rows_evaluated = int_range 0 1000 in
    let* delta_inserts = int_range 0 100 in
    let* delta_deletes = int_range 0 100 in
    let* groups_touched = int_range 0 100 in
    let* rescans = int_range 0 20 in
    let* screen_ns = int_range 0 1_000_000 in
    let* eval_ns = int_range 0 1_000_000 in
    let* apply_ns = int_range 0 1_000_000 in
    let* total_ns = int_range 0 10_000_000 in
    return
      {
        Obs.Provenance.view; strategy; fallback; advisor; screen_rules;
        screened_kept; screened_out; rows_evaluated; delta_inserts;
        delta_deletes; groups_touched; rescans; screen_ns; eval_ns; apply_ns;
        total_ns;
      }
  in
  let event =
    let* phase = oneofl [ "maintain"; "apply-deletes"; "recompute" ] in
    let* kind = oneofl [ "fault"; "rollback"; "quarantine"; "abort" ] in
    let* detail = name in
    return { Obs.Provenance.phase; kind; detail }
  in
  let* seq = int_range 0 10_000 in
  let* kind = oneofl [ "commit"; "refresh" ] in
  let* outcome = oneofl [ "committed"; "aborted"; "degraded" ] in
  let* failing_phase = option (oneofl [ "maintain"; "apply-inserts" ]) in
  let* domains = int_range 1 8 in
  let* net =
    list_size (int_range 0 3)
      (pair name (pair (int_range 0 50) (int_range 0 50)))
  in
  let* views = list_size (int_range 0 3) view in
  let* events = list_size (int_range 0 3) event in
  let* journal_bytes = option (int_range 0 100_000) in
  let* total_ns = int_range 0 10_000_000 in
  return
    {
      Obs.Provenance.seq; kind; outcome; failing_phase; domains; net; views;
      events; journal_bytes; total_ns;
    }

let commit_print c = Obs.Json.to_string (Obs.Provenance.commit_to_json c)

let roundtrip_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500
         ~name:"commit record survives to_json |> print |> parse |> of_json"
         (QCheck.make ~print:commit_print commit_gen)
         (fun c ->
           let printed = commit_print c in
           match Obs.Json.parse printed with
           | Error m -> QCheck.Test.fail_report m
           | Ok doc -> (
             match Obs.Provenance.commit_of_json doc with
             | Error m -> QCheck.Test.fail_report m
             | Ok c' -> c' = c)));
    quick "of_json names the offending field" (fun () ->
        match
          Obs.Provenance.commit_of_json
            (Obs.Json.Obj [ ("seq", Obs.Json.Str "one") ])
        with
        | Ok _ -> Alcotest.fail "accepted a malformed record"
        | Error m ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions seq: %s" m)
            true
            (String.length m > 0
            && (let rec has i =
                  i + 3 <= String.length m
                  && (String.sub m i 3 = "seq" || has (i + 1))
                in
                has 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Flight recorder: ring bounds and the post-mortem dump               *)
(* ------------------------------------------------------------------ *)

let dummy_commit seq =
  {
    Obs.Provenance.seq;
    kind = "commit";
    outcome = "committed";
    failing_phase = None;
    domains = 1;
    net = [ ("R", (1, 0)) ];
    views = [];
    events = [];
    journal_bytes = None;
    total_ns = 42;
  }

(* A scratch directory for dump files; [Filename.temp_file] reserves a
   unique name, which then becomes the directory. *)
let temp_dir () =
  let path = Filename.temp_file "ivm-flight-test" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let recorder_tests =
  [
    quick "ring keeps the newest capacity records, counts all" (fun () ->
        reset_obs ();
        let capacity = Obs.Provenance.recorder_capacity in
        for seq = 1 to capacity + 10 do
          Obs.Provenance.record (dummy_commit seq)
        done;
        let recent = Obs.Provenance.recent () in
        Alcotest.(check int) "bounded" capacity (List.length recent);
        Alcotest.(check int) "lifetime count" (capacity + 10)
          (Obs.Provenance.recorded ());
        Alcotest.(check int) "oldest survivor" 11
          (List.hd recent).Obs.Provenance.seq;
        Alcotest.(check int) "newest last" (capacity + 10)
          (List.nth recent (capacity - 1)).Obs.Provenance.seq;
        reset_obs ());
    quick "recording off: ring stays empty, nothing counted" (fun () ->
        reset_obs ();
        Obs.Provenance.set_recording false;
        Obs.Provenance.record (dummy_commit 1);
        Alcotest.(check int) "empty" 0 (List.length (Obs.Provenance.recent ()));
        Alcotest.(check int) "uncounted" 0 (Obs.Provenance.recorded ());
        reset_obs ());
    quick "aborted commit dumps the ring; last record names the phase"
      (fun () ->
        reset_obs ();
        let dir = temp_dir () in
        Flight.set_dir (Some dir);
        Flight.set_limit 8;
        Fun.protect
          ~finally:(fun () ->
            Flight.set_dir None;
            Fault.disable ();
            rm_rf dir)
          (fun () ->
            let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ] ]) ] in
            let mgr = Manager.create ~domains:1 db in
            ignore
              (Manager.define_view mgr ~name:"over_r"
                 Query.Expr.(project [ "A" ] (base "R")));
            (* One healthy commit first, so the dump shows history
               leading up to the failure. *)
            ignore
              (Manager.commit mgr
                 [ Transaction.insert "R" (Tuple.of_ints [ 2; 3 ]) ]);
            Fault.configure ~only:[ "apply" ] ~rate:1.0 ();
            (match
               Manager.commit mgr
                 [ Transaction.insert "R" (Tuple.of_ints [ 4; 5 ]) ]
             with
            | _ -> Alcotest.fail "the injected fault must abort the commit"
            | exception Manager.Commit_failed { phase; _ } ->
              Alcotest.(check string) "failing phase" "apply-deletes" phase);
            Fault.disable ();
            let path =
              match Flight.last_dump () with
              | Some p -> p
              | None -> Alcotest.fail "no flight dump was written"
            in
            Alcotest.(check bool) "dump file exists" true (Sys.file_exists path);
            let doc =
              match
                Obs.Json.parse
                  (In_channel.with_open_bin path In_channel.input_all)
              with
              | Ok doc -> doc
              | Error m -> Alcotest.fail m
            in
            (match Obs.Json.member "reason" doc with
            | Some (Obs.Json.Str reason) ->
              Alcotest.(check string) "reason names the phase"
                "commit-failed-apply-deletes" reason
            | _ -> Alcotest.fail "dump has no reason");
            let records =
              match Obs.Json.member "records" doc with
              | Some (Obs.Json.List rs) -> rs
              | _ -> Alcotest.fail "dump has no records array"
            in
            Alcotest.(check int) "healthy commit plus the abort" 2
              (List.length records);
            match
              Obs.Provenance.commit_of_json (List.nth records 1)
            with
            | Error m -> Alcotest.fail m
            | Ok last ->
              Alcotest.(check string) "outcome" "aborted"
                last.Obs.Provenance.outcome;
              Alcotest.(check (option string)) "failing phase recorded"
                (Some "apply-deletes") last.Obs.Provenance.failing_phase);
        reset_obs ());
  ]

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let exposition_lines text = String.split_on_char '\n' text

let sample_value line =
  match String.rindex_opt line ' ' with
  | None -> Alcotest.fail ("unparseable sample line: " ^ line)
  | Some i ->
    int_of_string (String.sub line (i + 1) (String.length line - i - 1))

let openmetrics_tests =
  [
    quick "counters, gauges, escaping and the EOF terminator" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        Obs.Metrics.add "ivm_test_total"
          ~labels:[ ("view", "a\\b\"c\nd") ]
          3;
        Obs.Metrics.set_gauge "ivm_gauge" 2.5;
        let text = Obs.Metrics.to_openmetrics () in
        reset_obs ();
        Alcotest.(check bool) "ends with # EOF" true
          (String.ends_with ~suffix:"# EOF\n" text);
        let has line = List.mem line (exposition_lines text) in
        (* The counter family strips _total; the sample keeps it, with
           backslash, quote and newline escaped per the spec. *)
        Alcotest.(check bool) "counter TYPE line" true
          (has "# TYPE ivm_test counter");
        Alcotest.(check bool) "escaped counter sample" true
          (has "ivm_test_total{view=\"a\\\\b\\\"c\\nd\"} 3");
        Alcotest.(check bool) "gauge TYPE line" true
          (has "# TYPE ivm_gauge gauge");
        Alcotest.(check bool) "gauge sample" true (has "ivm_gauge 2.5"));
    quick "histograms: cumulative buckets, +Inf = count, exact sum"
      (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        (* 90 observations in bucket 3 (le 15) and 10 in bucket 13
           (le 16383). *)
        for _ = 1 to 90 do
          Obs.Metrics.observe "ivm_hist" 10
        done;
        for _ = 1 to 10 do
          Obs.Metrics.observe "ivm_hist" 10_000
        done;
        let text = Obs.Metrics.to_openmetrics () in
        reset_obs ();
        let lines = exposition_lines text in
        Alcotest.(check bool) "TYPE line" true
          (List.mem "# TYPE ivm_hist histogram" lines);
        let buckets =
          List.filter
            (String.starts_with ~prefix:"ivm_hist_bucket{")
            lines
        in
        let values = List.map sample_value buckets in
        Alcotest.(check (list int)) "cumulative series" [ 90; 100; 100 ]
          values;
        Alcotest.(check bool) "monotone" true
          (List.sort compare values = values);
        let last_bucket = List.nth buckets (List.length buckets - 1) in
        Alcotest.(check bool) "+Inf closes the series" true
          (String.starts_with ~prefix:"ivm_hist_bucket{le=\"+Inf\"}"
             last_bucket);
        let find prefix =
          sample_value
            (List.find (String.starts_with ~prefix) lines)
        in
        Alcotest.(check int) "+Inf equals _count" (find "ivm_hist_count")
          (sample_value last_bucket);
        Alcotest.(check int) "exact sum" 100_900 (find "ivm_hist_sum"));
  ]

(* ------------------------------------------------------------------ *)
(* Snapshot diff: the bench_diff regression gate                       *)
(* ------------------------------------------------------------------ *)

(* A miniature but complete BENCH_IVM.json covering every field class
   the gate compares. *)
let sample_snapshot () =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 5);
      ( "views",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ("name", Obs.Json.Str "v");
                ("commits", Obs.Json.Int 100);
                ("screened_kept", Obs.Json.Int 10);
                ("screened_out", Obs.Json.Int 90);
                ("p50_ns", Obs.Json.Int 1_000);
                ("p95_ns", Obs.Json.Int 2_000);
              ];
          ] );
      ( "advisor",
        Obs.Json.Obj
          [
            ("pairs", Obs.Json.List [ Obs.Json.Obj [] ]);
            ("calibration", Obs.Json.Obj [ ("samples", Obs.Json.Int 50) ]);
          ] );
      ( "parallel",
        Obs.Json.Obj
          [
            ("cores_available", Obs.Json.Int 8);
            ("speedup_at_2", Obs.Json.Float 1.5);
            ("speedup_at_4", Obs.Json.Float 2.5);
            ("speedup_at_8", Obs.Json.Float 3.0);
          ] );
      ( "resilience",
        Obs.Json.Obj [ ("journal_overhead_pct", Obs.Json.Float 1.0) ] );
      ( "self_maintenance",
        Obs.Json.Obj
          [
            ("commits", Obs.Json.Int 60);
            ("self_maintained_commits", Obs.Json.Int 60);
            ("eval_reduction", Obs.Json.Float 8.0);
          ] );
      ( "aggregate",
        Obs.Json.Obj
          [
            ("commits", Obs.Json.Int 60);
            ("groups_touched", Obs.Json.Int 700);
            ("rescans", Obs.Json.Int 17);
            ("speedup", Obs.Json.Float 25.0);
          ] );
    ]

let diff_tests =
  let open Obs.Snapshot_diff in
  [
    quick "identical snapshots pass" (fun () ->
        let s = sample_snapshot () in
        let o = compare_snapshots default ~baseline:s ~current:s in
        Alcotest.(check (list string)) "no regressions" [] o.regressions;
        Alcotest.(check bool) "fields were compared" true (o.compared > 5));
    quick "degraded snapshot fails on every deterministic class" (fun () ->
        let s = sample_snapshot () in
        let o = compare_snapshots default ~baseline:s ~current:(degrade s) in
        let caught fragment =
          Alcotest.(check bool)
            (Printf.sprintf "a regression mentions %S" fragment)
            true
            (List.exists
               (fun r ->
                 let rec has i =
                   i + String.length fragment <= String.length r
                   && (String.sub r i (String.length fragment) = fragment
                      || has (i + 1))
                 in
                 has 0)
               o.regressions)
        in
        caught "commits";
        caught "screening ratio";
        caught "advisor.pairs";
        caught "coverage broke";
        caught "eval_reduction";
        caught "aggregate.groups_touched";
        caught "aggregate.speedup");
    quick "timing drift is a note by default, a regression when checked"
      (fun () ->
        let s = sample_snapshot () in
        let d = degrade s in
        let unchecked = compare_snapshots default ~baseline:s ~current:d in
        Alcotest.(check bool) "p50 drift noted" true
          (List.exists
             (fun n -> String.starts_with ~prefix:"views.v.p50_ns" n)
             unchecked.notes);
        let checked =
          compare_snapshots
            { default with check_timing = true }
            ~baseline:s ~current:d
        in
        Alcotest.(check bool) "p50 drift gates under check_timing" true
          (List.exists
             (fun r -> String.starts_with ~prefix:"views.v.p50_ns" r)
             checked.regressions));
  ]

(* ------------------------------------------------------------------ *)
(* Advisor reservoir sample                                            *)
(* ------------------------------------------------------------------ *)

let record_samples n =
  for k = 1 to n do
    let cost = float_of_int (100 * k) in
    Advisor.record ~view:"v" ~used:Advisor.Differential
      ~actual_ns:(700 * k)
      {
        Advisor.differential_cost = cost;
        recompute_cost = cost *. 10.0;
        self_maintain_cost = None;
        choose = Advisor.Differential;
        choose_differential = true;
      }
  done

let reservoir_tests =
  [
    quick "bounded at k and deterministic for a fixed seed" (fun () ->
        reset_obs ();
        record_samples 500;
        let once () = Obs.Json.to_string (Advisor.reservoir_json ()) in
        let first = once () in
        Alcotest.(check string) "same workload, same sample" first (once ());
        (match Advisor.reservoir_json () with
        | Obs.Json.List pairs ->
          Alcotest.(check int) "capped at the default k" 64 (List.length pairs)
        | _ -> Alcotest.fail "reservoir is not a JSON array");
        (match Advisor.reservoir_json ~k:10 () with
        | Obs.Json.List pairs ->
          Alcotest.(check int) "custom k" 10 (List.length pairs)
        | _ -> Alcotest.fail "reservoir is not a JSON array");
        reset_obs ());
    quick "fewer samples than k: all of them, in order" (fun () ->
        reset_obs ();
        record_samples 3;
        (match Advisor.reservoir_json () with
        | Obs.Json.List pairs ->
          Alcotest.(check int) "all three" 3 (List.length pairs)
        | _ -> Alcotest.fail "reservoir is not a JSON array");
        reset_obs ());
  ]

let () =
  Alcotest.run "provenance"
    [
      ("explain (theorem 4.1 rules)", explain_tests);
      ("commit json round-trip", roundtrip_tests);
      ("flight recorder", recorder_tests);
      ("openmetrics", openmetrics_tests);
      ("snapshot diff", diff_tests);
      ("advisor reservoir", reservoir_tests);
    ]
