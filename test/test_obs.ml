(* Telemetry subsystem: histogram bucketing and percentiles, span
   nesting, JSON round-trips, advisor calibration, and an integration
   test asserting that one commit over the Example 5.5 SPJ view produces
   spans for every Algorithm 5.1 phase with metrics that agree with
   Irrelevance.screen_delta_stats. *)

open Relalg
open Helpers
module Delta = Ivm.Delta
module Irrelevance = Ivm.Irrelevance
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Advisor = Ivm.Advisor
open Condition.Formula.Dsl

let reset_obs () =
  Obs.Control.disable ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Clock.set_source None;
  Advisor.reset_samples ()

(* ------------------------------------------------------------------ *)
(* Metrics: bucketing and percentiles                                 *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    quick "log2 bucketing" (fun () ->
        List.iter
          (fun (v, bucket) ->
            Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) bucket
              (Obs.Metrics.bucket_of v))
          [
            (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
            (1023, 9); (1024, 10); (max_int, 61);
          ]);
    quick "bucket estimates are geometric midpoints" (fun () ->
        Alcotest.(check (float 1e-9)) "bucket 0" 1.0 (Obs.Metrics.bucket_estimate 0);
        Alcotest.(check (float 1e-9)) "bucket 9" 768.0 (Obs.Metrics.bucket_estimate 9);
        Alcotest.(check (float 1e-9)) "bucket 10" 1536.0 (Obs.Metrics.bucket_estimate 10));
    quick "single-bucket histogram: all percentiles at the midpoint" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        (* 100 observations near 1000 ns all land in bucket 9 = [512, 1024). *)
        for i = 1 to 100 do
          Obs.Metrics.observe "h" (900 + i)
        done;
        let s = Option.get (Obs.Metrics.histogram "h") in
        Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
        Alcotest.(check (float 1e-9)) "p50" 768.0 s.Obs.Metrics.p50;
        Alcotest.(check (float 1e-9)) "p95" 768.0 s.Obs.Metrics.p95;
        Alcotest.(check (float 1e-9)) "p99" 768.0 s.Obs.Metrics.p99;
        Alcotest.(check int) "max exact" 1000 s.Obs.Metrics.max;
        Alcotest.(check int) "min exact" 901 s.Obs.Metrics.min;
        reset_obs ());
    quick "two-bucket histogram: percentiles split at the rank" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        (* 90 fast observations (bucket 3 = [8,16)) and 10 slow ones
           (bucket 13 = [8192,16384)): p50 sits in the fast bucket, p95
           and p99 in the slow one. *)
        for _ = 1 to 90 do
          Obs.Metrics.observe "h" 10
        done;
        for _ = 1 to 10 do
          Obs.Metrics.observe "h" 10_000
        done;
        let s = Option.get (Obs.Metrics.histogram "h") in
        Alcotest.(check (float 1e-9)) "p50" 12.0 s.Obs.Metrics.p50;
        Alcotest.(check (float 1e-9)) "p90" 12.0 s.Obs.Metrics.p90;
        Alcotest.(check (float 1e-9)) "p95" 12288.0 s.Obs.Metrics.p95;
        Alcotest.(check (float 1e-9)) "p99" 12288.0 s.Obs.Metrics.p99;
        reset_obs ());
    quick "counters and gauges, label canonicalization" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        Obs.Metrics.add "c" ~labels:[ ("b", "2"); ("a", "1") ] 3;
        Obs.Metrics.add "c" ~labels:[ ("a", "1"); ("b", "2") ] 4;
        Alcotest.(check int) "label order irrelevant" 7
          (Obs.Metrics.counter_value "c" ~labels:[ ("b", "2"); ("a", "1") ]);
        Obs.Metrics.set_gauge "g" 1.5;
        Obs.Metrics.set_gauge "g" 2.5;
        Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5)
          (Obs.Metrics.gauge_value "g");
        reset_obs ());
    quick "disabled registry ignores writes" (fun () ->
        reset_obs ();
        Obs.Metrics.add "c" 5;
        Obs.Metrics.observe "h" 100;
        Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value "c");
        Alcotest.(check bool) "histogram absent" true
          (Obs.Metrics.histogram "h" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Spans: nesting, args-after-body, disabled mode                     *)
(* ------------------------------------------------------------------ *)

let span_tests =
  [
    quick "nesting: depths and containment" (fun () ->
        reset_obs ();
        (* Deterministic clock: every read advances 10 ns. *)
        let ticks = ref 0 in
        Obs.Clock.set_source
          (Some
             (fun () ->
               ticks := !ticks + 10;
               !ticks));
        Obs.Control.enable ();
        Obs.Span.with_span "outer" (fun () ->
            Obs.Span.with_span "inner" (fun () -> ()));
        let spans = Obs.Span.drain () in
        reset_obs ();
        Alcotest.(check int) "two spans" 2 (List.length spans);
        let find name = List.find (fun s -> s.Obs.Span.name = name) spans in
        let outer = find "outer" and inner = find "inner" in
        Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
        Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
        Alcotest.(check bool) "inner starts after outer" true
          (inner.Obs.Span.start_ns >= outer.Obs.Span.start_ns);
        Alcotest.(check bool) "inner contained in outer" true
          (inner.Obs.Span.start_ns + inner.Obs.Span.dur_ns
          <= outer.Obs.Span.start_ns + outer.Obs.Span.dur_ns);
        Alcotest.(check bool) "children drain before parents" true
          (List.map (fun s -> s.Obs.Span.name) spans = [ "inner"; "outer" ]));
    quick "args thunk reads results computed inside the body" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        let result = ref 0 in
        Obs.Span.with_span "s"
          ~args:(fun () -> [ ("result", Obs.Json.Int !result) ])
          (fun () -> result := 41);
        let spans = Obs.Span.drain () in
        reset_obs ();
        Alcotest.(check bool) "arg saw the body's write" true
          ((List.hd spans).Obs.Span.args = [ ("result", Obs.Json.Int 41) ]));
    quick "disabled tracer records nothing and still runs the body" (fun () ->
        reset_obs ();
        let ran = ref false in
        let v = Obs.Span.with_span "s" (fun () -> ran := true; 7) in
        Alcotest.(check int) "value" 7 v;
        Alcotest.(check bool) "ran" true !ran;
        Alcotest.(check int) "no spans" 0 (Obs.Span.length ()));
    quick "exceptions close the span" (fun () ->
        reset_obs ();
        Obs.Control.enable ();
        (try Obs.Span.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        let after = Obs.Span.with_span "after" (fun () -> ()) in
        ignore after;
        let spans = Obs.Span.drain () in
        reset_obs ();
        Alcotest.(check (list string)) "both recorded at depth 0"
          [ "boom"; "after" ]
          (List.map (fun s -> s.Obs.Span.name) spans);
        List.iter
          (fun s -> Alcotest.(check int) "depth" 0 s.Obs.Span.depth)
          spans);
  ]

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let json_tests =
  let roundtrip t = Obs.Json.parse (Obs.Json.to_string t) in
  [
    quick "round-trip of a nested document" (fun () ->
        let doc =
          Obs.Json.Obj
            [
              ("s", Obs.Json.Str "a\"b\\c\nd");
              ("i", Obs.Json.Int (-42));
              ("x", Obs.Json.Float 1.5);
              ("b", Obs.Json.Bool true);
              ("n", Obs.Json.Null);
              ( "l",
                Obs.Json.List
                  [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.Str "v") ] ]
              );
              ("e", Obs.Json.Obj []);
            ]
        in
        Alcotest.(check bool) "parse (print doc) = doc" true
          (roundtrip doc = Ok doc));
    quick "integral floats print without exponent and reparse" (fun () ->
        Alcotest.(check string) "print" "{\"ts\":123456789}"
          (Obs.Json.to_string (Obs.Json.Obj [ ("ts", Obs.Json.Float 123456789.0) ])));
    quick "parse errors carry an offset" (fun () ->
        match Obs.Json.parse "{\"a\": }" with
        | Ok _ -> Alcotest.fail "accepted malformed JSON"
        | Error m ->
          Alcotest.(check bool) "mentions offset" true
            (contains_substring m "offset"));
    quick "unicode escapes decode to UTF-8" (fun () ->
        Alcotest.(check bool) "snowman" true
          (Obs.Json.parse "\"\\u2603\"" = Ok (Obs.Json.Str "\xe2\x98\x83")));
  ]

(* Random JSON documents for the round-trip property.  Floats are drawn
   as k + 0.5: exact in binary and never integral, so neither the
   printer's integral-float shortcut (which re-parses as Int) nor the
   %.12g rendering can change the value.  Strings mix quotes,
   backslashes, control characters and plain text to exercise every
   escaping path. *)
let json_gen =
  let open QCheck.Gen in
  let json_char = oneofl [ 'a'; 'z'; ' '; '"'; '\\'; '\n'; '\t'; '\x01'; '/' ] in
  let json_string = string_size ~gen:json_char (int_range 0 8) in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (int_range (-1_000_000) 1_000_000);
        map
          (fun k -> Obs.Json.Float (float_of_int k +. 0.5))
          (int_range (-1000) 1000);
        map (fun s -> Obs.Json.Str s) json_string;
      ]
  in
  let rec tree depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map
              (fun l -> Obs.Json.List l)
              (list_size (int_range 0 4) (tree (depth - 1))) );
          ( 1,
            map
              (fun kvs -> Obs.Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair json_string (tree (depth - 1)))) );
        ]
  in
  tree 3

let json_property_tests =
  let property name law =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name
         (QCheck.make ~print:Obs.Json.to_string json_gen)
         law)
  in
  [
    property "print then parse is the identity" (fun doc ->
        Obs.Json.parse (Obs.Json.to_string doc) = Ok doc);
    property "printing is stable across one round-trip" (fun doc ->
        let printed = Obs.Json.to_string doc in
        match Obs.Json.parse printed with
        | Error m -> QCheck.Test.fail_report m
        | Ok reparsed -> Obs.Json.to_string reparsed = printed);
  ]

(* ------------------------------------------------------------------ *)
(* Advisor calibration                                                *)
(* ------------------------------------------------------------------ *)

let advisor_tests =
  [
    quick "perfectly linear model calibrates with zero error" (fun () ->
        reset_obs ();
        let decision cost =
          {
            Advisor.differential_cost = cost;
            recompute_cost = cost *. 10.0;
            self_maintain_cost = None;
            choose = Advisor.Differential;
            choose_differential = true;
          }
        in
        List.iter
          (fun cost ->
            Advisor.record ~view:"v" ~used:Advisor.Differential
              ~actual_ns:(int_of_float (cost *. 7.0))
              (decision cost))
          [ 100.0; 200.0; 400.0 ];
        let c = Advisor.calibrate () in
        Alcotest.(check int) "samples" 3 c.Advisor.n_samples;
        Alcotest.(check int) "agreements" 3 c.Advisor.agreements;
        Alcotest.(check (option (float 1e-6))) "scale = 7 ns/unit" (Some 7.0)
          c.Advisor.scale_differential;
        Alcotest.(check (option (float 1e-6))) "no recompute samples" None
          c.Advisor.scale_recompute;
        Alcotest.(check (option (float 1e-6))) "zero error" (Some 0.0)
          c.Advisor.mean_abs_rel_error;
        reset_obs ());
    quick "disagreements are counted" (fun () ->
        reset_obs ();
        let d =
          {
            Advisor.differential_cost = 1.0;
            recompute_cost = 2.0;
            self_maintain_cost = None;
            choose = Advisor.Differential;
            choose_differential = true;
          }
        in
        Advisor.record ~view:"v" ~used:Advisor.Recompute ~actual_ns:10 d;
        Advisor.record ~view:"v" ~used:Advisor.Differential ~actual_ns:10 d;
        let c = Advisor.calibrate () in
        Alcotest.(check int) "samples" 2 c.Advisor.n_samples;
        Alcotest.(check int) "agreements" 1 c.Advisor.agreements;
        reset_obs ());
  ]

(* ------------------------------------------------------------------ *)
(* Integration: Example 5.5 commit under full telemetry               *)
(* ------------------------------------------------------------------ *)

(* V = pi_A(sigma_{C>10}(R |x| S)) over R(A,B), S(B,C) — the paper's
   Example 5.5 shape. *)
let example_5_5 () =
  let db =
    db_of
      [
        ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ]);
        ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 15 ] ]);
      ]
  in
  let mgr = Manager.create db in
  let view =
    Manager.define_view mgr ~name:"v"
      Query.Expr.(
        project [ "A" ] (select (v "C" >% i 10) (join (base "R") (base "S"))))
  in
  (db, mgr, view)

let integration_tests =
  [
    quick "one commit produces spans for every Algorithm 5.1 phase" (fun () ->
        reset_obs ();
        let _db, mgr, _view = example_5_5 () in
        Obs.Control.enable ();
        (* (30, 5): C = 5 fails C > 10 invariantly — provably irrelevant.
           (20, 25): joins (2, 20) with C = 25 > 10 — relevant. *)
        let reports =
          Manager.commit mgr
            [
              Transaction.insert "S" (Tuple.of_ints [ 30; 5 ]);
              Transaction.insert "S" (Tuple.of_ints [ 20; 25 ]);
            ]
        in
        Obs.Control.disable ();
        let spans = Obs.Span.drain () in
        let names = List.map (fun s -> s.Obs.Span.name) spans in
        List.iter
          (fun phase ->
            Alcotest.(check bool)
              (Printf.sprintf "span %S present" phase)
              true (List.mem phase names))
          [ "commit"; "net"; "screen"; "eval"; "row"; "apply" ];
        (* The report agrees with the trace: one screened-out tuple, and
           the view gained A = 2. *)
        let r = List.hd reports in
        Alcotest.(check int) "screened out" 1 r.Maintenance.screened_out;
        Alcotest.(check int) "screened kept" 1 r.Maintenance.screened_kept;
        Alcotest.(check int) "view inserts" 1 r.Maintenance.delta_inserts;
        Alcotest.(check bool) "timing measured" true (r.Maintenance.total_ns > 0);
        Alcotest.(check bool) "advisor attached" true
          (r.Maintenance.advisor <> None);
        reset_obs ());
    quick "screen metrics match Irrelevance.screen_delta_stats" (fun () ->
        reset_obs ();
        let _db, mgr, view = example_5_5 () in
        Obs.Control.enable ();
        ignore
          (Manager.commit mgr
             [
               Transaction.insert "S" (Tuple.of_ints [ 30; 5 ]);
               Transaction.insert "S" (Tuple.of_ints [ 20; 25 ]);
             ]);
        Obs.Control.disable ();
        let dropped = Obs.Metrics.counter_value "ivm_screen_dropped_total" in
        let kept = Obs.Metrics.counter_value "ivm_screen_kept_total" in
        (* Replay the same screen directly (telemetry off, so the direct
           call does not double-count). *)
        let qualified = View.qualified_schema view ~alias:"S" in
        let raw =
          Delta.of_lists qualified
            ([ Tuple.of_ints [ 30; 5 ]; Tuple.of_ints [ 20; 25 ] ], [])
        in
        let _, (direct_kept, direct_dropped) =
          Irrelevance.screen_delta_stats (View.screen_for view ~alias:"S") raw
        in
        Alcotest.(check int) "dropped agrees" direct_dropped dropped;
        Alcotest.(check int) "kept agrees" direct_kept kept;
        reset_obs ());
    quick "manager records the advisor even under a forced strategy" (fun () ->
        reset_obs ();
        let _db, mgr, _view = example_5_5 () in
        (* Default options force Differential; the decision must be
           recorded anyway so the cost model gathers calibration data. *)
        ignore
          (Manager.commit mgr
             [ Transaction.insert "S" (Tuple.of_ints [ 20; 25 ]) ]);
        let stats = Manager.stats mgr "v" in
        Alcotest.(check int) "decision recorded" 1
          stats.Manager.advisor_decisions;
        Alcotest.(check bool) "maintenance timed" true
          (stats.Manager.maintenance_ns > 0);
        Alcotest.(check bool) "predicted costs accumulated" true
          (stats.Manager.predicted_recompute_cost > 0.0);
        Alcotest.(check int) "calibration sample taken" 1
          (Advisor.calibrate ()).Advisor.n_samples;
        reset_obs ());
    quick "untouched views take no calibration sample" (fun () ->
        reset_obs ();
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]);
              ("T", rel [ "E"; "F" ] [ [ 7; 8 ] ]);
            ]
        in
        let mgr = Manager.create db in
        ignore
          (Manager.define_view mgr ~name:"over_r"
             Query.Expr.(project [ "A" ] (base "R")));
        ignore
          (Manager.commit mgr
             [ Transaction.insert "T" (Tuple.of_ints [ 9; 9 ]) ]);
        Alcotest.(check int) "no sample for an untouched view" 0
          (Advisor.calibrate ()).Advisor.n_samples;
        reset_obs ());
    quick "chrome trace export is valid and carries the phases" (fun () ->
        reset_obs ();
        let _db, mgr, _view = example_5_5 () in
        Obs.Control.enable ();
        ignore
          (Manager.commit mgr
             [ Transaction.insert "S" (Tuple.of_ints [ 20; 25 ]) ]);
        Obs.Control.disable ();
        let json = Obs.Trace_export.to_json (Obs.Span.drain ()) in
        reset_obs ();
        (* Round-trip through the parser, as tools/validate_snapshot
           does. *)
        match Obs.Json.parse (Obs.Json.to_string json) with
        | Error m -> Alcotest.fail m
        | Ok doc ->
          let events =
            match Obs.Json.member "traceEvents" doc with
            | Some (Obs.Json.List events) -> events
            | _ -> Alcotest.fail "no traceEvents"
          in
          Alcotest.(check bool) "non-empty" true (events <> []);
          let names =
            List.filter_map
              (fun e ->
                match Obs.Json.member "name" e with
                | Some (Obs.Json.Str n) -> Some n
                | _ -> None)
              events
          in
          List.iter
            (fun phase ->
              Alcotest.(check bool) (phase ^ " present") true
                (List.mem phase names))
            [ "net"; "screen"; "row"; "apply" ]);
  ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("spans", span_tests);
      ("json", json_tests);
      ("json round-trip properties", json_property_tests);
      ("advisor calibration", advisor_tests);
      ("integration (example 5.5)", integration_tests);
    ]
