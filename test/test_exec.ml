(* Unit tests for the lib/exec domain pool: inline fallback, helping
   await, exception transparency, idempotent shutdown, the shared
   registry. *)

module Pool = Exec.Pool

let quick name f = Alcotest.test_case name `Quick f

let test_map_list () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "order preserved"
        (List.map (fun x -> x * x) xs)
        (Pool.map_list pool (fun x -> x * x) xs))

let test_sequential_fallback () =
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size pool);
  let ran_on = ref (-1) in
  let fut =
    Pool.submit pool (fun () ->
        ran_on := (Domain.self () :> int);
        7)
  in
  Alcotest.(check int)
    "ran inline in the caller before await"
    ((Domain.self () :> int))
    !ran_on;
  Alcotest.(check int) "value" 7 (Pool.await fut);
  Pool.shutdown pool

let test_exception_does_not_wedge () =
  let pool = Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let bad = Pool.submit pool (fun () -> failwith "boom") in
      let good = Pool.submit pool (fun () -> 41) in
      (match Pool.await bad with
      | _ -> Alcotest.fail "await of a failed task must raise"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      Alcotest.(check int) "sibling task unaffected" 41 (Pool.await good);
      Alcotest.(check (list int))
        "pool still runs new work after a task raised" [ 2; 3; 4 ]
        (Pool.map_list pool (fun x -> x + 1) [ 1; 2; 3 ]))

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  let futures = List.init 20 (fun i -> Pool.submit pool (fun () -> i * 2)) in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Queued futures completed during the shutdown drain. *)
  List.iteri
    (fun i future ->
      Alcotest.(check int) "drained on shutdown" (i * 2) (Pool.await future))
    futures;
  Alcotest.(check int)
    "submissions after shutdown run inline" 9
    (Pool.await (Pool.submit pool (fun () -> 9)))

let test_nested_submission () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let total =
        Pool.await
          (Pool.submit pool (fun () ->
               List.fold_left ( + ) 0
                 (Pool.map_list pool (fun x -> x * 10) [ 1; 2; 3 ])))
      in
      Alcotest.(check int) "nested map_list on the same pool" 60 total)

let test_shared_registry () =
  let p1 = Pool.shared ~domains:3 in
  let p2 = Pool.shared ~domains:3 in
  Alcotest.(check bool) "one pool per size" true (p1 == p2);
  Alcotest.(check int) "size" 3 (Pool.size p1)

let test_map_list_results () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let results =
        Pool.map_list_results pool
          (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x * 10)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      let describe = function
        | Ok v -> Printf.sprintf "ok %d" v
        | Error (Failure m, _) -> "fail " ^ m
        | Error _ -> "other"
      in
      Alcotest.(check (list string))
        "every task resolves in order, failures as Error"
        [ "ok 10"; "ok 20"; "fail 3"; "ok 40"; "ok 50"; "fail 6" ]
        (List.map describe results);
      (* A failing task must not abandon its siblings or the pool. *)
      Alcotest.(check (list int))
        "pool still runs new work" [ 2; 4 ]
        (Pool.map_list pool (fun x -> x * 2) [ 1; 2 ]))

let test_map_list_results_inline () =
  let pool = Pool.create ~domains:1 () in
  let backtrace_flag = Printexc.backtrace_status () in
  Fun.protect
    ~finally:(fun () ->
      Printexc.record_backtrace backtrace_flag;
      Pool.shutdown pool)
    (fun () ->
      Printexc.record_backtrace true;
      match Pool.map_list_results pool (fun x -> 100 / x) [ 2; 0 ] with
      | [ Ok 50; Error (Division_by_zero, bt) ] ->
        ignore (Printexc.raw_backtrace_to_string bt)
      | _ -> Alcotest.fail "inline path must mirror the pooled result shape")

let test_chunks () =
  Alcotest.(check (list (list int)))
    "splits in order"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Pool.chunks ~size:2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "empty" [] (Pool.chunks ~size:4 []);
  Alcotest.(check (list (list int)))
    "size clamped to 1"
    [ [ 1 ]; [ 2 ] ]
    (Pool.chunks ~size:0 [ 1; 2 ])

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          quick "map_list preserves order and values" test_map_list;
          quick "size-1 pool runs submissions inline" test_sequential_fallback;
          quick "a raising task re-raises on await and does not wedge the pool"
            test_exception_does_not_wedge;
          quick "shutdown is idempotent and drains queued tasks"
            test_shutdown_idempotent;
          quick "tasks may submit sub-tasks to their own pool"
            test_nested_submission;
          quick "map_list_results awaits every task and reports per-task errors"
            test_map_list_results;
          quick "map_list_results inline path matches the pooled shape"
            test_map_list_results_inline;
          quick "shared registry returns one pool per size" test_shared_registry;
          quick "chunks splits lists in order" test_chunks;
        ] );
    ]
