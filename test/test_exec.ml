(* Unit tests for the lib/exec domain pool: inline fallback, helping
   await, exception transparency, idempotent shutdown, the shared
   registry. *)

module Pool = Exec.Pool

let quick name f = Alcotest.test_case name `Quick f

let test_map_list () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "order preserved"
        (List.map (fun x -> x * x) xs)
        (Pool.map_list pool (fun x -> x * x) xs))

let test_sequential_fallback () =
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size pool);
  let ran_on = ref (-1) in
  let fut =
    Pool.submit pool (fun () ->
        ran_on := (Domain.self () :> int);
        7)
  in
  Alcotest.(check int)
    "ran inline in the caller before await"
    ((Domain.self () :> int))
    !ran_on;
  Alcotest.(check int) "value" 7 (Pool.await fut);
  Pool.shutdown pool

let test_exception_does_not_wedge () =
  let pool = Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let bad = Pool.submit pool (fun () -> failwith "boom") in
      let good = Pool.submit pool (fun () -> 41) in
      (match Pool.await bad with
      | _ -> Alcotest.fail "await of a failed task must raise"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      Alcotest.(check int) "sibling task unaffected" 41 (Pool.await good);
      Alcotest.(check (list int))
        "pool still runs new work after a task raised" [ 2; 3; 4 ]
        (Pool.map_list pool (fun x -> x + 1) [ 1; 2; 3 ]))

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  let futures = List.init 20 (fun i -> Pool.submit pool (fun () -> i * 2)) in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Queued futures completed during the shutdown drain. *)
  List.iteri
    (fun i future ->
      Alcotest.(check int) "drained on shutdown" (i * 2) (Pool.await future))
    futures;
  Alcotest.(check int)
    "submissions after shutdown run inline" 9
    (Pool.await (Pool.submit pool (fun () -> 9)))

let test_nested_submission () =
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let total =
        Pool.await
          (Pool.submit pool (fun () ->
               List.fold_left ( + ) 0
                 (Pool.map_list pool (fun x -> x * 10) [ 1; 2; 3 ])))
      in
      Alcotest.(check int) "nested map_list on the same pool" 60 total)

let test_shared_registry () =
  let p1 = Pool.shared ~domains:3 in
  let p2 = Pool.shared ~domains:3 in
  Alcotest.(check bool) "one pool per size" true (p1 == p2);
  Alcotest.(check int) "size" 3 (Pool.size p1)

let test_map_list_results () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let results =
        Pool.map_list_results pool
          (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x * 10)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      let describe = function
        | Ok v -> Printf.sprintf "ok %d" v
        | Error (Failure m, _) -> "fail " ^ m
        | Error _ -> "other"
      in
      Alcotest.(check (list string))
        "every task resolves in order, failures as Error"
        [ "ok 10"; "ok 20"; "fail 3"; "ok 40"; "ok 50"; "fail 6" ]
        (List.map describe results);
      (* A failing task must not abandon its siblings or the pool. *)
      Alcotest.(check (list int))
        "pool still runs new work" [ 2; 4 ]
        (Pool.map_list pool (fun x -> x * 2) [ 1; 2 ]))

let test_map_list_results_inline () =
  let pool = Pool.create ~domains:1 () in
  let backtrace_flag = Printexc.backtrace_status () in
  Fun.protect
    ~finally:(fun () ->
      Printexc.record_backtrace backtrace_flag;
      Pool.shutdown pool)
    (fun () ->
      Printexc.record_backtrace true;
      match Pool.map_list_results pool (fun x -> 100 / x) [ 2; 0 ] with
      | [ Ok 50; Error (Division_by_zero, bt) ] ->
        ignore (Printexc.raw_backtrace_to_string bt)
      | _ -> Alcotest.fail "inline path must mirror the pooled result shape")

let test_submit_batch () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check (list int))
        "empty batch" []
        (List.map Pool.await (Pool.submit_batch pool []));
      let futures =
        Pool.submit_batch pool (List.init 100 (fun i () -> i * 3))
      in
      Alcotest.(check (list int))
        "futures come back in submission order"
        (List.init 100 (fun i -> i * 3))
        (List.map Pool.await futures))

let test_map_chunked () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 101 Fun.id in
      let expect = List.map (fun x -> x * x) xs in
      Alcotest.(check (list int))
        "default chunking preserves order" expect
        (Pool.map_chunked pool (fun x -> x * x) xs);
      Alcotest.(check (list int))
        "explicit chunk size preserves order" expect
        (Pool.map_chunked ~chunk_size:7 pool (fun x -> x * x) xs);
      Alcotest.(check (list int))
        "chunk size larger than the list" expect
        (Pool.map_chunked ~chunk_size:1000 pool (fun x -> x * x) xs));
  let inline = Pool.create ~domains:1 () in
  Alcotest.(check (list int))
    "size-1 pool maps inline" [ 2; 4; 6 ]
    (Pool.map_chunked inline (fun x -> x * 2) [ 1; 2; 3 ]);
  Pool.shutdown inline

let test_coalesce () =
  Alcotest.(check (list (list int)))
    "packs up to the threshold"
    [ [ 5; 5 ]; [ 5; 5 ] ]
    (Pool.coalesce ~cost:Fun.id ~threshold:10 [ 5; 5; 5; 5 ]);
  Alcotest.(check (list (list int)))
    "an over-threshold element stands alone"
    [ [ 3 ]; [ 100 ]; [ 2 ] ]
    (Pool.coalesce ~cost:Fun.id ~threshold:10 [ 3; 100; 2 ]);
  Alcotest.(check (list (list int)))
    "empty input" []
    (Pool.coalesce ~cost:Fun.id ~threshold:10 []);
  let xs = List.init 57 (fun i -> i mod 9) in
  Alcotest.(check (list int))
    "concatenating the groups yields the input" xs
    (List.concat (Pool.coalesce ~cost:Fun.id ~threshold:13 xs))

(* Several external domains hammer the same pool with submit_batch
   concurrently; every batch must come back complete, ordered and
   uncorrupted. *)
let test_concurrent_submit_batch () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let submitters =
        List.init 3 (fun d ->
            Domain.spawn (fun () ->
                List.concat_map
                  (fun round ->
                    let thunks =
                      List.init 40 (fun i () -> (d * 1000) + (round * 100) + i)
                    in
                    List.map Pool.await (Pool.submit_batch pool thunks))
                  [ 0; 1; 2; 3; 4 ]))
      in
      List.iteri
        (fun d results ->
          let expect =
            List.concat_map
              (fun round ->
                List.init 40 (fun i -> (d * 1000) + (round * 100) + i))
              [ 0; 1; 2; 3; 4 ]
          in
          Alcotest.(check (list int))
            (Printf.sprintf "submitter %d got its own batches back" d)
            expect results)
        (List.map Domain.join submitters))

(* Steal correctness: block whichever worker picks up a gated task, and
   check the other worker crosses queues to finish the round-robin-
   distributed quick tasks — the steal counter must move, and every
   result must still be right.  The main domain spins without awaiting
   so its helping pops (which are not steals) cannot mask the check. *)
let test_work_stealing () =
  Obs.Control.with_enabled (fun () ->
      let pool = Pool.create ~domains:3 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let before = Obs.Metrics.counter_value "ivm_exec_steal_total" in
          let gate = Mutex.create () in
          let gate_open = Stdlib.Condition.create () in
          let opened = ref false in
          let blocker =
            Pool.submit pool (fun () ->
                Mutex.lock gate;
                while not !opened do
                  Stdlib.Condition.wait gate_open gate
                done;
                Mutex.unlock gate;
                "unblocked")
          in
          let completed = Atomic.make 0 in
          let quick =
            Pool.submit_batch pool
              (List.init 20 (fun i () ->
                   Atomic.incr completed;
                   i * 7))
          in
          let budget = ref 2_000_000_000 in
          while Atomic.get completed < 20 && !budget > 0 do
            decr budget;
            Domain.cpu_relax ()
          done;
          Alcotest.(check bool)
            "quick tasks completed while one worker was blocked" true
            (Atomic.get completed = 20);
          Alcotest.(check bool)
            "the free worker stole across queues" true
            (Obs.Metrics.counter_value "ivm_exec_steal_total" > before);
          Mutex.lock gate;
          opened := true;
          Stdlib.Condition.broadcast gate_open;
          Mutex.unlock gate;
          Alcotest.(check string) "blocker resolves" "unblocked"
            (Pool.await blocker);
          Alcotest.(check (list int))
            "stolen tasks returned the right values"
            (List.init 20 (fun i -> i * 7))
            (List.map Pool.await quick)))

(* Deep nesting under load: every task of an outer batch fans out its
   own inner chunked map on the same pool and awaits it.  A pool whose
   await could park while its sub-tasks sit unclaimed would deadlock
   here. *)
let test_nested_batch_deadlock_free () =
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let totals =
            Pool.map_list pool
              (fun outer ->
                List.fold_left ( + ) 0
                  (Pool.map_chunked ~chunk_size:5 pool
                     (fun x -> x + outer)
                     (List.init 30 Fun.id)))
              (List.init 8 Fun.id)
          in
          let expect = List.init 8 (fun outer -> 435 + (30 * outer)) in
          Alcotest.(check (list int))
            (Printf.sprintf "nested fan-out at %d domains" domains)
            expect totals))
    [ 2; 4 ]

let test_chunks () =
  Alcotest.(check (list (list int)))
    "splits in order"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Pool.chunks ~size:2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "empty" [] (Pool.chunks ~size:4 []);
  Alcotest.(check (list (list int)))
    "size clamped to 1"
    [ [ 1 ]; [ 2 ] ]
    (Pool.chunks ~size:0 [ 1; 2 ])

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          quick "map_list preserves order and values" test_map_list;
          quick "size-1 pool runs submissions inline" test_sequential_fallback;
          quick "a raising task re-raises on await and does not wedge the pool"
            test_exception_does_not_wedge;
          quick "shutdown is idempotent and drains queued tasks"
            test_shutdown_idempotent;
          quick "tasks may submit sub-tasks to their own pool"
            test_nested_submission;
          quick "map_list_results awaits every task and reports per-task errors"
            test_map_list_results;
          quick "map_list_results inline path matches the pooled shape"
            test_map_list_results_inline;
          quick "shared registry returns one pool per size" test_shared_registry;
          quick "chunks splits lists in order" test_chunks;
          quick "submit_batch returns ordered futures" test_submit_batch;
          quick "map_chunked equals the sequential map" test_map_chunked;
          quick "coalesce groups by summed cost" test_coalesce;
          quick "concurrent submit_batch from several domains"
            test_concurrent_submit_batch;
          quick "a free worker steals a blocked worker's queue"
            test_work_stealing;
          quick "nested batch fan-out cannot deadlock"
            test_nested_batch_deadlock_free;
        ] );
    ]
