(* The view-definition static analyzer: paper-grounded diagnostics
   (IVM001-IVM040), the Manager registration gate, and a QCheck guard on
   the satisfiability procedure backing IVM001. *)

open Relalg
open Helpers
module F = Condition.Formula
module Sat = Condition.Satisfiability
module Expr = Query.Expr
module Diagnostic = Analysis.Diagnostic
module Analyzer = Analysis.Analyzer
module Screening = Analysis.Check_screening
module Projection = Analysis.Check_projection
module View = Ivm.View
module Manager = Ivm.Manager
open F.Dsl

let lookup_of db name = Relation.schema (Database.find db name)
let diags ?keys db expr = Analyzer.run_expr ?keys ~lookup:(lookup_of db) expr

let codes ds =
  List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.code) ds)

let has_code c ds = List.mem c (codes ds)

let contexts_of_code c ds =
  List.filter_map
    (fun d ->
      if String.equal d.Diagnostic.code c then d.Diagnostic.context else None)
    ds

(* ------------------------------------------------------------------ *)
(* IVM001: unsatisfiable condition                                     *)
(* ------------------------------------------------------------------ *)

let ivm001_tests =
  [
    quick "contradictory bounds are an error" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(select ((v "A" <% i 0) &&% (v "A" >% i 10)) (base "R"))
        in
        Alcotest.(check bool) "IVM001" true (has_code "IVM001" ds);
        Alcotest.(check bool) "errors" true (Diagnostic.has_errors ds);
        Alcotest.(check bool) "not ok" false (Analyzer.ok ds));
    quick "a negative cycle through three atoms is caught" (fun () ->
        (* A < B, B < C, C < A: unsatisfiable by Rosenkrantz-Hunt. *)
        let db =
          db_of [ ("T", rel [ "A"; "B"; "C" ] []) ]
        in
        let ds =
          diags db
            Expr.(
              select
                ((v "A" <% v "B") &&% (v "B" <% v "C") &&% (v "C" <% v "A"))
                (base "T"))
        in
        Alcotest.(check bool) "IVM001" true (has_code "IVM001" ds));
    quick "example 4.1 is clean" (fun () ->
        let ds = diags (example_4_1_db ()) (example_4_1_expr ()) in
        Alcotest.(check (list string)) "no diagnostics" [] (codes ds));
    quick "a compile error becomes IVM000" (fun () ->
        let ds =
          diags (example_4_1_db ()) Expr.(select (v "Z" =% i 1) (base "R"))
        in
        Alcotest.(check (list string)) "IVM000" [ "IVM000" ] (codes ds);
        Alcotest.(check bool) "errors" true (Diagnostic.has_errors ds));
  ]

(* ------------------------------------------------------------------ *)
(* IVM002: redundancy                                                  *)
(* ------------------------------------------------------------------ *)

let ivm002_tests =
  [
    quick "an implied atom is reported with a simplification" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(select ((v "A" <% i 10) &&% (v "A" <% i 20)) (base "R"))
        in
        let hints = Diagnostic.with_code "IVM002" ds in
        Alcotest.(check int) "one hint" 1 (List.length hints);
        Alcotest.(check bool) "severity" true
          ((List.hd hints).Diagnostic.severity = Diagnostic.Hint));
    quick "a tautological atom is reported" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(select (v "A" =% v "A") (base "R"))
        in
        Alcotest.(check bool) "IVM002" true (has_code "IVM002" ds));
    quick "a dead disjunct is reported" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(
              select
                (((v "A" <% i 0) &&% (v "A" >% i 0)) ||% (v "B" >% i 5))
                (base "R"))
        in
        Alcotest.(check bool) "IVM002" true (has_code "IVM002" ds);
        Alcotest.(check bool) "no error" false (Diagnostic.has_errors ds));
    quick "independent atoms are not flagged" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(select ((v "A" <% i 10) &&% (v "B" >% i 5)) (base "R"))
        in
        Alcotest.(check bool) "no IVM002" false (has_code "IVM002" ds));
    quick "simplify_conjunction keeps equivalence witnesses" (fun () ->
        (* A = B and B = A imply each other; exactly one must survive. *)
        let a = F.atom (F.O_var "A") F.Eq (F.O_var "B") in
        let b = F.atom (F.O_var "B") F.Eq (F.O_var "A") in
        let kept, removed =
          Analysis.Check_redundancy.simplify_conjunction
            ~typing:Sat.int_typing [ a; b ]
        in
        Alcotest.(check int) "one kept" 1 (List.length kept);
        Alcotest.(check int) "one removed" 1 (List.length removed));
  ]

(* ------------------------------------------------------------------ *)
(* IVM010 / IVM011: screening power (Algorithm 4.1 split)              *)
(* ------------------------------------------------------------------ *)

let split_for db expr alias =
  let lookup = lookup_of db in
  let spj = Query.Spj.compile lookup expr in
  List.find
    (fun s -> String.equal s.Screening.alias alias)
    (Screening.splits ~lookup spj)

let screening_tests =
  [
    quick "example 4.1: both sources have a non-empty invariant split"
      (fun () ->
        (* Algorithm 4.1 precomputes the invariant part once per source;
           for C = (A<10 & C>5 & B=C) both splits are proper. *)
        let db = example_4_1_db () in
        List.iter
          (fun alias ->
            let split = split_for db (example_4_1_expr ()) alias in
            match split.Screening.per_disjunct with
            | [ (invariant, variant) ] ->
              Alcotest.(check bool)
                (alias ^ " invariant non-empty")
                true (invariant <> []);
              Alcotest.(check bool)
                (alias ^ " variant non-empty")
                true (variant <> [])
            | _ -> Alcotest.fail "expected a single disjunct")
          [ "R"; "S" ]);
    quick "example 4.1 invariant parts are the opposite source's atoms"
      (fun () ->
        let db = example_4_1_db () in
        let split = split_for db (example_4_1_expr ()) "R" in
        let invariant, variant = List.hd split.Screening.per_disjunct in
        Alcotest.(check int) "R invariant: C>5 only" 1 (List.length invariant);
        Alcotest.(check int) "R variant: A<10 and B=C" 2 (List.length variant));
    quick "an unconstrained source warns IVM010" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(
              project [ "A"; "D" ]
                (select (v "A" <% i 10) (product (base "R") (base "S"))))
        in
        Alcotest.(check (list string))
          "S flagged" [ "S" ]
          (contexts_of_code "IVM010" ds));
    quick "example 4.1 has no IVM010" (fun () ->
        let ds = diags (example_4_1_db ()) (example_4_1_expr ()) in
        Alcotest.(check bool) "clean" false (has_code "IVM010" ds));
    quick "invariantly-unsatisfiable source hints IVM011" (fun () ->
        (* C>5 & C<0 is invariant for R and unsatisfiable: no update to R
           ever matters (and the view itself is empty, IVM001). *)
        let ds =
          diags (example_4_1_db ())
            Expr.(
              project [ "A"; "D" ]
                (select
                   ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "C" <% i 0))
                   (product (base "R") (base "S"))))
        in
        Alcotest.(check bool) "IVM001" true (has_code "IVM001" ds);
        Alcotest.(check (list string))
          "R always irrelevant" [ "R" ]
          (contexts_of_code "IVM011" ds));
  ]

(* ------------------------------------------------------------------ *)
(* IVM020: hidden Cartesian products                                   *)
(* ------------------------------------------------------------------ *)

let ivm020_tests =
  [
    quick "an unlinked product warns" (fun () ->
        let ds =
          diags (example_4_1_db ())
            Expr.(
              project [ "A"; "D" ]
                (select (v "A" <% i 10) (product (base "R") (base "S"))))
        in
        Alcotest.(check bool) "IVM020" true (has_code "IVM020" ds));
    quick "a join atom connects the sources" (fun () ->
        (* Example 4.1 is syntactically a product, but B = C links it. *)
        let ds = diags (example_4_1_db ()) (example_4_1_expr ()) in
        Alcotest.(check bool) "no IVM020" false (has_code "IVM020" ds));
    quick "components partition a three-source view" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] []);
              ("S", rel [ "C"; "D" ] []);
              ("T", rel [ "E"; "F" ] []);
            ]
        in
        let lookup = lookup_of db in
        let spj =
          Query.Spj.compile lookup
            Expr.(
              select (v "B" =% v "C")
                (product (product (base "R") (base "S")) (base "T")))
        in
        let components = Query.Hypergraph.components ~lookup spj in
        Alcotest.(check int) "two components" 2 (List.length components);
        Alcotest.(check bool)
          "R with S" true
          (List.exists
             (fun c -> List.mem "R" c && List.mem "S" c)
             components));
  ]

(* ------------------------------------------------------------------ *)
(* IVM030 / IVM031: projection safety and key retention                *)
(* ------------------------------------------------------------------ *)

let spj_with_projection projection =
  {
    Query.Spj.sources = [ { Query.Spj.relation = "R"; alias = "R" } ];
    condition = F.True;
    condition_dnf = [ [] ];
    projection;
  }

let projection_tests =
  [
    quick "duplicate output names are an error" (fun () ->
        let lookup = lookup_of (example_4_1_db ()) in
        let ds =
          Analyzer.run ~lookup
            (spj_with_projection [ ("X", "R.A"); ("X", "R.B") ])
        in
        Alcotest.(check (list string))
          "X flagged" [ "X" ]
          (contexts_of_code "IVM030" ds);
        Alcotest.(check bool) "errors" true (Diagnostic.has_errors ds));
    quick "dangling qualified attributes are an error" (fun () ->
        let lookup = lookup_of (example_4_1_db ()) in
        let ds =
          Analyzer.run ~lookup (spj_with_projection [ ("A", "R.Z") ])
        in
        Alcotest.(check (list string))
          "R.Z flagged" [ "R.Z" ]
          (contexts_of_code "IVM030" ds));
    quick "example 5.1: no key retained, counters required" (fun () ->
        (* V = pi_B(R) with key A dropped: deleting (3,20) must decrement
           a counter, which is why Section 5.2 introduces them. *)
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]) ] in
        let keys = [ ("R", [ "A" ]) ] in
        let lookup = lookup_of db in
        let spj =
          Query.Spj.compile lookup Expr.(project [ "B" ] (base "R"))
        in
        (match Projection.key_retention ~keys spj with
        | Some (Projection.Counters_required [ "R" ]) -> ()
        | _ -> Alcotest.fail "expected Counters_required [R]");
        let ds = diags ~keys db Expr.(project [ "B" ] (base "R")) in
        let hints = Diagnostic.with_code "IVM031" ds in
        Alcotest.(check int) "one IVM031" 1 (List.length hints);
        Alcotest.(check bool) "hint severity" true
          ((List.hd hints).Diagnostic.severity = Diagnostic.Hint));
    quick "a retained key makes counters provably redundant" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]) ] in
        let keys = [ ("R", [ "A" ]) ] in
        let lookup = lookup_of db in
        let spj =
          Query.Spj.compile lookup Expr.(project [ "A"; "B" ] (base "R"))
        in
        (match Projection.key_retention ~keys spj with
        | Some Projection.Counters_redundant -> ()
        | _ -> Alcotest.fail "expected Counters_redundant");
        Alcotest.(check bool)
          "agrees with Keys" true
          (Query.Keys.projection_preserves_keys ~keys spj));
    quick "without declared keys there is no IVM031" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [] ) ] in
        let ds = diags db Expr.(project [ "B" ] (base "R")) in
        Alcotest.(check bool) "no IVM031" false (has_code "IVM031" ds));
  ]

(* ------------------------------------------------------------------ *)
(* IVM040: mixed-type comparisons                                      *)
(* ------------------------------------------------------------------ *)

let ivm040_tests =
  [
    quick "string-integer comparison warns with its constant truth"
      (fun () ->
        let db =
          db_of
            [
              ( "T",
                Relation.of_tuples
                  (Schema.make [ ("A", Value.Int_ty); ("N", Value.Str_ty) ])
                  [] );
            ]
        in
        let ds = diags db Expr.(select (v "N" =% i 3) (base "T")) in
        Alcotest.(check bool) "IVM040" true (has_code "IVM040" ds);
        (* The fold makes the whole condition false, so IVM001 fires too. *)
        Alcotest.(check bool) "IVM001" true (has_code "IVM001" ds));
    quick "well-typed comparisons do not warn" (fun () ->
        let ds =
          diags (example_4_1_db ()) Expr.(select (v "A" <% i 3) (base "R"))
        in
        Alcotest.(check bool) "no IVM040" false (has_code "IVM040" ds));
  ]

(* ------------------------------------------------------------------ *)
(* Manager integration: the registration gate                          *)
(* ------------------------------------------------------------------ *)

let manager_tests =
  [
    quick "error-level diagnostics reject registration" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let unsat =
          Expr.(select ((v "A" <% i 0) &&% (v "A" >% i 10)) (base "R"))
        in
        (match Manager.define_view mgr ~name:"dead" unsat with
        | _ -> Alcotest.fail "expected Rejected"
        | exception Manager.Rejected ds ->
          Alcotest.(check bool) "has errors" true (Diagnostic.has_errors ds));
        Alcotest.(check (list string)) "not registered" []
          (Manager.view_names mgr));
    quick "~force:true overrides the gate" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let unsat =
          Expr.(select ((v "A" <% i 0) &&% (v "A" >% i 10)) (base "R"))
        in
        let view = Manager.define_view mgr ~name:"dead" ~force:true unsat in
        Alcotest.(check (list string))
          "registered" [ "dead" ]
          (Manager.view_names mgr);
        Alcotest.(check int) "empty" 0
          (Relation.cardinal (View.contents view));
        (* The forced view still maintains correctly: it stays empty. *)
        ignore
          (Manager.commit mgr
             [ Transaction.insert "R" (Tuple.of_ints [ 5; 5 ]) ]);
        Alcotest.(check bool) "consistent" true (Manager.consistent mgr "dead"));
    quick "clean definitions register and lint clean" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let view = Manager.define_view mgr ~name:"u" (example_4_1_expr ()) in
        Alcotest.(check (list string)) "no diagnostics" []
          (codes (View.lint view)));
    quick "keys given at registration feed View.lint" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]) ] in
        let mgr = Manager.create db in
        let view =
          Manager.define_view mgr ~name:"v"
            ~keys:[ ("R", [ "A" ]) ]
            Expr.(project [ "B" ] (base "R"))
        in
        Alcotest.(check bool)
          "IVM031 present" true
          (has_code "IVM031" (View.lint view)));
  ]

(* ------------------------------------------------------------------ *)
(* IVM050-IVM054: self-maintainability                                 *)
(* ------------------------------------------------------------------ *)

module SM = Analysis.Check_self_maintain

let severity_of_code c ds =
  List.filter_map
    (fun d ->
      if String.equal d.Diagnostic.code c then Some d.Diagnostic.severity
      else None)
    ds

let self_maintain_tests =
  [
    quick "example 5.1: single-source views are fully self-maintainable"
      (fun () ->
        (* pi_B(R), the paper's Example 5.1 — p = 1, so both insertions
           and deletions are maintainable from the update tuples alone,
           without any key declaration. *)
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]) ] in
        let ds = diags db Expr.(project [ "B" ] (base "R")) in
        Alcotest.(check bool) "IVM050" true (has_code "IVM050" ds);
        Alcotest.(check bool) "IVM051" true (has_code "IVM051" ds);
        Alcotest.(check (list string)) "both anchored to R" [ "R" ]
          (List.sort_uniq String.compare
             (contexts_of_code "IVM050" ds @ contexts_of_code "IVM051" ds));
        Alcotest.(check bool) "hints, not warnings" true
          (List.for_all
             (fun s -> s = Diagnostic.Hint)
             (severity_of_code "IVM050" ds @ severity_of_code "IVM051" ds));
        let spj =
          Query.Spj.compile (lookup_of db) Expr.(project [ "B" ] (base "R"))
        in
        let cert = SM.analyze ~keys:[] ~lookup:(lookup_of db) spj in
        Alcotest.(check bool) "insert provable" true
          (SM.insert_self_maintainable cert "R");
        Alcotest.(check bool) "delete provable" true
          (SM.delete_self_maintainable cert "R"));
    quick "example 4.1 with keys: R provable by key, S a near miss"
      (fun () ->
        (* pi_{A,D}(sigma_{A<10 & C>5 & B=C}(R x S)) with keys R:A, S:C.
           The view projects A, so deletions from R drain by key; S's key
           C lives in the unprojected class {B, C}, a near miss. *)
        let ds =
          diags
            ~keys:[ ("R", [ "A" ]); ("S", [ "C" ]) ]
            (example_4_1_db ()) (example_4_1_expr ())
        in
        Alcotest.(check (list string)) "IVM051 for R" [ "R" ]
          (contexts_of_code "IVM051" ds);
        Alcotest.(check (list string)) "IVM052 names source S" [ "S" ]
          (contexts_of_code "IVM052" ds);
        Alcotest.(check bool) "near miss is a warning" true
          (severity_of_code "IVM052" ds = [ Diagnostic.Warning ]);
        Alcotest.(check bool) "no insert certificate (p = 2)" false
          (has_code "IVM050" ds));
    quick "without declared keys multi-source views stay quiet" (fun () ->
        let ds = diags (example_4_1_db ()) (example_4_1_expr ()) in
        Alcotest.(check (list string)) "no IVM05x" []
          (List.filter (fun c -> Diagnostic.code_matches ~query:"IVM05*" c)
             (codes ds)));
    quick "pinned key attributes count as recovered" (fun () ->
        (* B = 3 pins the join class {R.B, S.B}; A and C are projected,
           so both relations' full keys are recoverable off a view tuple. *)
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] [ [ 1; 3 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 3; 7 ] ]) ]
        in
        let ds =
          diags
            ~keys:[ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]
            db
            Expr.(
              project [ "A"; "C" ]
                (select (v "B" =% i 3) (join (base "R") (base "S"))))
        in
        Alcotest.(check (list string)) "both relations provable" [ "R"; "S" ]
          (List.sort String.compare (contexts_of_code "IVM051" ds));
        Alcotest.(check bool) "no near misses" false
          (has_code "IVM052" ds || has_code "IVM053" ds));
    quick "a keyless sibling relation is an IVM053 near miss" (fun () ->
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] [ [ 1; 3 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 3; 7 ] ]) ]
        in
        let ds =
          diags ~keys:[ ("R", [ "A"; "B" ]) ] db
            Expr.(join (base "R") (base "S"))
        in
        Alcotest.(check (list string)) "R provable" [ "R" ]
          (contexts_of_code "IVM051" ds);
        Alcotest.(check (list string)) "S lacks a key" [ "S" ]
          (contexts_of_code "IVM053" ds));
    quick "disjunction blocks keyed analysis with a targeted warning"
      (fun () ->
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] [ [ 1; 3 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 3; 7 ] ]) ]
        in
        let expr =
          Expr.(
            select ((v "A" <% i 5) ||% (v "C" >% i 2))
              (join (base "R") (base "S")))
        in
        let keyed = diags ~keys:[ ("R", [ "A"; "B" ]) ] db expr in
        Alcotest.(check bool) "IVM054 with keys" true
          (has_code "IVM054" keyed);
        let keyless = diags db expr in
        Alcotest.(check bool) "quiet without keys" false
          (has_code "IVM054" keyless));
    quick "IVM05* prefix query selects exactly the band" (fun () ->
        let ds =
          diags
            ~keys:[ ("R", [ "A" ]); ("S", [ "C" ]) ]
            (example_4_1_db ()) (example_4_1_expr ())
        in
        let band = Diagnostic.with_code "IVM05*" ds in
        Alcotest.(check bool) "nonempty" true (band <> []);
        Alcotest.(check bool) "only IVM05x codes" true
          (List.for_all
             (fun d ->
               String.length d.Diagnostic.code = 6
               && String.sub d.Diagnostic.code 0 5 = "IVM05")
             band);
        Alcotest.(check int) "exact query still works" 1
          (List.length (Diagnostic.with_code "IVM052" ds)));
    quick "analyzer output is deterministic and duplicate-free" (fun () ->
        let run () =
          diags
            ~keys:[ ("R", [ "A" ]); ("S", [ "C" ]) ]
            (example_4_1_db ()) (example_4_1_expr ())
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "two runs agree" true (a = b);
        Alcotest.(check int) "no duplicates" (List.length a)
          (List.length (List.sort_uniq compare a)));
  ]

(* ------------------------------------------------------------------ *)
(* IVM060-IVM063: aggregates and view towers                           *)
(* ------------------------------------------------------------------ *)

let agg func output = { Query.Aggregate.func; output }

let mixed_db () =
  db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ] ]) ]

let string_db () =
  let schema =
    Schema.make [ ("A", Value.Int_ty); ("NAME", Value.Str_ty) ]
  in
  let db = Database.create () in
  Database.register db "P" (Relation.of_tuples schema []);
  db

let severity_of_code' c ds =
  List.filter_map
    (fun d ->
      if String.equal d.Diagnostic.code c then Some d.Diagnostic.severity
      else None)
    ds

let aggregate_tests =
  [
    quick "a clean grouped view lints clean" (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "B" ]
                [ agg Query.Aggregate.Count "cnt";
                  agg (Query.Aggregate.Sum "A") "sum_a" ]
                (base "R"))
        in
        Alcotest.(check (list string)) "no IVM06x errors" []
          (codes (List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds)));
    quick "IVM060: aggregate over a missing attribute is an error" (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "B" ]
                [ agg (Query.Aggregate.Sum "Z") "sum_z" ]
                (base "R"))
        in
        Alcotest.(check bool) "IVM060" true (has_code "IVM060" ds);
        Alcotest.(check (list string)) "names the attribute" [ "Z" ]
          (contexts_of_code "IVM060" ds);
        Alcotest.(check bool) "error severity" true
          (severity_of_code' "IVM060" ds = [ Diagnostic.Error ]));
    quick "IVM060: SUM over a string attribute is an error, MIN is not"
      (fun () ->
        let bad =
          diags (string_db ())
            Expr.(
              group_by ~keys:[]
                [ agg (Query.Aggregate.Sum "NAME") "sum_name" ]
                (base "P"))
        in
        Alcotest.(check bool) "SUM(NAME) is IVM060" true
          (has_code "IVM060" bad);
        let fine =
          diags (string_db ())
            Expr.(
              group_by ~keys:[]
                [ agg (Query.Aggregate.Min "NAME") "min_name" ]
                (base "P"))
        in
        Alcotest.(check bool) "MIN(NAME) folds in an order monoid" false
          (has_code "IVM060" fine));
    quick "IVM061: a group key the inner expression drops is an error"
      (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "B" ]
                [ agg Query.Aggregate.Count "cnt" ]
                (project [ "A" ] (base "R")))
        in
        Alcotest.(check bool) "IVM061" true (has_code "IVM061" ds);
        Alcotest.(check (list string)) "names the key" [ "B" ]
          (contexts_of_code "IVM061" ds));
    quick "IVM061: colliding output columns are an error" (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "B" ]
                [ agg Query.Aggregate.Count "B" ]
                (base "R"))
        in
        Alcotest.(check (list string)) "names the collision" [ "B" ]
          (contexts_of_code "IVM061" ds));
    quick "IVM062: a self-referencing definition is an error" (fun () ->
        let db = mixed_db () in
        let lookup name =
          if String.equal name "loop" then Helpers.int_schema [ "A" ]
          else lookup_of db name
        in
        let ds =
          Analyzer.run_expr ~view_name:"loop" ~lookup
            Expr.(project [ "A" ] (base "loop"))
        in
        Alcotest.(check bool) "IVM062" true (has_code "IVM062" ds);
        Alcotest.(check bool) "error severity" true
          (severity_of_code' "IVM062" ds = [ Diagnostic.Error ]);
        (* The cycle short-circuits compilation: no spurious IVM000. *)
        Alcotest.(check bool) "no IVM000" false (has_code "IVM000" ds));
    quick "IVM063: MIN/MAX carry the rescan hint, COUNT/SUM do not"
      (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "B" ]
                [ agg (Query.Aggregate.Min "A") "min_a";
                  agg (Query.Aggregate.Sum "A") "sum_a" ]
                (base "R"))
        in
        Alcotest.(check (list string)) "hint names the target" [ "min_a" ]
          (contexts_of_code "IVM063" ds);
        Alcotest.(check bool) "hint severity" true
          (severity_of_code' "IVM063" ds = [ Diagnostic.Hint ]);
        Alcotest.(check bool) "analyzer still ok" true (Analyzer.ok ds));
    quick "IVM06* prefix query selects exactly the band" (fun () ->
        let ds =
          diags (mixed_db ())
            Expr.(
              group_by ~keys:[ "Z" ]
                [ agg (Query.Aggregate.Max "Q") "Z" ]
                (base "R"))
        in
        let band = Diagnostic.with_code "IVM06*" ds in
        Alcotest.(check bool) "nonempty" true (band <> []);
        Alcotest.(check bool) "only IVM06x codes" true
          (List.for_all
             (fun d ->
               String.length d.Diagnostic.code = 6
               && String.sub d.Diagnostic.code 0 5 = "IVM06")
             band));
    quick "manager gate: IVM060 errors reject the definition" (fun () ->
        let mgr = Manager.create (mixed_db ()) in
        (match
           Manager.define_view mgr ~name:"bad"
             Expr.(
               group_by ~keys:[ "B" ]
                 [ agg (Query.Aggregate.Sum "Z") "sum_z" ]
                 (base "R"))
         with
        | _ -> Alcotest.fail "IVM060 definition was accepted"
        | exception Manager.Rejected ds ->
          Alcotest.(check bool) "carries IVM060" true (has_code "IVM060" ds));
        Alcotest.(check (list string)) "nothing registered" []
          (Manager.view_names mgr));
    quick "manager gate: the DAG is enforced by definition order" (fun () ->
        (* A definition can only reference already-registered names and a
           name registers exactly once, so the single representable cycle
           is a self-reference (IVM062 at the analyzer); every other
           shape dies on the name check before any evaluation. *)
        let mgr = Manager.create (mixed_db ()) in
        ignore
          (Manager.define_view mgr ~name:"loop"
             Expr.(project [ "A" ] (base "R")));
        Alcotest.check_raises "redefinition is rejected"
          (Invalid_argument "Manager.define_view: \"loop\" already exists")
          (fun () ->
            ignore
              (Manager.define_view mgr ~name:"loop"
                 Expr.(project [ "A" ] (base "loop")))));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: Satisfiability never answers Unsat on a conjunction a       *)
(* brute-force enumerator can satisfy (IVM001 soundness guard)         *)
(* ------------------------------------------------------------------ *)

let vars = [| "w"; "x"; "y"; "z" |]

let gen_atom =
  QCheck.Gen.(
    let* left = map (fun i -> F.O_var vars.(i)) (int_bound 3) in
    let* cmp = oneofl [ F.Eq; F.Neq; F.Lt; F.Leq; F.Gt; F.Geq ] in
    let* use_var = bool in
    if use_var then
      let* right = map (fun i -> F.O_var vars.(i)) (int_bound 3) in
      let* shift = int_range (-2) 2 in
      return (F.atom left cmp ~shift right)
    else
      let* c = int_range (-4) 4 in
      return (F.atom left cmp (F.O_const (Value.Int c))))

let gen_conjunction = QCheck.Gen.(list_size (int_range 1 5) gen_atom)

let print_conjunction atoms =
  Format.asprintf "%a" F.pp (F.of_dnf [ atoms ])

(* Exhaustive search over the box [-6, 6]^4; finding a witness there
   proves satisfiability over the integers. *)
let brute_force_satisfiable atoms =
  let lo = -6 and hi = 6 in
  let rec go i env =
    if i = Array.length vars then
      F.eval_conjunction
        (fun a -> Value.Int (List.assoc a env))
        atoms
    else
      let rec try_value value =
        value <= hi
        && (go (i + 1) ((vars.(i), value) :: env) || try_value (value + 1))
      in
      try_value lo
  in
  go 0 []

let unsat_is_sound =
  QCheck.Test.make ~count:300 ~name:"Unsat verdicts are never refuted by brute force"
    (QCheck.make ~print:print_conjunction gen_conjunction)
    (fun atoms ->
      match Sat.conjunction atoms with
      | Sat.Unsat -> not (brute_force_satisfiable atoms)
      | Sat.Sat | Sat.Unknown -> true)

let property_tests = [ QCheck_alcotest.to_alcotest unsat_is_sound ]

let () =
  Alcotest.run "analysis"
    [
      ("IVM001: satisfiability", ivm001_tests);
      ("IVM002: redundancy", ivm002_tests);
      ("IVM010/IVM011: screening", screening_tests);
      ("IVM020: join graph", ivm020_tests);
      ("IVM030/IVM031: projection", projection_tests);
      ("IVM040: typing", ivm040_tests);
      ("IVM050-IVM054: self-maintenance", self_maintain_tests);
      ("IVM060-IVM063: aggregates and towers", aggregate_tests);
      ("manager gate", manager_tests);
      ("properties", property_tests);
    ]
