(* Oracle-backed differential testing: the naive reference engine, the
   lockstep harness, the shrinker, and the top-level fuzz loop.

   The headline properties replay randomly generated transaction streams
   through the full maintenance stack and assert the engine never
   diverges from a from-scratch recompute — 100 streams at domains=1 and
   100 at domains=4, on top of the fixed-seed budget tools/check.sh
   runs.  The corrupt-hook tests then verify the harness actually
   detects injected bugs and that the shrinker reduces such failures to
   near-minimal counterexamples. *)

open Relalg
open Helpers
module Stream = Oracle.Stream
module Harness = Oracle.Harness
module Reference = Oracle.Reference
module Shrink = Oracle.Shrink
module Fuzz = Oracle.Fuzz
module Manager = Ivm.Manager
module View = Ivm.View

let property name ?(count = 100) law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.(int_range 0 1_000_000) law)

(* ------------------------------------------------------------------ *)
(* Reference engine                                                   *)
(* ------------------------------------------------------------------ *)

let example_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 5; 2 ]; [ 9; 4 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 2; 7 ]; [ 4; 1 ] ]);
    ]

let join_expr = Query.Expr.(join (base "R") (base "S"))

let reference_tests =
  [
    quick "contents equal a fresh evaluation of the definition" (fun () ->
        let db = example_db () in
        let r = Reference.create db in
        Reference.define r ~name:"v" join_expr;
        check_rel "initial materialization"
          (Query.Eval.eval db join_expr)
          (Reference.contents r "v"));
    quick "create copies the database: later engine writes are invisible"
      (fun () ->
        let db = example_db () in
        let r = Reference.create db in
        Relation.add (Database.find db "R") (Tuple.of_ints [ 100; 100 ]);
        Alcotest.(check bool) "reference state untouched" false
          (Relation.mem
             (Database.find (Reference.database r) "R")
             (Tuple.of_ints [ 100; 100 ])));
    quick "step applies the transaction and recomputes every view" (fun () ->
        let db = example_db () in
        let r = Reference.create db in
        Reference.define r ~name:"v" join_expr;
        Reference.step r
          [
            Transaction.insert "S" (Tuple.of_ints [ 4; 9 ]);
            Transaction.delete "R" (Tuple.of_ints [ 1; 2 ]);
          ];
        let expected =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 5; 2 ]; [ 9; 4 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 2; 7 ]; [ 4; 1 ]; [ 4; 9 ] ]);
            ]
        in
        check_rel "recomputed after step"
          (Query.Eval.eval expected join_expr)
          (Reference.contents r "v"));
    quick "apply rejects invalid operations" (fun () ->
        let db = example_db () in
        let r = Reference.create db in
        (try
           Reference.apply r
             [ Transaction.insert "R" (Tuple.of_ints [ 1; 2 ]) ];
           Alcotest.fail "duplicate insert accepted"
         with Invalid_argument _ -> ());
        try
          Reference.apply r
            [ Transaction.delete "R" (Tuple.of_ints [ 42; 42 ]) ];
          Alcotest.fail "delete of absent tuple accepted"
        with Invalid_argument _ -> ());
    quick "tuple_affects distinguishes relevant from irrelevant" (fun () ->
        let db = example_db () in
        let r = Reference.create db in
        Reference.define r ~name:"v"
          (let open Condition.Formula.Dsl in
           Query.Expr.(select (v "A" <% i 10) (base "R")));
        (* (3, 3) passes A < 10, so toggling it changes the view; (50, 3)
           fails it invariantly. *)
        Alcotest.(check bool) "satisfying insert affects" true
          (Reference.tuple_affects r ~view:"v" ~relation:"R" ~insert:true
             (Tuple.of_ints [ 3; 3 ]));
        Alcotest.(check bool) "failing insert does not" false
          (Reference.tuple_affects r ~view:"v" ~relation:"R" ~insert:true
             (Tuple.of_ints [ 50; 3 ]));
        (* The probe must leave the state untouched. *)
        Alcotest.(check bool) "probe tuple not left behind" false
          (Relation.mem
             (Database.find (Reference.database r) "R")
             (Tuple.of_ints [ 3; 3 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Stream validity filtering                                          *)
(* ------------------------------------------------------------------ *)

let filter_tests =
  [
    quick "duplicate inserts and absent deletes are dropped" (fun () ->
        let db = example_db () in
        let kept =
          Stream.filter_valid db
            [
              Transaction.insert "R" (Tuple.of_ints [ 1; 2 ]);
              (* already present *)
              Transaction.delete "R" (Tuple.of_ints [ 42; 42 ]);
              (* absent *)
              Transaction.insert "R" (Tuple.of_ints [ 8; 8 ]);
              Transaction.delete "S" (Tuple.of_ints [ 2; 7 ]);
            ]
        in
        Alcotest.(check int) "two valid operations" 2 (List.length kept));
    quick "membership evolves within the transaction" (fun () ->
        let db = example_db () in
        let kept =
          Stream.filter_valid db
            [
              Transaction.insert "R" (Tuple.of_ints [ 8; 8 ]);
              Transaction.delete "R" (Tuple.of_ints [ 8; 8 ]);
              (* valid: just inserted *)
              Transaction.delete "R" (Tuple.of_ints [ 8; 8 ]);
              (* invalid: just deleted *)
              Transaction.insert "R" (Tuple.of_ints [ 8; 8 ]);
              (* valid again *)
            ]
        in
        Alcotest.(check int) "three valid operations" 3 (List.length kept);
        Alcotest.(check bool) "database itself untouched" false
          (Relation.mem (Database.find db "R") (Tuple.of_ints [ 8; 8 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Harness + shrinker against an injected bug                          *)
(* ------------------------------------------------------------------ *)

(* Simulated maintenance bug: after every commit, smuggle a spurious
   tuple into the first view's materialization behind the engine's
   back. *)
let corrupt_first_view (s : Stream.t) mgr _index =
  match s.Stream.views with
  | [] -> ()
  | spec :: _ ->
    let view = Manager.view mgr spec.Stream.view_name in
    let width = List.length (Schema.attrs (View.schema view)) in
    Relation.add (View.contents view)
      (Tuple.of_ints (List.init width (fun _ -> 999)))

let corruption_tests =
  [
    quick "clean streams replay without divergence" (fun () ->
        let s = Stream.generate ~seed:2026 ~transactions:15 () in
        match Harness.run s with
        | None -> ()
        | Some d ->
          Alcotest.failf "unexpected %s"
            (Format.asprintf "%a" Harness.pp_divergence d));
    quick "corrupt hook is detected as a divergence" (fun () ->
        let s = Stream.generate ~seed:2026 ~transactions:15 () in
        match Harness.run ~corrupt:(corrupt_first_view s) s with
        | None -> Alcotest.fail "injected corruption went unnoticed"
        | Some d ->
          Alcotest.(check int) "caught on the first commit" 0
            d.Harness.transaction_index);
    quick "shrinker reduces the failure to a minimal stream" (fun () ->
        let s = Stream.generate ~seed:2026 ~transactions:15 () in
        let fails c = Harness.run ~corrupt:(corrupt_first_view c) c <> None in
        Alcotest.(check bool) "original fails" true (fails s);
        let m = Shrink.minimize fails s in
        Alcotest.(check bool) "minimized still fails" true (fails m);
        (* The corruption fires on any commit over any view: the minimum
           is one (possibly empty) transaction and one view, no initial
           tuples. *)
        Alcotest.(check bool)
          (Printf.sprintf "size %d <= 2" (Stream.size m))
          true
          (Stream.size m <= 2);
        Alcotest.(check int) "one transaction left" 1
          (List.length m.Stream.transactions);
        Alcotest.(check int) "one view left" 1 (List.length m.Stream.views));
    quick "corrupted aggregate payload is caught and shrunk" (fun () ->
        (* Deliberately corrupt the first GROUP BY view's rendered
           payload: bump one aggregate column of one group (or smuggle
           in a spurious group when the view is empty).  The lockstep
           compare must flag it, and the shrinker must keep an
           aggregate view while minimizing — drop_views candidates that
           orphan a tower child are rejected by Stream.well_formed. *)
        let is_aggregate (spec : Stream.view_spec) =
          Option.is_some (Query.Expr.aggregate spec.Stream.expr)
        in
        let corrupt (s : Stream.t) mgr _index =
          match List.find_opt is_aggregate s.Stream.views with
          | None -> ()
          | Some spec ->
            let view = Manager.view mgr spec.Stream.view_name in
            let contents = View.contents view in
            (match Relation.elements contents with
            | (t, _) :: _ ->
              let t' = Array.copy t in
              let last = Array.length t' - 1 in
              (t'.(last) <-
                 (match t'.(last) with
                 | Value.Int n -> Value.Int (n + 1)
                 | other -> other));
              Relation.remove contents t;
              Relation.add contents t'
            | [] ->
              let width = List.length (Schema.attrs (View.schema view)) in
              Relation.add contents
                (Tuple.of_ints (List.init width (fun _ -> 999))))
        in
        let s =
          Stream.generate ~aggregates:true ~seed:2027 ~transactions:12 ()
        in
        Alcotest.(check bool) "stream draws an aggregate view" true
          (List.exists is_aggregate s.Stream.views);
        (match Harness.run ~corrupt:(corrupt s) s with
        | None -> Alcotest.fail "corrupted aggregate payload went unnoticed"
        | Some d ->
          Alcotest.(check int) "caught on the first commit" 0
            d.Harness.transaction_index);
        let fails c =
          Stream.well_formed c && Harness.run ~corrupt:(corrupt c) c <> None
        in
        let m = Shrink.minimize fails s in
        Alcotest.(check bool) "minimized still fails" true (fails m);
        Alcotest.(check bool) "minimized keeps an aggregate view" true
          (List.exists is_aggregate m.Stream.views);
        Alcotest.(check bool)
          (Printf.sprintf "shrunk from %d to %d" (Stream.size s)
             (Stream.size m))
          true
          (Stream.size m < Stream.size s));
    quick "fuzz loop packages the counterexample" (fun () ->
        (* Fuzz.run generates fresh streams internally, so inject the bug
           via the harness directly and check the packaging layer through
           a clean run instead. *)
        let outcome =
          Fuzz.run ~seed:11 ~streams:3 ~transactions:8 ~domains:1 ()
        in
        Alcotest.(check int) "all streams ran" 3 outcome.Fuzz.streams_run;
        Alcotest.(check bool) "transactions counted" true
          (outcome.Fuzz.transactions_run > 0);
        Alcotest.(check bool) "no failure" true (outcome.Fuzz.failure = None));
  ]

(* ------------------------------------------------------------------ *)
(* The headline equivalence properties                                *)
(* ------------------------------------------------------------------ *)

let agrees ~domains seed =
  let s = Stream.generate ~domains ~seed ~transactions:12 () in
  match Harness.run s with
  | None -> true
  | Some d ->
    QCheck.Test.fail_reportf "%s@.%s"
      (Format.asprintf "%a" Harness.pp_divergence d)
      (Format.asprintf "%a" Stream.pp s)

(* Fault-injected replays: every commit must either succeed in agreement
   with the oracle, abort to a state bit-identical to the oracle's
   pre-commit copy, or quarantine views that self-heal by end of
   stream (see Harness.run's contract). *)
let survives_faults ~domains ~policy seed =
  let s = Stream.generate ~domains ~seed ~transactions:12 () in
  match Harness.run ~fault_rate:0.1 ~policy s with
  | None -> true
  | Some d ->
    QCheck.Test.fail_reportf "%s@.%s"
      (Format.asprintf "%a" Harness.pp_divergence d)
      (Format.asprintf "%a" Stream.pp s)

(* The aggregate arm: streams additionally draw GROUP BY views and a
   tower of dependents ({!Stream.generate}). *)
let agrees_aggregates ~domains seed =
  let s = Stream.generate ~aggregates:true ~domains ~seed ~transactions:12 () in
  match Harness.run s with
  | None -> true
  | Some d ->
    QCheck.Test.fail_reportf "%s@.%s"
      (Format.asprintf "%a" Harness.pp_divergence d)
      (Format.asprintf "%a" Stream.pp s)

let survives_faults_aggregates ~domains ~policy seed =
  let s = Stream.generate ~aggregates:true ~domains ~seed ~transactions:12 () in
  match Harness.run ~fault_rate:0.1 ~policy s with
  | None -> true
  | Some d ->
    QCheck.Test.fail_reportf "%s@.%s"
      (Format.asprintf "%a" Harness.pp_divergence d)
      (Format.asprintf "%a" Stream.pp s)

let equivalence_tests =
  [
    property "engine = oracle on random streams (domains=1)" (agrees ~domains:1);
    property "engine = oracle on random streams (domains=4)" (agrees ~domains:4);
    property ~count:60 "engine = oracle with aggregates and towers (domains=1)"
      (agrees_aggregates ~domains:1);
    property ~count:60 "engine = oracle with aggregates and towers (domains=4)"
      (agrees_aggregates ~domains:4);
    property ~count:30
      "faulted aggregate streams uphold the quarantine contract"
      (survives_faults_aggregates ~domains:2
         ~policy:Resilience.Policy.Quarantine);
    property ~count:40 "faulted streams uphold the abort contract (domains=1)"
      (survives_faults ~domains:1 ~policy:Resilience.Policy.Abort);
    property ~count:40
      "faulted streams uphold the quarantine contract (domains=4)"
      (survives_faults ~domains:4 ~policy:Resilience.Policy.Quarantine);
  ]

let () =
  Alcotest.run "oracle"
    [
      ("reference engine", reference_tests);
      ("stream filtering", filter_tests);
      ("corruption detection and shrinking", corruption_tests);
      ("equivalence", equivalence_tests);
    ]
