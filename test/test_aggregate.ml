(* Ring-valued aggregates, GROUP BY maintenance and view towers.

   Four layers of teeth: QCheck laws for every payload ring instance
   (associativity, identity, inverse exactly where the instance claims
   one), grouped-delta maintenance checked against a from-scratch
   recompute over hundreds of generated commit streams, a pinned
   regression for the MIN/MAX drain-to-zero rescan rule, and a worked
   views-over-views example asserting each parent delta is consumed
   exactly once per dependent. *)

open Relalg
module Expr = Query.Expr
module Aggregate = Query.Aggregate
module View = Ivm.View
module Grouped = Ivm.Grouped
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Rng = Workload.Rng
module Generate = Workload.Generate
open Condition.Formula.Dsl

let quick name f = Alcotest.test_case name `Quick f

let property name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

let agg func output = { Aggregate.func; output }

(* Sorted integer contents, for readable assertions. *)
let int_contents r =
  List.map
    (fun (t, c) ->
      ( List.map
          (function
            | Value.Int n -> n
            | other ->
              Alcotest.failf "non-int payload %s"
                (Format.asprintf "%a" Value.pp other))
          (Array.to_list t),
        c ))
    (Relation.sorted_elements r)

(* ------------------------------------------------------------------ *)
(* Ring laws                                                           *)
(* ------------------------------------------------------------------ *)

(* One law suite per instance, over an instance-supplied generator.
   [neg] is tested exactly when the instance claims an inverse — the
   MIN/MAX monoids must keep claiming [None], so that asymmetry is
   itself pinned by [claims_inverse]. *)
let ring_laws (type a) (module R : Ring.S with type t = a) arb =
  let ( =~ ) = R.equal in
  [
    property
      (Printf.sprintf "%s: add is associative and commutative" R.name)
      QCheck.(triple arb arb arb)
      (fun (x, y, z) ->
        R.add (R.add x y) z =~ R.add x (R.add y z) && R.add x y =~ R.add y x);
    property
      (Printf.sprintf "%s: zero is the additive identity" R.name)
      arb
      (fun x -> R.add x R.zero =~ x && R.add R.zero x =~ x);
    property
      (Printf.sprintf "%s: mul is associative with identity one" R.name)
      QCheck.(triple arb arb arb)
      (fun (x, y, z) ->
        R.mul (R.mul x y) z =~ R.mul x (R.mul y z)
        && R.mul x R.one =~ x && R.mul R.one x =~ x);
    property
      (Printf.sprintf "%s: is_zero agrees with equal zero" R.name)
      arb
      (fun x -> R.is_zero x = (x =~ R.zero));
    property
      (Printf.sprintf "%s: inverse law holds where claimed" R.name)
      arb
      (fun x ->
        match R.neg with
        | Some neg -> R.is_zero (R.add x (neg x))
        | None ->
          (* Idempotent monoids: add must be idempotent instead. *)
          R.add x x =~ x);
  ]

let value_opt_gen =
  QCheck.(
    map
      (fun n -> if n mod 7 = 0 then None else Some (Value.Int (n / 7)))
      (int_range (-700) 700))

let claims_inverse =
  quick "neg claimed by Count/Sum/Avg and refused by Min/Max" (fun () ->
      Alcotest.(check bool) "Count" true (Option.is_some Ring.Count.neg);
      Alcotest.(check bool) "Sum" true (Option.is_some Ring.Sum.neg);
      Alcotest.(check bool) "Avg" true (Option.is_some Ring.Avg.neg);
      Alcotest.(check bool) "Min" false (Option.is_some Ring.Min.neg);
      Alcotest.(check bool) "Max" false (Option.is_some Ring.Max.neg))

let ring_tests =
  ring_laws (module Ring.Count) QCheck.(int_range (-1000) 1000)
  @ ring_laws (module Ring.Sum) QCheck.(int_range (-1000) 1000)
  @ ring_laws
      (module Ring.Avg)
      QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
  @ ring_laws (module Ring.Min) value_opt_gen
  @ ring_laws (module Ring.Max) value_opt_gen
  @ [ claims_inverse ]

(* ------------------------------------------------------------------ *)
(* Grouped delta = full recompute, over generated commit streams       *)
(* ------------------------------------------------------------------ *)

let grouped_exprs =
  [|
    Expr.(
      group_by ~keys:[ "B" ]
        [ agg Aggregate.Count "cnt"; agg (Aggregate.Sum "A") "sum_a" ]
        (base "R"));
    Expr.(
      group_by ~keys:[]
        [
          agg Aggregate.Count "cnt";
          agg (Aggregate.Min "A") "min_a";
          agg (Aggregate.Max "A") "max_a";
        ]
        (base "R"));
    Expr.(
      group_by ~keys:[ "B" ]
        [ agg (Aggregate.Avg "A") "avg_a"; agg (Aggregate.Min "A") "min_a" ]
        (select (v "A" <% i 250) (base "R")));
    Expr.(
      group_by ~keys:[ "C" ]
        [ agg Aggregate.Count "cnt"; agg (Aggregate.Sum "A") "sum_a" ]
        (join (base "R") (base "S")));
  |]

let family rng =
  let db = Database.create () in
  let r_cols = [ Generate.Uniform (0, 400); Generate.Uniform (0, 5) ] in
  let s_cols = [ Generate.Uniform (0, 5); Generate.Uniform (0, 12) ] in
  Database.register db "R"
    (Generate.relation rng
       (Helpers.int_schema [ "A"; "B" ])
       r_cols
       (Rng.range rng ~lo:4 ~hi:24));
  Database.register db "S"
    (Generate.relation rng
       (Helpers.int_schema [ "B"; "C" ])
       s_cols
       (Rng.range rng ~lo:4 ~hi:24));
  let specs =
    [ ("R", r_cols, Rng.int rng 4, Rng.int rng 4);
      ("S", s_cols, Rng.int rng 4, Rng.int rng 4) ]
  in
  (db, specs)

(* One stream: a manager maintaining every grouped template
   incrementally, checked after every commit against [Query.Eval.eval]
   from the live base state — zero shared code with the delta path. *)
let grouped_delta_equals_recompute seed =
  let rng = Rng.make seed in
  let db, specs = family rng in
  let mgr = Manager.create ~domains:(1 + Rng.int rng 3) db in
  let strategies =
    [| Maintenance.Differential; Maintenance.Adaptive; Maintenance.Recompute |]
  in
  Array.iteri
    (fun k expr ->
      ignore
        (Manager.define_view mgr
           ~name:(Printf.sprintf "g%d" k)
           ~force:true
           ~options:
             {
               Maintenance.default_options with
               strategy = strategies.(k mod Array.length strategies);
               screen = Rng.chance rng 0.5;
               shard_min =
                 (if Rng.chance rng 0.5 then 1
                  else Ivm.Delta_eval.default_shard_min);
             }
           expr))
    grouped_exprs;
  let ok = ref true in
  for _ = 1 to 5 do
    let txn = Generate.mixed_transaction rng db specs in
    ignore (Manager.commit mgr txn);
    Array.iteri
      (fun k expr ->
        let got = View.contents (Manager.view mgr (Printf.sprintf "g%d" k)) in
        let want = Query.Eval.eval db expr in
        if not (Relation.equal got want) then ok := false)
      grouped_exprs
  done;
  !ok && Manager.all_consistent mgr

(* ------------------------------------------------------------------ *)
(* MIN/MAX drain-to-zero rescan                                        *)
(* ------------------------------------------------------------------ *)

(* pi[A](R) gives the extremum multiplicity > 1: deleting one supporting
   base tuple must NOT rescan (support 2 -> 1), deleting the second must
   (support 1 -> 0), and the rescan must land on the new extremum. *)
let rescan_regression () =
  let db =
    Helpers.db_of [ ("R", Helpers.rel [ "A"; "B" ] [ [ 5; 1 ]; [ 5; 2 ]; [ 9; 3 ] ]) ]
  in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"m" ~force:true
       Expr.(
         group_by ~keys:[]
           [ agg (Aggregate.Min "A") "min_a" ]
           (project [ "A" ] (base "R"))));
  let min_of () = int_contents (View.contents (Manager.view mgr "m")) in
  Alcotest.(check (list (pair (list int) int)))
    "initial minimum" [ ([ 5 ], 1) ] (min_of ());
  let rescans_of reports =
    List.fold_left (fun acc r -> acc + r.Maintenance.rescans) 0 reports
  in
  let r1 =
    Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 5; 1 ]) ]
  in
  Alcotest.(check int) "support 2 -> 1: no rescan" 0 (rescans_of r1);
  Alcotest.(check (list (pair (list int) int)))
    "minimum unchanged while supported" [ ([ 5 ], 1) ] (min_of ());
  let r2 =
    Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 5; 2 ]) ]
  in
  Alcotest.(check int) "support 1 -> 0: exactly one rescan" 1 (rescans_of r2);
  Alcotest.(check (list (pair (list int) int)))
    "rescan finds the next extremum" [ ([ 9 ], 1) ] (min_of ());
  let r3 =
    Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 9; 3 ]) ]
  in
  ignore (rescans_of r3);
  Alcotest.(check (list (pair (list int) int)))
    "empty group emits no row, even keyless" [] (min_of ());
  Alcotest.(check bool) "still consistent" true (Manager.all_consistent mgr)

(* ------------------------------------------------------------------ *)
(* Views over views                                                    *)
(* ------------------------------------------------------------------ *)

(* Two dependents over one parent: if the parent's committed delta were
   consumed zero times the children would be stale, twice and the
   counted contents would double — so exact contents after each commit
   pin "exactly once per dependent".  The COUNT child additionally pins
   multiplicity handling: parent deltas are counted relations, and a
   dropped or doubled count changes cnt. *)
let tower_worked_example () =
  let db =
    Helpers.db_of
      [ ("R", Helpers.rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 7; 20 ] ]) ]
  in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"p" ~force:true
       Expr.(select (v "A" <% i 100) (base "R")));
  ignore
    (Manager.define_view mgr ~name:"c_count" ~force:true
       Expr.(group_by ~keys:[ "B" ] [ agg Aggregate.Count "cnt" ] (base "p")));
  ignore
    (Manager.define_view mgr ~name:"c_proj" ~force:true
       Expr.(project [ "B" ] (base "p")));
  ignore
    (Manager.define_view mgr ~name:"grandchild" ~force:true
       Expr.(select (v "cnt" >% i 1) (base "c_count")));
  let check_counts name expected =
    Alcotest.(check (list (pair (list int) int)))
      name expected
      (int_contents (View.contents (Manager.view mgr name)))
  in
  check_counts "c_count" [ ([ 10; 2 ], 1); ([ 20; 1 ], 1) ];
  check_counts "c_proj" [ ([ 10 ], 2); ([ 20 ], 1) ];
  check_counts "grandchild" [ ([ 10; 2 ], 1) ];
  let reports =
    Manager.commit mgr
      [
        Transaction.insert "R" (Tuple.of_ints [ 3; 10 ]);
        Transaction.insert "R" (Tuple.of_ints [ 8; 20 ]);
        Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]);
      ]
  in
  (* Every view was maintained exactly once this commit. *)
  let names = List.map (fun r -> r.Maintenance.view_name) reports in
  Alcotest.(check (list string))
    "one report per view, parents before children"
    [ "p"; "c_count"; "c_proj"; "grandchild" ]
    names;
  check_counts "c_count" [ ([ 10; 2 ], 1); ([ 20; 2 ], 1) ];
  check_counts "c_proj" [ ([ 10 ], 2); ([ 20 ], 2) ];
  check_counts "grandchild" [ ([ 10; 2 ], 1); ([ 20; 2 ], 1) ];
  Alcotest.(check bool) "tower consistent" true (Manager.all_consistent mgr);
  (* A second commit that only touches one group: the other group's row
     must be left alone (delta, not recompute, reaches the children). *)
  let reports2 =
    Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 8; 20 ]) ]
  in
  check_counts "c_count" [ ([ 10; 2 ], 1); ([ 20; 1 ], 1) ];
  check_counts "grandchild" [ ([ 10; 2 ], 1) ];
  let c_count_report =
    List.find (fun r -> r.Maintenance.view_name = "c_count") reports2
  in
  Alcotest.(check int)
    "one group touched" 1 c_count_report.Maintenance.groups_touched

let deferred_parent_rejected () =
  let db = Helpers.db_of [ ("R", Helpers.rel [ "A"; "B" ] [ [ 1; 2 ] ]) ] in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"p" ~force:true Expr.(base "R"));
  Alcotest.check_raises "dependent views cannot be Deferred"
    (Invalid_argument
       "Manager.define_view: \"c\" reads views (p) and cannot be Deferred — \
        parent deltas flow only through immediate commits")
    (fun () ->
      ignore
        (Manager.define_view mgr ~name:"c" ~mode:Manager.Deferred ~force:true
           Expr.(project [ "A" ] (base "p"))))

let tower_tests =
  [
    quick "worked example: parent delta consumed exactly once per dependent"
      tower_worked_example;
    quick "deferred dependents are rejected" deferred_parent_rejected;
  ]

let () =
  Alcotest.run "aggregate"
    [
      ("ring laws", ring_tests);
      ( "grouped maintenance",
        [
          property ~count:200 "grouped delta = full recompute (200 streams)"
            QCheck.(int_range 0 1_000_000)
            grouped_delta_equals_recompute;
          quick "MIN drain-to-zero forces exactly one rescan" rescan_regression;
        ] );
      ("view towers", tower_tests);
    ]
