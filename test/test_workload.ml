(* Workload generators: the negative paths (retry-budget exhaustion,
   saturated domains) and the semantics of the transaction shapes the
   oracle fuzzer leans on (updates as delete+insert pairs, no-op
   transactions, correlated churn). *)

open Relalg
open Helpers
module Rng = Workload.Rng
module Generate = Workload.Generate

let tiny_cols = [ Generate.Uniform (0, 1); Generate.Uniform (0, 1) ]
let tiny_schema = int_schema [ "A"; "B" ]

(* All four tuples of the {0,1} x {0,1} domain. *)
let saturated () =
  Relation.of_tuples tiny_schema
    (List.map Tuple.of_ints [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ])

let negative_tests =
  [
    quick "relation raises when the domain is too small for the size"
      (fun () ->
        let rng = Rng.make 1 in
        try
          ignore
            (Generate.relation rng
               (int_schema [ "A" ])
               [ Generate.Uniform (0, 1) ]
               10);
          Alcotest.fail "generated 10 distinct tuples from a 2-value domain"
        with Invalid_argument _ -> ());
    quick "relation succeeds at exactly the domain size" (fun () ->
        let rng = Rng.make 1 in
        let r = Generate.relation rng tiny_schema tiny_cols 4 in
        Alcotest.(check int) "all four tuples" 4 (Relation.cardinal r));
    quick "fresh raises on a saturated domain" (fun () ->
        let rng = Rng.make 1 in
        try
          ignore (Generate.fresh rng (saturated ()) tiny_cols 1);
          Alcotest.fail "found a fresh tuple in a saturated domain"
        with Invalid_argument _ -> ());
    quick "fresh_where is best-effort: unsatisfiable predicate gives []"
      (fun () ->
        let rng = Rng.make 1 in
        let found =
          Generate.fresh_where rng
            (Relation.create tiny_schema)
            tiny_cols
            ~pred:(fun _ -> false)
            3
        in
        Alcotest.(check int) "nothing found, no exception" 0
          (List.length found));
    quick "fresh_where results are fresh, distinct and satisfy the predicate"
      (fun () ->
        let rng = Rng.make 7 in
        let r =
          Relation.of_tuples tiny_schema [ Tuple.of_ints [ 0; 0 ] ]
        in
        let pred t = Value.int (Tuple.get t 0) = 1 in
        let found = Generate.fresh_where rng r tiny_cols ~pred 2 in
        Alcotest.(check int) "both found" 2 (List.length found);
        List.iter
          (fun t ->
            Alcotest.(check bool) "fresh" false (Relation.mem r t);
            Alcotest.(check bool) "satisfies pred" true (pred t))
          found;
        Alcotest.(check bool) "distinct" true
          (not (Tuple.equal (List.nth found 0) (List.nth found 1))));
  ]

(* ------------------------------------------------------------------ *)
(* Transaction shapes                                                 *)
(* ------------------------------------------------------------------ *)

let wide_cols = [ Generate.Uniform (0, 100); Generate.Uniform (0, 7) ]

let fresh_db () =
  let rng = Rng.make 3 in
  db_of [ ("R", Generate.relation rng tiny_schema wide_cols 12) ]

let shape_tests =
  [
    quick "update_transaction pairs every delete with a fresh insert"
      (fun () ->
        let rng = Rng.make 5 in
        let db = fresh_db () in
        let r = Database.find db "R" in
        let txn = Generate.update_transaction rng db "R" ~columns:wide_cols ~updates:3 in
        Alcotest.(check int) "three delete+insert pairs" 6 (List.length txn);
        List.iteri
          (fun idx op ->
            match op, idx mod 2 with
            | Transaction.Delete (name, t), 0 ->
              Alcotest.(check string) "targets R" "R" name;
              Alcotest.(check bool) "deletes an existing tuple" true
                (Relation.mem r t)
            | Transaction.Insert (name, t), 1 ->
              Alcotest.(check string) "targets R" "R" name;
              Alcotest.(check bool) "inserts a fresh tuple" false
                (Relation.mem r t)
            | _ -> Alcotest.fail "operations do not alternate delete/insert")
          txn;
        (* The pairs form a valid strict transaction. *)
        ignore (Transaction.net_effect ~strict:true db txn));
    quick "noop_transaction nets to nothing" (fun () ->
        let rng = Rng.make 5 in
        let db = fresh_db () in
        let before = Relation.copy (Database.find db "R") in
        let txn = Generate.noop_transaction rng db "R" ~columns:wide_cols ~n:3 in
        Alcotest.(check int) "six operations" 6 (List.length txn);
        let net = Transaction.net_effect ~strict:true db txn in
        Alcotest.(check bool) "empty net effect" true
          (List.for_all
             (fun (_, (inserts, deletes)) -> inserts = [] && deletes = [])
             net);
        Transaction.apply db net;
        check_rel "state unchanged" before (Database.find db "R"));
    quick "correlated_transaction shares the pivot key value" (fun () ->
        let rng = Rng.make 9 in
        let db = fresh_db () in
        let r = Database.find db "R" in
        let txn =
          Generate.correlated_transaction rng db "R" ~key:1 ~columns:wide_cols
            ~inserts:2 ~deletes:2
        in
        Alcotest.(check bool) "non-empty" true (txn <> []);
        let key_of = function
          | Transaction.Insert (_, t) | Transaction.Delete (_, t) ->
            Tuple.get t 1
        in
        let pivot = key_of (List.hd txn) in
        List.iter
          (fun op ->
            Alcotest.(check value_testable) "same key value" pivot (key_of op);
            match op with
            | Transaction.Delete (_, t) ->
              Alcotest.(check bool) "deletes existing" true (Relation.mem r t)
            | Transaction.Insert (_, t) ->
              Alcotest.(check bool) "inserts fresh" false (Relation.mem r t))
          txn);
    quick "correlated_transaction on an empty relation is empty" (fun () ->
        let rng = Rng.make 9 in
        let db = db_of [ ("R", Relation.create tiny_schema) ] in
        Alcotest.(check int) "no operations" 0
          (List.length
             (Generate.correlated_transaction rng db "R" ~key:1
                ~columns:wide_cols ~inserts:2 ~deletes:2)));
  ]

let () =
  Alcotest.run "workload"
    [ ("negative paths", negative_tests); ("transaction shapes", shape_tests) ]
