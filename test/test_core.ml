(* Unit tests for the differential core's small combinatorial pieces:
   the Section 5.3 binary truth table (checked against brute-force set
   algebra), the nine-row tag algebra of Example 5.4, and the advisor's
   cost model and calibration. *)

open Relalg
open Helpers
module Truth_table = Ivm.Truth_table
module Tag = Ivm.Tag
module Advisor = Ivm.Advisor
module View = Ivm.View

(* ------------------------------------------------------------------ *)
(* Truth table (Section 5.3)                                          *)
(* ------------------------------------------------------------------ *)

let operand_list row = Array.to_list row

let truth_table_tests =
  let all_modified = [| true; true; true |] in
  [
    quick "row_count is 2^k - 1" (fun () ->
        List.iter
          (fun (modified, expected) ->
            Alcotest.(check int)
              (Printf.sprintf "k=%d"
                 (Array.fold_left (fun n m -> if m then n + 1 else n) 0 modified))
              expected
              (Truth_table.row_count ~modified))
          [
            ([| false; false; false |], 0);
            ([| true; false |], 1);
            ([| true; true |], 3);
            (all_modified, 7);
            ([| true; false; true; true |], 7);
          ]);
    quick "p=3 all modified: the 7 rows in binary-counter order" (fun () ->
        let open Truth_table in
        let expected =
          [
            [ Old_part; Old_part; Delta_part ];
            [ Old_part; Delta_part; Old_part ];
            [ Old_part; Delta_part; Delta_part ];
            [ Delta_part; Old_part; Old_part ];
            [ Delta_part; Old_part; Delta_part ];
            [ Delta_part; Delta_part; Old_part ];
            [ Delta_part; Delta_part; Delta_part ];
          ]
        in
        Alcotest.(check bool) "row order and contents" true
          (List.map operand_list (rows ~modified:all_modified) = expected));
    quick "unmodified sources always draw the old part" (fun () ->
        let rows = Truth_table.rows ~modified:[| true; false; true |] in
        Alcotest.(check int) "3 rows" 3 (List.length rows);
        List.iter
          (fun row ->
            Alcotest.(check bool) "middle operand old" true
              (row.(1) = Truth_table.Old_part))
          rows;
        Alcotest.(check bool) "no all-old row" true
          (List.for_all
             (fun row -> Array.exists (( = ) Truth_table.Delta_part) row)
             rows));
    quick "describe renders the paper's notation" (fun () ->
        Alcotest.(check string) "ur1 |x| r2 |x| ur3" "ur1 |x| r2 |x| ur3"
          (Truth_table.describe
             ~names:[ "r1"; "r2"; "r3" ]
             [| Truth_table.Delta_part; Truth_table.Old_part;
                Truth_table.Delta_part;
             |]));
  ]

(* Brute-force check of the expansion the table encodes:
   (o1 ∪ d1) |x| (o2 ∪ d2) |x| (o3 ∪ d3)
     = (o1 |x| o2 |x| o3)  ∪  union of the 2^k - 1 table rows.
   Multiset semantics throughout: natural_join multiplies counters,
   union adds them, so distributivity is exact. *)
let expansion_check ~modified olds deltas =
  let pick row i = match row with
    | Truth_table.Old_part -> List.nth olds i
    | Truth_table.Delta_part -> List.nth deltas i
  in
  let join_row row =
    match Array.to_list row with
    | [] -> assert false
    | _ ->
      let parts = List.mapi (fun i _ -> pick row.(i) i) olds in
      List.fold_left Ops.natural_join (List.hd parts) (List.tl parts)
  in
  let news = List.map2 Relation.union olds deltas in
  let full =
    List.fold_left Ops.natural_join (List.hd news) (List.tl news)
  in
  let current =
    List.fold_left Ops.natural_join (List.hd olds) (List.tl olds)
  in
  let from_rows =
    List.fold_left
      (fun acc row -> Relation.union acc (join_row row))
      current
      (Truth_table.rows ~modified)
  in
  check_rel "join of unions = union of table rows" full from_rows

let expansion_tests =
  let olds =
    [
      rel [ "A"; "B" ] [ [ 1; 2 ]; [ 5; 2 ]; [ 9; 4 ] ];
      rel [ "B"; "C" ] [ [ 2; 7 ]; [ 4; 1 ] ];
      rel [ "C"; "D" ] [ [ 7; 0 ]; [ 1; 3 ] ];
    ]
  in
  [
    quick "all three sources modified (7 rows)" (fun () ->
        expansion_check ~modified:[| true; true; true |] olds
          [
            rel [ "A"; "B" ] [ [ 2; 2 ]; [ 3; 4 ] ];
            rel [ "B"; "C" ] [ [ 2; 1 ]; [ 4; 7 ] ];
            rel [ "C"; "D" ] [ [ 1; 8 ] ];
          ]);
    quick "one source modified (1 row)" (fun () ->
        expansion_check ~modified:[| false; true; false |] olds
          [
            rel [ "A"; "B" ] [];
            rel [ "B"; "C" ] [ [ 2; 1 ]; [ 4; 7 ] ];
            rel [ "C"; "D" ] [];
          ]);
    quick "two sources modified (3 rows)" (fun () ->
        expansion_check ~modified:[| true; false; true |] olds
          [
            rel [ "A"; "B" ] [ [ 7; 2 ] ];
            rel [ "B"; "C" ] [];
            rel [ "C"; "D" ] [ [ 7; 9 ]; [ 1; 1 ] ];
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Tag algebra (Example 5.4)                                          *)
(* ------------------------------------------------------------------ *)

let tag_tests =
  [
    quick "join_table is the paper's nine rows verbatim" (fun () ->
        let open Tag in
        let expected =
          [
            ((Insert, Insert), Some Insert);
            ((Insert, Delete), None);
            ((Insert, Old), Some Insert);
            ((Delete, Insert), None);
            ((Delete, Delete), Some Delete);
            ((Delete, Old), Some Delete);
            ((Old, Insert), Some Insert);
            ((Old, Delete), Some Delete);
            ((Old, Old), Some Old);
          ]
        in
        Alcotest.(check bool) "table matches" true (join_table = expected));
    quick "join agrees with the table pointwise" (fun () ->
        List.iter
          (fun ((a, b), expected) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s |x| %s" (Tag.to_string a) (Tag.to_string b))
              true
              (Tag.join a b = expected))
          Tag.join_table);
    quick "the only ignored combinations mix insert with delete" (fun () ->
        List.iter
          (fun ((a, b), result) ->
            let mixes =
              (Tag.equal a Tag.Insert && Tag.equal b Tag.Delete)
              || (Tag.equal a Tag.Delete && Tag.equal b Tag.Insert)
            in
            Alcotest.(check bool) "ignore iff insert x delete" mixes
              (result = None))
          Tag.join_table);
    quick "selection and projection preserve tags" (fun () ->
        List.iter
          (fun t ->
            Alcotest.(check bool) "select" true (Tag.equal (Tag.select t) t);
            Alcotest.(check bool) "project" true (Tag.equal (Tag.project t) t))
          [ Tag.Insert; Tag.Delete; Tag.Old ]);
  ]

(* ------------------------------------------------------------------ *)
(* Advisor: cost model and calibration                                *)
(* ------------------------------------------------------------------ *)

let big_r_view () =
  (* One large source so the recompute cost is dominated by the scan. *)
  let tuples = List.init 400 (fun i -> [ i; i mod 7 ]) in
  let db = db_of [ ("R", rel [ "A"; "B" ] tuples) ] in
  let view =
    View.define ~name:"v" ~db
      (let open Condition.Formula.Dsl in
       Query.Expr.(select (v "A" <% i 100) (base "R")))
  in
  (db, view)

let net_of_size n : Transaction.net =
  [ ("R", (List.init n (fun i -> Tuple.of_ints [ 1000 + i; 0 ]), [])) ]

let advisor_tests =
  [
    quick "small delta on a large relation avoids recompute" (fun () ->
        let db, view = big_r_view () in
        let d = Advisor.decide view ~db ~net:(net_of_size 2) in
        (* The single-source selection carries a self-maintenance
           certificate, so on a small delta the zero-base-read arm beats
           both classic strategies; differential still beats recompute. *)
        Alcotest.(check bool) "self-maintenance wins" true
          (d.Advisor.choose = Advisor.Self_maintain);
        Alcotest.(check bool) "certificate cost present" true
          (d.Advisor.self_maintain_cost <> None);
        Alcotest.(check bool) "differential beats recompute" true
          (d.Advisor.differential_cost < d.Advisor.recompute_cost));
    quick "huge churn flips the choice to recompute" (fun () ->
        let db, view = big_r_view () in
        let d = Advisor.decide view ~db ~net:(net_of_size 5000) in
        Alcotest.(check bool) "recompute wins" true
          (d.Advisor.choose = Advisor.Recompute);
        Alcotest.(check bool) "compat flag agrees" false
          d.Advisor.choose_differential);
    quick "differential cost is monotone in the delta size" (fun () ->
        let db, view = big_r_view () in
        let cost n =
          (Advisor.decide view ~db ~net:(net_of_size n)).Advisor.differential_cost
        in
        let recompute n =
          (Advisor.decide view ~db ~net:(net_of_size n)).Advisor.recompute_cost
        in
        Alcotest.(check bool) "10 < 100 < 1000" true
          (cost 10 < cost 100 && cost 100 < cost 1000);
        Alcotest.(check (float 1e-9)) "recompute ignores the delta"
          (recompute 10) (recompute 1000));
    quick "untouched view costs nothing differentially" (fun () ->
        let db, view = big_r_view () in
        let d = Advisor.decide view ~db ~net:[] in
        Alcotest.(check (float 1e-9)) "zero differential cost" 0.0
          d.Advisor.differential_cost;
        Alcotest.(check bool) "so differential is chosen" true
          d.Advisor.choose_differential);
    quick "calibration fits actual = 2 x predicted on both strategies"
      (fun () ->
        Advisor.reset_samples ();
        let decision ~diff cost =
          {
            Advisor.differential_cost = (if diff then cost else cost *. 10.0);
            recompute_cost = (if diff then cost *. 10.0 else cost);
            self_maintain_cost = None;
            choose = (if diff then Advisor.Differential else Advisor.Recompute);
            choose_differential = diff;
          }
        in
        List.iter
          (fun cost ->
            Advisor.record ~view:"v" ~used:Advisor.Differential
              ~actual_ns:(int_of_float (cost *. 2.0))
              (decision ~diff:true cost);
            Advisor.record ~view:"v" ~used:Advisor.Recompute
              ~actual_ns:(int_of_float (cost *. 2.0))
              (decision ~diff:false cost))
          [ 500.0; 1000.0; 2000.0 ];
        let c = Advisor.calibrate () in
        Alcotest.(check int) "samples" 6 c.Advisor.n_samples;
        Alcotest.(check int) "all agree" 6 c.Advisor.agreements;
        Alcotest.(check (option (float 1e-6))) "differential scale = 2"
          (Some 2.0) c.Advisor.scale_differential;
        Alcotest.(check (option (float 1e-6))) "recompute scale = 2"
          (Some 2.0) c.Advisor.scale_recompute;
        Alcotest.(check (option (float 1e-6))) "zero residual error"
          (Some 0.0) c.Advisor.mean_abs_rel_error;
        Advisor.reset_samples ());
  ]

let () =
  Alcotest.run "core units"
    [
      ("truth table", truth_table_tests);
      ("truth table expansion", expansion_tests);
      ("tag algebra", tag_tests);
      ("advisor", advisor_tests);
    ]
