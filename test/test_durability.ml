(* The durable commit pipeline: binary codec round-trips and checksum
   rejection, WAL header compatibility, torn-tail truncation at every
   byte offset of the final record, checkpoint atomic round-trips, the
   self-heal backoff ladder, and manager-level recovery — including the
   QCheck property that recovery is idempotent for arbitrary generated
   workloads. *)

open Relalg
open Helpers
module Manager = Ivm.Manager
module Codec = Durability.Codec
module Wal = Durability.Wal
module State = Durability.State
module Record = Durability.Record
module Retry = Resilience.Retry

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ivm-durability-%s-%d" name (Unix.getpid ()))

let clean dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_dir name f =
  let dir = tmp name in
  clean dir;
  Fun.protect ~finally:(fun () -> clean dir) (fun () -> f dir)

let copy_file src dst =
  let content = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc content)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

(* Flip one byte of [path] at [pos]. *)
let corrupt_byte path pos =
  let content = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string content in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip w r value =
  let buf = Buffer.create 64 in
  w buf value;
  let reader = Codec.reader (Buffer.contents buf) in
  let decoded = r reader in
  Codec.expect_end reader;
  decoded

let codec_tests =
  [
    quick "integers round-trip (negatives and extremes)" (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check int) (string_of_int n) n
              (roundtrip Codec.w_int Codec.r_int n))
          [ 0; 1; -1; 42; -9_000_000; max_int; min_int ]);
    quick "strings and bools round-trip" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string) "string" s
              (roundtrip Codec.w_string Codec.r_string s))
          [ ""; "x"; "north\n\000tab\t" ];
        List.iter
          (fun b ->
            Alcotest.(check bool) "bool" b
              (roundtrip Codec.w_bool Codec.r_bool b))
          [ true; false ]);
    quick "relations round-trip with counts and schema" (fun () ->
        let r = counted_rel [ "A"; "B" ] [ ([ 1; 2 ], 3); ([ 4; 5 ], 1) ] in
        let decoded = roundtrip Codec.w_relation Codec.r_relation r in
        check_rel "relation" r decoded;
        Alcotest.(check bool)
          "schema" true
          (Schema.equal (Relation.schema r) (Relation.schema decoded)));
    quick "net effects round-trip" (fun () ->
        let net =
          [
            ("R", ([ Tuple.of_ints [ 1; 2 ] ], [ Tuple.of_ints [ 3; 4 ] ]));
            ("S", ([], [ Tuple.of_ints [ 9; 9 ] ]));
          ]
        in
        let decoded = roundtrip Codec.w_net Codec.r_net net in
        Alcotest.(check bool) "net equal" true (net = decoded));
    quick "truncated input raises Corrupt, not an escape" (fun () ->
        let buf = Buffer.create 16 in
        Codec.w_string buf "hello";
        let cut = String.sub (Buffer.contents buf) 0 3 in
        (try
           ignore (Codec.r_string (Codec.reader cut));
           Alcotest.fail "truncated input decoded"
         with Durability.Corrupt _ -> ()));
    quick "crc32 matches the IEEE reference vector" (fun () ->
        (* "123456789" -> 0xCBF43926 is the standard check value. *)
        Alcotest.(check int32)
          "check value" 0xCBF43926l
          (Codec.crc32 "123456789" ~pos:0 ~len:9));
  ]

(* ------------------------------------------------------------------ *)
(* Record and State round-trips                                        *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [
    Record.Commit
      {
        seq = 7;
        heals =
          [
            {
              Record.view = "v0";
              healed = false;
              health =
                State.Quarantined
                  {
                    error = "Fault.Injected(task)";
                    since = 5;
                    heal_failures = 2;
                    next_eligible = 11;
                  };
            };
          ];
        net = [ ("R", ([ Tuple.of_ints [ 1; 2 ] ], [])) ];
        outcomes =
          [
            ("v0", Record.Applied);
            ("v1", Record.Faulted "Fault.Injected(apply-inserts)");
            ("v2", Record.Cascade "parent v1 stale");
          ];
      };
    Record.Heal
      {
        seq = 3;
        change = { Record.view = "v1"; healed = true; health = State.Healthy };
      };
    Record.Repair { seq = 9; view = "v2" };
    Record.Refresh { seq = 12; view = "d0" };
  ]

let record_tests =
  [
    quick "every record variant round-trips" (fun () ->
        List.iter
          (fun record ->
            let decoded = roundtrip Record.encode Record.decode record in
            Alcotest.(check bool) (Record.describe record) true
              (record = decoded))
          sample_records);
    quick "state round-trips bit for bit" (fun () ->
        let st =
          {
            State.seq = 4;
            lsn = 6;
            relations = [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ] ]) ];
            views =
              [
                {
                  State.view = "v0";
                  health =
                    State.Disabled
                      { error = "boom"; since = 2; heal_failures = 3 };
                  contents = rel [ "A"; "B" ] [ [ 1; 2 ] ];
                  grouped = Some (rel [ "A" ] [ [ 1 ] ]);
                  pending =
                    [
                      ( "R",
                        rel [ "A"; "B" ] [ [ 5; 6 ] ],
                        rel [ "A"; "B" ] [] );
                    ];
                };
              ];
          }
        in
        let decoded = roundtrip State.encode State.decode st in
        (match State.diff st decoded with
        | None -> ()
        | Some d -> Alcotest.fail ("state diff after round-trip: " ^ d));
        Alcotest.(check bool) "equal" true (State.equal st decoded));
  ]

(* ------------------------------------------------------------------ *)
(* WAL file                                                            *)
(* ------------------------------------------------------------------ *)

let wal_tests =
  [
    quick "append / reopen returns the records in order" (fun () ->
        with_dir "wal-roundtrip" (fun dir ->
            Unix.mkdir dir 0o755;
            let path = Filename.concat dir "wal.bin" in
            let wal, existing =
              Wal.open_ ~fsync:Durability.Config.Always path
            in
            Alcotest.(check int) "fresh log" 0 (List.length existing);
            let lsns =
              List.map
                (fun r ->
                  let lsn = Wal.append wal r in
                  Wal.maybe_sync wal;
                  lsn)
                sample_records
            in
            Alcotest.(check (list int)) "lsns" [ 1; 2; 3; 4 ] lsns;
            let _, scanned = Wal.open_ ~fsync:Durability.Config.Never path in
            Alcotest.(check bool)
              "records survive" true
              (List.map snd scanned = sample_records);
            Alcotest.(check (list int))
              "lsns survive" [ 1; 2; 3; 4 ]
              (List.map fst scanned)));
    quick "foreign and future headers raise Incompatible_wal" (fun () ->
        with_dir "wal-header" (fun dir ->
            Unix.mkdir dir 0o755;
            let path = Filename.concat dir "wal.bin" in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc "NOTAWAL!");
            (try
               ignore (Wal.open_ ~fsync:Durability.Config.Always path);
               Alcotest.fail "foreign magic accepted"
             with Durability.Incompatible_wal _ -> ());
            let buf = Buffer.create 8 in
            Buffer.add_string buf Wal.magic;
            Buffer.add_uint16_le buf (Wal.version + 1);
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (Buffer.contents buf));
            try
              ignore (Wal.open_ ~fsync:Durability.Config.Always path);
              Alcotest.fail "future version accepted"
            with Durability.Incompatible_wal _ -> ()));
    quick "a flipped payload byte drops the record as a torn tail"
      (fun () ->
        with_dir "wal-crc" (fun dir ->
            Unix.mkdir dir 0o755;
            let path = Filename.concat dir "wal.bin" in
            let wal, _ = Wal.open_ ~fsync:Durability.Config.Always path in
            List.iter
              (fun r ->
                ignore (Wal.append wal r);
                Wal.maybe_sync wal)
              sample_records;
            let entries = Wal.entries path in
            let _, off, len = List.nth entries 3 in
            (* Flip a byte inside the last frame's payload. *)
            corrupt_byte path (off + len - 1);
            let wal2, scanned =
              Wal.open_ ~fsync:Durability.Config.Never path
            in
            Alcotest.(check int) "last record dropped" 3 (List.length scanned);
            Alcotest.(check int) "torn bytes counted" len
              (Wal.torn_bytes wal2)));
  ]

(* ------------------------------------------------------------------ *)
(* Manager-level durability                                            *)
(* ------------------------------------------------------------------ *)

let orders_columns =
  [ Workload.Generate.Uniform (1, 500); Workload.Generate.Uniform (1, 9) ]

let make_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ]; [ 7; 2 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 2; 7 ]; [ 4; 8 ]; [ 6; 9 ] ]);
    ]

let define_views mgr =
  ignore
    (Manager.define_view mgr ~name:"j"
       Query.Expr.(join (base "R") (base "S")));
  ignore
    (Manager.define_view mgr ~name:"p" Query.Expr.(project [ "B" ] (base "R")))

(* Run [n] seed-deterministic transactions against a fresh durable
   manager in [dir], returning the manager and the per-LSN state
   snapshots (keyed by {!Manager.wal_lsn} after each commit). *)
let run_durable ?fsync ?checkpoint_every ~seed ~transactions dir =
  let config = Durability.Config.make ?fsync ?checkpoint_every dir in
  let db = make_db () in
  let mgr = Manager.create ~domains:1 ~durability:config db in
  define_views mgr;
  let rng = Workload.Rng.make seed in
  let snaps = Hashtbl.create 16 in
  Hashtbl.replace snaps (Manager.wal_lsn mgr) (Manager.capture_state mgr);
  for _ = 1 to transactions do
    let txn =
      Workload.Generate.transaction rng db "R" ~columns:orders_columns
        ~inserts:2 ~deletes:1
    in
    ignore (Manager.commit mgr txn);
    Hashtbl.replace snaps (Manager.wal_lsn mgr) (Manager.capture_state mgr)
  done;
  (mgr, snaps)

let fresh_recovered ?fsync ?checkpoint_every dir =
  let config = Durability.Config.make ?fsync ?checkpoint_every dir in
  let mgr = Manager.create ~domains:1 ~durability:config (make_db ()) in
  define_views mgr;
  let info = Manager.recover mgr in
  (mgr, info)

let check_state msg expected actual =
  match State.diff expected actual with
  | None -> ()
  | Some d -> Alcotest.fail (msg ^ ": " ^ d)

let manager_tests =
  [
    quick "commit appends one record; recovery reproduces the state"
      (fun () ->
        with_dir "mgr-roundtrip" (fun dir ->
            let mgr, _ = run_durable ~seed:11 ~transactions:5 dir in
            Alcotest.(check bool) "durable" true (Manager.durable mgr);
            Alcotest.(check int) "one record per commit" 5
              (Manager.wal_lsn mgr);
            let expected = Manager.capture_state mgr in
            let mgr2, info = fresh_recovered dir in
            Alcotest.(check int) "all records replayed" 5
              info.Manager.records_replayed;
            check_state "recovered" expected (Manager.capture_state mgr2);
            Alcotest.(check bool)
              "views consistent" true
              (Manager.all_consistent mgr2)));
    quick "recovery is idempotent (in place and from the rewritten disk)"
      (fun () ->
        with_dir "mgr-idempotent" (fun dir ->
            let mgr, _ = run_durable ~seed:12 ~transactions:4 dir in
            let expected = Manager.capture_state mgr in
            let mgr2, _ = fresh_recovered dir in
            check_state "first" expected (Manager.capture_state mgr2);
            (* recover rewrote the checkpoint and truncated the WAL; a
               fresh manager over the rewritten directory replays
               nothing and lands on the same state. *)
            let mgr3, info3 = fresh_recovered dir in
            Alcotest.(check int) "nothing left to replay" 0
              info3.Manager.records_replayed;
            check_state "second" expected (Manager.capture_state mgr3)));
    quick "checkpoint cadence truncates the WAL and bounds replay"
      (fun () ->
        with_dir "mgr-cadence" (fun dir ->
            let mgr, _ =
              run_durable ~checkpoint_every:3 ~seed:13 ~transactions:7 dir
            in
            let expected = Manager.capture_state mgr in
            let mgr2, info = fresh_recovered ~checkpoint_every:3 dir in
            Alcotest.(check bool)
              (Printf.sprintf "replay bounded by cadence (%d <= 3)"
                 info.Manager.records_replayed)
              true
              (info.Manager.records_replayed <= 3);
            check_state "recovered" expected (Manager.capture_state mgr2)));
    quick "explicit checkpoint makes recovery a pure restore" (fun () ->
        with_dir "mgr-checkpoint" (fun dir ->
            let mgr, _ = run_durable ~seed:14 ~transactions:3 dir in
            Manager.checkpoint mgr;
            let expected = Manager.capture_state mgr in
            let mgr2, info = fresh_recovered dir in
            Alcotest.(check int) "no replay" 0 info.Manager.records_replayed;
            check_state "restored" expected (Manager.capture_state mgr2)));
    quick "commit before recovery is refused; define after append too"
      (fun () ->
        with_dir "mgr-guards" (fun dir ->
            let mgr, _ = run_durable ~seed:15 ~transactions:2 dir in
            (* A second manager over live durable state must recover
               before committing. *)
            let config = Durability.Config.make dir in
            let late = Manager.create ~domains:1 ~durability:config (make_db ())
            in
            define_views late;
            (try
               ignore
                 (Manager.commit late
                    [ Transaction.insert "R" (Tuple.of_ints [ 100; 1 ]) ]);
               Alcotest.fail "commit before recovery accepted"
             with Failure _ -> ());
            (* The first manager already appended: defining another view
               now would make replay ambiguous. *)
            try
              ignore
                (Manager.define_view mgr ~name:"late"
                   Query.Expr.(project [ "A" ] (base "R")));
              Alcotest.fail "define_view after append accepted"
            with Invalid_argument _ -> ()));
    quick "recover refuses a foreign WAL" (fun () ->
        with_dir "mgr-foreign" (fun dir ->
            Unix.mkdir dir 0o755;
            Out_channel.with_open_bin (Filename.concat dir "wal.bin")
              (fun oc -> Out_channel.output_string oc "NOTAWAL!");
            let config = Durability.Config.make dir in
            try
              ignore (Manager.create ~domains:1 ~durability:config (make_db ()));
              Alcotest.fail "foreign WAL accepted"
            with Durability.Incompatible_wal _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Torn-tail corpus: cut the final record at every byte offset         *)
(* ------------------------------------------------------------------ *)

let torn_tail_tests =
  [
    quick "recovery survives truncation at every byte of the last record"
      (fun () ->
        with_dir "torn-corpus" (fun dir ->
            with_dir "torn-corpus-cut" (fun dir2 ->
                let mgr, snaps = run_durable ~seed:16 ~transactions:4 dir in
                let full = Manager.capture_state mgr in
                let wal_path =
                  Durability.Config.wal_path (Durability.Config.make dir)
                in
                let entries = Wal.entries wal_path in
                let last_lsn, off, len =
                  List.nth entries (List.length entries - 1)
                in
                let prev =
                  match Hashtbl.find_opt snaps (last_lsn - 1) with
                  | Some st -> st
                  | None -> Alcotest.fail "missing snapshot"
                in
                Unix.mkdir dir2 0o755;
                let wal2 =
                  Durability.Config.wal_path (Durability.Config.make dir2)
                in
                let ckpt = Filename.concat dir "checkpoint.bin" in
                let ckpt2 = Filename.concat dir2 "checkpoint.bin" in
                for cut = 0 to len do
                  copy_file wal_path wal2;
                  copy_file ckpt ckpt2;
                  truncate_file wal2 (off + cut);
                  let mgr2, info = fresh_recovered dir2 in
                  (* A whole frame (cut = len) recovers everything; any
                     partial cut falls back to the previous record. *)
                  let expected = if cut = len then full else prev in
                  check_state
                    (Printf.sprintf "cut at byte %d of %d" cut len)
                    expected
                    (Manager.capture_state mgr2);
                  Alcotest.(check int)
                    (Printf.sprintf "torn bytes at cut %d" cut)
                    (if cut = 0 || cut = len then 0 else cut)
                    info.Manager.torn_bytes
                done)))
  ]

(* ------------------------------------------------------------------ *)
(* Self-heal backoff ladder                                            *)
(* ------------------------------------------------------------------ *)

let backoff_tests =
  [
    quick "delays grow by the multiplier from the base" (fun () ->
        let s =
          {
            Retry.rounds = 5;
            base = 2;
            multiplier = 3.0;
            backoff_jitter = 0.0;
            schedule_seed = 1;
          }
        in
        Alcotest.(check (list int))
          "ladder" [ 2; 6; 18; 54 ]
          (List.map
             (fun failures -> Retry.heal_delay s ~failures)
             [ 1; 2; 3; 4 ]));
    quick "delay is at least one commit" (fun () ->
        let s =
          {
            Retry.rounds = 3;
            base = 0;
            multiplier = 0.5;
            backoff_jitter = 0.0;
            schedule_seed = 1;
          }
        in
        Alcotest.(check int) "floor" 1 (Retry.heal_delay s ~failures:1));
    quick "jitter is seed-deterministic and bounded" (fun () ->
        let s seed =
          {
            Retry.rounds = 4;
            base = 10;
            multiplier = 2.0;
            backoff_jitter = 0.5;
            schedule_seed = seed;
          }
        in
        let d1 = Retry.heal_delay (s 42) ~failures:2 in
        let d2 = Retry.heal_delay (s 42) ~failures:2 in
        Alcotest.(check int) "same seed, same delay" d1 d2;
        (* base * mult = 20; jitter 0.5 keeps it within [10, 30]. *)
        Alcotest.(check bool)
          (Printf.sprintf "delay %d within jitter band" d1)
          true
          (d1 >= 10 && d1 <= 30));
    quick "default schedule matches the pre-ladder behaviour" (fun () ->
        Alcotest.(check int) "three rounds" 3 Retry.default_schedule.Retry.rounds;
        Alcotest.(check int)
          "one-commit base delay" 1
          (Retry.heal_delay Retry.default_schedule ~failures:1));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: recovery idempotence over generated workloads               *)
(* ------------------------------------------------------------------ *)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:25 ~name:"recover twice = recover once"
         QCheck.(pair small_nat (int_range 1 8))
         (fun (seed, transactions) ->
           let dir = tmp (Printf.sprintf "prop-%d-%d" seed transactions) in
           clean dir;
           Fun.protect
             ~finally:(fun () -> clean dir)
             (fun () ->
               let checkpoint_every = seed mod 3 in
               let mgr, _ =
                 run_durable ~checkpoint_every ~seed ~transactions dir
               in
               let expected = Manager.capture_state mgr in
               let mgr2, _ = fresh_recovered ~checkpoint_every dir in
               let first = Manager.capture_state mgr2 in
               let mgr3, info3 = fresh_recovered ~checkpoint_every dir in
               let second = Manager.capture_state mgr3 in
               State.equal expected first && State.equal first second
               && info3.Manager.records_replayed = 0)));
  ]

let () =
  Alcotest.run "durability"
    [
      ("codec", codec_tests);
      ("records", record_tests);
      ("wal", wal_tests);
      ("manager", manager_tests);
      ("torn-tail", torn_tail_tests);
      ("backoff", backoff_tests);
      ("properties", property_tests);
    ]
