(* Property-based tests.  Each property derives a full random scenario
   (database, view definition, transactions, maintenance options) from a
   single integer seed via the deterministic Workload generators, so
   failures reproduce exactly. *)

open Relalg
module F = Condition.Formula
module Expr = Query.Expr
module Spj = Query.Spj
module Planner = Query.Planner
module Delta = Ivm.Delta
module Delta_eval = Ivm.Delta_eval
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Rng = Workload.Rng
module Generate = Workload.Generate
open F.Dsl

let property name ?(count = 100) law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.(int_range 0 1_000_000) law)

(* ------------------------------------------------------------------ *)
(* Random scenario construction                                       *)
(* ------------------------------------------------------------------ *)

type scenario = {
  db : Database.t;
  expr : Expr.t;
  update_specs : (string * Generate.column list * int * int) list;
}

(* Small relations over a narrow key range so joins hit and conditions
   select nontrivially. *)
let random_scenario rng =
  let key_range = 8 in
  let size () = Rng.range rng ~lo:5 ~hi:30 in
  let r_cols =
    [ Generate.Uniform (0, 400); Generate.Uniform (0, key_range - 1) ]
  in
  let s_cols =
    [ Generate.Uniform (0, key_range - 1); Generate.Uniform (0, 20) ]
  in
  let t_cols = [ Generate.Uniform (0, 20); Generate.Uniform (0, 400) ] in
  let db = Database.create () in
  Database.register db "R"
    (Generate.relation rng (Helpers.int_schema [ "A"; "B" ]) r_cols (size ()));
  Database.register db "S"
    (Generate.relation rng (Helpers.int_schema [ "B"; "C" ]) s_cols (size ()));
  Database.register db "T"
    (Generate.relation rng (Helpers.int_schema [ "C"; "D" ]) t_cols (size ()));
  let conditions =
    [|
      (v "A" <% i 200) &&% (v "C" >% i 5);
      (v "B" =% i 3) ||% (v "C" <% i 4);
      (v "A" >=% v "C" +% 2) &&% (v "B" <=% i 6);
      v "C" <>% i 7;
      (v "A" <% i 100) ||% ((v "B" >=% i 2) &&% (v "C" <=% i 15));
    |]
  in
  let expr =
    match Rng.int rng 6 with
    | 0 -> Expr.(select (v "A" <% i 200) (base "R"))
    | 1 -> Expr.(project [ "B" ] (base "R"))
    | 2 -> Expr.(join (base "R") (base "S"))
    | 3 ->
      Expr.(
        project [ "A"; "C" ]
          (select (Rng.choice rng conditions) (join (base "R") (base "S"))))
    | 4 ->
      Expr.(
        select (Rng.choice rng conditions)
          (join_all [ base "R"; base "S"; base "T" ]))
    | _ ->
      Expr.(
        project [ "B"; "D" ]
          (select
             ((v "C" >% i 2) &&% (v "D" <% i 300))
             (join (base "S") (base "T"))))
  in
  let spec name cols =
    (name, cols, Rng.int rng 4, Rng.int rng 4)
  in
  {
    db;
    expr;
    update_specs = [ spec "R" r_cols; spec "S" s_cols; spec "T" t_cols ];
  }

let random_options rng =
  {
    Maintenance.strategy = Maintenance.Differential;
    screen = Rng.chance rng 0.5;
    reuse = Rng.chance rng 0.5;
    order = (if Rng.chance rng 0.5 then `Greedy else `Declaration);
    join_impl = (if Rng.chance rng 0.8 then `Hash else `Nested_loop);
    shard_min =
      (if Rng.chance rng 0.5 then 1 else Ivm.Delta_eval.default_shard_min);
  }

(* ------------------------------------------------------------------ *)
(* The central property: differential maintenance equals complete     *)
(* re-evaluation, counters included, across random transactions.      *)
(* ------------------------------------------------------------------ *)

let differential_equals_recompute seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let view =
    View.define
      ~minimize:(Rng.chance rng 0.5)
      ~name:"v" ~db:scenario.db scenario.expr
  in
  let ok = ref true in
  for _ = 1 to 3 do
    let txn = Generate.mixed_transaction rng scenario.db scenario.update_specs in
    ignore
      (Maintenance.process ~options:(random_options rng) ~views:[ view ]
         ~db:scenario.db txn);
    if not (View.consistent view scenario.db) then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Tagged reference evaluator agrees with the pair evaluator          *)
(* ------------------------------------------------------------------ *)

let tagged_equals_pair seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let view = View.define ~name:"v" ~db:scenario.db scenario.expr in
  let spj = View.spj view in
  let before = Relation.copy (View.contents view) in
  let txn = Generate.mixed_transaction rng scenario.db scenario.update_specs in
  let net = Transaction.net_effect scenario.db txn in
  Maintenance.apply_deletes scenario.db net;
  let inputs =
    List.map
      (fun (s : Spj.source) ->
        let q = View.qualified_schema view ~alias:s.Spj.alias in
        let old_part =
          Relation.reschema (Database.find scenario.db s.Spj.relation) q
        in
        let delta =
          Option.map (Delta.of_lists q) (List.assoc_opt s.Spj.relation net)
        in
        (s.Spj.alias, old_part, delta))
      spj.Spj.sources
  in
  let pair =
    Delta_eval.eval ~spj
      ~inputs:
        (List.map
           (fun (alias, old_part, delta) ->
             { Delta_eval.alias; old_part; delta })
           inputs)
      ()
  in
  let tagged =
    Ivm.Tagged_eval.eval_spj ~spj
      ~inputs:
        (List.map
           (fun (alias, old_part, delta) ->
             let delta =
               Option.value
                 ~default:(Delta.empty (Relation.schema old_part))
                 delta
             in
             (alias, Ivm.Tagged_eval.of_parts ~old_part ~delta))
           inputs)
  in
  (* Restore the base state for other iterations (not needed, single shot). *)
  Maintenance.apply_inserts scenario.db net;
  let deltas_agree =
    Relation.equal pair.Delta_eval.delta.Delta.inserts
      tagged.Ivm.Tagged_eval.delta.Delta.inserts
    && Relation.equal pair.Delta_eval.delta.Delta.deletes
         tagged.Ivm.Tagged_eval.delta.Delta.deletes
  in
  (* unchanged = old view minus the delete contributions *)
  let expected_unchanged =
    Relation.diff before tagged.Ivm.Tagged_eval.delta.Delta.deletes
  in
  deltas_agree
  && Relation.equal expected_unchanged tagged.Ivm.Tagged_eval.unchanged

(* ------------------------------------------------------------------ *)
(* Irrelevance soundness: provably irrelevant updates never change    *)
(* the view, in any database state.                                   *)
(* ------------------------------------------------------------------ *)

let irrelevance_sound seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let view = View.define ~name:"v" ~db:scenario.db scenario.expr in
  let spj = View.spj view in
  let lookup name = Relation.schema (Database.find scenario.db name) in
  let ok = ref true in
  List.iter
    (fun (s : Spj.source) ->
      let screen = View.screen_for view ~alias:s.Spj.alias in
      let base = Database.find scenario.db s.Spj.relation in
      let columns = ref [] in
      (match s.Spj.relation with
      | "R" -> columns := [ Generate.Uniform (0, 400); Generate.Uniform (0, 7) ]
      | "S" -> columns := [ Generate.Uniform (0, 7); Generate.Uniform (0, 20) ]
      | _ -> columns := [ Generate.Uniform (0, 20); Generate.Uniform (0, 400) ]);
      for _ = 1 to 10 do
        let t = Generate.tuple rng !columns in
        if (not (Ivm.Irrelevance.relevant screen t)) && not (Relation.mem base t)
        then begin
          (* Inserting a provably irrelevant tuple must not change the
             view, independent of the database state (Theorem 4.1). *)
          let before = Spj.eval lookup scenario.db spj in
          Relation.add base t;
          let after = Spj.eval lookup scenario.db spj in
          Relation.remove base t;
          if not (Relation.equal before after) then ok := false
        end
      done)
    spj.Spj.sources;
  !ok

(* ------------------------------------------------------------------ *)
(* Counted-operator laws                                              *)
(* ------------------------------------------------------------------ *)

let random_counted rng names max_val =
  let schema = Helpers.int_schema names in
  let r = Relation.create schema in
  for _ = 1 to Rng.int rng 20 do
    let t =
      Tuple.of_ints (List.map (fun _ -> Rng.int rng max_val) names)
    in
    Relation.add ~count:(1 + Rng.int rng 3) r t
  done;
  r

let project_distributes_over_diff seed =
  let rng = Rng.make seed in
  let r1 = random_counted rng [ "A"; "B" ] 5 in
  (* r2 is a sub-multiset of r1 so the difference is defined. *)
  let r2 = Relation.create (Relation.schema r1) in
  Relation.iter
    (fun t c ->
      let keep = Rng.int rng (c + 1) in
      if keep > 0 then Relation.add ~count:keep r2 t)
    r1;
  Relation.equal
    (Ops.project (Relation.diff r1 r2) [ "B" ])
    (Relation.diff (Ops.project r1 [ "B" ]) (Ops.project r2 [ "B" ]))

let join_distributes_over_union seed =
  let rng = Rng.make seed in
  let a = random_counted rng [ "A"; "B" ] 4 in
  let b = random_counted rng [ "A"; "B" ] 4 in
  let c = random_counted rng [ "B"; "C" ] 4 in
  Relation.equal
    (Ops.natural_join (Relation.union a b) c)
    (Relation.union (Ops.natural_join a c) (Ops.natural_join b c))

let select_commutes_with_union seed =
  let rng = Rng.make seed in
  let a = random_counted rng [ "A" ] 6 in
  let b = random_counted rng [ "A" ] 6 in
  let p t = Value.int (Tuple.get t 0) mod 2 = 0 in
  Relation.equal
    (Ops.select p (Relation.union a b))
    (Relation.union (Ops.select p a) (Ops.select p b))

(* ------------------------------------------------------------------ *)
(* run_many equals run                                                *)
(* ------------------------------------------------------------------ *)

let run_many_equals_run seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let lookup name = Relation.schema (Database.find scenario.db name) in
  let spj = Spj.compile lookup scenario.expr in
  let qualified s =
    Relation.reschema
      (Database.find scenario.db s.Spj.relation)
      (Spj.qualified_schema lookup s)
  in
  (* Variants swap random sources for small random subsets. *)
  let variant () =
    List.map
      (fun (s : Spj.source) ->
        let full = qualified s in
        if Rng.chance rng 0.4 then
          let subset = Relation.create (Relation.schema full) in
          Relation.iter
            (fun t c -> if Rng.chance rng 0.3 then Relation.add ~count:c subset t)
            full;
          (s.Spj.alias, subset)
        else (s.Spj.alias, full))
      spj.Spj.sources
  in
  let variants = List.init (1 + Rng.int rng 5) (fun _ -> variant ()) in
  let many =
    Planner.run_many ~variants ~condition_dnf:spj.Spj.condition_dnf
      ~projection:spj.Spj.projection ()
  in
  List.for_all2
    (fun sources result ->
      Relation.equal result
        (Planner.run ~sources ~condition_dnf:spj.Spj.condition_dnf
           ~projection:spj.Spj.projection ()))
    variants many

(* ------------------------------------------------------------------ *)
(* Tableau minimization preserves the visible tuple set               *)
(* ------------------------------------------------------------------ *)

let minimize_preserves_set seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let lookup name = Relation.schema (Database.find scenario.db name) in
  let redundant =
    (* Inject a duplicate join to give the minimizer something to fold
       half of the time. *)
    if Rng.chance rng 0.5 then Expr.(join scenario.expr scenario.expr)
    else scenario.expr
  in
  match Spj.compile lookup redundant with
  | spj ->
    let minimized = Query.Tableau.minimize spj in
    Relation.set_equal
      (Spj.eval lookup scenario.db spj)
      (Spj.eval lookup scenario.db minimized)
  | exception Spj.Compile_error _ ->
    (* join of expr with itself can collide on attributes for project
       shapes; that is fine, nothing to test. *)
    true

(* ------------------------------------------------------------------ *)
(* Transactions: net effect equals sequential application             *)
(* ------------------------------------------------------------------ *)

let net_effect_equals_sequential seed =
  let rng = Rng.make seed in
  let schema = Helpers.int_schema [ "A" ] in
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples schema
       (List.filter_map
          (fun k -> if Rng.chance rng 0.5 then Some (Tuple.of_ints [ k ]) else None)
          (List.init 8 Fun.id)));
  let shadow = Relation.copy (Database.find db "R") in
  let txn =
    List.init (Rng.int rng 12) (fun _ ->
        let t = Tuple.of_ints [ Rng.int rng 8 ] in
        if Rng.chance rng 0.5 then Transaction.insert "R" t
        else Transaction.delete "R" t)
  in
  (* Filter to a valid op sequence against the shadow state. *)
  let valid =
    List.filter
      (fun op ->
        match op with
        | Transaction.Insert (_, t) ->
          if Relation.mem shadow t then false
          else begin
            Relation.add shadow t;
            true
          end
        | Transaction.Delete (_, t) ->
          if Relation.mem shadow t then begin
            Relation.remove shadow t;
            true
          end
          else false)
      txn
  in
  let net = Transaction.net_effect db valid in
  Transaction.apply db net;
  Relation.equal shadow (Database.find db "R")

(* ------------------------------------------------------------------ *)
(* String-fragment solver vs a brute-force oracle                     *)
(* ------------------------------------------------------------------ *)

let string_solver_sound seed =
  let rng = Rng.make seed in
  let vars = [ "x"; "y"; "z" ] in
  let constants = [ "a"; "b"; "c" ] in
  let operand () =
    if Rng.chance rng 0.6 then
      F.O_var (List.nth vars (Rng.int rng (List.length vars)))
    else
      F.O_const
        (Value.Str (List.nth constants (Rng.int rng (List.length constants))))
  in
  let cmp () =
    List.nth [ F.Eq; F.Neq; F.Lt; F.Leq; F.Gt; F.Geq ] (Rng.int rng 6)
  in
  let atoms =
    List.init (1 + Rng.int rng 5) (fun _ -> F.atom (operand ()) (cmp ()) (operand ()))
  in
  (* Oracle: enumerate assignments over a small closed string domain.  The
     domain includes the constants plus fresh values between and beyond
     them, so Sat answers within the domain are representative. *)
  let domain = [ "a"; "ab"; "b"; "bc"; "c"; "d" ] in
  let rec assignments = function
    | [] -> [ [] ]
    | v :: rest ->
      List.concat_map
        (fun tail -> List.map (fun x -> (v, x) :: tail) domain)
        (assignments rest)
  in
  let witness =
    List.exists
      (fun assignment ->
        let lookup v = Value.Str (List.assoc v assignment) in
        F.eval_conjunction lookup atoms)
      (assignments vars)
  in
  match Condition.Eq_solver.solve atoms with
  | Condition.Eq_solver.Unsat ->
    (* Unsat must be exact: no witness may exist. *)
    not witness
  | Condition.Eq_solver.Sat ->
    (* Sat is claimed only for the constant-free ordering fragment plus
       equalities; the oracle domain is rich enough to find a witness. *)
    witness
  | Condition.Eq_solver.Unknown -> true

(* ------------------------------------------------------------------ *)
(* Declared domain bounds keep the screen sound                       *)
(* ------------------------------------------------------------------ *)

let bounded_screening_sound seed =
  let rng = Rng.make seed in
  let hi = 20 + Rng.int rng 30 in
  let r_schema = Helpers.int_schema [ "A"; "B" ] in
  let s_schema =
    Schema.make_bounded
      [ ("B", Value.Int_ty, None); ("C", Value.Int_ty, Some (0, hi)) ]
  in
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples r_schema
       (List.init 10 (fun k -> Tuple.of_ints [ k; k mod 5 ])));
  Database.register db "S"
    (Relation.of_tuples s_schema
       (List.init 10 (fun k -> Tuple.of_ints [ k mod 5; k * hi / 10 ])));
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"v" ~db
      Query.Expr.(select (v "C" >=% v "A") (join (base "R") (base "S")))
  in
  let screen = Ivm.View.screen_for view ~alias:"R" in
  let lookup name = Relation.schema (Database.find db name) in
  let ok = ref true in
  for _ = 1 to 20 do
    let t = Tuple.of_ints [ Rng.range rng ~lo:(-5) ~hi:(hi + 10); Rng.int rng 5 ] in
    if not (Ivm.Irrelevance.relevant screen t) then begin
      (* Soundness: inserting it (when legal) must leave the view
         unchanged in the current state. *)
      let base = Database.find db "R" in
      if not (Relation.mem base t) then begin
        let before = Query.Spj.eval lookup db (View.spj view) in
        Relation.add base t;
        let after = Query.Spj.eval lookup db (View.spj view) in
        Relation.remove base t;
        if not (Relation.equal before after) then ok := false
      end
    end
  done;
  (* And completeness of the bound: A beyond hi is always irrelevant. *)
  if Ivm.Irrelevance.relevant screen (Tuple.of_ints [ hi + 1; 0 ]) then
    ok := false;
  !ok

(* ------------------------------------------------------------------ *)
(* Parallel commit is observationally identical to sequential commit: *)
(* same seed driven through a 1-domain and a 4-domain manager must    *)
(* produce identical materializations, reports (timings aside) and    *)
(* cumulative counters.                                               *)
(* ------------------------------------------------------------------ *)

module Manager = Ivm.Manager

let report_key (r : Maintenance.report) =
  ( r.Maintenance.view_name,
    Maintenance.strategy_name r.Maintenance.strategy_used,
    ( r.Maintenance.screened_out,
      r.Maintenance.screened_kept,
      r.Maintenance.rows_evaluated ),
    (r.Maintenance.delta_inserts, r.Maintenance.delta_deletes) )

let stats_key (s : Manager.stats) =
  ( ( s.Manager.commits,
      s.Manager.rows_evaluated,
      s.Manager.screened_out,
      s.Manager.screened_kept ),
    ( s.Manager.tuples_inserted,
      s.Manager.tuples_deleted,
      s.Manager.recomputations ),
    ( s.Manager.advisor_decisions,
      s.Manager.advisor_agreements,
      s.Manager.predicted_differential_cost,
      s.Manager.predicted_recompute_cost ) )

(* Replays one seed through a manager of the given parallelism.  Every
   random choice comes from the reseeded [rng], and the database evolves
   identically commit by commit, so both runs see the same scenario, view
   set and transaction stream. *)
let run_parallel_workload ?(shard_min = Delta_eval.default_shard_min) ~domains
    seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let mgr = Manager.create ~domains scenario.db in
  let strategies =
    [|
      Maintenance.Differential; Maintenance.Adaptive; Maintenance.Recompute;
      Maintenance.Self_maintain;
    |]
  in
  let exprs =
    [
      Expr.(select (v "A" <% i 200) (base "R"));
      Expr.(join (base "R") (base "S"));
      Expr.(project [ "A"; "C" ] (select (v "C" >% i 2) (join (base "R") (base "S"))));
      Expr.(join_all [ base "R"; base "S"; base "T" ]);
      Expr.(select ((v "B" >=% i 2) &&% (v "C" <=% i 15)) (join (base "S") (base "T")));
      (* Ring-valued payloads must survive sharding bit-identically too:
         one grouped view over the same family rides in every view set. *)
      Expr.(
        group_by ~keys:[ "B" ]
          [
            { Query.Aggregate.func = Query.Aggregate.Count; output = "cnt" };
            {
              Query.Aggregate.func = Query.Aggregate.Sum "A";
              output = "sum_a";
            };
            {
              Query.Aggregate.func = Query.Aggregate.Min "A";
              output = "min_a";
            };
          ]
          (base "R"));
    ]
  in
  List.iteri
    (fun k expr ->
      let options =
        {
          Maintenance.default_options with
          strategy = strategies.(k mod Array.length strategies);
          screen = Rng.chance rng 0.8;
          shard_min;
        }
      in
      ignore
        (Manager.define_view mgr
           ~name:(Printf.sprintf "v%d" k)
           ~force:true ~options expr))
    exprs;
  ignore
    (Manager.define_view mgr ~name:"deferred" ~mode:Manager.Deferred ~force:true
       Expr.(project [ "B" ] (base "R")));
  (* A dependent view over the grouped view: the dependents phase must
     also commute with sharding and parallelism. *)
  ignore
    (Manager.define_view mgr ~name:"tower" ~force:true
       ~options:{ Maintenance.default_options with shard_min }
       Expr.(select (v "cnt" >% i 1) (base "v5")));
  let report_keys = ref [] in
  for _ = 1 to 4 do
    let txn = Generate.mixed_transaction rng scenario.db scenario.update_specs in
    let reports = Manager.commit mgr txn in
    report_keys := !report_keys @ List.map report_key reports
  done;
  report_keys := !report_keys @ List.map report_key (Manager.refresh_all mgr);
  let materializations =
    List.map
      (fun name ->
        ( name,
          List.sort compare
            (Relation.elements (View.contents (Manager.view mgr name))) ))
      (Manager.view_names mgr)
  in
  let counters =
    List.map (fun name -> (name, stats_key (Manager.stats mgr name)))
      (Manager.view_names mgr)
  in
  (materializations, !report_keys, counters)

let parallel_equals_sequential seed =
  run_parallel_workload ~domains:1 seed = run_parallel_workload ~domains:4 seed

(* Forcing every truth-table row to shard (threshold 1) must not change
   a single materialization, report or counter at any domain count —
   the acceptance bar for intra-view sharding is bit-identical commits
   across all strategies. *)
let sharded_commits_equal_unsharded seed =
  let unsharded = run_parallel_workload ~domains:1 seed in
  List.for_all
    (fun domains ->
      run_parallel_workload ~shard_min:1 ~domains seed = unsharded)
    [ 1; 2; 4 ]

(* The same invariant at the Delta_eval layer, directly: shard-then-
   eval-then-merge of one view delta equals the sequential evaluation
   tuple-for-tuple and count-for-count. *)
let sharded_view_delta_equals_sequential seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let exprs =
    [|
      Expr.(select (v "A" <% i 200) (base "R"));
      Expr.(
        project [ "A"; "C" ] (select (v "C" >% i 2) (join (base "R") (base "S"))));
      Expr.(join_all [ base "R"; base "S"; base "T" ]);
    |]
  in
  let view =
    View.define ~name:"v" ~db:scenario.db
      exprs.(Rng.int rng (Array.length exprs))
  in
  let txn = Generate.mixed_transaction rng scenario.db scenario.update_specs in
  let net = Transaction.net_effect scenario.db txn in
  Maintenance.apply_deletes scenario.db net;
  let options =
    {
      Maintenance.default_options with
      screen = Rng.chance rng 0.5;
      shard_min = 1;
    }
  in
  let seq_delta, seq_report =
    Maintenance.view_delta ~options view ~db:scenario.db ~net
  in
  List.for_all
    (fun domains ->
      let pool = Exec.Pool.shared ~domains in
      let delta, report =
        Maintenance.view_delta ~options ~pool view ~db:scenario.db ~net
      in
      Relation.equal seq_delta.Delta.inserts delta.Delta.inserts
      && Relation.equal seq_delta.Delta.deletes delta.Delta.deletes
      && report_key report = report_key seq_report)
    [ 1; 2; 4 ]

(* Relation.shard is an exact partition: counts preserved, every tuple
   in exactly one shard, placement independent of insertion history. *)
let shard_partitions_relation seed =
  let rng = Rng.make seed in
  let r = random_counted rng [ "A"; "B" ] 12 in
  let n = 1 + Rng.int rng 6 in
  let shards = Relation.shard ~n r in
  let reunion = Relation.create (Relation.schema r) in
  Array.iter (fun s -> Relation.union_into ~into:reunion s) shards;
  let disjoint =
    Array.to_list shards
    |> List.for_all (fun s ->
           Relation.fold
             (fun t _ acc ->
               acc
               && Array.for_all
                    (fun other -> other == s || not (Relation.mem other t))
                    shards)
             s true)
  in
  Array.length shards = n && Relation.equal reunion r && disjoint

(* The chunked screening path needs update sets past its 2*512-tuple
   threshold, larger than any commit the other properties make — drive
   Irrelevance.screen_delta_stats directly on a big delta and require
   tuple-for-tuple (and count-for-count) agreement with the sequential
   path. *)
let chunked_screening_equals_sequential seed =
  let rng = Rng.make seed in
  let scenario = random_scenario rng in
  let view =
    View.define ~name:"v" ~db:scenario.db
      Expr.(
        select
          ((v "A" <% i 200) &&% (v "C" >% i 5))
          (join (base "R") (base "S")))
  in
  let screen = Ivm.View.screen_for view ~alias:"R" in
  let schema = View.qualified_schema view ~alias:"R" in
  let big_side () =
    List.init 2_000 (fun _ ->
        Tuple.of_ints [ Rng.range rng ~lo:(-100) ~hi:500; Rng.int rng 40 ])
  in
  let delta = Delta.of_lists schema (big_side (), big_side ()) in
  let pool = Exec.Pool.shared ~domains:4 in
  let seq, seq_stats = Ivm.Irrelevance.screen_delta_stats screen delta in
  let par, par_stats = Ivm.Irrelevance.screen_delta_stats ~pool screen delta in
  seq_stats = par_stats
  && Relation.equal seq.Delta.inserts par.Delta.inserts
  && Relation.equal seq.Delta.deletes par.Delta.deletes

let () =
  Alcotest.run "properties"
    [
      ( "maintenance",
        [
          property "differential = recompute (random views, txns, options)"
            ~count:150 differential_equals_recompute;
          property "tagged evaluator = pair evaluator" ~count:100
            tagged_equals_pair;
          property "irrelevant updates never change the view" ~count:80
            irrelevance_sound;
        ] );
      ( "parallel",
        [
          property "commit on 4 domains = commit on 1 domain" ~count:100
            parallel_equals_sequential;
          property "sharded commits = unsharded commits (domains 1, 2, 4)"
            ~count:50 sharded_commits_equal_unsharded;
          property "sharded view delta = sequential view delta" ~count:50
            sharded_view_delta_equals_sequential;
          property "shard partitions a relation exactly" ~count:200
            shard_partitions_relation;
          property "chunked parallel screening = sequential screening"
            ~count:25 chunked_screening_equals_sequential;
        ] );
      ( "algebra",
        [
          property "pi distributes over difference (counted)" ~count:200
            project_distributes_over_diff;
          property "join distributes over union (counted)" ~count:200
            join_distributes_over_union;
          property "select commutes with union" ~count:200
            select_commutes_with_union;
        ] );
      ( "planner",
        [ property "run_many = run" ~count:100 run_many_equals_run ] );
      ( "tableau",
        [
          property "minimization preserves visible tuples" ~count:100
            minimize_preserves_set;
        ] );
      ( "transaction",
        [
          property "net effect = sequential application" ~count:200
            net_effect_equals_sequential;
        ] );
      ( "strings",
        [
          property "string-fragment solver vs brute force" ~count:300
            string_solver_sound;
        ] );
      ( "bounds",
        [
          property "declared domains keep screening sound" ~count:60
            bounded_screening_sound;
        ] );
    ]
