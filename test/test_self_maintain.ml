(* The self-maintenance runtime: certificates compiled from the
   IVM050/IVM051 analysis, the zero-base-read delta computation (enforced
   by the Database read probe), the Manager's Self_maintain strategy with
   its differential fallback, and a QCheck lockstep soundness property
   against the naive reference engine. *)

open Relalg
open Helpers
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module SM = Ivm.Self_maintain
module Advisor = Ivm.Advisor
module Generate = Workload.Generate
module Rng = Workload.Rng
module Reference = Oracle.Reference
open Condition.Formula.Dsl

let lookup_of db name = Relation.schema (Database.find db name)

let spj_of db expr = Query.Spj.compile (lookup_of db) expr

let full_keys = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

let certificate_tests =
  [
    quick "single-source views certify inserts and deletes" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ] ]) ] in
        let expr = Query.Expr.(project [ "B" ] (base "R")) in
        match SM.of_spj ~name:"v" ~keys:[] ~lookup:(lookup_of db) (spj_of db expr) with
        | None -> Alcotest.fail "expected a certificate"
        | Some cert ->
          Alcotest.(check (list string)) "insertable" [ "R" ] (SM.insertable cert);
          Alcotest.(check (list string)) "deletable" [ "R" ] (SM.deletable cert));
    quick "keyed join certifies deletes only" (fun () ->
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] []); ("S", rel [ "B"; "C" ] []) ]
        in
        let expr = Query.Expr.(join (base "R") (base "S")) in
        match
          SM.of_spj ~name:"v" ~keys:full_keys ~lookup:(lookup_of db)
            (spj_of db expr)
        with
        | None -> Alcotest.fail "expected a certificate"
        | Some cert ->
          Alcotest.(check (list string)) "no insert coverage" []
            (SM.insertable cert);
          Alcotest.(check (list string)) "both drainable" [ "R"; "S" ]
            (List.sort String.compare (SM.deletable cert)));
    quick "keyless joins carry no certificate" (fun () ->
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] []); ("S", rel [ "B"; "C" ] []) ]
        in
        let expr = Query.Expr.(join (base "R") (base "S")) in
        Alcotest.(check bool) "no certificate" true
          (SM.of_spj ~name:"v" ~keys:[] ~lookup:(lookup_of db) (spj_of db expr)
           = None));
    quick "applies checks per-relation, per-direction coverage" (fun () ->
        let db =
          db_of
            [ ("R", rel [ "A"; "B" ] []); ("S", rel [ "B"; "C" ] []) ]
        in
        let expr = Query.Expr.(join (base "R") (base "S")) in
        let cert =
          Option.get
            (SM.of_spj ~name:"v" ~keys:full_keys ~lookup:(lookup_of db)
               (spj_of db expr))
        in
        let t = Tuple.of_ints [ 1; 2 ] in
        Alcotest.(check bool) "delete-only net applies" true
          (SM.applies cert ~net:[ ("R", ([], [ t ])) ]);
        Alcotest.(check bool) "insert blocks it" false
          (SM.applies cert ~net:[ ("R", ([ t ], [ t ])) ]);
        Alcotest.(check bool) "untouched net is not applicable" false
          (SM.applies cert ~net:[]);
        Alcotest.(check bool) "foreign relation blocks it" false
          (SM.applies cert ~net:[ ("T", ([], [ t ])) ]));
  ]

(* ------------------------------------------------------------------ *)
(* Zero-base-read deltas                                               *)
(* ------------------------------------------------------------------ *)

let delta_tests =
  [
    quick "the probe counts ordinary reads" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ] ]) ] in
        let _, reads =
          Database.probe_reads (fun () -> ignore (Database.find db "R"))
        in
        Alcotest.(check bool) "at least one read" true (reads >= 1));
    quick "p = 1 delta is computed without touching the database" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ] ]) ] in
        let expr =
          Query.Expr.(project [ "B" ] (select (v "A" <% i 10) (base "R")))
        in
        let view = View.define ~name:"v" ~db expr in
        let cert = Option.get (View.self_maintain view) in
        let net : Transaction.net =
          [
            ( "R",
              ( [ Tuple.of_ints [ 5; 6 ]; Tuple.of_ints [ 50; 60 ] ],
                [ Tuple.of_ints [ 1; 2 ] ] ) );
          ]
        in
        let delta, reads =
          Database.probe_reads (fun () ->
              SM.delta cert ~contents:(View.contents view) ~net)
        in
        Alcotest.(check int) "zero base reads" 0 reads;
        (* (5,6) passes A<10, (50,60) fails; the delete projects to (2). *)
        Alcotest.(check (list (pair (list int) int)))
          "insert delta" [ ([ 6 ], 1) ]
          (ints_contents delta.Ivm.Delta.inserts);
        Alcotest.(check (list (pair (list int) int)))
          "delete delta" [ ([ 2 ], 1) ]
          (ints_contents delta.Ivm.Delta.deletes));
    quick "keyed drain removes every derivation of the victim tuple"
      (fun () ->
        (* pi_B(R |x| S) with R:(1,2) joining two S rows: the view holds
           (2) with count 2.  Deleting (1,2) from R must drain both. *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 9; 7 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 2; 5 ]; [ 2; 6 ]; [ 7; 8 ] ]);
            ]
        in
        let expr =
          Query.Expr.(project [ "A"; "B" ] (join (base "R") (base "S")))
        in
        let view = View.define ~name:"v" ~db ~keys:[ ("R", [ "A"; "B" ]) ] expr in
        let cert = Option.get (View.self_maintain view) in
        let net : Transaction.net =
          [ ("R", ([], [ Tuple.of_ints [ 1; 2 ] ])) ]
        in
        let delta, reads =
          Database.probe_reads (fun () ->
              SM.delta cert ~contents:(View.contents view) ~net)
        in
        Alcotest.(check int) "zero base reads" 0 reads;
        Alcotest.(check (list (pair (list int) int)))
          "full multiplicity drained"
          [ ([ 1; 2 ], 2) ]
          (ints_contents delta.Ivm.Delta.deletes);
        Alcotest.(check int) "no inserts" 0
          (Relation.cardinal delta.Ivm.Delta.inserts));
  ]

(* ------------------------------------------------------------------ *)
(* Manager integration                                                 *)
(* ------------------------------------------------------------------ *)

let forced_sm =
  { Maintenance.default_options with strategy = Maintenance.Self_maintain }

let manager_tests =
  [
    quick "forced self-maintenance stays consistent and is counted"
      (fun () ->
        let rng = Rng.make 7 in
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ] ]) ] in
        let mgr = Manager.create db in
        ignore
          (Manager.define_view mgr ~name:"v" ~options:forced_sm
             Query.Expr.(project [ "B" ] (select (v "A" <% i 40) (base "R"))));
        for _ = 1 to 30 do
          let txn =
            Generate.transaction rng db "R"
              ~columns:[ Generate.Uniform (0, 80); Generate.Uniform (0, 9) ]
              ~inserts:2 ~deletes:2
          in
          ignore (Manager.commit mgr txn)
        done;
        Alcotest.(check bool) "consistent" true (Manager.consistent mgr "v");
        let stats = Manager.stats mgr "v" in
        Alcotest.(check bool) "self-maintained commits counted" true
          (stats.Manager.self_maintained > 0);
        Alcotest.(check int) "never recomputed" 0 stats.Manager.recomputations);
    quick "keyed join falls back to differential on inserts" (fun () ->
        let rng = Rng.make 11 in
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 2 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 2; 5 ]; [ 4; 6 ] ]);
            ]
        in
        let mgr = Manager.create db in
        ignore
          (Manager.define_view mgr ~name:"j" ~options:forced_sm ~keys:full_keys
             Query.Expr.(join (base "R") (base "S")));
        let columns = [ Generate.Uniform (0, 40); Generate.Uniform (0, 9) ] in
        for _ = 1 to 15 do
          (* Insert-bearing commits must fall back; delete-only commits
             take the certified drain path. *)
          ignore
            (Manager.commit mgr
               (Generate.transaction rng db "R" ~columns ~inserts:2 ~deletes:0));
          ignore
            (Manager.commit mgr
               (Generate.transaction rng db "R" ~columns ~inserts:0 ~deletes:1))
        done;
        Alcotest.(check bool) "consistent" true (Manager.consistent mgr "j");
        let stats = Manager.stats mgr "j" in
        Alcotest.(check bool) "some commits self-maintained" true
          (stats.Manager.self_maintained > 0);
        Alcotest.(check bool) "but not all (fallback ran)" true
          (stats.Manager.self_maintained < stats.Manager.commits));
    quick "adaptive advisor picks the certified arm on small deltas"
      (fun () ->
        let tuples = List.init 300 (fun i -> [ i; i mod 9 ]) in
        let db = db_of [ ("R", rel [ "A"; "B" ] tuples) ] in
        let mgr = Manager.create db in
        let adaptive =
          { Maintenance.default_options with strategy = Maintenance.Adaptive }
        in
        ignore
          (Manager.define_view mgr ~name:"v" ~options:adaptive
             Query.Expr.(project [ "B" ] (base "R")));
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 900; 1 ]) ]);
        let stats = Manager.stats mgr "v" in
        Alcotest.(check int) "self-maintained" 1 stats.Manager.self_maintained;
        Alcotest.(check bool) "consistent" true (Manager.consistent mgr "v"));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: lockstep soundness against the naive reference engine       *)
(* ------------------------------------------------------------------ *)

(* A 200-commit mixed stream over R(A,B) / S(B,C): a forced
   self-maintained projection, a forced self-maintained keyed join
   (falling back differentially when a commit's net is not covered), and
   an adaptive control view.  After every commit each materialization
   must be bit-identical (counters included) to the reference's
   from-scratch recompute.  The zero-base-read contract is enforced
   inside the engine: any Database read during a certified delta raises
   Base_read_detected, which would fail this property. *)
let lockstep_commits = 200

let lockstep_once seed =
  let rng = Rng.make seed in
  let r_columns = [ Generate.Uniform (0, 60); Generate.Uniform (0, 7) ] in
  let s_columns = [ Generate.Uniform (0, 7); Generate.Uniform (0, 12) ] in
  let db =
    db_of
      [
        ( "R",
          rel [ "A"; "B" ]
            (List.init 12 (fun i -> [ i * 3 mod 60; i mod 7 ])) );
        ("S", rel [ "B"; "C" ] (List.init 8 (fun i -> [ i mod 7; i ])));
      ]
  in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"sm_project" ~options:forced_sm
       Query.Expr.(project [ "B" ] (select (v "A" <% i 45) (base "R"))));
  ignore
    (Manager.define_view mgr ~name:"sm_join" ~options:forced_sm ~keys:full_keys
       Query.Expr.(join (base "R") (base "S")));
  ignore
    (Manager.define_view mgr ~name:"control"
       ~options:
         { Maintenance.default_options with strategy = Maintenance.Adaptive }
       ~keys:full_keys
       Query.Expr.(
         project [ "A"; "C" ]
           (select ((v "A" <% i 50) &&% (v "C" >% i 2))
              (join (base "R") (base "S")))));
  let reference = Reference.create db in
  Reference.define reference ~name:"sm_project"
    Query.Expr.(project [ "B" ] (select (v "A" <% i 45) (base "R")));
  Reference.define reference ~name:"sm_join"
    Query.Expr.(join (base "R") (base "S"));
  Reference.define reference ~name:"control"
    Query.Expr.(
      project [ "A"; "C" ]
        (select ((v "A" <% i 50) &&% (v "C" >% i 2))
           (join (base "R") (base "S"))));
  for k = 1 to lockstep_commits do
    let txn =
      match k mod 4 with
      | 0 ->
        (* Delete-only: the keyed join's certified drain path. *)
        Generate.mixed_transaction rng db
          [ ("R", r_columns, 0, 2); ("S", s_columns, 0, 1) ]
      | 1 | 2 ->
        Generate.mixed_transaction rng db
          [ ("R", r_columns, 2, 2); ("S", s_columns, 1, 1) ]
      | _ ->
        Generate.transaction rng db "R" ~columns:r_columns ~inserts:3
          ~deletes:0
    in
    ignore (Manager.commit mgr txn);
    Reference.step reference txn;
    List.iter
      (fun name ->
        let engine = View.contents (Manager.view mgr name) in
        let oracle = Reference.contents reference name in
        if not (Relation.equal engine oracle) then
          QCheck.Test.fail_reportf
            "seed %d, commit %d: %s diverged from the reference@.engine:@.%s@.reference:@.%s"
            seed k name
            (Relation.to_ascii engine)
            (Relation.to_ascii oracle))
      [ "sm_project"; "sm_join"; "control" ]
  done;
  (* The stream must actually exercise the certified path, or the
     property proves nothing. *)
  (Manager.stats mgr "sm_project").Manager.self_maintained > 0
  && (Manager.stats mgr "sm_join").Manager.self_maintained > 0

let lockstep_soundness =
  QCheck.Test.make ~count:5
    ~name:
      (Printf.sprintf
         "%d-commit streams: self-maintained views stay bit-identical to the \
          reference"
         lockstep_commits)
    QCheck.small_nat
    (fun seed -> lockstep_once (seed + 1))

let property_tests = [ QCheck_alcotest.to_alcotest lockstep_soundness ]

let () =
  Alcotest.run "self-maintenance"
    [
      ("certificates", certificate_tests);
      ("zero-read deltas", delta_tests);
      ("manager", manager_tests);
      ("properties", property_tests);
    ]
