(* Dump a durability directory in human-readable form: the checkpoint
   summary and every WAL record with its full net effect.  Debugging
   companion to `ivm-cli recover`. *)

let pp_rel name (r : Relalg.Relation.t) =
  Printf.printf "    %s: %d tuples (%d counted)\n" name
    (Relalg.Relation.cardinal r)
    (Relalg.Relation.total r)

let tuples r =
  String.concat " "
    (List.map
       (fun (t, n) ->
         let s = Relalg.Tuple.to_string t in
         if n = 1 then s else Printf.sprintf "%sx%d" s n)
       (Relalg.Relation.sorted_elements r))

let dump_record lsn (record : Durability.Record.t) =
  Printf.printf "  [lsn %d] %s\n" lsn (Durability.Record.describe record);
  match record with
  | Durability.Record.Commit { net; _ } ->
    List.iter
      (fun (relation, (inserts, deletes)) ->
        if inserts <> [] then
          Printf.printf "      %s +%s\n" relation
            (String.concat " " (List.map Relalg.Tuple.to_string inserts));
        if deletes <> [] then
          Printf.printf "      %s -%s\n" relation
            (String.concat " " (List.map Relalg.Tuple.to_string deletes)))
      net
  | _ -> ()

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let config = Durability.Config.make dir in
  (match Durability.Checkpoint.read (Durability.Config.checkpoint_path config)
   with
  | None -> Printf.printf "checkpoint: none\n"
  | Some st ->
    Printf.printf "checkpoint: seq %d, lsn %d\n" st.Durability.State.seq
      st.Durability.State.lsn;
    List.iter (fun (n, r) -> pp_rel n r) st.Durability.State.relations;
    List.iter
      (fun (v : Durability.State.view_state) ->
        Printf.printf "    view %s: %s, %d tuples%s\n" v.Durability.State.view
          (Format.asprintf "%a" Durability.State.pp_health
             v.Durability.State.health)
          (Relalg.Relation.cardinal v.Durability.State.contents)
          (match v.Durability.State.pending with
          | [] -> ""
          | p ->
            Printf.sprintf ", banked: %s"
              (String.concat "; "
                 (List.map
                    (fun (rel, ins, del) ->
                      Printf.sprintf "%s +[%s] -[%s]" rel (tuples ins)
                        (tuples del))
                    p))))
      st.Durability.State.views);
  let wal, entries =
    Durability.Wal.open_ ~fsync:Durability.Config.Never
      (Durability.Config.wal_path config)
  in
  Printf.printf "wal: %d records, last lsn %d%s\n" (List.length entries)
    (Durability.Wal.last_lsn wal)
    (let torn = Durability.Wal.torn_bytes wal in
     if torn > 0 then Printf.sprintf ", %d torn bytes truncated" torn else "");
  List.iter (fun (lsn, record) -> dump_record lsn record) entries
