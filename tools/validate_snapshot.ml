(* CI gate over the machine-readable telemetry artifacts:

     validate_snapshot trace FILE   — Chrome trace_event file from
                                      `ivm_cli trace`: must parse, carry a
                                      non-empty traceEvents array, and
                                      contain spans for every Algorithm
                                      5.1 phase (net, screen, row, apply);
     validate_snapshot bench FILE   — BENCH_IVM.json from bench/main.exe:
                                      must parse, be schema_version >= 3,
                                      and carry per-view latency
                                      percentiles, advisor
                                      predicted-vs-actual pairs, the E18
                                      domain-scaling curve with its
                                      speedup fields, and the E20
                                      resilience section whose happy-path
                                      journaling overhead must stay
                                      within budget (<= 5%).

   Exits nonzero with a reason on any violation, so tools/check.sh can
   assert that the instrumentation keeps emitting what downstream tooling
   consumes. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("error: " ^ m); exit 1) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error m -> fail "%s" m

let parse path =
  match Obs.Json.parse (read_file path) with
  | Ok json -> json
  | Error m -> fail "%s: %s" path m

let require_member name json =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> fail "missing top-level key %S" name

let as_list what = function
  | Obs.Json.List items -> items
  | _ -> fail "%s is not an array" what

let validate_trace path =
  let json = parse path in
  let events = as_list "traceEvents" (require_member "traceEvents" json) in
  if events = [] then fail "traceEvents is empty";
  let names =
    List.filter_map
      (fun event ->
        match Obs.Json.member "name" event with
        | Some (Obs.Json.Str name) -> Some name
        | _ -> None)
      events
  in
  List.iter
    (fun phase ->
      if not (List.mem phase names) then
        fail "no %S span in %s (Algorithm 5.1 phase missing)" phase path)
    [ "net"; "screen"; "row"; "apply" ];
  Printf.printf "ok: %s (%d events, all Algorithm 5.1 phases present)\n" path
    (List.length events)

let validate_bench path =
  let json = parse path in
  let views = as_list "views" (require_member "views" json) in
  if views = [] then fail "views is empty";
  List.iter
    (fun view ->
      let name =
        match Obs.Json.member "name" view with
        | Some (Obs.Json.Str n) -> n
        | _ -> fail "a views[] entry has no name"
      in
      List.iter
        (fun key ->
          if Obs.Json.member key view = None then
            fail "view %S has no %S field" name key)
        [ "p50_ns"; "p95_ns"; "p99_ns"; "commits" ])
    views;
  let advisor = require_member "advisor" json in
  let pairs = as_list "advisor.pairs" (require_member "pairs" advisor) in
  if pairs = [] then fail "advisor.pairs is empty";
  List.iter
    (fun pair ->
      List.iter
        (fun key ->
          if Obs.Json.member key pair = None then
            fail "an advisor pair has no %S field" key)
        [ "predicted_differential"; "predicted_recompute"; "actual_ns"; "used" ])
    pairs;
  ignore (require_member "calibration" advisor);
  ignore (require_member "metrics" json);
  (match require_member "schema_version" json with
  | Obs.Json.Int v when v >= 3 -> ()
  | Obs.Json.Int v ->
    fail "schema_version %d < 3 (E18 parallel and E20 resilience sections \
          required)" v
  | _ -> fail "schema_version is not an integer");
  let parallel = require_member "parallel" json in
  let parallel_member key =
    match Obs.Json.member key parallel with
    | Some v -> v
    | None -> fail "parallel section has no %S field" key
  in
  let curve = as_list "parallel.curve" (parallel_member "curve") in
  if curve = [] then fail "parallel.curve is empty";
  List.iter
    (fun point ->
      List.iter
        (fun key ->
          if Obs.Json.member key point = None then
            fail "a parallel.curve point has no %S field" key)
        [ "domains"; "elapsed_ns"; "commits_per_sec"; "speedup" ])
    curve;
  (* The speedup values themselves are hardware-dependent (flat on a
     single core), so the gate checks presence and sanity, not a
     threshold. *)
  List.iter
    (fun key ->
      match parallel_member key with
      | Obs.Json.Float s when s > 0.0 -> ()
      | Obs.Json.Float _ -> fail "parallel.%s is not positive" key
      | _ -> fail "parallel.%s is not a float" key)
    [ "speedup_at_2"; "speedup_at_4"; "speedup_at_8" ];
  ignore (parallel_member "cores_available");
  let resilience = require_member "resilience" json in
  let resilience_member key =
    match Obs.Json.member key resilience with
    | Some v -> v
    | None -> fail "resilience section has no %S field" key
  in
  List.iter
    (fun key ->
      match resilience_member key with
      | Obs.Json.Int ns when ns > 0 -> ()
      | _ -> fail "resilience.%s is not a positive integer" key)
    [ "protected_ns"; "unprotected_ns" ];
  (* Unlike the speedups, the journaling overhead IS thresholded: the
     undo log runs on every protected commit, so the happy path must
     stay within its budget on any hardware. *)
  let max_overhead_pct = 5.0 in
  let overhead =
    match resilience_member "journal_overhead_pct" with
    | Obs.Json.Float pct -> pct
    | Obs.Json.Int pct -> float_of_int pct
    | _ -> fail "resilience.journal_overhead_pct is not a number"
  in
  if overhead > max_overhead_pct then
    fail
      "resilience.journal_overhead_pct %.2f exceeds the %.1f%% happy-path \
       budget"
      overhead max_overhead_pct;
  Printf.printf
    "ok: %s (%d views, %d advisor pairs, %d-point domain-scaling curve, \
     journal overhead %+.2f%%)\n"
    path (List.length views) (List.length pairs) (List.length curve) overhead

let () =
  match Sys.argv with
  | [| _; "trace"; path |] -> validate_trace path
  | [| _; "bench"; path |] -> validate_bench path
  | _ ->
    prerr_endline "usage: validate_snapshot (trace|bench) FILE";
    exit 2
