(* CI gate over the machine-readable telemetry artifacts:

     validate_snapshot trace FILE   — Chrome trace_event file from
                                      `ivm_cli trace`: must parse, carry a
                                      non-empty traceEvents array, and
                                      contain spans for every Algorithm
                                      5.1 phase (net, screen, row, apply);
     validate_snapshot bench FILE   — BENCH_IVM.json from bench/main.exe:
                                      must parse, be schema_version >= 8,
                                      and carry per-view latency
                                      percentiles, advisor
                                      predicted-vs-actual pairs, the
                                      E18/E23 domain-scaling curves
                                      (per_view fan-out and intra-view
                                      sharded) with their speedup fields
                                      — on a machine with >= 4 cores the
                                      sharded curve must reach 1.5x at 4
                                      domains and 1.0x at 2, the scaling
                                      gate; where cores_available does
                                      not cover a domain count the
                                      comparison is skipped with a
                                      printed warning — the E20
                                      resilience section
                                      whose happy-path journaling
                                      overhead must stay within budget
                                      (<= 5%), the E21 self-maintenance
                                      section whose eval-phase reduction
                                      must exceed 1x with every commit on
                                      the certified path, and the E22
                                      provenance section whose always-on
                                      flight-recorder overhead must stay
                                      within the same 5% budget, and the
                                      E24 aggregate section whose
                                      incremental grouped maintenance
                                      must beat full recompute (> 1x),
                                      and the E25 durability section
                                      whose group-commit WAL overhead
                                      must stay within 10% of in-memory
                                      and whose recovery curve must
                                      replay exactly one record per
                                      commit;
     validate_snapshot lint FILE    — report from `ivm_cli lint --json`:
                                      must parse, carry no Error-severity
                                      diagnostics, and prove the
                                      IVM050-IVM059 analysis ran (at
                                      least one IVM05x code present).

   Exits nonzero with a reason on any violation, so tools/check.sh can
   assert that the instrumentation keeps emitting what downstream tooling
   consumes. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("error: " ^ m); exit 1) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error m -> fail "%s" m

let parse path =
  match Obs.Json.parse (read_file path) with
  | Ok json -> json
  | Error m -> fail "%s: %s" path m

let require_member name json =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> fail "missing top-level key %S" name

let as_list what = function
  | Obs.Json.List items -> items
  | _ -> fail "%s is not an array" what

let validate_trace path =
  let json = parse path in
  let events = as_list "traceEvents" (require_member "traceEvents" json) in
  if events = [] then fail "traceEvents is empty";
  let names =
    List.filter_map
      (fun event ->
        match Obs.Json.member "name" event with
        | Some (Obs.Json.Str name) -> Some name
        | _ -> None)
      events
  in
  List.iter
    (fun phase ->
      if not (List.mem phase names) then
        fail "no %S span in %s (Algorithm 5.1 phase missing)" phase path)
    [ "net"; "screen"; "row"; "apply" ];
  Printf.printf "ok: %s (%d events, all Algorithm 5.1 phases present)\n" path
    (List.length events)

let validate_bench path =
  let json = parse path in
  let views = as_list "views" (require_member "views" json) in
  if views = [] then fail "views is empty";
  List.iter
    (fun view ->
      let name =
        match Obs.Json.member "name" view with
        | Some (Obs.Json.Str n) -> n
        | _ -> fail "a views[] entry has no name"
      in
      List.iter
        (fun key ->
          if Obs.Json.member key view = None then
            fail "view %S has no %S field" name key)
        [ "p50_ns"; "p95_ns"; "p99_ns"; "commits" ])
    views;
  let advisor = require_member "advisor" json in
  let pairs = as_list "advisor.pairs" (require_member "pairs" advisor) in
  if pairs = [] then fail "advisor.pairs is empty";
  List.iter
    (fun pair ->
      List.iter
        (fun key ->
          if Obs.Json.member key pair = None then
            fail "an advisor pair has no %S field" key)
        [ "predicted_differential"; "predicted_recompute"; "actual_ns"; "used" ])
    pairs;
  ignore (require_member "calibration" advisor);
  ignore (require_member "metrics" json);
  (match require_member "schema_version" json with
  | Obs.Json.Int v when v >= 8 -> ()
  | Obs.Json.Int v ->
    fail "schema_version %d < 8 (split E18 per_view / E23 sharded parallel \
          curves, E20 resilience, E21 self-maintenance, E22 provenance, \
          E24 aggregate and E25 durability sections required)" v
  | _ -> fail "schema_version is not an integer");
  let parallel = require_member "parallel" json in
  let cores =
    match Obs.Json.member "cores_available" parallel with
    | Some (Obs.Json.Int c) when c >= 1 -> c
    | _ -> fail "parallel.cores_available is not a positive integer"
  in
  (* Two curves, one per parallelism axis.  Shape is always required;
     whether a speedup is GATED depends on the hardware — a 1-core CI
     runner cannot exhibit parallel speedup, so every sub-threshold
     comparison on such a machine is skipped with a printed warning,
     never silently.  Where the cores exist, the per_view curve needs
     only positive speedups (its ceiling is min(views, domains)), but
     the sharded curve carries the scaling gate: intra-view sharding
     must buy >= 1.0x at 2 domains and >= 1.5x at 4, or the work-
     stealing pool + hash-sharded evaluation has regressed into
     overhead. *)
  let speedup_fields section_name section =
    let member key =
      match Obs.Json.member key section with
      | Some v -> v
      | None -> fail "parallel.%s has no %S field" section_name key
    in
    let curve =
      as_list (Printf.sprintf "parallel.%s.curve" section_name)
        (member "curve")
    in
    if curve = [] then fail "parallel.%s.curve is empty" section_name;
    List.iter
      (fun point ->
        List.iter
          (fun key ->
            if Obs.Json.member key point = None then
              fail "a parallel.%s.curve point has no %S field" section_name
                key)
          [ "domains"; "elapsed_ns"; "commits_per_sec"; "speedup" ])
      curve;
    List.map
      (fun (key, domains) ->
        let value =
          match member key with
          | Obs.Json.Float s -> s
          | Obs.Json.Int s -> float_of_int s
          | _ -> fail "parallel.%s.%s is not a number" section_name key
        in
        (key, domains, value))
      [ ("speedup_at_2", 2); ("speedup_at_4", 4); ("speedup_at_8", 8) ]
  in
  let gate_speedup ~section ~floor (key, domains, value) =
    if cores < domains then
      Printf.printf
        "warning: parallel.%s.%s = %.2f skipped — %d core(s) < %d domains, \
         speedup not credible on this machine\n"
        section key value cores domains
    else
      match floor domains with
      | Some threshold when value < threshold ->
        fail
          "parallel.%s.%s = %.2f below the %.1fx scaling gate (%d cores \
           available)"
          section key value threshold cores
      | _ ->
        if value <= 0.0 then fail "parallel.%s.%s is not positive" section key
  in
  let require_section name =
    match Obs.Json.member name parallel with
    | Some section -> section
    | None ->
      fail "parallel section has no %S sub-section (schema_version 6 split)"
        name
  in
  let per_view = speedup_fields "per_view" (require_section "per_view") in
  let sharded = speedup_fields "sharded" (require_section "sharded") in
  List.iter (gate_speedup ~section:"per_view" ~floor:(fun _ -> None)) per_view;
  List.iter
    (gate_speedup ~section:"sharded" ~floor:(function
      | 2 -> Some 1.0
      | 4 -> Some 1.5
      | _ -> None))
    sharded;
  let resilience = require_member "resilience" json in
  let resilience_member key =
    match Obs.Json.member key resilience with
    | Some v -> v
    | None -> fail "resilience section has no %S field" key
  in
  List.iter
    (fun key ->
      match resilience_member key with
      | Obs.Json.Int ns when ns > 0 -> ()
      | _ -> fail "resilience.%s is not a positive integer" key)
    [ "protected_ns"; "unprotected_ns" ];
  (* Unlike the speedups, the journaling overhead IS thresholded: the
     undo log runs on every protected commit, so the happy path must
     stay within its budget on any hardware. *)
  let max_overhead_pct = 5.0 in
  let overhead =
    match resilience_member "journal_overhead_pct" with
    | Obs.Json.Float pct -> pct
    | Obs.Json.Int pct -> float_of_int pct
    | _ -> fail "resilience.journal_overhead_pct is not a number"
  in
  if overhead > max_overhead_pct then
    fail
      "resilience.journal_overhead_pct %.2f exceeds the %.1f%% happy-path \
       budget"
      overhead max_overhead_pct;
  let selfmaint = require_member "self_maintenance" json in
  let selfmaint_member key =
    match Obs.Json.member key selfmaint with
    | Some v -> v
    | None -> fail "self_maintenance section has no %S field" key
  in
  List.iter
    (fun key ->
      match selfmaint_member key with
      | Obs.Json.Int n when n > 0 -> ()
      | _ -> fail "self_maintenance.%s is not a positive integer" key)
    [
      "commits"; "differential_eval_ns"; "self_maintain_eval_ns";
      "self_maintained_commits";
    ];
  (* The certificate must actually cover the whole delete-only stream
     (every commit on the certified path), and eliminating the base-read
     evaluation phase must show up as a real reduction — the exact factor
     is hardware-dependent, so the gate is > 1x, not a target. *)
  (match (selfmaint_member "commits", selfmaint_member "self_maintained_commits")
   with
  | Obs.Json.Int total, Obs.Json.Int certified when certified <> total ->
    fail "self_maintenance: only %d of %d commits took the certified path"
      certified total
  | _ -> ());
  let reduction =
    match selfmaint_member "eval_reduction" with
    | Obs.Json.Float r -> r
    | Obs.Json.Int r -> float_of_int r
    | _ -> fail "self_maintenance.eval_reduction is not a number"
  in
  if reduction <= 1.0 then
    fail
      "self_maintenance.eval_reduction %.2fx: the certified arm should beat \
       differential evaluation on delete-only streams"
      reduction;
  let provenance = require_member "provenance" json in
  let provenance_member key =
    match Obs.Json.member key provenance with
    | Some v -> v
    | None -> fail "provenance section has no %S field" key
  in
  List.iter
    (fun key ->
      match provenance_member key with
      | Obs.Json.Int n when n > 0 -> ()
      | _ -> fail "provenance.%s is not a positive integer" key)
    [ "capacity"; "recorded"; "recorder_on_ns"; "recorder_off_ns" ];
  (* The flight recorder is always on in production, so — like the E20
     journal — its happy-path cost is thresholded, not just recorded. *)
  let recorder_overhead =
    match provenance_member "recorder_overhead_pct" with
    | Obs.Json.Float pct -> pct
    | Obs.Json.Int pct -> float_of_int pct
    | _ -> fail "provenance.recorder_overhead_pct is not a number"
  in
  if recorder_overhead > max_overhead_pct then
    fail
      "provenance.recorder_overhead_pct %.2f exceeds the %.1f%% always-on \
       budget"
      recorder_overhead max_overhead_pct;
  let aggregate = require_member "aggregate" json in
  let aggregate_member key =
    match Obs.Json.member key aggregate with
    | Some v -> v
    | None -> fail "aggregate section has no %S field" key
  in
  List.iter
    (fun key ->
      match aggregate_member key with
      | Obs.Json.Int n when n > 0 -> ()
      | _ -> fail "aggregate.%s is not a positive integer" key)
    [
      "commits"; "differential_total_ns"; "recompute_total_ns";
      "groups_touched";
    ];
  (* MIN/MAX rescans only fire when an extremum's support drains to zero,
     so zero is a legitimate count — but the field must be present. *)
  (match aggregate_member "rescans" with
  | Obs.Json.Int n when n >= 0 -> ()
  | _ -> fail "aggregate.rescans is not a non-negative integer");
  (* Touching only the groups a batch hits must beat re-grouping the
     whole base relation every commit — the exact factor is
     hardware-dependent, so the gate is > 1x, not a target. *)
  let aggregate_speedup =
    match aggregate_member "speedup" with
    | Obs.Json.Float s -> s
    | Obs.Json.Int s -> float_of_int s
    | _ -> fail "aggregate.speedup is not a number"
  in
  if aggregate_speedup <= 1.0 then
    fail
      "aggregate.speedup %.2fx: incremental grouped maintenance should beat \
       full recompute on small mixed batches"
      aggregate_speedup;
  let durability = require_member "durability" json in
  let durability_member key =
    match Obs.Json.member key durability with
    | Some v -> v
    | None -> fail "durability section has no %S field" key
  in
  List.iter
    (fun key ->
      match durability_member key with
      | Obs.Json.Int n when n > 0 -> ()
      | _ -> fail "durability.%s is not a positive integer" key)
    [ "fsync_every"; "in_memory_ns"; "wal_ns"; "records_replayed_total" ];
  (* Like the E20 journal and E22 recorder, the write-ahead log runs on
     every durable commit, so its happy-path cost is thresholded: group
     commit must keep framing + checksumming + batched fsyncs within
     10% of the in-memory pipeline. *)
  let max_wal_overhead_pct = 10.0 in
  let wal_overhead =
    match durability_member "wal_overhead_pct" with
    | Obs.Json.Float pct -> pct
    | Obs.Json.Int pct -> float_of_int pct
    | _ -> fail "durability.wal_overhead_pct is not a number"
  in
  if wal_overhead > max_wal_overhead_pct then
    fail
      "durability.wal_overhead_pct %.2f exceeds the %.1f%% group-commit \
       budget"
      wal_overhead max_wal_overhead_pct;
  let recovery_curve =
    as_list "durability.recovery_curve" (durability_member "recovery_curve")
  in
  if recovery_curve = [] then fail "durability.recovery_curve is empty";
  List.iter
    (fun point ->
      let point_member key =
        match Obs.Json.member key point with
        | Some v -> v
        | None -> fail "a durability.recovery_curve point has no %S field" key
      in
      List.iter
        (fun key ->
          match point_member key with
          | Obs.Json.Int n when n > 0 -> ()
          | _ ->
            fail "durability.recovery_curve.%s is not a positive integer" key)
        [ "commits"; "recovery_ns"; "records_replayed" ];
      (match point_member "records_per_sec" with
      | Obs.Json.Float r when r > 0.0 -> ()
      | Obs.Json.Int r when r > 0 -> ()
      | _ -> fail "durability.recovery_curve.records_per_sec is not positive");
      (* The curve is built without mid-run checkpoints, so replay must
         touch exactly one record per commit — fewer means the log lost
         records, more means recovery applied something twice. *)
      match (point_member "commits", point_member "records_replayed") with
      | Obs.Json.Int commits, Obs.Json.Int replayed when commits <> replayed ->
        fail
          "durability.recovery_curve: %d commits but %d records replayed \
           (recovery must replay exactly one record per commit)"
          commits replayed
      | _ -> ())
    recovery_curve;
  let sharded_at_4 =
    List.fold_left
      (fun acc (_, domains, value) -> if domains = 4 then value else acc)
      0.0 sharded
  in
  Printf.printf
    "ok: %s (%d views, %d advisor pairs, per_view + sharded scaling curves, \
     sharded %.2fx at 4 domains%s, journal overhead %+.2f%%, \
     self-maintenance eval reduction %.2fx, recorder overhead %+.2f%%, \
     aggregate speedup %.2fx, wal overhead %+.2f%%, %d recovery points)\n"
    path (List.length views) (List.length pairs) sharded_at_4
    (if cores < 4 then " (ungated)" else " (gated >= 1.5x)")
    overhead reduction recorder_overhead aggregate_speedup wal_overhead
    (List.length recovery_curve)

(* `ivm_cli lint --json` over the built-in scenarios: parseable, no
   Error-severity diagnostics, and the IVM05x self-maintenance band must
   be present — its silent disappearance would mean the analysis stopped
   running, which no other gate would notice. *)
let validate_lint path =
  let json = parse path in
  let definitions = as_list "definitions" (require_member "definitions" json) in
  if definitions = [] then fail "definitions is empty";
  let diagnostics =
    List.concat_map
      (fun entry ->
        match Obs.Json.member "diagnostics" entry with
        | Some (Obs.Json.List ds) -> ds
        | _ -> fail "a definitions[] entry has no diagnostics array")
      definitions
  in
  List.iter
    (fun d ->
      match (Obs.Json.member "code" d, Obs.Json.member "severity" d) with
      | Some (Obs.Json.Str code), Some (Obs.Json.Str "error") ->
        fail "unexpected Error-level diagnostic %s" code
      | Some (Obs.Json.Str _), Some (Obs.Json.Str _) -> ()
      | _ -> fail "a diagnostic lacks code or severity")
    diagnostics;
  let ivm05 =
    List.filter
      (fun d ->
        match Obs.Json.member "code" d with
        | Some (Obs.Json.Str code) ->
          String.length code >= 5 && String.sub code 0 5 = "IVM05"
        | _ -> false)
      diagnostics
  in
  if ivm05 = [] then
    fail "no IVM05x diagnostics: the self-maintainability analysis did not \
          run over the built-in scenarios";
  (match require_member "summary" json with
  | summary ->
    (match Obs.Json.member "errors" summary with
    | Some (Obs.Json.Int 0) -> ()
    | Some (Obs.Json.Int n) -> fail "summary.errors = %d" n
    | _ -> fail "summary.errors missing"));
  Printf.printf
    "ok: %s (%d definitions, %d diagnostics, %d in the IVM05x band, no \
     errors)\n"
    path (List.length definitions) (List.length diagnostics)
    (List.length ivm05)

let () =
  match Sys.argv with
  | [| _; "trace"; path |] -> validate_trace path
  | [| _; "bench"; path |] -> validate_bench path
  | [| _; "lint"; path |] -> validate_lint path
  | _ ->
    prerr_endline "usage: validate_snapshot (trace|bench|lint) FILE";
    exit 2
