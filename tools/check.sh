#!/bin/sh
# Full pre-merge gate: build everything, run the test suites, and lint
# every built-in view-definition scenario (nonzero exit on any Error
# diagnostic).
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bin/ivm_cli.exe -- lint --all-scenarios
