#!/bin/sh
# Full pre-merge gate: build everything, run the test suites, lint every
# built-in view-definition scenario, and smoke the telemetry pipeline —
# the bench harness and the trace exporter must keep emitting JSON that
# parses and carries the keys downstream tooling consumes.
set -eu
cd "$(dirname "$0")/.."

dune build @all
# The whole suite and the oracle fuzz budget run three times:
# sequential (the default), with a 2-domain pool (one worker — the
# asymmetric case where steals and helping awaits are most likely),
# and with the engine fanning views out over a 4-domain pool, so both
# parallel axes (per-view fan-out and intra-view sharding) are
# exercised by every test and every fuzzed stream.  The fuzz gate
# replays fixed-seed random transaction streams against the naive
# full-recompute oracle (see lib/oracle); a failure prints a shrunk,
# replayable counterexample.  Generated streams declare full-tuple
# candidate keys and draw the forced Self_maintain strategy, so the
# certified zero-base-read path is lockstep-checked here too.
for d in 1 2 4; do
  IVM_DOMAINS=$d dune runtest --force
  dune exec bin/ivm_cli.exe -- fuzz --seed 1986 --streams 50 \
    --transactions 40 --domains "$d" --quiet
  # Fault-injection gate: the same fixed-seed streams replayed with
  # faults raised at maintenance phase boundaries, alternating the abort
  # and quarantine policies; every commit must either succeed, roll back
  # to a state bit-identical to the oracle's pre-commit copy, or
  # quarantine views that self-heal before the stream ends.
  dune exec bin/ivm_cli.exe -- fuzz --seed 1986 --streams 50 \
    --transactions 40 --domains "$d" --fault-rate 0.05 --quiet
  # Aggregate arm: the same lockstep gate with GROUP BY views
  # (COUNT/SUM/AVG/MIN/MAX payload rings) and 2-level view towers drawn
  # into every stream, plain and under fault injection.
  dune exec bin/ivm_cli.exe -- fuzz --seed 1986 --streams 25 \
    --transactions 40 --domains "$d" --aggregates --quiet
  dune exec bin/ivm_cli.exe -- fuzz --seed 1986 --streams 25 \
    --transactions 40 --domains "$d" --aggregates --fault-rate 0.05 --quiet
  # Crash-recovery gate (domains 1 and 4): the same streams run with a
  # WAL and kill-points armed at the append/fsync/checkpoint/truncate
  # boundaries, plus torn tails injected at arbitrary byte offsets into
  # the surviving log.  Every crash must recover to a state
  # bit-identical to an oracle that replayed the durable prefix, twice
  # (recovery is idempotent), before the stream resumes.
  if [ "$d" -ne 2 ]; then
    dune exec bin/ivm_cli.exe -- fuzz --seed 1986 --streams 25 \
      --transactions 30 --domains "$d" --crash --quiet
  fi
  # Provenance smoke: the explain pipeline must replay the paper demo
  # (screening rules, keyed drain, certificate fallback) and emit
  # parseable JSON, and the OpenMetrics exposition must end in # EOF.
  dune exec bin/ivm_cli.exe -- explain --domains "$d" > /dev/null
  dune exec bin/ivm_cli.exe -- explain --domains "$d" --json \
    | grep -q '"IVM051:keyed-drain"'
  dune exec bin/ivm_cli.exe -- metrics --transactions 10 --domains "$d" \
    | tail -1 | grep -q '^# EOF'
done
dune exec bin/ivm_cli.exe -- lint --all-scenarios

# Lint gate, machine-readable: the JSON report over the built-in
# scenarios must carry no Error-level diagnostics and must show the
# IVM05x self-maintainability band (proof the analysis still runs).
dune exec bin/ivm_cli.exe -- lint --all-scenarios --json > lint.json
dune exec tools/validate_snapshot.exe -- lint lint.json

# IVM06x exit contract: a clean GROUP BY definition lints with the
# MIN/MAX rescan hint at exit 0; an aggregate over a missing attribute
# is an IVM060 Error and must exit 1, in --json mode too.
dune exec bin/ivm_cli.exe -- lint --dir data --json \
  "SELECT B, COUNT(*) AS CNT, MIN(A) AS MIN_A FROM R GROUP BY B" \
  | grep -q '"IVM063"'
if dune exec bin/ivm_cli.exe -- lint --dir data --json \
  "SELECT B, SUM(Z) AS SUM_Z FROM R GROUP BY B" > lint_bad.json; then
  echo "check.sh: IVM060 lint was expected to exit 1" >&2
  exit 1
fi
grep -q '"IVM060"' lint_bad.json
rm -f lint_bad.json

# Bench smoke: one cheap section; every run also writes BENCH_IVM.json
# (including the E21 self-maintenance comparison the validator gates).
# The validator also holds the E23 scaling gate: on a machine with >= 4
# cores the sharded curve must reach 1.5x at 4 domains and 1.0x at 2;
# with fewer cores each sub-threshold speedup is skipped with a printed
# warning (a 1-core runner cannot exhibit parallel speedup).
dune exec bench/main.exe -- tables > /dev/null
dune exec tools/validate_snapshot.exe -- bench BENCH_IVM.json

# Regression gate: the fresh snapshot against the committed baseline.
# Deterministic fields (commit counts, screening ratios, advisor and
# self-maintenance coverage) gate; timing fields are noted only, since
# the baseline was recorded on different hardware.  The self-test first
# proves the gate still catches a synthetically degraded snapshot.
dune exec tools/bench_diff.exe -- --self-test BENCH_IVM.json > /dev/null
dune exec tools/bench_diff.exe -- bench/BENCH_IVM.baseline.json \
  BENCH_IVM.json --ignore-timing

# Trace smoke: run a built-in scenario and validate the Chrome trace.
dune exec bin/ivm_cli.exe -- trace --scenario orders --transactions 20 \
  --out trace.json > /dev/null
dune exec tools/validate_snapshot.exe -- trace trace.json
