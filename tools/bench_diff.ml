(* Regression gate between two BENCH_IVM.json snapshots:

     bench_diff BASELINE CURRENT [--tolerance F] [--timing-tolerance F]
                [--check-timing] [--ignore-timing]
     bench_diff --self-test FILE

   Deterministic fields (commit counts, screening ratios, advisor
   calibration presence, self-maintenance coverage) are compared with a
   relative [--tolerance] (default 0.30) and always gate.  Timing fields
   (latency percentiles, speedup curve, journaling overhead) gate only
   with [--check-timing] — CI compares snapshots recorded on different
   hardware, so by default a timing drift beyond [--timing-tolerance]
   (default 3.0x) is reported as a note, not a regression.

   [--self-test FILE] proves the gate can fail: the file must pass
   against itself and must NOT pass against a synthetically degraded
   in-memory copy (commits halved, screening collapsed, latency 10x,
   advisor pairs emptied, self-maintenance coverage broken).

   Exit codes: 0 clean, 1 regression (or a self-test that failed to
   fail), 2 usage/parse problems.  The comparison logic itself lives in
   Obs.Snapshot_diff so tests can exercise it directly. *)

let usage () =
  prerr_endline
    "usage: bench_diff BASELINE CURRENT [--tolerance F] [--timing-tolerance \
     F] [--check-timing] [--ignore-timing]\n\
    \       bench_diff --self-test FILE";
  exit 2

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
    match Obs.Json.parse contents with
    | Ok json -> json
    | Error m ->
      Printf.eprintf "error: %s: %s\n" path m;
      exit 2)
  | exception Sys_error m ->
    Printf.eprintf "error: %s\n" m;
    exit 2

let report (outcome : Obs.Snapshot_diff.outcome) =
  List.iter (fun n -> Printf.printf "note: %s\n" n) outcome.notes;
  List.iter (fun r -> Printf.printf "REGRESSION: %s\n" r) outcome.regressions;
  Printf.printf "%d field(s) compared, %d regression(s), %d note(s)\n"
    outcome.compared
    (List.length outcome.regressions)
    (List.length outcome.notes)

let self_test path =
  let snapshot = read_json path in
  let options = Obs.Snapshot_diff.default in
  let identical =
    Obs.Snapshot_diff.compare_snapshots options ~baseline:snapshot
      ~current:snapshot
  in
  let degraded =
    Obs.Snapshot_diff.compare_snapshots options ~baseline:snapshot
      ~current:(Obs.Snapshot_diff.degrade snapshot)
  in
  let identical_ok = identical.regressions = [] in
  let degraded_ok = degraded.regressions <> [] in
  Printf.printf "identical snapshots: %s (%d fields, %d regressions)\n"
    (if identical_ok then "pass" else "FAIL — clean diff reported regressions")
    identical.compared
    (List.length identical.regressions);
  if not identical_ok then
    List.iter (fun r -> Printf.printf "  unexpected: %s\n" r)
      identical.regressions;
  Printf.printf "degraded snapshot: %s (%d regressions caught)\n"
    (if degraded_ok then "pass"
     else "FAIL — synthetic degradation slipped through")
    (List.length degraded.regressions);
  List.iter (fun r -> Printf.printf "  caught: %s\n" r) degraded.regressions;
  if identical_ok && degraded_ok then 0 else 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--self-test"; path ] | [ path; "--self-test" ] -> exit (self_test path)
  | _ ->
    let tolerance = ref Obs.Snapshot_diff.default.tolerance in
    let timing_tolerance = ref Obs.Snapshot_diff.default.timing_tolerance in
    let check_timing = ref Obs.Snapshot_diff.default.check_timing in
    let positional = ref [] in
    let rec parse = function
      | [] -> ()
      | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> tolerance := f
        | _ -> usage ());
        parse rest
      | "--timing-tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 1.0 -> timing_tolerance := f
        | _ -> usage ());
        parse rest
      | "--check-timing" :: rest ->
        check_timing := true;
        parse rest
      | "--ignore-timing" :: rest ->
        check_timing := false;
        parse rest
      | flag :: _ when String.length flag > 2 && String.sub flag 0 2 = "--" ->
        usage ()
      | path :: rest ->
        positional := path :: !positional;
        parse rest
    in
    parse args;
    (match List.rev !positional with
    | [ baseline_path; current_path ] ->
      let options =
        {
          Obs.Snapshot_diff.tolerance = !tolerance;
          timing_tolerance = !timing_tolerance;
          check_timing = !check_timing;
        }
      in
      let outcome =
        Obs.Snapshot_diff.compare_snapshots options
          ~baseline:(read_json baseline_path) ~current:(read_json current_path)
      in
      report outcome;
      exit (if outcome.regressions = [] then 0 else 1)
    | _ -> usage ())
