(* E9: the paper's open question — under what circumstances is
   differential re-evaluation more efficient than complete re-evaluation?
   We sweep the update-set size as a fraction of the base relation and
   report where full re-evaluation takes over. *)

open Relalg
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

(* E13: the adaptive policy must track the cheaper side of the E9 sweep. *)
let adaptive_sweep ~name ~db ~view ~scenario ~relation ~base_size rng =
  let rows =
    List.map
      (fun fraction ->
        let delta = max 1 (int_of_float (fraction *. float_of_int base_size)) in
        let txn =
          Generate.transaction rng db relation
            ~columns:(Scenario.columns_of scenario relation)
            ~inserts:(delta / 2)
            ~deletes:(delta - (delta / 2))
        in
        let net = Transaction.net_effect db txn in
        let decision = Ivm.Advisor.decide view ~db ~net in
        (* Time the strategy the advisor picked. *)
        let adaptive_options =
          {
            Maintenance.default_options with
            strategy = Maintenance.Adaptive;
          }
        in
        let diff, full, _ =
          Bench_data.measure_diff_vs_full ~options:adaptive_options ~repeats:2
            ~db ~view txn
        in
        let chosen, chosen_time =
          if decision.Ivm.Advisor.choose_differential then
            ("differential", diff)
          else ("recompute", full)
        in
        [
          Printf.sprintf "%.1f%%" (fraction *. 100.0);
          chosen;
          Bench_util.fmt_time chosen_time;
          Bench_util.fmt_time (min diff full);
          Bench_util.fmt_speedup (min diff full /. chosen_time);
        ])
      [ 0.001; 0.01; 0.1; 0.3; 0.6; 1.0 ]
  in
  Bench_util.banner (Printf.sprintf "E13 (%s): adaptive strategy choice" name);
  Bench_util.print_table
    ~header:
      [ "delta/base"; "advisor picks"; "picked cost"; "best of both"; "regret" ]
    rows

let sweep ~name ~db ~view ~scenario ~relation ~base_size rng =
  let rows = ref [] in
  let crossover = ref None in
  List.iter
    (fun fraction ->
      let delta = max 1 (int_of_float (fraction *. float_of_int base_size)) in
      let diff, full, _ =
        Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view (fun _ ->
            Generate.transaction rng db relation
              ~columns:(Scenario.columns_of scenario relation)
              ~inserts:(delta / 2)
              ~deletes:(delta - (delta / 2)))
      in
      let ratio = full /. diff in
      if ratio < 1.0 && !crossover = None then crossover := Some fraction;
      rows :=
        [
          Printf.sprintf "%.1f%%" (fraction *. 100.0);
          string_of_int delta;
          Bench_util.fmt_time diff;
          Bench_util.fmt_time full;
          Bench_util.fmt_speedup ratio;
        ]
        :: !rows)
    [ 0.001; 0.01; 0.03; 0.1; 0.3; 0.6; 1.0 ];
  Bench_util.banner (Printf.sprintf "E9 (%s)" name);
  Bench_util.print_table
    ~header:
      [ "delta/base"; "tuples"; "differential"; "full re-eval"; "diff speedup" ]
    (List.rev !rows);
  (match !crossover with
  | Some f ->
    Printf.printf
      "crossover: full re-evaluation wins once the update set reaches ~%.1f%% of the base relation\n"
      (f *. 100.0)
  | None ->
    Printf.printf
      "no crossover in the sweep: differential stays ahead up to 100%% churn\n")

let run () =
  Bench_util.section
    "E9: differential vs complete re-evaluation crossover (the paper's open question)";
  (let rng = Rng.make 900 in
   let scenario, db, view =
     Bench_data.select_setup ~rng ~size:20_000 ~key_range:1000 ~threshold:500
   in
   sweep ~name:"select view, |R| = 20k" ~db ~view ~scenario ~relation:"R"
     ~base_size:20_000 rng);
  (let rng = Rng.make 901 in
   let scenario, db, view =
     Bench_data.join_setup ~rng ~size_r:20_000 ~size_s:20_000 ~key_range:10_000
   in
   sweep ~name:"join view, |R| = |S| = 20k" ~db ~view ~scenario ~relation:"R"
     ~base_size:20_000 rng);
  (let rng = Rng.make 902 in
   let scenario, db, view =
     Bench_data.join_setup ~rng ~size_r:20_000 ~size_s:20_000 ~key_range:10_000
   in
   adaptive_sweep ~name:"join view, |R| = |S| = 20k" ~db ~view ~scenario
     ~relation:"R" ~base_size:20_000 rng)
