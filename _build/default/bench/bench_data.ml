(* Workload builders and the measurement core shared by all experiments. *)

open Relalg
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

(* Measure one transaction both ways.  The differential side times
   Maintenance.view_delta in the deletions-applied state (it does not
   mutate, so it can be repeated); the baseline times complete
   re-evaluation against the post-state.  The view is left consistent. *)
let measure_diff_vs_full ?(options = Maintenance.default_options) ?(repeats = 5)
    ~db ~view txn =
  let net = Transaction.net_effect db txn in
  Maintenance.apply_deletes db net;
  let delta, report = Maintenance.view_delta ~options view ~db ~net in
  let diff_time =
    Bench_util.time_trials ~repeats (fun _ ->
        ignore (Maintenance.view_delta ~options view ~db ~net))
  in
  Maintenance.apply_inserts db net;
  let lookup = View.lookup view in
  let full_time =
    Bench_util.time_trials ~repeats (fun _ ->
        ignore (Query.Spj.eval lookup db (View.spj view)))
  in
  View.apply_delta view delta;
  (diff_time, full_time, report)

(* Average the two measurements across [trials] fresh transactions. *)
let sweep_diff_vs_full ?options ?(repeats = 3) ~trials ~db ~view make_txn =
  let diff_total = ref 0.0 and full_total = ref 0.0 in
  let last_report = ref None in
  for trial = 1 to trials do
    let diff, full, report =
      measure_diff_vs_full ?options ~repeats ~db ~view (make_txn trial)
    in
    diff_total := !diff_total +. diff;
    full_total := !full_total +. full;
    last_report := Some report
  done;
  let n = float_of_int trials in
  (!diff_total /. n, !full_total /. n, !last_report)

(* Single relation R(A, B, C) and a selective view sigma_{B < threshold}.
   B is uniform over [0, key_range), so selectivity = threshold/key_range
   and an insert with B >= threshold is provably irrelevant. *)
let select_setup ~rng ~size ~key_range ~threshold =
  let scenario = Scenario.single ~rng ~size ~key_range in
  let db = scenario.Scenario.db in
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"sel" ~db
      Query.Expr.(select (v "B" <% i threshold) (base "R"))
  in
  (scenario, db, view)

(* Insert batch with an exact fraction of provably irrelevant tuples
   (B >= threshold).  Returned as a valid transaction. *)
let relevance_controlled_inserts ~rng ~db ~relation ~key_range ~threshold
    ~batch ~irrelevant_fraction =
  let irrelevant_count =
    int_of_float (irrelevant_fraction *. float_of_int batch)
  in
  let base = Database.find db relation in
  let columns_for lo hi =
    [
      Generate.Uniform (0, 10_000_000);
      Generate.Uniform (lo, hi);
      Generate.Uniform (0, 100);
    ]
  in
  let irrelevant =
    Generate.fresh rng base (columns_for threshold (key_range - 1))
      irrelevant_count
  in
  let relevant =
    Generate.fresh rng base (columns_for 0 (threshold - 1))
      (batch - irrelevant_count)
  in
  List.map (fun t -> Transaction.insert relation t) (irrelevant @ relevant)

(* Join view over pair R(A,B) |x| S(B,C). *)
let join_setup ~rng ~size_r ~size_s ~key_range =
  let scenario = Scenario.pair ~rng ~size_r ~size_s ~key_range in
  let db = scenario.Scenario.db in
  let view =
    View.define ~name:"join" ~db Query.Expr.(join (base "R") (base "S"))
  in
  (scenario, db, view)
