(* E1: cost/benefit of irrelevant-update screening (Algorithm 4.1).
   E11: multi-tuple screening (Theorem 4.2).
   E8a: ablation - incremental APSP check vs per-tuple full procedure. *)

open Relalg
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Irrelevance = Ivm.Irrelevance
module Rng = Workload.Rng
open Bechamel

let e1 () =
  Bench_util.banner
    "E1: screening benefit vs irrelevant fraction (select view, |R| = 50k, batch = 1000)";
  let rng = Rng.make 101 in
  let key_range = 1000 and threshold = 500 in
  let _, db, view =
    Bench_data.select_setup ~rng ~size:50_000 ~key_range ~threshold
  in
  let rows =
    List.map
      (fun fraction ->
        let txn =
          Bench_data.relevance_controlled_inserts ~rng ~db ~relation:"R"
            ~key_range ~threshold ~batch:1000 ~irrelevant_fraction:fraction
        in
        let net = Transaction.net_effect db txn in
        Maintenance.apply_deletes db net;
        let time_with options =
          Bench_util.time_trials ~repeats:5 (fun _ ->
              ignore (Maintenance.view_delta ~options view ~db ~net))
        in
        let screened =
          time_with { Maintenance.default_options with screen = true }
        in
        let unscreened =
          time_with { Maintenance.default_options with screen = false }
        in
        (* Leave the database unchanged: we only measured. *)
        Maintenance.apply_inserts db net;
        let revert =
          List.map
            (fun op ->
              match op with
              | Transaction.Insert (r, t) -> Transaction.delete r t
              | Transaction.Delete (r, t) -> Transaction.insert r t)
            txn
        in
        Transaction.apply db (Transaction.net_effect db revert);
        [
          Printf.sprintf "%.0f%%" (fraction *. 100.0);
          Bench_util.fmt_time screened;
          Bench_util.fmt_time unscreened;
          Bench_util.fmt_speedup (unscreened /. screened);
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  Bench_util.print_table
    ~header:
      [ "irrelevant"; "delta w/ screen"; "delta w/o screen"; "screen speedup" ]
    rows

let e1b () =
  Bench_util.banner
    "E1b: screening a condition that pushdown cannot filter (Example 4.1 shape)";
  (* View u = sigma_{B=C & C>5}(R x S): the atom C > 5 is local to S, and
     B = C is a cross-source join atom, so nothing filters an R-delta
     before evaluation.  An insert into R with B <= 5 is provably
     irrelevant by substitution (Theorem 4.1); without the screen every
     such transaction still pays a row evaluation over S. *)
  let rng = Rng.make 102 in
  let db = Database.create () in
  Database.register db "R"
    (Workload.Generate.relation rng
       (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
       [ Workload.Generate.Uniform (0, 1_000_000);
         Workload.Generate.Uniform (0, 999) ]
       1_000);
  Database.register db "S"
    (Workload.Generate.relation rng
       (Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ])
       [ Workload.Generate.Uniform (6, 999);
         Workload.Generate.Uniform (0, 1_000_000) ]
       20_000);
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"u" ~db
      Query.Expr.(
        project [ "A"; "D" ]
          (select ((v "B" =% v "C") &&% (v "C" >% i 5))
             (product (base "R") (base "S"))))
  in
  let single_insert_nets ~irrelevant_fraction n =
    List.init n (fun k ->
        let irrelevant =
          float_of_int k < irrelevant_fraction *. float_of_int n
        in
        let b = if irrelevant then Rng.int rng 6 else Rng.range rng ~lo:6 ~hi:999
        in
        Transaction.of_sets
          [ ("R", ([ Tuple.of_ints [ 2_000_000 + k; b ] ], [])) ])
  in
  let rows =
    List.map
      (fun fraction ->
        let nets = single_insert_nets ~irrelevant_fraction:fraction 100 in
        let time_with screen =
          let options = { Maintenance.default_options with screen } in
          Bench_util.time_trials ~repeats:3 (fun _ ->
              List.iter
                (fun net ->
                  ignore (Maintenance.view_delta ~options view ~db ~net))
                nets)
        in
        let screened = time_with true in
        let unscreened = time_with false in
        [
          Printf.sprintf "%.0f%%" (fraction *. 100.0);
          Bench_util.fmt_time screened;
          Bench_util.fmt_time unscreened;
          Bench_util.fmt_speedup (unscreened /. screened);
        ])
      [ 0.0; 0.5; 0.9; 1.0 ]
  in
  Bench_util.print_table
    ~header:
      [
        "irrelevant txns";
        "100 txns w/ screen";
        "100 txns w/o screen";
        "screen speedup";
      ]
    rows;
  Printf.printf
    "\nNote: E1 (source-local condition) shows screening roughly\n\
     break-even, because the planner's predicate pushdown already\n\
     filters the delta at comparable cost.  E1b is the paper's Example\n\
     4.1 shape: the proof of irrelevance needs the substitution test,\n\
     and skipping the row evaluation (which scans and filters S) is a\n\
     large constant saving per irrelevant transaction.\n"

let e11 () =
  Bench_util.banner
    "E11: multi-tuple irrelevance (Theorem 4.2) - jointly dead tuple pairs";
  let rng = Rng.make 103 in
  let _, _db, view =
    Bench_data.join_setup ~rng ~size_r:1000 ~size_s:1000 ~key_range:100
  in
  ignore rng;
  let lookup = View.lookup view in
  let spj = View.spj view in
  (* Pairs whose join keys clash are jointly irrelevant even though each
     tuple alone is relevant. *)
  let pairs =
    List.init 100 (fun k ->
        [ ("R", Tuple.of_ints [ 900_000 + k; 1 ]); ("S", Tuple.of_ints [ 2; k ]) ])
  in
  let jointly_dead =
    List.length
      (List.filter
         (fun pair -> not (Irrelevance.combined_relevant ~lookup ~spj pair))
         pairs)
  in
  let singly_dead =
    List.length
      (List.filter
         (fun pair ->
           List.exists
             (fun (alias, t) ->
               not (Irrelevance.combined_relevant ~lookup ~spj [ (alias, t) ]))
             pair)
         pairs)
  in
  let per_pair =
    Bench_util.time_trials ~repeats:5 (fun _ ->
        List.iter
          (fun pair -> ignore (Irrelevance.combined_relevant ~lookup ~spj pair))
          pairs)
  in
  Bench_util.print_table
    ~header:[ "metric"; "value" ]
    [
      [ "pairs tested"; "100" ];
      [ "dead via single-tuple test"; string_of_int singly_dead ];
      [ "dead via combined test"; string_of_int jointly_dead ];
      [
        "combined test cost/pair";
        Bench_util.fmt_time (per_pair /. 100.0);
      ];
    ]

let e8a () =
  Bench_util.banner
    "E8a: ablation - incremental zero-edge check vs full per-tuple procedure";
  let rng = Rng.make 105 in
  let key_range = 1000 and threshold = 500 in
  let _, _db, view =
    Bench_data.select_setup ~rng ~size:1000 ~key_range ~threshold
  in
  let screen = View.screen_for view ~alias:"R" in
  let tuples =
    Array.init 256 (fun k ->
        Tuple.of_ints [ k; (k * 7919) mod key_range; k mod 100 ])
  in
  let run_with test () =
    Array.iter (fun t -> ignore (test screen t)) tuples
  in
  let results =
    Bench_util.run_bechamel
      (Test.make_grouped ~name:"e8a" ~fmt:"%s/%s"
         [
           Test.make ~name:"incremental (Algorithm 4.1)"
             (Staged.stage (run_with Irrelevance.relevant));
           Test.make ~name:"naive full satisfiability"
             (Staged.stage (run_with Irrelevance.relevant_naive));
         ])
  in
  Bench_util.print_table
    ~header:[ "variant"; "time / 256 tuples" ]
    (List.map
       (fun (name, ns) -> [ name; Bench_util.fmt_time (ns *. 1e-9) ])
       results)

let run () =
  Bench_util.section "Screening experiments (E1, E11, E8a)";
  e1 ();
  e1b ();
  e11 ();
  e8a ()
