(* E7: satisfiability scaling.  Rosenkrantz-Hunt is O(n^3) per conjunction
   (Floyd-Warshall over n variables) and O(m n^3) for m disjuncts. *)

module F = Condition.Formula
module Sat = Condition.Satisfiability
open F.Dsl

(* An unsatisfiable chain x0 < x1 < ... < x_{n-1} < x0: every disjunct
   must be fully checked (satisfiable disjuncts would short-circuit the
   DNF test), so the measurement exercises the complete O(m n^3) path. *)
let chain_conjunction n =
  let var k = Printf.sprintf "x%d" k in
  let chain = List.init (n - 1) (fun k -> v (var k) <% v (var (k + 1))) in
  let closing = [ v (var (n - 1)) <% v (var 0) ] in
  match F.to_dnf (F.conj (chain @ closing)) with
  | [ conj ] -> conj
  | _ -> assert false

let e7 () =
  Bench_util.banner "E7: satisfiability cost, O(m n^3) expected";
  let repeat = 50 in
  let rows =
    List.concat_map
      (fun n ->
        let conj = chain_conjunction n in
        List.map
          (fun m ->
            let dnf = List.init m (fun _ -> conj) in
            let t =
              Bench_util.time_trials ~repeats:5 (fun _ ->
                  for _ = 1 to repeat do
                    ignore (Sat.dnf dnf)
                  done)
            in
            let per_call = t /. float_of_int repeat in
            [
              string_of_int n;
              string_of_int m;
              Bench_util.fmt_time per_call;
              Printf.sprintf "%.2f"
                (per_call *. 1e9
                /. (float_of_int m *. (float_of_int n ** 3.0)));
            ])
          [ 1; 4; 16 ])
      [ 4; 8; 16; 32; 64 ]
  in
  Bench_util.print_table
    ~header:[ "n vars"; "m disjuncts"; "time/call"; "ns / (m*n^3)" ]
    rows;
  Printf.printf
    "\nEvery disjunct is unsatisfiable, so all m are checked; the last\n\
     column approaching a constant as n grows confirms the O(m n^3)\n\
     asymptotic (small n is dominated by normalization overhead).\n"

let run () =
  Bench_util.section "Satisfiability scaling (E7)";
  e7 ()
