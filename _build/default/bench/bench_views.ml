(* E2-E6: differential maintenance vs complete re-evaluation, per view
   class.  Shapes expected: differential wins by roughly |view|/|delta|
   for small update sets; the gap narrows as the batch grows. *)

module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let speedup_row label diff full =
  [
    label;
    Bench_util.fmt_time diff;
    Bench_util.fmt_time full;
    Bench_util.fmt_speedup (full /. diff);
  ]

let header = [ "configuration"; "differential"; "full re-eval"; "speedup" ]

let e2 () =
  Bench_util.banner "E2: select view  sigma_{B<500}(R),  B uniform in [0,1000)";
  let rows =
    List.concat_map
      (fun size ->
        let rng = Rng.make (200 + size) in
        let scenario, db, view =
          Bench_data.select_setup ~rng ~size ~key_range:1000 ~threshold:500
        in
        List.map
          (fun batch ->
            let columns = Scenario.columns_of scenario "R" in
            let diff, full, _ =
              Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view
                (fun _ ->
                  Generate.transaction rng db "R" ~columns
                    ~inserts:(batch / 2) ~deletes:(batch - (batch / 2)))
            in
            speedup_row (Printf.sprintf "|R|=%d batch=%d" size batch) diff full)
          [ 2; 100; 1000 ])
      [ 1_000; 10_000; 100_000 ]
  in
  Bench_util.print_table ~header rows

let e3 () =
  Bench_util.banner
    "E3: project view  pi_B(R)  (duplicate-heavy: B has 100 values)";
  let rows =
    List.concat_map
      (fun size ->
        let rng = Rng.make (300 + size) in
        let scenario = Scenario.single ~rng ~size ~key_range:100 in
        let db = scenario.Scenario.db in
        let view =
          View.define ~name:"proj" ~db Query.Expr.(project [ "B" ] (base "R"))
        in
        List.map
          (fun batch ->
            let columns = Scenario.columns_of scenario "R" in
            let diff, full, _ =
              Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view
                (fun _ ->
                  Generate.transaction rng db "R" ~columns
                    ~inserts:(batch / 2) ~deletes:(batch - (batch / 2)))
            in
            speedup_row (Printf.sprintf "|R|=%d batch=%d" size batch) diff full)
          [ 2; 1000 ])
      [ 10_000; 100_000 ]
  in
  Bench_util.print_table ~header rows

let e4 () =
  Bench_util.banner "E4: join view  R(A,B) |x| S(B,C)";
  let rows =
    List.concat_map
      (fun size ->
        let rng = Rng.make (400 + size) in
        let scenario, db, view =
          Bench_data.join_setup ~rng ~size_r:size ~size_s:size
            ~key_range:(max 10 (size / 2))
        in
        List.map
          (fun batch ->
            let diff, full, _ =
              Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view
                (fun _ ->
                  Generate.mixed_transaction rng db
                    [
                      ( "R",
                        Scenario.columns_of scenario "R",
                        batch / 2,
                        batch / 2 );
                    ])
            in
            speedup_row
              (Printf.sprintf "|R|=|S|=%d delta=%d" size batch)
              diff full)
          [ 2; 100; 1000 ])
      [ 1_000; 10_000; 30_000 ]
  in
  Bench_util.print_table ~header rows

let e5 () =
  Bench_util.banner
    "E5: 3-way chain join, k modified relations (2^k - 1 truth-table rows)";
  let rng = Rng.make 500 in
  let scenario, names = Scenario.chain ~rng ~p:3 ~size:10_000 ~key_range:3_000 in
  let db = scenario.Scenario.db in
  let view =
    View.define ~name:"chain" ~db
      Query.Expr.(join_all (List.map Query.Expr.base names))
  in
  let rows =
    List.map
      (fun k ->
        let touched = List.filteri (fun idx _ -> idx < k) names in
        let diff, full, report =
          Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view
            (fun _ ->
              Generate.mixed_transaction rng db
                (List.map
                   (fun name -> (name, Scenario.columns_of scenario name, 10, 10))
                   touched))
        in
        let rows_evaluated =
          match report with
          | Some r -> r.Maintenance.rows_evaluated
          | None -> 0
        in
        [
          Printf.sprintf "k=%d (%s)" k (String.concat "," touched);
          string_of_int rows_evaluated;
          Bench_util.fmt_time diff;
          Bench_util.fmt_time full;
          Bench_util.fmt_speedup (full /. diff);
        ])
      [ 1; 2; 3 ]
  in
  Bench_util.print_table
    ~header:
      [ "modified"; "row evals"; "differential"; "full re-eval"; "speedup" ]
    rows

let e6 () =
  Bench_util.banner
    "E6: SPJ dashboard view (orders |x| customers, selection + projection)";
  let rng = Rng.make 600 in
  let scenario = Scenario.orders ~rng ~customers:1_000 ~orders:50_000 in
  let db = scenario.Scenario.db in
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"dash" ~db
      Query.Expr.(
        project
          [ "oid"; "cid"; "amount" ]
          (select
             ((v "amount" >% i 900) &&% (v "region" =% s "north"))
             (join (base "orders") (base "customers"))))
  in
  let rows =
    List.map
      (fun batch ->
        let diff, full, report =
          Bench_data.sweep_diff_vs_full ~trials:2 ~repeats:2 ~db ~view
            (fun _ ->
              Generate.transaction rng db "orders"
                ~columns:(Scenario.columns_of scenario "orders")
                ~inserts:(batch / 2) ~deletes:(batch - (batch / 2)))
        in
        let screened =
          match report with
          | Some r ->
            Printf.sprintf "%d/%d"
              r.Maintenance.screened_out
              (r.Maintenance.screened_out + r.Maintenance.screened_kept)
          | None -> "-"
        in
        [
          Printf.sprintf "batch=%d" batch;
          screened;
          Bench_util.fmt_time diff;
          Bench_util.fmt_time full;
          Bench_util.fmt_speedup (full /. diff);
        ])
      [ 10; 100; 1000 ]
  in
  Bench_util.print_table
    ~header:
      [
        "configuration";
        "screened out";
        "differential";
        "full re-eval";
        "speedup";
      ]
    rows

let run () =
  Bench_util.section
    "Differential vs complete re-evaluation per view class (E2-E6)";
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ()
