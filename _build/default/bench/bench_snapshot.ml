(* E10: immediate maintenance vs deferred snapshot refresh [AL80].
   Identical 100-transaction streams; the deferred manager refreshes
   every k transactions.  Composition makes deferred cheaper when churn
   overlaps, at the cost of staleness between refreshes. *)

module View = Ivm.View
module Manager = Ivm.Manager
module Generate = Workload.Generate
module Scenario = Workload.Scenario
module Rng = Workload.Rng

let run_stream ~mode ~refresh_every seed =
  let rng = Rng.make seed in
  let scenario = Scenario.pair ~rng ~size_r:10_000 ~size_s:10_000 ~key_range:5_000
  in
  let db = scenario.Scenario.db in
  let mgr = Manager.create db in
  ignore
    (Manager.define_view mgr ~name:"v" ~mode
       Query.Expr.(join (Query.Expr.base "R") (Query.Expr.base "S")));
  (* Pre-generate the stream outside the timer. *)
  let transactions =
    List.init 100 (fun _ ->
        Generate.mixed_transaction rng db
          [
            ("R", Scenario.columns_of scenario "R", 3, 3);
            ("S", Scenario.columns_of scenario "S", 2, 2);
          ]
        (* Transactions are generated against the current state, so apply
           them as we go rather than precomputing: regenerate below. *))
  in
  ignore transactions;
  (* The generator samples deletions from the live state, so timing must
     include generation; keep it identical across modes by reseeding. *)
  let rng = Rng.make (seed * 7) in
  let elapsed =
    Bench_util.time_once (fun () ->
        List.iteri
          (fun idx () ->
            let txn =
              Generate.mixed_transaction rng db
                [
                  ("R", Scenario.columns_of scenario "R", 3, 3);
                  ("S", Scenario.columns_of scenario "S", 2, 2);
                ]
            in
            ignore (Manager.commit mgr txn);
            if mode = Manager.Deferred && (idx + 1) mod refresh_every = 0 then
              ignore (Manager.refresh mgr "v"))
          (List.init 100 (fun _ -> ())))
  in
  ignore (Manager.refresh mgr "v");
  assert (Manager.consistent mgr "v");
  elapsed

let run () =
  Bench_util.section "E10: immediate vs deferred snapshot refresh";
  let immediate = run_stream ~mode:Ivm.Manager.Immediate ~refresh_every:1 1000 in
  let rows =
    [ "immediate (every txn)"; Bench_util.fmt_time immediate; "1.0x" ]
    :: List.map
         (fun period ->
           let t =
             run_stream ~mode:Ivm.Manager.Deferred ~refresh_every:period 1000
           in
           [
             Printf.sprintf "deferred, refresh every %d" period;
             Bench_util.fmt_time t;
             Bench_util.fmt_speedup (immediate /. t);
           ])
         [ 1; 10; 100 ]
  in
  Bench_util.print_table
    ~header:[ "strategy"; "100-txn stream"; "vs immediate" ]
    rows
