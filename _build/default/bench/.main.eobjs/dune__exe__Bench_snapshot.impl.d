bench/bench_snapshot.ml: Bench_util Ivm List Printf Query Workload
