bench/bench_util.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf String Time Toolkit Unix
