bench/bench_views.ml: Bench_data Bench_util Condition Ivm List Printf Query String Workload
