bench/bench_screening.ml: Array Bechamel Bench_data Bench_util Condition Database Ivm List Printf Query Relalg Schema Staged Test Transaction Tuple Value Workload
