bench/bench_sat.ml: Bench_util Condition List Printf
