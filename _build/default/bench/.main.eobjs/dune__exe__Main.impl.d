bench/main.ml: Array Bench_ablation Bench_crossover Bench_sat Bench_screening Bench_snapshot Bench_tables Bench_views List Printf String Sys
