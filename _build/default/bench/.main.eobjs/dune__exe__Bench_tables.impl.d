bench/bench_tables.ml: Bench_util Condition Database Ivm List Printf Query Relalg Relation Schema Transaction Tuple Value
