bench/bench_ablation.ml: Bechamel Bench_data Bench_util Database Ivm List Ops Printf Query Relalg Relation Schema Staged Test Transaction Tuple Value Workload
