bench/main.mli:
