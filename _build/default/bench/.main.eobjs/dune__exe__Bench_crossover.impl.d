bench/bench_crossover.ml: Bench_data Bench_util Ivm List Printf Relalg Transaction Workload
