bench/bench_data.ml: Bench_util Condition Database Ivm List Query Relalg Transaction Workload
