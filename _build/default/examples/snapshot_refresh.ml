(* Snapshot refresh: the paper's conclusion notes the approach extends to
   materialized views that are refreshed periodically or on demand —
   System R* snapshots [AL80, L85].

   Run with:  dune exec examples/snapshot_refresh.exe

   A reporting snapshot over a busy join view accumulates update sets
   across transactions; composed net deltas (insert-then-delete churn
   cancels) are applied differentially only when a report is requested. *)

open Relalg
open Condition.Formula.Dsl
module Scenario = Workload.Scenario
module Generate = Workload.Generate
module Rng = Workload.Rng

let () =
  let rng = Rng.make 7 in
  let scenario = Scenario.pair ~rng ~size_r:5_000 ~size_s:500 ~key_range:200 in
  let db = scenario.Scenario.db in
  let mgr = Ivm.Manager.create db in

  let expr =
    Query.Expr.(
      project [ "A"; "C" ] (select (v "C" >% i 100) (join (base "R") (base "S"))))
  in
  let snapshot =
    Ivm.Manager.define_view mgr ~name:"report" ~mode:Ivm.Manager.Deferred expr
  in
  Printf.printf "snapshot materialized with %d rows\n"
    (Relation.cardinal (Ivm.View.contents snapshot));

  let committed = ref 0 in
  let run_burst n =
    for _ = 1 to n do
      let txn =
        Generate.mixed_transaction rng db
          [
            ("R", Scenario.columns_of scenario "R", Rng.int rng 6, Rng.int rng 6);
            ("S", Scenario.columns_of scenario "S", Rng.int rng 2, Rng.int rng 2);
          ]
      in
      ignore (Ivm.Manager.commit mgr txn);
      incr committed
    done
  in

  run_burst 40;
  let pending = Ivm.Manager.pending mgr "report" in
  List.iter
    (fun (relation, d) ->
      Printf.printf
        "after %d transactions, pending on %s: +%d -%d (composed net)\n"
        !committed relation
        (Relation.total d.Ivm.Delta.inserts)
        (Relation.total d.Ivm.Delta.deletes))
    pending;

  (* The analyst asks for the report: one differential refresh applies the
     whole backlog. *)
  (match Ivm.Manager.refresh mgr "report" with
  | Some report ->
    Format.printf "refresh: %a@." Ivm.Maintenance.pp_report report
  | None -> assert false);
  Printf.printf "snapshot now has %d rows; consistent: %b\n"
    (Relation.cardinal (Ivm.View.contents snapshot))
    (Ivm.Manager.consistent mgr "report");

  (* Churn that cancels out costs nothing at refresh time. *)
  let t = Tuple.of_ints [ 999_999; 10 ] in
  ignore (Ivm.Manager.commit mgr [ Transaction.insert "R" t ]);
  ignore (Ivm.Manager.commit mgr [ Transaction.delete "R" t ]);
  let pending = Ivm.Manager.pending mgr "report" in
  Printf.printf "pending after insert-then-delete churn: %s\n"
    (if List.for_all (fun (_, d) -> Ivm.Delta.is_empty d) pending then
       "empty (composition cancelled it)"
     else "non-empty")
