(* Real-time queries over materialized views: Gardarin et al. [GSV84]
   wanted concrete (materialized) views for real-time querying but lacked
   an efficient maintenance algorithm — the gap this paper fills.

   Run with:  dune exec examples/realtime_dashboard.exe

   An order-processing database sustains a stream of transactions while
   three dashboard panels — materialized views — answer instantly, each
   maintained differentially at commit time. *)

open Relalg
open Condition.Formula.Dsl
module Scenario = Workload.Scenario
module Generate = Workload.Generate
module Rng = Workload.Rng

let () =
  let rng = Rng.make 2024 in
  let scenario = Scenario.orders ~rng ~customers:50 ~orders:2_000 in
  let db = scenario.Scenario.db in
  let mgr = Ivm.Manager.create db in

  (* Panel 1: big orders from the northern region (select-join view with a
     string-equality condition). *)
  let big_north =
    Ivm.Manager.define_view mgr ~name:"big_north"
      Query.Expr.(
        project
          [ "oid"; "cid"; "amount" ]
          (select
             ((v "amount" >% i 900) &&% (v "region" =% s "north"))
             (join (base "orders") (base "customers"))))
  in
  (* Panel 2: customers with at least one urgent order (project view whose
     counters track how many urgent orders each customer has). *)
  let urgent_customers =
    Ivm.Manager.define_view mgr ~name:"urgent_customers"
      Query.Expr.(
        project [ "cid" ] (select (v "priority" >=% i 5) (base "orders")))
  in
  (* Panel 3: all orders below the free-shipping threshold. *)
  let small_orders =
    Ivm.Manager.define_view mgr ~name:"small_orders"
      Query.Expr.(select (v "amount" <% i 50) (base "orders"))
  in

  Printf.printf "day 0: big_north=%d urgent_customers=%d small_orders=%d\n"
    (Relation.cardinal (Ivm.View.contents big_north))
    (Relation.cardinal (Ivm.View.contents urgent_customers))
    (Relation.cardinal (Ivm.View.contents small_orders));

  let order_columns = Scenario.columns_of scenario "orders" in
  let total_updates = ref 0 and total_screened = ref 0 in
  for day = 1 to 20 do
    (* A business day: a burst of new orders, some fulfilled (deleted). *)
    let txn =
      Generate.transaction rng db "orders" ~columns:order_columns ~inserts:25
        ~deletes:15
    in
    let reports = Ivm.Manager.commit mgr txn in
    List.iter
      (fun r ->
        total_updates :=
          !total_updates + r.Ivm.Maintenance.screened_out
          + r.Ivm.Maintenance.screened_kept;
        total_screened := !total_screened + r.Ivm.Maintenance.screened_out)
      reports;
    if day mod 5 = 0 then
      Printf.printf "day %2d: big_north=%d urgent_customers=%d small_orders=%d\n"
        day
        (Relation.cardinal (Ivm.View.contents big_north))
        (Relation.cardinal (Ivm.View.contents urgent_customers))
        (Relation.cardinal (Ivm.View.contents small_orders))
  done;

  Printf.printf
    "\nacross all views: %d of %d update-tuples proven irrelevant (%.0f%%)\n"
    !total_screened !total_updates
    (100.0 *. float_of_int !total_screened /. float_of_int !total_updates);
  Printf.printf "all views consistent with full re-evaluation: %b\n"
    (Ivm.Manager.all_consistent mgr)
