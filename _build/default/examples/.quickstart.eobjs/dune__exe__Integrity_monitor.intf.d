examples/integrity_monitor.mli:
