examples/quickstart.ml: Condition Database Format Ivm List Printf Query Relalg Relation Schema Transaction Tuple Value
