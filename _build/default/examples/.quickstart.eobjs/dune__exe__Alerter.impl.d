examples/alerter.ml: Condition Database Ivm List Printf Query Relalg Relation Schema Transaction Tuple Value
