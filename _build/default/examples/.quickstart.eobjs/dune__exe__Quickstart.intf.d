examples/quickstart.mli:
