examples/integrity_monitor.ml: Condition Database Ivm List Printf Query Relalg Relation Schema Transaction Tuple Value
