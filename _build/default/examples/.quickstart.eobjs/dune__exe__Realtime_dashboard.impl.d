examples/realtime_dashboard.ml: Condition Ivm List Printf Query Relalg Relation Workload
