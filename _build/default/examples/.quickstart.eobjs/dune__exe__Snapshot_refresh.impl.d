examples/snapshot_refresh.ml: Condition Format Ivm List Printf Query Relalg Relation Transaction Tuple Workload
