examples/snapshot_refresh.mli:
