examples/alerter.mli:
