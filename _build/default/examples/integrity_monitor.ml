(* Integrity assertions: Hammer & Sarin [HS78] detect violations of
   integrity assertions by analyzing the potential effects of updates —
   the paper observes its irrelevant-update test subsumes that setting.

   Run with:  dune exec examples/integrity_monitor.exe

   An assertion is encoded as a view over its error predicate (the logical
   complement): the constraint holds iff the view is empty.  Irrelevance
   screening is exactly Hammer & Sarin's compile-time analysis — updates
   that cannot violate the assertion skip the run-time check entirely. *)

open Relalg
open Condition.Formula.Dsl

let () =
  let db = Database.create () in
  (* employees(eid, dept, salary), departments(dept, cap) where the
     assertion is: no employee earns above their department's cap. *)
  Database.register db "employees"
    (Relation.of_tuples
       (Schema.make
          [
            ("eid", Value.Int_ty); ("dept", Value.Int_ty); ("salary", Value.Int_ty);
          ])
       [ Tuple.of_ints [ 1; 10; 120 ]; Tuple.of_ints [ 2; 20; 80 ] ]);
  Database.register db "departments"
    (Relation.of_tuples
       (Schema.make [ ("dept", Value.Int_ty); ("cap", Value.Int_ty) ])
       [ Tuple.of_ints [ 10; 150 ]; Tuple.of_ints [ 20; 100 ] ]);

  let mgr = Ivm.Manager.create db in
  (* The error predicate: salary > cap.  Adding salary > 100 as a
     provable lower bound for any violation lets the screen discard most
     updates without touching the database: no department cap exceeds
     100... except dept 10's 150, so we use the weakest static bound the
     schema guarantees, salary > 80 (the minimum cap in use is declared
     policy, not data). *)
  let violations =
    Ivm.Manager.define_view mgr ~name:"violations"
      Query.Expr.(
        project [ "eid"; "salary"; "cap" ]
          (select
             ((v "salary" >% v "cap") &&% (v "salary" >% i 80))
             (join (base "employees") (base "departments"))))
  in

  let check_after label txn =
    let reports = Ivm.Manager.commit mgr txn in
    let report = List.hd reports in
    let state = Ivm.View.contents violations in
    Printf.printf "%-45s screened out: %d | %s\n" label
      report.Ivm.Maintenance.screened_out
      (if Relation.is_empty state then "constraint holds"
       else "VIOLATION:\n" ^ Relation.to_ascii state)
  in

  (* Salary 70 can never beat the bound: the assertion check is skipped
     (Hammer-Sarin's "no candidate tests"). *)
  check_after "hire eid=3 dept=20 salary=70 (irrelevant)"
    [ Transaction.insert "employees" (Tuple.of_ints [ 3; 20; 70 ]) ];
  (* Salary 95 must be checked against dept 20's cap of 100: fine. *)
  check_after "hire eid=4 dept=20 salary=95 (checked, ok)"
    [ Transaction.insert "employees" (Tuple.of_ints [ 4; 20; 95 ]) ];
  (* Salary 130 violates dept 20's cap. *)
  check_after "hire eid=5 dept=20 salary=130 (violates)"
    [ Transaction.insert "employees" (Tuple.of_ints [ 5; 20; 130 ]) ];
  (* Repair: fire the offender. *)
  check_after "fire eid=5 (repaired)"
    [ Transaction.delete "employees" (Tuple.of_ints [ 5; 20; 130 ]) ];
  (* Lowering a cap can also create violations: dept 10 down to 110. *)
  check_after "lower dept 10 cap to 110 (violates via cap)"
    [
      Transaction.delete "departments" (Tuple.of_ints [ 10; 150 ]);
      Transaction.insert "departments" (Tuple.of_ints [ 10; 110 ]);
    ]
