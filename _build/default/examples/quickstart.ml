(* Quickstart: define base relations, a materialized SPJ view, and watch
   differential maintenance do its job.

   Run with:  dune exec examples/quickstart.exe

   This walks through the paper's running example (Example 4.1): a view
     u = pi_{A,D}( sigma_{A<10 & C>5 & B=C} (R x S) )
   over base relations R(A,B) and S(C,D). *)

open Relalg
open Condition.Formula.Dsl

let show title relation =
  Printf.printf "%s\n%s\n\n" title (Relation.to_ascii relation)

let () =
  (* 1. Build a database with two base relations. *)
  let db = Database.create () in
  let r_schema = Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ] in
  let s_schema = Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ] in
  Database.register db "R"
    (Relation.of_tuples r_schema [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 10 ] ]);
  Database.register db "S"
    (Relation.of_tuples s_schema
       [ Tuple.of_ints [ 2; 10 ]; Tuple.of_ints [ 10; 20 ]; Tuple.of_ints [ 12; 15 ] ]);

  (* 2. Register a materialized view with the manager.  Conditions are
     written with the embedded DSL; the expression compiles to the
     canonical pi(sigma(x)) form of the paper. *)
  let mgr = Ivm.Manager.create db in
  let condition = (v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C") in
  let view =
    Ivm.Manager.define_view mgr ~name:"u"
      Query.Expr.(
        project [ "A"; "D" ] (select condition (product (base "R") (base "S"))))
  in
  show "Initial materialization of u:" (Ivm.View.contents view);

  (* 3. Commit a transaction.  The manager nets it, filters irrelevant
     updates (Theorem 4.1), differentially re-evaluates the view
     (Algorithm 5.1) and applies the delta. *)
  let reports =
    Ivm.Manager.commit mgr
      [
        Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]);
        (* (11, 10) fails A < 10 for every database state: the screen
           proves it irrelevant and the evaluator never sees it. *)
        Transaction.insert "R" (Tuple.of_ints [ 11; 10 ]);
      ]
  in
  List.iter (fun r -> Format.printf "%a@." Ivm.Maintenance.pp_report r) reports;
  show "After inserting (9,10) and (11,10) into R:" (Ivm.View.contents view);

  (* 4. Deletions work the same way; counters keep project views exact. *)
  ignore
    (Ivm.Manager.commit mgr [ Transaction.delete "S" (Tuple.of_ints [ 10; 20 ]) ]);
  show "After deleting (10,20) from S:" (Ivm.View.contents view);

  (* 5. The maintained contents always match recomputing from scratch. *)
  Printf.printf "consistent with full re-evaluation: %b\n"
    (Ivm.Manager.consistent mgr "u")
