(* Alerter: Buneman & Clemons [BC79] motivate views as the target relation
   of a database monitor — an alerter fires when the monitored condition
   acquires witnesses.

   Run with:  dune exec examples/alerter.exe

   We monitor a plant-sensor database for "a sensor in a critical zone
   reporting a reading above its zone threshold".  The alerter's target
   relation is a materialized join view; the interesting part is that
   irrelevant-update screening suppresses the wake-ups that a naive
   implementation would take for every sensor reading. *)

open Relalg
open Condition.Formula.Dsl

let () =
  let db = Database.create () in
  (* zones(zone, threshold), readings(sensor, zone, value) *)
  Database.register db "zones"
    (Relation.of_tuples
       (Schema.make [ ("zone", Value.Int_ty); ("threshold", Value.Int_ty) ])
       [ Tuple.of_ints [ 1; 80 ]; Tuple.of_ints [ 2; 95 ] ]);
  Database.register db "readings"
    (Relation.of_tuples
       (Schema.make
          [
            ("sensor", Value.Int_ty);
            ("zone", Value.Int_ty);
            ("value", Value.Int_ty);
          ])
       []);

  let mgr = Ivm.Manager.create db in
  (* The target relation: readings over 100 are alarming in any zone;
     readings must also beat their zone's threshold. *)
  let target =
    Ivm.Manager.define_view mgr ~name:"alarms"
      Query.Expr.(
        project [ "sensor"; "zone"; "value" ]
          (select
             ((v "value" >% v "threshold") &&% (v "value" >=% i 60))
             (join (base "readings") (base "zones"))))
  in

  let alarm_count = ref (Relation.cardinal (Ivm.View.contents target)) in
  let feed sensor zone value =
    let reports =
      Ivm.Manager.commit mgr
        [ Transaction.insert "readings" (Tuple.of_ints [ sensor; zone; value ]) ]
    in
    let report = List.hd reports in
    let now = Relation.cardinal (Ivm.View.contents target) in
    let fired = now > !alarm_count in
    alarm_count := now;
    Printf.printf
      "reading sensor=%d zone=%d value=%3d | screened out: %d | %s\n" sensor
      zone value report.Ivm.Maintenance.screened_out
      (if fired then "ALERT" else "quiet");
    if fired then
      Printf.printf "%s\n" (Relation.to_ascii (Ivm.View.contents target))
  in

  (* Values below 60 can never satisfy the target condition, whatever the
     zone thresholds are: the screen proves them irrelevant and the view
     expression is not re-evaluated at all (the report says "screened
     out: 1" and zero truth-table rows run). *)
  feed 101 1 40;
  feed 102 2 55;
  feed 103 1 75;
  (* above 60 but below zone 1's threshold: relevant (the screen cannot
     know the threshold without looking at the database), yet no alert *)
  feed 104 1 90;
  (* alert: beats zone 1's threshold of 80 *)
  feed 105 2 90;
  (* relevant but quiet: zone 2 requires > 95 *)
  feed 106 2 99 (* alert *)
