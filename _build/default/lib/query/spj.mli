(** Canonical SPJ form: pi_X(sigma_C(R1 x R2 x ... x Rp)).

    Every {!Expr.t} compiles to this shape (Section 3 of the paper).  Each
    occurrence of a base relation becomes a {e source} with a unique alias;
    attributes inside the condition and projection are alias-qualified, so
    source schemas are pairwise disjoint — the setting assumed by
    Definition 4.3.  Natural joins become explicit equality atoms. *)

open Relalg

type source = {
  relation : string;  (** base relation name *)
  alias : string;  (** unique within the view; qualifies attributes *)
}

type t = {
  sources : source list;
  condition : Condition.Formula.t;  (** over qualified attributes *)
  condition_dnf : Condition.Formula.dnf;  (** cached DNF of [condition] *)
  projection : (Attr.t * Attr.t) list;
      (** [(output name, qualified attribute)] in output order *)
}

exception Compile_error of string

(** [compile lookup e] flattens [e]; [lookup] supplies base schemas.
    @raise Compile_error on selections or projections referring to missing
    attributes, or products with overlapping schemas. *)
val compile : (string -> Schema.t) -> Expr.t -> t

(** Schema of a source with alias-qualified attribute names. *)
val qualified_schema : (string -> Schema.t) -> source -> Schema.t

(** Schema of the materialized view (output names). *)
val output_schema : (string -> Schema.t) -> t -> Schema.t

(** Typing of qualified attributes, for {!Condition.Satisfiability}. *)
val typing : (string -> Schema.t) -> t -> Condition.Satisfiability.typing

(** [source_with_alias spj alias] finds a source.
    @raise Not_found on unknown alias. *)
val source_with_alias : t -> string -> source

(** Sources whose relation is [name] (a relation may appear under several
    aliases, e.g. self-joins). *)
val sources_of_relation : t -> string -> source list

(** [eval lookup db spj] materializes the view from scratch via the
    planner — the paper's "complete re-evaluation". *)
val eval : (string -> Schema.t) -> Database.t -> t -> Relation.t

val pp : Format.formatter -> t -> unit
