(** Join minimization by duplicate-source folding.

    Algorithm 5.1 observes that the view expression should first be reduced
    to a minimal number of joins using the tableau method of Aho, Sagiv and
    Ullman [ASU79] (extended to inequalities in [K80]).  We implement the
    sound core of that reduction: a source that is {e attribute-wise
    equivalent} to another source over the same base relation — every one
    of its attributes is forced equal to the corresponding attribute of the
    other source by the condition's equality atoms — corresponds to a
    duplicate tableau row and can be folded away.

    Folding preserves the set of visible view tuples; multiplicity counters
    may differ, which is harmless because minimization is applied once, at
    view-definition time, and both materialization and differential
    maintenance then use the minimized expression. *)

(** [minimize spj] repeatedly folds duplicate sources until a fixpoint.
    Views whose condition is not a single conjunction are returned
    unchanged. *)
val minimize : Spj.t -> Spj.t

(** Number of sources folded away by [minimize]. *)
val folded_sources : Spj.t -> int
