module Formula = Condition.Formula
open Relalg

(* Union-find over qualified attribute names, with path compression. *)
let rec find parent a =
  match Hashtbl.find_opt parent a with
  | None -> a
  | Some p ->
    let root = find parent p in
    if not (Attr.equal root p) then Hashtbl.replace parent a root;
    root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (Attr.equal ra rb) then Hashtbl.replace parent ra rb

let equality_var_pair (a : Formula.atom) =
  match a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift with
  | Formula.O_var x, Formula.Eq, Formula.O_var y, 0 -> Some (x, y)
  | _ -> None

let reflexive (a : Formula.atom) =
  match a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift with
  | Formula.O_var x, (Formula.Eq | Formula.Leq | Formula.Geq), Formula.O_var y, 0
    ->
    Attr.equal x y
  | _ -> false

let rec dedupe = function
  | [] -> []
  | a :: rest -> a :: dedupe (List.filter (fun b -> b <> a) rest)

(* ------------------------------------------------------------------ *)
(* Tableau extraction                                                 *)
(*                                                                    *)
(* The tableau of a conjunctive SPJ: one row per source, one variable  *)
(* per equality class.  Distinguished variables are the projected      *)
(* classes; classes compared to constants or mentioned by non-equality *)
(* atoms are tracked so homomorphisms preserve them.                   *)
(* ------------------------------------------------------------------ *)

type tableau = {
  spj : Spj.t;
  conj : Formula.atom list;
  classes : Attr.t -> Attr.t;
  (* per source alias, the class of each schema attribute in order *)
  rows : (Spj.source * Attr.t array) list;
  distinguished : Attr.t list; (* classes a homomorphism must fix *)
  (* non-equality atoms normalized over class representatives *)
  residual_atoms : Formula.atom list;
}

let normalize_atom_classes classes (a : Formula.atom) =
  let operand = function
    | Formula.O_var v -> Formula.O_var (classes v)
    | Formula.O_const _ as c -> c
  in
  { a with Formula.left = operand a.Formula.left; right = operand a.Formula.right }

let extract ~attrs_of (spj : Spj.t) conj =
  let parent = Hashtbl.create 16 in
  List.iter
    (fun atom ->
      match equality_var_pair atom with
      | Some (x, y) -> union parent x y
      | None -> ())
    conj;
  let classes a = find parent a in
  let rows =
    List.map
      (fun (s : Spj.source) ->
        (s, Array.of_list (List.map classes (attrs_of s))))
      spj.Spj.sources
  in
  let residual_atoms =
    List.filter (fun a -> equality_var_pair a = None) conj
    |> List.map (normalize_atom_classes classes)
  in
  (* Classes a homomorphism must fix: the projected ones, and every class
     mentioned by a residual atom (mapping those away could strengthen or
     weaken the condition). *)
  let residual_classes =
    List.concat_map Formula.atom_vars residual_atoms
  in
  let distinguished =
    List.sort_uniq Attr.compare
      (List.map (fun (_, q) -> classes q) spj.Spj.projection
      @ residual_classes)
  in
  { spj; conj; classes; rows; distinguished; residual_atoms }

(* ------------------------------------------------------------------ *)
(* Homomorphism search                                                *)
(* ------------------------------------------------------------------ *)

(* Find a mapping h from rows to [targets] (same relation) inducing a
   well-defined class substitution that fixes the distinguished classes.
   Backtracking over rows; theta is the partial class map. *)
let find_homomorphism tableau ~targets =
  let theta : (Attr.t, Attr.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace theta c c) tableau.distinguished;
  let assign cls target =
    match Hashtbl.find_opt theta cls with
    | Some existing ->
      if Attr.equal existing target then `Ok `Existing else `Conflict
    | None ->
      Hashtbl.replace theta cls target;
      `Ok `Fresh
  in
  let unassign = Hashtbl.remove theta in
  let rec map_row row_classes target_classes idx acc =
    if idx = Array.length row_classes then Some acc
    else
      match assign row_classes.(idx) target_classes.(idx) with
      | `Conflict ->
        List.iter unassign acc;
        None
      | `Ok `Existing -> map_row row_classes target_classes (idx + 1) acc
      | `Ok `Fresh ->
        map_row row_classes target_classes (idx + 1) (row_classes.(idx) :: acc)
  in
  let rec search = function
    | [] -> true
    | (source, row_classes) :: rest ->
      List.exists
        (fun ((target : Spj.source), target_classes) ->
          String.equal source.Spj.relation target.Spj.relation
          &&
          match map_row row_classes target_classes 0 [] with
          | None -> false
          | Some fresh ->
            if search rest then true
            else begin
              List.iter unassign fresh;
              false
            end)
        targets
  in
  if search tableau.rows then Some (fun c -> Option.value ~default:c (Hashtbl.find_opt theta c))
  else None

(* ------------------------------------------------------------------ *)
(* Minimization                                                       *)
(* ------------------------------------------------------------------ *)

let substitute_attr tableau theta attr =
  (* Rewrite an attribute through the class substitution: if its class
     maps to a different class, use that class's representative source
     attribute.  Distinguished classes are fixed, so projected attributes
     keep their class (and therefore their value). *)
  let cls = tableau.classes attr in
  let image = theta cls in
  if Attr.equal image cls then attr else image

let minimize_once ~attrs_of (spj : Spj.t) =
  match spj.Spj.condition_dnf with
  | [ conj ] when List.length spj.Spj.sources > 1 ->
    let tableau = extract ~attrs_of spj conj in
    (* Try to retract onto the sources minus one victim. *)
    let candidates = List.rev spj.Spj.sources in
    List.find_map
      (fun (victim : Spj.source) ->
        let targets =
          List.filter
            (fun (s, _) ->
              not (String.equal s.Spj.alias victim.Spj.alias))
            tableau.rows
        in
        match find_homomorphism tableau ~targets with
        | None -> None
        | Some theta ->
          (* Verify the residual atoms are preserved: each image atom must
             already be implied (structurally present modulo classes). *)
          let image_atom a =
            let operand = function
              | Formula.O_var v -> Formula.O_var (theta v)
              | Formula.O_const _ as c -> c
            in
            {
              a with
              Formula.left = operand a.Formula.left;
              right = operand a.Formula.right;
            }
          in
          let preserved =
            List.for_all
              (fun a -> List.mem (image_atom a) tableau.residual_atoms)
              tableau.residual_atoms
          in
          if not preserved then None
          else begin
            (* Build the image query: keep the sources h maps onto. *)
            let subst = substitute_attr tableau theta in
            let kept_aliases =
              List.sort_uniq String.compare
                (List.filter_map
                   (fun (s : Spj.source) ->
                     if String.equal s.Spj.alias victim.Spj.alias then None
                     else Some s.Spj.alias)
                   spj.Spj.sources)
            in
            (* The victim's attributes must be rewritten into kept
               sources; a class whose representative lives on the victim
               needs a member attribute on a kept source. *)
            let rewrite attr =
              let attr = subst attr in
              match Attr.alias_of attr with
              | Some alias when not (List.mem alias kept_aliases) -> (
                (* pick any class member on a kept source *)
                let cls = tableau.classes attr in
                let member =
                  List.find_map
                    (fun (s, _) ->
                      if String.equal s.Spj.alias victim.Spj.alias then None
                      else
                        List.find_opt
                          (fun a -> Attr.equal (tableau.classes a) cls)
                          (attrs_of s))
                    tableau.rows
                in
                match member with
                | Some a -> a
                | None -> attr (* dangling: handled by caller check *))
              | Some _ | None -> attr
            in
            let rewrite_atom (a : Formula.atom) =
              let operand = function
                | Formula.O_var v -> Formula.O_var (rewrite v)
                | Formula.O_const _ as c -> c
              in
              {
                a with
                Formula.left = operand a.Formula.left;
                right = operand a.Formula.right;
              }
            in
            let conj' =
              dedupe
                (List.filter
                   (fun a -> not (reflexive a))
                   (List.map rewrite_atom conj))
            in
            let projection =
              List.map (fun (out, q) -> (out, rewrite q)) spj.Spj.projection
            in
            (* Abort if anything still references the victim (a dangling
               private class would change semantics). *)
            let mentions_victim attr =
              match Attr.alias_of attr with
              | Some alias -> String.equal alias victim.Spj.alias
              | None -> false
            in
            let dangling =
              List.exists (fun (_, q) -> mentions_victim q) projection
              || List.exists
                   (fun a -> List.exists mentions_victim (Formula.atom_vars a))
                   conj'
            in
            if dangling then None
            else
              Some
                {
                  Spj.sources =
                    List.filter
                      (fun (s : Spj.source) ->
                        not (String.equal s.Spj.alias victim.Spj.alias))
                      spj.Spj.sources;
                  condition = Formula.of_dnf [ conj' ];
                  condition_dnf = [ conj' ];
                  projection;
                }
          end)
      candidates
  | _ -> None

(* Public entry points keep the historical lookup-free signature: source
   schemas are recovered from the attribute occurrences, which is enough
   because every attribute of a source that matters occurs qualified. *)
let attrs_of_spj (spj : Spj.t) =
  (* Rows of same-relation sources must align positionally, so derive a
     canonical base-attribute order per relation from every occurrence of
     that relation's attributes (attributes that never occur are free
     variables either way and can be omitted). *)
  let occurring =
    List.sort_uniq Attr.compare
      (List.concat_map
         (fun conj -> List.concat_map Formula.atom_vars conj)
         spj.Spj.condition_dnf
      @ List.map snd spj.Spj.projection)
  in
  let aliases_of relation =
    List.filter_map
      (fun (s : Spj.source) ->
        if String.equal s.Spj.relation relation then Some s.Spj.alias else None)
      spj.Spj.sources
  in
  let base_names_of relation =
    let aliases = aliases_of relation in
    List.sort_uniq Attr.compare
      (List.filter_map
         (fun q ->
           match Attr.alias_of q with
           | Some alias when List.mem alias aliases -> Some (Attr.base q)
           | Some _ | None -> None)
         occurring)
  in
  fun (s : Spj.source) ->
    List.map
      (fun base -> Attr.qualify ~alias:s.Spj.alias base)
      (base_names_of s.Spj.relation)

let rec minimize spj =
  match minimize_once ~attrs_of:(attrs_of_spj spj) spj with
  | None -> spj
  | Some spj' -> minimize spj'

let folded_sources spj =
  List.length spj.Spj.sources - List.length (minimize spj).Spj.sources
