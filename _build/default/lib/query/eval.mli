(** Direct bottom-up evaluation of expressions.

    This is the "complete re-evaluation" baseline of the paper: the view
    expression is recomputed from the current base relations.  Selections
    evaluate the full formula per tuple; joins are hash joins on the shared
    attributes. *)

open Relalg

(** [eval db e] materializes [e] against [db] with counted semantics. *)
val eval : Database.t -> Expr.t -> Relation.t

(** [select_relation f r] filters [r] by formula [f], looking variables up
    in [r]'s schema.
    @raise Invalid_argument if the formula mentions unknown attributes. *)
val select_relation : Condition.Formula.t -> Relation.t -> Relation.t
