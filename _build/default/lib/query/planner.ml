open Relalg
module Formula = Condition.Formula

type join_order =
  [ `Greedy
  | `Declaration ]

type join_impl =
  [ `Hash
  | `Nested_loop ]

(* Filter a relation by a conjunction of atoms, resolving variable
   positions once. *)
let filter_conjunction schema atoms rel =
  if atoms = [] then rel
  else begin
    let positions = Hashtbl.create 8 in
    List.iter
      (fun v ->
        if not (Hashtbl.mem positions v) then
          Hashtbl.replace positions v (Schema.position schema v))
      (List.concat_map Formula.atom_vars atoms);
    let current = ref [||] in
    let lookup v = Tuple.get !current (Hashtbl.find positions v) in
    Ops.select
      (fun t ->
        current := t;
        Formula.eval_conjunction lookup atoms)
      rel
  end

let filter_dnf schema dnf rel =
  let positions = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem positions v) then
        Hashtbl.replace positions v (Schema.position schema v))
    (List.concat_map (List.concat_map Formula.atom_vars) dnf);
  let current = ref [||] in
  let lookup v = Tuple.get !current (Hashtbl.find positions v) in
  Ops.select
    (fun t ->
      current := t;
      Formula.eval_dnf lookup dnf)
    rel

let atom_is_local schema a =
  List.for_all (Schema.mem schema) (Formula.atom_vars a)

(* Equality atoms between two variables, usable as hash-join keys. *)
let equality_var_pair (a : Formula.atom) =
  match a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift with
  | Formula.O_var x, Formula.Eq, Formula.O_var y, 0 -> Some (x, y)
  | _ -> None

let atom_equal (a : Formula.atom) (b : Formula.atom) = a = b

(* Atoms present in every disjunct are implied by the whole condition. *)
let common_atoms = function
  | [] -> []
  | first :: rest ->
    List.filter
      (fun a -> List.for_all (fun c -> List.exists (atom_equal a) c) rest)
      first

(* Join two operands.  With hash joins, when the probe side is a base
   relation carrying a maintained index on exactly these key positions and
   the build side is much smaller (the usual delta-against-base case of
   differential maintenance), probe the index per build tuple instead of
   scanning the base relation. *)
let join_operands ~join_impl acc next ~oriented_keys =
  match join_impl with
  | `Nested_loop -> Ops.nested_loop_join acc next ~keys:oriented_keys
  | `Hash ->
    if oriented_keys = [] then Ops.equijoin acc next ~keys:[]
    else begin
      let sa = Relation.schema acc and sb = Relation.schema next in
      let positions_b =
        Array.of_list
          (List.map (fun (_, kb) -> Schema.position sb kb) oriented_keys)
      in
      let index =
        if 4 * Relation.cardinal acc < Relation.cardinal next then
          Index.find next ~positions:positions_b
        else None
      in
      match index with
      | None -> Ops.equijoin acc next ~keys:oriented_keys
      | Some index ->
        let positions_a =
          Array.of_list
            (List.map (fun (ka, _) -> Schema.position sa ka) oriented_keys)
        in
        let out = Relation.create (Schema.concat sa sb) in
        Relation.iter
          (fun ta ca ->
            Index.iter_matches index (Tuple.project positions_a ta)
              (fun tb cb -> Relation.update out (Tuple.concat ta tb) (ca * cb)))
          acc;
        out
    end

type bound_source = {
  alias : string;
  rel : Relation.t;
}

let greedy_order sources key_pairs =
  (* [key_pairs] are (alias, alias) connections derived from equality
     atoms; prefer sources connected to what is already joined. *)
  let connected alias bound =
    List.exists
      (fun (a, b) ->
        (String.equal a alias && List.mem b bound)
        || (String.equal b alias && List.mem a bound))
      key_pairs
  in
  let smallest candidates =
    List.fold_left
      (fun best s ->
        match best with
        | None -> Some s
        | Some b ->
          if Relation.cardinal s.rel < Relation.cardinal b.rel then Some s
          else best)
      None candidates
  in
  let rec loop ordered bound remaining =
    match remaining with
    | [] -> List.rev ordered
    | _ ->
      let candidates =
        match List.filter (fun s -> connected s.alias bound) remaining with
        | [] -> remaining
        | linked -> linked
      in
      let next =
        match smallest candidates with
        | Some s -> s
        | None -> assert false
      in
      let remaining =
        List.filter (fun s -> not (String.equal s.alias next.alias)) remaining
      in
      loop (next :: ordered) (next.alias :: bound) remaining
  in
  match sources with
  | [] -> []
  | _ ->
    (* Seed with the globally smallest source. *)
    (match smallest sources with
    | Some seed ->
      let rest =
        List.filter (fun s -> not (String.equal s.alias seed.alias)) sources
      in
      loop [ seed ] [ seed.alias ] rest
    | None -> assert false)

let project_result ~projection joined =
  let schema = Relation.schema joined in
  let out_schema =
    Schema.make
      (List.map (fun (out, q) -> (out, Schema.ty schema q)) projection)
  in
  let positions =
    Array.of_list (List.map (fun (_, q) -> Schema.position schema q) projection)
  in
  let out = Relation.create ~size_hint:(Relation.cardinal joined) out_schema in
  Relation.iter
    (fun t c -> Relation.update out (Tuple.project positions t) c)
    joined;
  out

let empty_result ~sources ~projection =
  let ty_of q =
    let rec search = function
      | [] -> invalid_arg (Printf.sprintf "Planner.run: unknown attribute %S" q)
      | (_, rel) :: rest -> (
        let s = Relation.schema rel in
        match Schema.position_opt s q with
        | Some i -> Schema.ty_at s i
        | None -> search rest)
    in
    search sources
  in
  Relation.create (Schema.make (List.map (fun (out, q) -> (out, ty_of q)) projection))

let run ?(order = `Greedy) ?(join_impl = `Hash) ~sources ~condition_dnf
    ~projection () =
  if sources = [] then invalid_arg "Planner.run: no sources";
  (* Unsatisfiable condition (empty DNF, e.g. literal False). *)
  if condition_dnf = [] then empty_result ~sources ~projection
  else begin
    let single =
      match condition_dnf with
      | [ c ] -> Some c
      | _ -> None
    in
    (* Push source-local predicates below the joins. *)
    let filtered_sources =
      List.map
        (fun (alias, rel) ->
          let schema = Relation.schema rel in
          let rel =
            match single with
            | Some conj ->
              filter_conjunction schema (List.filter (atom_is_local schema) conj)
                rel
            | None ->
              (* Implied disjunction of the source-local parts: sound as
                 long as every disjunct contributes at least one local
                 atom. *)
              let local_dnf =
                List.map (List.filter (atom_is_local schema)) condition_dnf
              in
              if List.exists (fun c -> c = []) local_dnf then rel
              else filter_dnf schema local_dnf rel
          in
          { alias; rel })
        sources
    in
    if List.exists (fun s -> Relation.is_empty s.rel) filtered_sources then
      empty_result ~sources ~projection
    else begin
      let key_candidates =
        match single with
        | Some conj -> conj
        | None -> common_atoms condition_dnf
      in
      let alias_of_attr a =
        List.find_map
          (fun s ->
            if Schema.mem (Relation.schema s.rel) a then Some s.alias else None)
          filtered_sources
      in
      let key_pairs =
        List.filter_map
          (fun atom ->
            match equality_var_pair atom with
            | None -> None
            | Some (x, y) -> (
              match alias_of_attr x, alias_of_attr y with
              | Some ax, Some ay when not (String.equal ax ay) -> Some (ax, ay)
              | _ -> None))
          key_candidates
      in
      let ordered =
        match order with
        | `Declaration -> filtered_sources
        | `Greedy -> greedy_order filtered_sources key_pairs
      in
      (* Pending atoms still to be applied (single-disjunct mode): the
         source-local ones were already pushed down above. *)
      let pending =
        ref
          (match single with
          | Some conj ->
            List.filter
              (fun a ->
                not
                  (List.exists
                     (fun s -> atom_is_local (Relation.schema s.rel) a)
                     filtered_sources))
              conj
          | None -> [])
      in
      let join_step acc next =
        let sa = Relation.schema acc and sb = Relation.schema next.rel in
        let keys, rest =
          List.partition
            (fun atom ->
              match equality_var_pair atom with
              | Some (x, y) ->
                (Schema.mem sa x && Schema.mem sb y)
                || (Schema.mem sa y && Schema.mem sb x)
              | None -> false)
            (match single with
            | Some _ -> !pending
            | None -> common_atoms condition_dnf)
        in
        let oriented_keys =
          List.filter_map
            (fun atom ->
              match equality_var_pair atom with
              | Some (x, y) when Schema.mem sa x && Schema.mem sb y ->
                Some (x, y)
              | Some (x, y) when Schema.mem sa y && Schema.mem sb x ->
                Some (y, x)
              | _ -> None)
            keys
        in
        let joined = join_operands ~join_impl acc next.rel ~oriented_keys in
        match single with
        | None -> joined
        | Some _ ->
          let schema = Relation.schema joined in
          let now, later =
            List.partition (atom_is_local schema) rest
          in
          pending := later;
          (* Key atoms are satisfied by construction; drop them. *)
          filter_conjunction schema now joined
      in
      let joined =
        match ordered with
        | [] -> assert false
        | first :: rest ->
          (* Apply atoms local to the first source that were not already
             pushed (none in single mode — kept for safety). *)
          List.fold_left join_step first.rel rest
      in
      let joined =
        match single with
        | Some _ ->
          (* Any pending atoms must be local to the full product by now. *)
          filter_conjunction (Relation.schema joined) !pending joined
        | None -> filter_dnf (Relation.schema joined) condition_dnf joined
      in
      project_result ~projection joined
    end
  end

let filter dnf r = filter_dnf (Relation.schema r) dnf r

let filter_local dnf r =
  let schema = Relation.schema r in
  match dnf with
  | [ conj ] ->
    filter_conjunction schema (List.filter (atom_is_local schema) conj) r
  | _ ->
    let local_dnf = List.map (List.filter (atom_is_local schema)) dnf in
    if List.exists (fun c -> c = []) local_dnf then r
    else filter_dnf schema local_dnf r

let project_to ~projection r = project_result ~projection r

(* Shared-prefix evaluation of truth-table rows.  Variants are grouped by
   the physical identity of the relation they pick at each position, so a
   partial join is computed once per distinct prefix. *)
let run_many ?(join_impl = `Hash) ~variants ~condition_dnf ~projection () =
  match variants with
  | [] -> []
  | first_variant :: _ -> (
    let single =
      match condition_dnf with
      | [ c ] -> Some c
      | _ -> None
    in
    match single with
    | None ->
      List.map
        (fun sources ->
          run ~order:`Declaration ~join_impl ~sources ~condition_dnf
            ~projection ())
        variants
    | Some conj ->
      let position_count = List.length first_variant in
      let arrays = List.map Array.of_list variants in
      List.iter
        (fun a ->
          if Array.length a <> position_count then
            invalid_arg "Planner.run_many: variants of different lengths")
        arrays;
      let results = Array.make (List.length arrays) None in
      (* Source-local pushdown, cached per physical relation. *)
      let pushed_cache : (Relation.t * Relation.t) list ref = ref [] in
      let push_local rel =
        match
          List.find_opt (fun (original, _) -> original == rel) !pushed_cache
        with
        | Some (_, filtered) -> filtered
        | None ->
          let schema = Relation.schema rel in
          let filtered =
            filter_conjunction schema
              (List.filter (atom_is_local schema) conj)
              rel
          in
          pushed_cache := (rel, filtered) :: !pushed_cache;
          filtered
      in
      (* Atoms not local to any single source, to be applied while
         joining; schemas are identical across variants. *)
      let source_schemas =
        List.map (fun (_, rel) -> Relation.schema rel) first_variant
      in
      let initial_pending =
        List.filter
          (fun a ->
            not (List.exists (fun s -> atom_is_local s a) source_schemas))
          conj
      in
      let assign_empty members =
        List.iter
          (fun (i, sources) ->
            results.(i) <-
              Some (empty_result ~sources:(Array.to_list sources) ~projection))
          members
      in
      (* Join [filtered] onto the accumulated prefix, consuming pending
         atoms exactly as [run] does. *)
      let extend current pending filtered =
        match current with
        | None -> (filtered, pending)
        | Some acc ->
          let sa = Relation.schema acc and sb = Relation.schema filtered in
          let keys, rest =
            List.partition
              (fun atom ->
                match equality_var_pair atom with
                | Some (x, y) ->
                  (Schema.mem sa x && Schema.mem sb y)
                  || (Schema.mem sa y && Schema.mem sb x)
                | None -> false)
              pending
          in
          let oriented_keys =
            List.filter_map
              (fun atom ->
                match equality_var_pair atom with
                | Some (x, y) when Schema.mem sa x && Schema.mem sb y ->
                  Some (x, y)
                | Some (x, y) when Schema.mem sa y && Schema.mem sb x ->
                  Some (y, x)
                | _ -> None)
              keys
          in
          let joined = join_operands ~join_impl acc filtered ~oriented_keys in
          let schema = Relation.schema joined in
          let now, later = List.partition (atom_is_local schema) rest in
          (filter_conjunction schema now joined, later)
      in
      let rec go position current pending members =
        if position = position_count then begin
          let joined =
            match current with
            | Some r -> filter_conjunction (Relation.schema r) pending r
            | None -> assert false (* position_count >= 1 *)
          in
          let result = project_result ~projection joined in
          List.iter (fun (i, _) -> results.(i) <- Some result) members
        end
        else begin
          (* Group members by the physical relation chosen here. *)
          let buckets : (Relation.t * (int * (string * Relation.t) array) list ref) list ref
              =
            ref []
          in
          List.iter
            (fun ((_, sources) as member) ->
              let _, rel = sources.(position) in
              match List.find_opt (fun (r, _) -> r == rel) !buckets with
              | Some (_, bucket) -> bucket := member :: !bucket
              | None -> buckets := (rel, ref [ member ]) :: !buckets)
            members;
          List.iter
            (fun (rel, bucket) ->
              let bucket = List.rev !bucket in
              let filtered = push_local rel in
              if Relation.is_empty filtered then assign_empty bucket
              else begin
                let current', pending' = extend current pending filtered in
                if Relation.is_empty current' then assign_empty bucket
                else go (position + 1) (Some current') pending' bucket
              end)
            (List.rev !buckets)
        end
      in
      if position_count = 0 then invalid_arg "Planner.run_many: no sources";
      go 0 None initial_pending (List.mapi (fun i a -> (i, a)) arrays);
      Array.to_list
        (Array.map
           (fun r ->
             match r with
             | Some r -> r
             | None -> assert false)
           results))
