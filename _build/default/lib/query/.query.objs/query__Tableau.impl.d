lib/query/tableau.ml: Array Attr Condition Hashtbl List Option Relalg Spj String
