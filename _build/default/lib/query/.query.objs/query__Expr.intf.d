lib/query/expr.mli: Attr Condition Format Relalg Schema
