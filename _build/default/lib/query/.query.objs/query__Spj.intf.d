lib/query/spj.mli: Attr Condition Database Expr Format Relalg Relation Schema
