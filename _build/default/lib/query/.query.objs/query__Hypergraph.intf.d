lib/query/hypergraph.mli: Format Relalg Relation Schema Spj
