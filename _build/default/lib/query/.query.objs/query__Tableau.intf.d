lib/query/tableau.mli: Spj
