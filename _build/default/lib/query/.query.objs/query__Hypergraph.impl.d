lib/query/hypergraph.ml: Attr Condition Format Hashtbl List Ops Option Planner Relalg Relation Schema Spj String
