lib/query/planner.ml: Array Condition Hashtbl Index List Ops Printf Relalg Relation Schema String Tuple
