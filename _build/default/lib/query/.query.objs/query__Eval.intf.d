lib/query/eval.mli: Condition Database Expr Relalg Relation
