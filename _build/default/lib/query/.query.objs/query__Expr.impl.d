lib/query/expr.ml: Attr Condition Format List Relalg Schema
