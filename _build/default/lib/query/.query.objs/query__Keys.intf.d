lib/query/keys.mli: Attr Relalg Spj
