lib/query/eval.ml: Condition Database Expr Hashtbl List Ops Printf Relalg Relation Schema Tuple
