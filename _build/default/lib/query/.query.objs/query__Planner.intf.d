lib/query/planner.mli: Attr Condition Relalg Relation
