lib/query/keys.ml: Attr Condition Hashtbl List Relalg Spj
