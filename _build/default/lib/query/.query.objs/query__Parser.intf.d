lib/query/parser.mli: Condition Expr Relalg
