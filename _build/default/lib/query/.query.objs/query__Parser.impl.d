lib/query/parser.ml: Buffer Condition Expr Format List Printf Relalg Schema String Value
