lib/query/spj.ml: Attr Condition Database Expr Format Hashtbl List Planner Printf Relalg Relation Schema String Value
