(** SPJ evaluation with predicate pushdown and join ordering.

    Evaluates pi_X(sigma_C(S1 x ... x Sp)) given already-qualified source
    relations.  Used both for complete re-evaluation and for every row of
    the differential truth table, where some sources are tiny delta
    relations — the [`Greedy] order then starts from the deltas, which is
    the join-order optimization the paper alludes to at the end of
    Section 5.3. *)

open Relalg

type join_order =
  [ `Greedy  (** smallest (filtered) source first, preferring connected *)
  | `Declaration  (** join in declaration order (ablation baseline) *) ]

type join_impl =
  [ `Hash
  | `Nested_loop  (** ablation baseline *) ]

(** [run ~sources ~condition_dnf ~projection ()] evaluates the SPJ.

    [sources] are [(alias, relation)] pairs whose schemas are pairwise
    disjoint (alias-qualified).  [projection] maps output names to
    qualified attributes.

    Single-disjunct conditions get full pushdown: source-local atoms filter
    before joining, equality atoms become hash-join keys, and every atom is
    applied as soon as its variables are bound.  Multi-disjunct conditions
    push source-local {e implied} disjunctions down and apply the full DNF
    at the end; equality atoms common to all disjuncts still serve as join
    keys. *)
val run :
  ?order:join_order ->
  ?join_impl:join_impl ->
  sources:(string * Relation.t) list ->
  condition_dnf:Condition.Formula.dnf ->
  projection:(Attr.t * Attr.t) list ->
  unit ->
  Relation.t

(** [run_many ~variants ~condition_dnf ~projection ()] evaluates several
    SPJ instances that differ only in which relation instance each source
    denotes — the rows of the differential truth table.  Variants must list
    sources in the same order; consecutive variants sharing a prefix of
    physically identical relations share the partial join of that prefix
    (the "re-using partial subexpressions" optimization of Section 5.3).
    Returns one result per variant, in order.

    Falls back to independent {!run} calls (declaration order) when the
    condition has more than one disjunct. *)
val run_many :
  ?join_impl:join_impl ->
  variants:(string * Relation.t) list list ->
  condition_dnf:Condition.Formula.dnf ->
  projection:(Attr.t * Attr.t) list ->
  unit ->
  Relation.t list

(** [filter dnf r] keeps the tuples satisfying the whole condition; every
    variable must be in [r]'s schema. *)
val filter : Condition.Formula.dnf -> Relation.t -> Relation.t

(** [filter_local dnf r] applies the strongest filter implied by [dnf] that
    only mentions attributes of [r]'s schema — full local atoms for a
    single disjunct, the local implied disjunction otherwise (identity when
    some disjunct has no local atom). *)
val filter_local : Condition.Formula.dnf -> Relation.t -> Relation.t

(** [project_to ~projection r] projects [(output name, source attr)] pairs
    with counter summation. *)
val project_to : projection:(Attr.t * Attr.t) list -> Relation.t -> Relation.t
