(** The insert/delete/old tag algebra of Section 5.3.

    Every tuple flowing through the differential evaluation carries a tag:
    [Insert] and [Delete] mark tuples from the update sets, [Old] marks
    tuples of the pre-transaction state with deletions already removed
    (r° = r - d_r).  The [join] table is the paper's nine-row table
    verbatim; tuples whose tag combination is "ignore" do not emerge from
    the join. *)

type t =
  | Insert
  | Delete
  | Old

(** Tag of a joined tuple; [None] is the paper's "ignore". *)
val join : t -> t -> t option

(** Tags propagate unchanged through selection (paper's sigma/pi table). *)
val select : t -> t

(** Tags propagate unchanged through projection. *)
val project : t -> t

(** The full nine-row join table, in the paper's row order
    (insert/insert, insert/delete, insert/old, delete/insert, ...). *)
val join_table : ((t * t) * t option) list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
