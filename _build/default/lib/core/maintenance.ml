open Relalg

let log_src = Logs.Src.create "ivm.maintenance" ~doc:"View maintenance"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy =
  | Differential
  | Recompute
  | Adaptive

type options = {
  strategy : strategy;
  screen : bool;
  reuse : bool;
  order : Query.Planner.join_order;
  join_impl : Query.Planner.join_impl;
}

let default_options =
  {
    strategy = Differential;
    screen = true;
    reuse = false;
    order = `Greedy;
    join_impl = `Hash;
  }

type report = {
  view_name : string;
  strategy_used : strategy;
  screened_out : int;
  screened_kept : int;
  rows_evaluated : int;
  delta_inserts : int;
  delta_deletes : int;
}

let resolve_strategy options view ~db ~net =
  match options.strategy with
  | Differential -> Differential
  | Recompute -> Recompute
  | Adaptive ->
    if (Advisor.decide view ~db ~net).Advisor.choose_differential then
      Differential
    else Recompute

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %s, screened %d/%d irrelevant, %d rows, +%d -%d view tuples"
    r.view_name
    (match r.strategy_used with
    | Differential -> "differential"
    | Recompute -> "recompute"
    | Adaptive -> "adaptive")
    r.screened_out
    (r.screened_out + r.screened_kept)
    r.rows_evaluated r.delta_inserts r.delta_deletes

let view_delta ?(options = default_options) view ~db ~net =
  let spj = View.spj view in
  let screened_out = ref 0 and screened_kept = ref 0 in
  let inputs =
    List.map
      (fun (source : Query.Spj.source) ->
        let qualified = View.qualified_schema view ~alias:source.Query.Spj.alias in
        let base = Database.find db source.Query.Spj.relation in
        let old_part = Relation.reschema base qualified in
        let delta =
          match List.assoc_opt source.Query.Spj.relation net with
          | None -> None
          | Some (inserts, deletes) ->
            let raw = Delta.of_lists qualified (inserts, deletes) in
            if options.screen then begin
              let screen = View.screen_for view ~alias:source.Query.Spj.alias in
              let screened, (kept, out) =
                Irrelevance.screen_delta_stats screen raw
              in
              screened_kept := !screened_kept + kept;
              screened_out := !screened_out + out;
              Some screened
            end
            else Some raw
        in
        { Delta_eval.alias = source.Query.Spj.alias; old_part; delta })
      spj.Query.Spj.sources
  in
  let result =
    Delta_eval.eval ~order:options.order ~join_impl:options.join_impl
      ~reuse:options.reuse ~spj ~inputs ()
  in
  let delta = result.Delta_eval.delta in
  Log.debug (fun m ->
      m "view %s: %d rows evaluated, +%d -%d, screened %d/%d"
        (View.name view) result.Delta_eval.rows_evaluated
        (Relation.total delta.Delta.inserts)
        (Relation.total delta.Delta.deletes)
        !screened_out
        (!screened_out + !screened_kept));
  ( delta,
    {
      view_name = View.name view;
      strategy_used = Differential;
      screened_out = !screened_out;
      screened_kept = !screened_kept;
      rows_evaluated = result.Delta_eval.rows_evaluated;
      delta_inserts = Relation.total delta.Delta.inserts;
      delta_deletes = Relation.total delta.Delta.deletes;
    } )

let apply_deletes db net =
  List.iter
    (fun (name, (_, deletes)) ->
      let r = Database.find db name in
      List.iter (fun t -> Relation.remove r t) deletes)
    net

let apply_inserts db net =
  List.iter
    (fun (name, (inserts, _)) ->
      let r = Database.find db name in
      List.iter (fun t -> Relation.add r t) inserts)
    net

let process ?(options = default_options) ?(options_for = fun _ -> None) ~views
    ~db txn =
  let net = Transaction.net_effect db txn in
  Log.info (fun m ->
      m "commit: %d ops, %d relations touched, %d views" (List.length txn)
        (List.length net) (List.length views));
  let options_of view =
    Option.value ~default:options (options_for (View.name view))
  in
  let differential, recomputed =
    List.partition
      (fun v -> resolve_strategy (options_of v) v ~db ~net = Differential)
      views
  in
  apply_deletes db net;
  let reports =
    List.map
      (fun view ->
        let delta, report =
          view_delta ~options:(options_of view) view ~db ~net
        in
        View.apply_delta view delta;
        report)
      differential
  in
  apply_inserts db net;
  let recompute_reports =
    List.map
      (fun view ->
        View.recompute view db;
        {
          view_name = View.name view;
          strategy_used = Recompute;
          screened_out = 0;
          screened_kept = 0;
          rows_evaluated = 0;
          delta_inserts = 0;
          delta_deletes = 0;
        })
      recomputed
  in
  reports @ recompute_reports
