open Relalg

type decision = {
  differential_cost : float;
  recompute_cost : float;
  choose_differential : bool;
}

(* Calibrated against experiment E9 on the hash-join engine: differential
   work is dominated by re-hashing the old parts each modified row joins
   with, recomputation by one scan of every source plus materializing the
   view. *)
let differential_weight = 1.0
let recompute_weight = 1.0

let decide view ~db ~net =
  let spj = View.spj view in
  let sources = spj.Query.Spj.sources in
  let p = List.length sources in
  let source_size (s : Query.Spj.source) =
    Relation.cardinal (Database.find db s.Query.Spj.relation)
  in
  let sizes = List.map source_size sources in
  let total_sources = List.fold_left ( + ) 0 sizes in
  let modified_relations =
    List.sort_uniq String.compare (List.map fst net)
  in
  let k =
    List.length
      (List.filter
         (fun (s : Query.Spj.source) ->
           List.mem s.Query.Spj.relation modified_relations)
         sources)
  in
  let delta_total =
    List.fold_left
      (fun acc (_, (inserts, deletes)) ->
        acc + List.length inserts + List.length deletes)
      0 net
  in
  let avg_source =
    if p = 0 then 0.0 else float_of_int total_sources /. float_of_int p
  in
  (* Each truth-table row joins its delta operands against at most (p - 1)
     other operands; hash joins cost about the size of both sides.  Rows
     that draw several delta operands are tiny, so the row count enters
     sub-exponentially: k rows carry one delta, the rest shrink fast. *)
  let rows = float_of_int (max 1 ((2 * ((1 lsl max 0 k) - 1)) / max 1 k)) in
  let differential_cost =
    if k = 0 then 0.0
    else
      (* Every delta tuple is screened, hashed and merged (~3 touches)
         before the per-row join work. *)
      differential_weight
      *. ((3.0 *. float_of_int delta_total)
          +. (rows
              *. (float_of_int delta_total
                 +. (float_of_int (p - 1) *. avg_source /. 4.0))))
  in
  let recompute_cost =
    recompute_weight
    *. (float_of_int total_sources
       +. float_of_int (Relation.cardinal (View.contents view)))
  in
  {
    differential_cost;
    recompute_cost;
    choose_differential = differential_cost <= recompute_cost;
  }

let pp_decision ppf d =
  Format.fprintf ppf "differential=%.0f recompute=%.0f -> %s"
    d.differential_cost d.recompute_cost
    (if d.choose_differential then "differential" else "recompute")
