lib/core/maintenance.mli: Database Delta Format Query Relalg Transaction View
