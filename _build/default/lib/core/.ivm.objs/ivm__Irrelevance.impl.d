lib/core/irrelevance.ml: Attr Condition Delta List Query Relalg Relation Schema Value
