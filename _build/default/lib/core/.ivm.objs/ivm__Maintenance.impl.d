lib/core/maintenance.ml: Advisor Database Delta Delta_eval Format Irrelevance List Logs Option Query Relalg Relation Transaction View
