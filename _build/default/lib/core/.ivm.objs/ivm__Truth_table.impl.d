lib/core/truth_table.ml: Array Format Fun List String
