lib/core/view.mli: Database Delta Format Irrelevance Query Relalg Relation Schema
