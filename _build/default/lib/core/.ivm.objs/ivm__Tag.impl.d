lib/core/tag.ml: Format List
