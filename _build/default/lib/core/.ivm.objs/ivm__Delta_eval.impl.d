lib/core/delta_eval.ml: Array Delta Fun Int List Printf Query Relalg Relation Schema String Truth_table
