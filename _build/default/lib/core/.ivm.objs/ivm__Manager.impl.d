lib/core/manager.ml: Database Delta Format Index List Maintenance Option Printf Query Relalg Relation String Transaction View
