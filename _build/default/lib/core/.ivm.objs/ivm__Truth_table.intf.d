lib/core/truth_table.mli: Format
