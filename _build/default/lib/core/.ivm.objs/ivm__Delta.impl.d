lib/core/delta.ml: Format Relalg Relation
