lib/core/manager.mli: Attr Database Delta Format Maintenance Query Relalg Transaction View
