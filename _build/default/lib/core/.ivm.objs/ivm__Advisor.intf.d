lib/core/advisor.mli: Format Relalg View
