lib/core/delta.mli: Format Relalg Relation Schema Tuple
