lib/core/delta_eval.mli: Delta Query Relalg Relation Schema
