lib/core/tagged_eval.ml: Array Condition Delta Hashtbl List Option Printf Query Relalg Relation Schema Tag Tuple
