lib/core/irrelevance.mli: Delta Query Relalg Schema Tuple
