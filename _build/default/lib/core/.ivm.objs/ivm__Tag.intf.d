lib/core/tag.mli: Format
