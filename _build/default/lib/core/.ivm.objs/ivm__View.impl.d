lib/core/view.ml: Database Delta Format Hashtbl Irrelevance List Query Relalg Relation Schema
