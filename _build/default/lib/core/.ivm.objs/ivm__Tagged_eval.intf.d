lib/core/tagged_eval.mli: Attr Condition Delta Query Relalg Relation Schema Tag Tuple
