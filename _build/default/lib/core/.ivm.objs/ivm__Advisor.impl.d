lib/core/advisor.ml: Database Format List Query Relalg Relation String View
