type operand =
  | Old_part
  | Delta_part

type row = operand array

let row_count ~modified =
  let k = Array.fold_left (fun n m -> if m then n + 1 else n) 0 modified in
  (1 lsl k) - 1

let rows ~modified =
  let p = Array.length modified in
  let modified_positions =
    List.filter (fun i -> modified.(i)) (List.init p Fun.id)
  in
  let k = List.length modified_positions in
  (* Count from 1 to 2^k - 1; bit j of the counter drives the j-th modified
     source.  The all-zero combination (the current view) is skipped. *)
  List.init ((1 lsl k) - 1) (fun counter ->
      let code = counter + 1 in
      let row = Array.make p Old_part in
      List.iteri
        (fun j position ->
          if code land (1 lsl (k - 1 - j)) <> 0 then
            row.(position) <- Delta_part)
        modified_positions;
      row)

let describe ~names row =
  let cells =
    List.mapi
      (fun i name ->
        match row.(i) with
        | Old_part -> name
        | Delta_part -> "u" ^ name)
      names
  in
  String.concat " |x| " cells

let pp_operand ppf = function
  | Old_part -> Format.pp_print_string ppf "old"
  | Delta_part -> Format.pp_print_string ppf "delta"
