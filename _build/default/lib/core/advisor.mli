(** Adaptive choice between differential and complete re-evaluation.

    The paper's conclusion leaves open "under what circumstances
    differential re-evaluation is more efficient than complete
    re-evaluation".  Experiment E9 locates the crossover empirically; this
    module turns it into a runtime policy: a cheap cost model compares the
    expected work of both strategies per transaction, so churn-heavy
    transactions fall back to recomputation automatically.

    The model is deliberately simple (both costs are linear in the sizes a
    hash-join engine touches):

    - differential: every truth-table row evaluation scans the update sets
      and probes the old parts it joins with; bounded by
      [rows * (delta_total + sum of old parts actually joined)], which we
      approximate with [2^k * (delta_total + (p-1) * avg_source)] damped by
      the observation that most rows short-circuit on empty operands;
    - recompute: scans every source and rebuilds the view:
      [sum sources + |view|].

    The constants were calibrated against E9 on this engine; see
    EXPERIMENTS.md.  The decision is exposed so callers can log it. *)

type decision = {
  differential_cost : float;  (** model estimate, abstract units *)
  recompute_cost : float;
  choose_differential : bool;
}

(** [decide view ~db ~net] evaluates the cost model for one transaction.
    [db] may be in pre- or deletions-applied state (only cardinalities are
    read). *)
val decide : View.t -> db:Relalg.Database.t -> net:Relalg.Transaction.net -> decision

val pp_decision : Format.formatter -> decision -> unit
