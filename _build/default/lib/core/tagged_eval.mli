(** Reference differential evaluator with explicit per-tuple tags.

    This implements Section 5.3 literally: every operand tuple carries an
    insert/delete/old tag, joins combine tags through {!Tag.join} (dropping
    the "ignore" combinations), and selections and projections propagate
    tags unchanged while counters follow Section 5.2.  It evaluates the
    whole expression including the all-old row, so it is quadratically
    slower than {!Delta_eval} — it exists as an executable specification:
    property tests assert both evaluators agree, and its old-tagged output
    must equal the current view contents. *)

open Relalg

type tagged = {
  schema : Schema.t;
  rows : (Tuple.t * Tag.t * int) list;
}

(** Tag a plain relation [Old]. *)
val of_relation : Relation.t -> tagged

(** [of_parts ~old_part ~delta] tags [old_part] (which must already exclude
    deleted tuples, i.e. r° = r - d) [Old], and the delta parts [Insert] /
    [Delete]. *)
val of_parts : old_part:Relation.t -> delta:Delta.t -> tagged

(** Cross product with tag combination; "ignore" pairs do not emerge. *)
val product : tagged -> tagged -> tagged

(** Filter by a DNF condition over the tagged schema. *)
val select : Condition.Formula.dnf -> tagged -> tagged

(** Project onto [(output name, qualified attr)] pairs, summing counters
    per (tuple, tag). *)
val project : (Attr.t * Attr.t) list -> tagged -> tagged

(** Merge duplicate (tuple, tag) rows by summing counters. *)
val coalesce : tagged -> tagged

type result = {
  delta : Delta.t;  (** insert- and delete-tagged output *)
  unchanged : Relation.t;  (** old-tagged output = the untouched view part *)
}

(** Evaluate the full SPJ over tagged inputs: one [(alias, input)] per
    source, in the order of [spj.sources]. *)
val eval_spj : spj:Query.Spj.t -> inputs:(string * tagged) list -> result
