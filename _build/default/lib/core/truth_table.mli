(** The binary truth table of Section 5.3.

    For a view joining p relations of which k were modified, associate a
    binary variable B_i with each source: B_i = 0 selects the old tuples
    (r°_i) and B_i = 1 selects the update set.  Expanding the join over
    union enumerates 2^p rows; rows selecting the update set of an
    unmodified relation are null, and the all-zero row is the current view,
    so exactly 2^k - 1 rows need evaluation — the paper builds only those,
    in time O(2^k). *)

type operand =
  | Old_part  (** B_i = 0 : the old tuples (pre-state minus deletions) *)
  | Delta_part  (** B_i = 1 : the update set of the transaction *)

(** One row: an operand choice per source, positionally. *)
type row = operand array

(** [rows ~modified] enumerates the 2^k - 1 non-trivial rows, where
    [modified.(i)] says whether source [i] has a non-empty update set.
    Unmodified sources always get [Old_part]; the all-[Old_part] row is
    excluded.  Rows come in binary-counter order over the modified sources
    (the paper's table order). *)
val rows : modified:bool array -> row list

(** [row_count ~modified] is [2^k - 1] without materializing the rows. *)
val row_count : modified:bool array -> int

(** Render a row like the paper's table: ["ir1 |x| r2 |x| ir3"], given the
    source names. *)
val describe : names:string list -> row -> string

val pp_operand : Format.formatter -> operand -> unit
