type t =
  | Insert
  | Delete
  | Old

(* The table on p. 69: insert |x| delete (and delete |x| insert) is
   "ignore" — such a tuple was neither in the old view nor is in the new
   one. *)
let join a b =
  match a, b with
  | Insert, Insert -> Some Insert
  | Insert, Delete -> None
  | Insert, Old -> Some Insert
  | Delete, Insert -> None
  | Delete, Delete -> Some Delete
  | Delete, Old -> Some Delete
  | Old, Insert -> Some Insert
  | Old, Delete -> Some Delete
  | Old, Old -> Some Old

let select t = t
let project t = t

let join_table =
  let tags = [ Insert; Delete; Old ] in
  List.concat_map (fun a -> List.map (fun b -> ((a, b), join a b)) tags) tags

let equal a b =
  match a, b with
  | Insert, Insert | Delete, Delete | Old, Old -> true
  | (Insert | Delete | Old), _ -> false

let to_string = function
  | Insert -> "insert"
  | Delete -> "delete"
  | Old -> "old"

let pp ppf t = Format.pp_print_string ppf (to_string t)
