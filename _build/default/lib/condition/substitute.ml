open Relalg

let of_tuple schema tuple attr =
  match Schema.position_opt schema attr with
  | Some i -> Some (Tuple.get tuple i)
  | None -> None

let combine lookups attr =
  List.fold_left
    (fun acc lookup ->
      match acc with
      | Some _ -> acc
      | None -> lookup attr)
    None lookups

let substitute_operand lookup = function
  | Formula.O_const _ as c -> c
  | Formula.O_var a as v -> (
    match lookup a with
    | Some value -> Formula.O_const value
    | None -> v)

let atom lookup (a : Formula.atom) =
  let left = substitute_operand lookup a.left in
  let right = substitute_operand lookup a.right in
  (* Rebuild through the smart constructor so that a shift over a
     now-constant integer right side is folded into the constant. *)
  Formula.atom left a.cmp ~shift:a.shift right

let conjunction lookup atoms = List.map (atom lookup) atoms
let dnf lookup disjuncts = List.map (conjunction lookup) disjuncts

type split = {
  invariant : Formula.atom list;
  variant : Formula.atom list;
}

let split_conjunction ~bound atoms =
  let variant, invariant =
    List.partition (fun a -> List.exists bound (Formula.atom_vars a)) atoms
  in
  { invariant; variant }
