open Relalg

let infinity = max_int / 4

type t = {
  names : Attr.t array;
  index : (Attr.t, int) Hashtbl.t;
  size : int;
  weights : int array array; (* weights.(i).(j) = min edge weight i -> j *)
}

let zero_index = 0

let create vars =
  let distinct = List.sort_uniq Attr.compare vars in
  let size = List.length distinct + 1 in
  let names = Array.of_list ("<zero>" :: distinct) in
  let index = Hashtbl.create size in
  Array.iteri (fun i name -> if i > 0 then Hashtbl.replace index name i) names;
  let weights =
    Array.init size (fun i ->
        Array.init size (fun j -> if i = j then 0 else infinity))
  in
  { names; index; size; weights }

let size g = g.size

let node_index g v =
  match Hashtbl.find_opt g.index v with
  | Some i -> i
  | None -> raise Not_found

let add_edge g ~from_index ~to_index weight =
  if weight < g.weights.(from_index).(to_index) then
    g.weights.(from_index).(to_index) <- weight

let index_of_node g = function
  | Norm.Zero -> zero_index
  | Norm.Var v -> node_index g v

let add_constraint g (dc : Norm.dc) =
  add_edge g ~from_index:(index_of_node g dc.from_node)
    ~to_index:(index_of_node g dc.to_node) dc.bound

let copy g = { g with weights = Array.map Array.copy g.weights }

type apsp = {
  dist : int array array;
  negative : bool;
}

let floyd_warshall g =
  let n = g.size in
  let dist = Array.map Array.copy g.weights in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = dist.(i).(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let through = dik + dist.(k).(j) in
          if dist.(k).(j) < infinity && through < dist.(i).(j) then
            dist.(i).(j) <- through
        done
    done
  done;
  let negative = ref false in
  for i = 0 to n - 1 do
    if dist.(i).(i) < 0 then negative := true
  done;
  { dist; negative = !negative }

let bellman_ford_negative g =
  let n = g.size in
  (* Virtual source at distance 0 to every node is equivalent to starting
     with an all-zero distance vector. *)
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let w = g.weights.(i).(j) in
        if w < infinity && dist.(i) + w < dist.(j) then begin
          dist.(j) <- dist.(i) + w;
          changed := true
        end
      done
    done
  done;
  (* A relaxation succeeding in round n+1 means a negative cycle. *)
  !changed

let negative_with_zero_edges apsp ~extra_in ~extra_out =
  let dist = apsp.dist in
  let n = Array.length dist in
  (* Out(b): cheapest way to reach node 0 from b, considering new edges. *)
  let out_weight = Array.init n (fun b -> dist.(b).(zero_index)) in
  List.iter
    (fun (b, w) -> if w < out_weight.(b) then out_weight.(b) <- w)
    extra_out;
  let in_weight = Array.init n (fun a -> dist.(zero_index).(a)) in
  List.iter
    (fun (a, w) -> if w < in_weight.(a) then in_weight.(a) <- w)
    extra_in;
  (* A new negative cycle must use at least one new edge, hence passes
     through node 0: 0 ->(in) a ~~> b ->(out) 0.  Enumerate pairs where the
     in or out leg is a new edge. *)
  let negative = ref false in
  let consider a_weight a b =
    if
      a_weight < infinity
      && dist.(a).(b) < infinity
      && out_weight.(b) < infinity
      && a_weight + dist.(a).(b) + out_weight.(b) < 0
    then negative := true
  in
  List.iter
    (fun (a, w) ->
      for b = 0 to n - 1 do
        consider w a b
      done)
    extra_in;
  List.iter
    (fun (b, w) ->
      for a = 0 to n - 1 do
        if
          in_weight.(a) < infinity
          && dist.(a).(b) < infinity
          && in_weight.(a) + dist.(a).(b) + w < 0
        then negative := true
      done)
    extra_out;
  !negative
