(** Boolean selection conditions.

    Atoms are the paper's three forms — [x op y], [x op y + c] and [x op c]
    (Section 4) — generalized so that either side may already be a constant,
    which is exactly what tuple substitution produces.  Arbitrary boolean
    combinations are supported; the satisfiability machinery works on the
    DNF, as on p. 64–65 of the paper. *)

open Relalg

type comparator =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq

type operand =
  | O_var of Attr.t
  | O_const of Value.t

(** [left cmp right + shift].  [shift] is only meaningful when the right
    operand is integer-valued; it is [0] for the plain forms. *)
type atom = {
  left : operand;
  cmp : comparator;
  right : operand;
  shift : int;
}

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

(** A disjunction of conjunctions of atoms.  [[]] is [False]; a disjunct
    [[]] is [True]. *)
type dnf = atom list list

exception Dnf_too_large

(** {1 Atom helpers} *)

val atom : operand -> comparator -> ?shift:int -> operand -> atom

(** Logical negation of a single atom ([Lt] <-> [Geq], etc.). *)
val negate_atom : atom -> atom

(** [converse c] flips the sides: [x c y] iff [y (converse c) x]. *)
val converse : comparator -> comparator

(** [eval_cmp c a b] compares two values with {!Value.compare} semantics. *)
val eval_cmp : comparator -> Value.t -> Value.t -> bool

(** Evaluate an atom under a variable assignment.
    @raise Invalid_argument when a non-zero shift meets a string value or a
    variable is unbound. *)
val eval_atom : (Attr.t -> Value.t) -> atom -> bool

val atom_vars : atom -> Attr.t list

(** {1 Formulas} *)

val conj : t list -> t
val disj : t list -> t
val eval : (Attr.t -> Value.t) -> t -> bool

(** Free variables, sorted and deduplicated. *)
val vars : t -> Attr.t list

(** [to_dnf f] converts to disjunctive normal form, pushing negations onto
    atoms.  Trivially false conjuncts are not removed (satisfiability does
    that).
    @raise Dnf_too_large when the result would exceed [max_disjuncts]
    (default 4096). *)
val to_dnf : ?max_disjuncts:int -> t -> dnf

val of_dnf : dnf -> t
val eval_conjunction : (Attr.t -> Value.t) -> atom list -> bool
val eval_dnf : (Attr.t -> Value.t) -> dnf -> bool

(** Structural equality (no normalization). *)
val equal : t -> t -> bool

val pp_comparator : Format.formatter -> comparator -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val pp_dnf : Format.formatter -> dnf -> unit

(** {1 Embedded DSL}

    [Dsl.(v "A" <% i 10 &&% (v "B" =% v "C"))] builds the condition of
    Example 4.1.  [+%] attaches the integer offset of the [x op y + c]
    form. *)
module Dsl : sig
  type term

  val v : Attr.t -> term
  val i : int -> term
  val s : string -> term
  val ( +% ) : term -> int -> term
  val ( =% ) : term -> term -> t
  val ( <>% ) : term -> term -> t
  val ( <% ) : term -> term -> t
  val ( <=% ) : term -> term -> t
  val ( >% ) : term -> term -> t
  val ( >=% ) : term -> term -> t
  val ( &&% ) : t -> t -> t
  val ( ||% ) : t -> t -> t
  val not_ : t -> t
end
