(** Tuple substitution into conditions (Definitions 4.1–4.3).

    Substituting the values of an inserted or deleted tuple [t] for the
    attributes [Y1 = R ∩ Y] turns some atoms of a conjunction into
    {e variant} formulae — evaluable when both sides become constants, or of
    the form [x op c] otherwise — while the rest stay {e invariant}
    (Definition 4.2).  The irrelevance screener precomputes the invariant
    part once per (view, relation) pair and processes the variant part per
    tuple. *)

open Relalg

(** [of_tuple schema tuple] is a partial assignment defined exactly on the
    schema's attributes. *)
val of_tuple : Schema.t -> Tuple.t -> Attr.t -> Value.t option

(** [combine lookups] tries each lookup in order — used for the
    multi-relation substitution of Definition 4.3 (schemas must be
    disjoint). *)
val combine :
  (Attr.t -> Value.t option) list -> Attr.t -> Value.t option

(** [atom lookup a] replaces every bound variable by its value, folding the
    shift into a constant right-hand side when possible. *)
val atom : (Attr.t -> Value.t option) -> Formula.atom -> Formula.atom

val conjunction :
  (Attr.t -> Value.t option) -> Formula.atom list -> Formula.atom list

val dnf : (Attr.t -> Value.t option) -> Formula.dnf -> Formula.dnf

(** Partition of a conjunction with respect to a set of bound attributes. *)
type split = {
  invariant : Formula.atom list;
      (** no variable is bound: unaffected by substitution *)
  variant : Formula.atom list;
      (** at least one variable is bound: becomes evaluable or [x op c] *)
}

(** [split_conjunction ~bound atoms] partitions by whether any variable of
    the atom satisfies [bound] (Definition 4.2). *)
val split_conjunction : bound:(Attr.t -> bool) -> Formula.atom list -> split
