open Relalg

type verdict =
  | Sat
  | Unsat
  | Unknown

let is_unsat = function
  | Unsat -> true
  | Sat | Unknown -> false

type typing = Attr.t -> Value.ty

let int_typing : typing = fun _ -> Value.Int_ty

let of_schema schema : typing =
 fun a ->
  match Schema.position_opt schema a with
  | Some i -> Schema.ty_at schema i
  | None -> Value.Int_ty

type fragment = {
  int_atoms : Formula.atom list;
  str_atoms : Formula.atom list;
  constant_false : bool;
  unknown : bool;
}

let operand_ty typing = function
  | Formula.O_var a -> typing a
  | Formula.O_const v -> Value.ty_of v

(* Truth of a comparison between operands of different types: under
   Value.compare every integer sorts before every string. *)
let cross_type_truth cmp ~int_on_left =
  let ordering_true =
    match (cmp : Formula.comparator) with
    | Formula.Neq -> true
    | Formula.Eq -> false
    | Formula.Lt | Formula.Leq -> int_on_left
    | Formula.Gt | Formula.Geq -> not int_on_left
  in
  ordering_true

let partition typing atoms =
  let acc =
    { int_atoms = []; str_atoms = []; constant_false = false; unknown = false }
  in
  let classify acc (a : Formula.atom) =
    match a.left, a.right with
    | Formula.O_const l, Formula.O_const r ->
      (* Fully constant atom: evaluate directly.  A string right operand
         with a shift cannot be built (see Formula.atom). *)
      let truth =
        match r, a.shift with
        | Value.Int k, s -> Formula.eval_cmp a.cmp l (Value.Int (k + s))
        | Value.Str _, _ -> Formula.eval_cmp a.cmp l r
      in
      if truth then acc else { acc with constant_false = true }
    | _ ->
      let lt = operand_ty typing a.left and rt = operand_ty typing a.right in
      (match lt, rt with
      | Value.Int_ty, Value.Int_ty ->
        { acc with int_atoms = a :: acc.int_atoms }
      | Value.Str_ty, Value.Str_ty ->
        if a.shift <> 0 then { acc with unknown = true }
        else { acc with str_atoms = a :: acc.str_atoms }
      | Value.Int_ty, Value.Str_ty ->
        if cross_type_truth a.cmp ~int_on_left:true then acc
        else { acc with constant_false = true }
      | Value.Str_ty, Value.Int_ty ->
        if cross_type_truth a.cmp ~int_on_left:false then acc
        else { acc with constant_false = true })
  in
  let result = List.fold_left classify acc atoms in
  {
    result with
    int_atoms = List.rev result.int_atoms;
    str_atoms = List.rev result.str_atoms;
  }

(* Decide a conjunction of normalizable integer atoms via the constraint
   graph. *)
let decide_difference_constraints constraints vars =
  let graph = Constraint_graph.create vars in
  List.iter (Constraint_graph.add_constraint graph) constraints;
  let apsp = Constraint_graph.floyd_warshall graph in
  if apsp.Constraint_graph.negative then Unsat else Sat

let int_fragment ?(neq_budget = 4) atoms =
  let vars = List.sort_uniq Attr.compare (List.concat_map Formula.atom_vars atoms)
  in
  (* Normalize, setting disequalities aside. *)
  let rec normalize acc neqs = function
    | [] -> `Go (List.rev acc, List.rev neqs)
    | a :: rest -> (
      match Norm.normalize_atom a with
      | Norm.Constraints cs -> normalize (List.rev_append cs acc) neqs rest
      | Norm.Truth true -> normalize acc neqs rest
      | Norm.Truth false -> `False
      | Norm.Not_normalizable -> normalize acc (a :: neqs) rest)
  in
  match normalize [] [] atoms with
  | `False -> Unsat
  | `Go (constraints, neqs) ->
    let base = decide_difference_constraints constraints vars in
    (match base, neqs with
    | Unsat, _ -> Unsat
    | (Sat | Unknown), [] -> base
    | (Sat | Unknown), neqs when List.length neqs > neq_budget ->
      (* Too many disequalities to expand: adding constraints can only
         shrink the solution set, so Sat degrades to Unknown. *)
      Unknown
    | (Sat | Unknown), neqs ->
      (* Expand each [x <> y + c] into the two strict alternatives and
         test every combination: satisfiable iff some branch is. *)
      let branches =
        List.fold_left
          (fun acc (a : Formula.atom) ->
            let lt = { a with cmp = Formula.Lt } in
            let gt = { a with cmp = Formula.Gt } in
            List.concat_map (fun b -> [ lt :: b; gt :: b ]) acc)
          [ [] ] neqs
      in
      let decide_branch branch =
        let extra =
          List.concat_map
            (fun a ->
              match Norm.normalize_atom a with
              | Norm.Constraints cs -> cs
              | Norm.Truth _ | Norm.Not_normalizable ->
                (* strict comparators always normalize when a variable is
                   present, and a fully-constant atom cannot reach here *)
                assert false)
            branch
        in
        decide_difference_constraints (constraints @ extra) vars
      in
      if List.exists (fun b -> decide_branch b = Sat) branches then Sat
      else Unsat)

let str_fragment atoms =
  match Eq_solver.solve atoms with
  | Eq_solver.Sat -> Sat
  | Eq_solver.Unsat -> Unsat
  | Eq_solver.Unknown -> Unknown

let conjunction ?(typing = int_typing) ?neq_budget atoms =
  let fragment = partition typing atoms in
  if fragment.constant_false then Unsat
  else
    let verdict_int = int_fragment ?neq_budget fragment.int_atoms in
    let verdict_str = str_fragment fragment.str_atoms in
    match verdict_int, verdict_str with
    | Unsat, _ | _, Unsat -> Unsat
    | Sat, Sat -> if fragment.unknown then Unknown else Sat
    | (Sat | Unknown), (Sat | Unknown) -> Unknown

let dnf ?typing ?neq_budget disjuncts =
  (* Satisfiable iff some disjunct is; unsatisfiable iff all are. *)
  List.fold_left
    (fun acc conj ->
      match acc with
      | Sat -> Sat
      | Unsat | Unknown -> (
        match conjunction ?typing ?neq_budget conj, acc with
        | Sat, _ -> Sat
        | Unknown, _ -> Unknown
        | Unsat, acc -> acc))
    Unsat disjuncts

let formula ?typing ?neq_budget ?max_disjuncts f =
  match Formula.to_dnf ?max_disjuncts f with
  | d -> dnf ?typing ?neq_budget d
  | exception Formula.Dnf_too_large -> Unknown

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
    | Sat -> "satisfiable"
    | Unsat -> "unsatisfiable"
    | Unknown -> "unknown")
