(** Normalization of integer atoms into difference constraints.

    The paper (p. 66) normalizes every atomic formula into the comparators
    [<=] / [>=] and represents the conjunction as a directed weighted graph.
    We use the single canonical form [from - to <= bound]; an atom of the
    form [x = y + c] yields two constraints. *)

open Relalg

type node =
  | Zero  (** the virtual node '0' representing the constant 0 *)
  | Var of Attr.t

(** [from_node - to_node <= bound]. *)
type dc = {
  from_node : node;
  to_node : node;
  bound : int;
}

type result =
  | Constraints of dc list
      (** equivalent difference constraints (one or two) *)
  | Truth of bool  (** both operands constant: the atom's truth value *)
  | Not_normalizable
      (** an integer disequality — outside the Rosenkrantz–Hunt class *)

(** Normalize one integer-typed atom.  The caller must only pass atoms whose
    operands are integer variables or integer constants.
    @raise Invalid_argument on string operands. *)
val normalize_atom : Formula.atom -> result

val pp_dc : Format.formatter -> dc -> unit
