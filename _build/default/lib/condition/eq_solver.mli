(** Satisfiability of equality/disequality conjunctions over strings.

    The Rosenkrantz–Hunt graph handles the integer fragment; conjunctions of
    [=] and [<>] atoms over string-typed attributes are decided here with a
    union-find.  This is complete for infinite string domains: merge all
    equalities, fail if a class acquires two distinct constants or a
    disequality connects a class to itself, otherwise assign fresh distinct
    values to unconstrained classes. *)

type verdict =
  | Sat
  | Unsat
  | Unknown  (** an ordering comparator on strings was present *)

(** Decide a conjunction of string-typed atoms.

    Equalities and disequalities are decided exactly.  Ordering atoms are
    handled with an order graph over the equivalence classes: a cycle
    containing a strict edge proves [Unsat] (this uses only the axioms of
    total orders, so it is exact); otherwise the verdict is [Sat] when no
    ordering atom touches a constant, and [Unknown] when one does (the
    lexicographic order on strings has gaps — e.g. nothing lies strictly
    between ["a"] and ["a\x00"] — so constant-adjacent orderings cannot be
    proven satisfiable without a realizability argument). *)
val solve : Formula.atom list -> verdict
