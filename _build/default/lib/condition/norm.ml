open Relalg

type node =
  | Zero
  | Var of Attr.t

type dc = {
  from_node : node;
  to_node : node;
  bound : int;
}

type result =
  | Constraints of dc list
  | Truth of bool
  | Not_normalizable

let dc from_node to_node bound = { from_node; to_node; bound }

(* [x cmp to_node + c] where [x] is a variable and [to_node] is a variable
   node or Zero (with the constant folded into [c]). *)
let of_var_cmp x cmp to_node c =
  let x = Var x in
  match (cmp : Formula.comparator) with
  | Leq -> Constraints [ dc x to_node c ]
  | Lt -> Constraints [ dc x to_node (c - 1) ]
  | Geq -> Constraints [ dc to_node x (-c) ]
  | Gt -> Constraints [ dc to_node x (-c - 1) ]
  | Eq -> Constraints [ dc x to_node c; dc to_node x (-c) ]
  | Neq -> Not_normalizable

let reject_string () =
  invalid_arg "Norm.normalize_atom: string operand in an integer atom"

let normalize_atom (a : Formula.atom) =
  match a.left, a.right with
  | Formula.O_var x, Formula.O_var y -> of_var_cmp x a.cmp (Var y) a.shift
  | Formula.O_var x, Formula.O_const (Value.Int k) ->
    of_var_cmp x a.cmp Zero (k + a.shift)
  | Formula.O_const (Value.Int k), Formula.O_var y ->
    (* k cmp y + c  <=>  y (converse cmp) k - c *)
    of_var_cmp y (Formula.converse a.cmp) Zero (k - a.shift)
  | Formula.O_const (Value.Int k), Formula.O_const (Value.Int k') ->
    Truth (Formula.eval_cmp a.cmp (Value.Int k) (Value.Int (k' + a.shift)))
  | Formula.O_const (Value.Str _), _ | _, Formula.O_const (Value.Str _) ->
    reject_string ()

let pp_node ppf = function
  | Zero -> Format.pp_print_string ppf "0"
  | Var a -> Attr.pp ppf a

let pp_dc ppf { from_node; to_node; bound } =
  Format.fprintf ppf "%a - %a <= %d" pp_node from_node pp_node to_node bound
