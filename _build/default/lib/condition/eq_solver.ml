open Relalg

type verdict =
  | Sat
  | Unsat
  | Unknown

type key =
  | K_var of Attr.t
  | K_const of string

(* Union-find over variables and string constants, with path compression.
   Each class optionally carries the constant it is pinned to. *)
type state = {
  parent : (key, key) Hashtbl.t;
  pinned : (key, string) Hashtbl.t; (* root -> constant *)
}

let create () = { parent = Hashtbl.create 16; pinned = Hashtbl.create 16 }

let rec find state k =
  match Hashtbl.find_opt state.parent k with
  | None -> k
  | Some p ->
    let root = find state p in
    if root <> p then Hashtbl.replace state.parent k root;
    root

let pin_of state root = Hashtbl.find_opt state.pinned root

(* Returns [false] when the union pins a class to two distinct constants. *)
let union state a b =
  let ra = find state a and rb = find state b in
  if ra = rb then true
  else begin
    let pa = pin_of state ra and pb = pin_of state rb in
    Hashtbl.replace state.parent ra rb;
    match pa, pb with
    | Some ca, Some cb -> String.equal ca cb
    | Some ca, None ->
      Hashtbl.replace state.pinned rb ca;
      true
    | None, (Some _ | None) -> true
  end

let key_of_operand = function
  | Formula.O_var a -> K_var a
  | Formula.O_const (Value.Str s) -> K_const s
  | Formula.O_const (Value.Int _) ->
    invalid_arg "Eq_solver.solve: integer operand in a string atom"

(* Ordering fragment: an order graph over equivalence classes.  Edge
   u -> v with weight 0 encodes "u <= v", weight -1 encodes "u < v"; a
   negative cycle contradicts the total-order axioms. *)
let ordering_verdict state atoms =
  let ordering_atoms =
    List.filter
      (fun (a : Formula.atom) ->
        match a.Formula.cmp with
        | Formula.Lt | Formula.Leq | Formula.Gt | Formula.Geq -> true
        | Formula.Eq | Formula.Neq -> false)
      atoms
  in
  if ordering_atoms = [] then `Sat
  else begin
    (* Node of a key: its class, rendered as the pinned constant when the
       class has one (so constant order facts apply to it). *)
    let node_name key =
      let root = find state key in
      match pin_of state root with
      | Some c -> "c:" ^ c
      | None -> (
        match root with
        | K_var a -> "v:" ^ a
        | K_const c -> "c:" ^ c)
    in
    let involved_constants = Hashtbl.create 8 in
    let touch key =
      let root = find state key in
      match pin_of state root, root with
      | Some c, _ | None, K_const c ->
        Hashtbl.replace involved_constants c ()
      | None, K_var _ -> ()
    in
    let edges = ref [] in
    List.iter
      (fun (a : Formula.atom) ->
        let l = key_of_operand a.Formula.left in
        let r = key_of_operand a.Formula.right in
        touch l;
        touch r;
        let nl = node_name l and nr = node_name r in
        match a.Formula.cmp with
        | Formula.Lt -> edges := (nl, nr, -1) :: !edges
        | Formula.Leq -> edges := (nl, nr, 0) :: !edges
        | Formula.Gt -> edges := (nr, nl, -1) :: !edges
        | Formula.Geq -> edges := (nr, nl, 0) :: !edges
        | Formula.Eq | Formula.Neq -> ())
      ordering_atoms;
    (* Ground facts about the constants that participate. *)
    let constants =
      Hashtbl.fold (fun c () acc -> c :: acc) involved_constants []
    in
    List.iteri
      (fun idx c1 ->
        List.iteri
          (fun jdx c2 ->
            if jdx > idx then begin
              if String.compare c1 c2 < 0 then
                edges := ("c:" ^ c1, "c:" ^ c2, -1) :: !edges
              else edges := ("c:" ^ c2, "c:" ^ c1, -1) :: !edges
            end)
          constants)
      constants;
    let nodes =
      List.sort_uniq String.compare
        (List.concat_map (fun (a, b, _) -> [ a; b ]) !edges)
    in
    let graph = Constraint_graph.create nodes in
    List.iter
      (fun (a, b, w) ->
        Constraint_graph.add_edge graph
          ~from_index:(Constraint_graph.node_index graph a)
          ~to_index:(Constraint_graph.node_index graph b)
          w)
      !edges;
    if (Constraint_graph.floyd_warshall graph).Constraint_graph.negative then
      `Unsat
    else if constants = [] then `Sat
    else `Unknown
  end

let solve atoms =
  let state = create () in
  List.iter
    (fun (c : key) ->
      match c with
      | K_const s -> Hashtbl.replace state.pinned (find state c) s
      | K_var _ -> ())
    (List.concat_map
       (fun (a : Formula.atom) ->
         [ key_of_operand a.left; key_of_operand a.right ])
       atoms);
  let unsat = ref false in
  (* Phase 1: merge equalities. *)
  List.iter
    (fun (a : Formula.atom) ->
      match a.cmp with
      | Formula.Eq ->
        if not (union state (key_of_operand a.left) (key_of_operand a.right))
        then unsat := true
      | Formula.Neq | Formula.Lt | Formula.Leq | Formula.Gt | Formula.Geq ->
        ())
    atoms;
  (* Phase 2: check disequalities against the classes. *)
  List.iter
    (fun (a : Formula.atom) ->
      match a.cmp with
      | Formula.Neq ->
        let ra = find state (key_of_operand a.left) in
        let rb = find state (key_of_operand a.right) in
        if ra = rb then unsat := true
        else begin
          match pin_of state ra, pin_of state rb with
          | Some ca, Some cb -> if String.equal ca cb then unsat := true
          | (Some _ | None), (Some _ | None) -> ()
        end
      | Formula.Eq | Formula.Lt | Formula.Leq | Formula.Gt | Formula.Geq ->
        ())
    atoms;
  if !unsat then Unsat
  else
    (* Phase 3: ordering atoms over the merged classes. *)
    match ordering_verdict state atoms with
    | `Unsat -> Unsat
    | `Unknown -> Unknown
    | `Sat -> Sat
