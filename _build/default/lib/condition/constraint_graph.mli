(** Directed weighted constraint graphs and negative-cycle detection.

    A conjunction in the Rosenkrantz–Hunt class is unsatisfiable iff its
    constraint graph contains a negative-weight cycle (p. 64 of the paper).
    The paper uses Floyd's all-pairs shortest-path algorithm [F62]; we
    provide it together with a Bellman–Ford variant used as a cross-check
    and ablation baseline, and the O(n^2) incremental test that backs
    Algorithm 4.1 (all per-tuple edges are incident to the virtual node 0,
    so any new negative cycle passes through 0). *)

open Relalg

type t

(** Large sentinel representing +infinity; guaranteed not to overflow when
    two of them are added. *)
val infinity : int

(** [create vars] builds an empty graph over the given variables plus the
    virtual node 0.  Duplicate names are ignored. *)
val create : Attr.t list -> t

(** Number of nodes (variables + 1). *)
val size : t -> int

(** [node_index g v] is the matrix index of variable [v].
    @raise Not_found for unknown variables. *)
val node_index : t -> Attr.t -> int

(** Index of the virtual zero node (always 0). *)
val zero_index : int

(** [add_constraint g dc] inserts the edge for [dc], keeping the minimum
    weight on parallel edges.
    @raise Not_found if the constraint mentions an unknown variable. *)
val add_constraint : t -> Norm.dc -> unit

(** [add_edge g ~from_index ~to_index weight] low-level insertion. *)
val add_edge : t -> from_index:int -> to_index:int -> int -> unit

val copy : t -> t

(** All-pairs shortest paths. *)
type apsp = {
  dist : int array array;  (** [dist.(i).(j)]: shortest i->j, or infinity *)
  negative : bool;  (** some negative cycle exists *)
}

(** Floyd–Warshall, O(n^3). *)
val floyd_warshall : t -> apsp

(** Negative-cycle existence by Bellman–Ford from a virtual source, O(nm);
    used to cross-validate Floyd–Warshall. *)
val bellman_ford_negative : t -> bool

(** [negative_with_zero_edges apsp ~extra_in ~extra_out] decides whether
    adding edges incident to node 0 — [extra_in] are edges 0 -> var (from
    constraints [x >= c]) and [extra_out] are edges var -> 0 (from
    [x <= c]), both as [(var_index, weight)] — creates a negative cycle,
    assuming [apsp.negative = false].  O(|extra| * n). *)
val negative_with_zero_edges :
  apsp -> extra_in:(int * int) list -> extra_out:(int * int) list -> bool
