lib/condition/norm.mli: Attr Format Formula Relalg
