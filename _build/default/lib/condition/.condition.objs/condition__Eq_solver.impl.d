lib/condition/eq_solver.ml: Attr Constraint_graph Formula Hashtbl List Relalg String Value
