lib/condition/substitute.ml: Formula List Relalg Schema Tuple
