lib/condition/formula.ml: Attr Format List Relalg Value
