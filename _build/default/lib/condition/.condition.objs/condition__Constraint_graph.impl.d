lib/condition/constraint_graph.ml: Array Attr Hashtbl List Norm Relalg
