lib/condition/satisfiability.ml: Attr Constraint_graph Eq_solver Format Formula List Norm Relalg Schema Value
