lib/condition/formula.mli: Attr Format Relalg Value
