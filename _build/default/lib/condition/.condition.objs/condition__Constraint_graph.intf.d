lib/condition/constraint_graph.mli: Attr Norm Relalg
