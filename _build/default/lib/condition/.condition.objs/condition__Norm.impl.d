lib/condition/norm.ml: Attr Format Formula Relalg Value
