lib/condition/satisfiability.mli: Attr Format Formula Relalg Schema Value
