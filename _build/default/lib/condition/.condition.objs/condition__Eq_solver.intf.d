lib/condition/eq_solver.mli: Formula
