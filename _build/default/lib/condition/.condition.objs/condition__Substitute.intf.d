lib/condition/substitute.mli: Attr Formula Relalg Schema Tuple Value
