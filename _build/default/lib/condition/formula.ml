open Relalg

type comparator =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq

type operand =
  | O_var of Attr.t
  | O_const of Value.t

type atom = {
  left : operand;
  cmp : comparator;
  right : operand;
  shift : int;
}

type t =
  | True
  | False
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t

type dnf = atom list list

exception Dnf_too_large

let atom left cmp ?(shift = 0) right =
  (match right, shift with
  | O_const (Value.Str _), s when s <> 0 ->
    invalid_arg "Formula.atom: non-zero shift on a string constant"
  | _ -> ());
  (* Fold a shift on an integer constant into the constant itself. *)
  match right with
  | O_const (Value.Int c) when shift <> 0 ->
    { left; cmp; right = O_const (Value.Int (c + shift)); shift = 0 }
  | _ -> { left; cmp; right; shift }

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Geq
  | Leq -> Gt
  | Gt -> Leq
  | Geq -> Lt

let negate_atom a = { a with cmp = negate_cmp a.cmp }

let converse = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Leq -> Geq
  | Gt -> Lt
  | Geq -> Leq

let eval_cmp cmp a b =
  let c = Value.compare a b in
  match cmp with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Leq -> c <= 0
  | Gt -> c > 0
  | Geq -> c >= 0

let resolve lookup = function
  | O_var a -> lookup a
  | O_const v -> v

let apply_shift shift v =
  if shift = 0 then v
  else
    match v with
    | Value.Int n -> Value.Int (n + shift)
    | Value.Str _ ->
      invalid_arg "Formula.eval_atom: non-zero shift on a string value"

let eval_atom lookup a =
  let lv = resolve lookup a.left in
  let rv = apply_shift a.shift (resolve lookup a.right) in
  eval_cmp a.cmp lv rv

let atom_vars a =
  let of_operand = function
    | O_var v -> [ v ]
    | O_const _ -> []
  in
  of_operand a.left @ of_operand a.right

let conj formulas =
  match formulas with
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj formulas =
  match formulas with
  | [] -> False
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let rec eval lookup = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom lookup a
  | And (f, g) -> eval lookup f && eval lookup g
  | Or (f, g) -> eval lookup f || eval lookup g
  | Not f -> not (eval lookup f)

let vars f =
  let rec collect acc = function
    | True | False -> acc
    | Atom a -> atom_vars a @ acc
    | And (f, g) | Or (f, g) -> collect (collect acc f) g
    | Not f -> collect acc f
  in
  List.sort_uniq Attr.compare (collect [] f)

(* DNF via negation-normal form; conjunction distributes as a cross
   product, with a size guard against exponential blowup. *)
let to_dnf ?(max_disjuncts = 4096) f =
  let check d = if List.length d > max_disjuncts then raise Dnf_too_large in
  let rec nnf_dnf positive = function
    | True -> if positive then [ [] ] else []
    | False -> if positive then [] else [ [] ]
    | Atom a -> [ [ (if positive then a else negate_atom a) ] ]
    | Not f -> nnf_dnf (not positive) f
    | And (f, g) when positive -> cross (nnf_dnf true f) (nnf_dnf true g)
    | And (f, g) -> nnf_dnf false f @ nnf_dnf false g
    | Or (f, g) when positive -> nnf_dnf true f @ nnf_dnf true g
    | Or (f, g) -> cross (nnf_dnf false f) (nnf_dnf false g)
  and cross d1 d2 =
    let d = List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) d2) d1 in
    check d;
    d
  in
  let d = nnf_dnf true f in
  check d;
  d

let of_dnf d = disj (List.map (fun c -> conj (List.map (fun a -> Atom a) c)) d)

let eval_conjunction lookup c = List.for_all (eval_atom lookup) c
let eval_dnf lookup d = List.exists (eval_conjunction lookup) d

let rec equal f g =
  match f, g with
  | True, True | False, False -> true
  | Atom a, Atom b -> a = b
  | And (f1, f2), And (g1, g2) | Or (f1, f2), Or (g1, g2) ->
    equal f1 g1 && equal f2 g2
  | Not f, Not g -> equal f g
  | (True | False | Atom _ | And _ | Or _ | Not _), _ -> false

let pp_comparator ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "="
    | Neq -> "<>"
    | Lt -> "<"
    | Leq -> "<="
    | Gt -> ">"
    | Geq -> ">=")

let pp_operand ppf = function
  | O_var a -> Attr.pp ppf a
  | O_const v -> Value.pp ppf v

let pp_atom ppf a =
  if a.shift = 0 then
    Format.fprintf ppf "%a %a %a" pp_operand a.left pp_comparator a.cmp
      pp_operand a.right
  else if a.shift > 0 then
    Format.fprintf ppf "%a %a %a + %d" pp_operand a.left pp_comparator a.cmp
      pp_operand a.right a.shift
  else
    Format.fprintf ppf "%a %a %a - %d" pp_operand a.left pp_comparator a.cmp
      pp_operand a.right (-a.shift)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom a -> pp_atom ppf a
  | And (f, g) -> Format.fprintf ppf "(%a @,/\\ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a @,\\/ %a)" pp f pp g
  | Not f -> Format.fprintf ppf "~(%a)" pp f

let pp_dnf ppf d =
  Format.fprintf ppf "@[%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ \\/ ")
       (fun ppf c ->
         Format.fprintf ppf "(%a)"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ /\\ ")
              pp_atom)
           c))
    d

module Dsl = struct
  (* A term is an operand plus a pending integer offset. *)
  type term = operand * int

  let v a : term = (O_var a, 0)
  let i n : term = (O_const (Value.Int n), 0)
  let s x : term = (O_const (Value.Str x), 0)

  let ( +% ) ((op, shift) : term) c : term = (op, shift + c)

  (* [x + c1  cmp  y + c2] is [x cmp y + (c2 - c1)]. *)
  let compare_terms cmp ((l, ls) : term) ((r, rs) : term) =
    Atom (atom l cmp ~shift:(rs - ls) r)

  let ( =% ) a b = compare_terms Eq a b
  let ( <>% ) a b = compare_terms Neq a b
  let ( <% ) a b = compare_terms Lt a b
  let ( <=% ) a b = compare_terms Leq a b
  let ( >% ) a b = compare_terms Gt a b
  let ( >=% ) a b = compare_terms Geq a b
  let ( &&% ) f g = And (f, g)
  let ( ||% ) f g = Or (f, g)
  let not_ f = Not f
end
