(** Prebuilt schemas and databases used by the examples and the benchmark
    harness, so every experiment describes its workload in one place. *)

open Relalg

type t = {
  db : Database.t;
  columns : (string * Generate.column list) list;
      (** generator recipe per relation, for building update streams *)
}

(** Column recipe of a relation.
    @raise Not_found for unknown names. *)
val columns_of : t -> string -> Generate.column list

(** Single relation [R(A, B, C)]: [A] is a wide id-like column, [B] a join
    key in [0, key_range), [C] a payload in [0, 100]. *)
val single : rng:Rng.t -> size:int -> key_range:int -> t

(** Two relations [R(A, B)] and [S(B, C)] natural-joinable on [B], with
    keys drawn from [0, key_range). *)
val pair : rng:Rng.t -> size_r:int -> size_s:int -> key_range:int -> t

(** A p-way chain [R1(K0, K1, I1)], [R2(K1, K2, I2)], ..., joinable into a
    path on the K columns (the I columns are wide ids keeping tuples
    distinct); returns the relation names in order. *)
val chain : rng:Rng.t -> p:int -> size:int -> key_range:int -> t * string list

(** The order-monitoring schema of the examples:
    [customers(cid, region, status)] and
    [orders(oid, cid, amount, priority)]. Regions are strings. *)
val orders : rng:Rng.t -> customers:int -> orders:int -> t
