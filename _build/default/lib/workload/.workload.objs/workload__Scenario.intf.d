lib/workload/scenario.mli: Database Generate Relalg Rng
