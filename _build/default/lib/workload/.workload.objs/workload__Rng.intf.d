lib/workload/rng.mli:
