lib/workload/scenario.ml: Database Generate List Printf Relalg Relation Schema Value
