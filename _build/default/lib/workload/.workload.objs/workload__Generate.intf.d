lib/workload/generate.mli: Database Relalg Relation Rng Schema Transaction Tuple Value
