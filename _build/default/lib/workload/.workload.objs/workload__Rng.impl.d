lib/workload/rng.ml: Array Random
