lib/workload/generate.ml: Array Database Hashtbl List Printf Relalg Relation Rng Transaction Value
