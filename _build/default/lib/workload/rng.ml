type t = Random.State.t

let make seed = Random.State.make [| seed; seed lxor 0x9e3779b9; 42 |]
let int rng n = Random.State.int rng n
let range rng ~lo ~hi = lo + Random.State.int rng (hi - lo + 1)
let float rng bound = Random.State.float rng bound
let chance rng p = Random.State.float rng 1.0 < p
let choice rng a = a.(Random.State.int rng (Array.length a))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let zipf_cdf ~n ~skew =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  cdf

let zipf rng cdf =
  let u = Random.State.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)
