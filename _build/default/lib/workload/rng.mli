(** Seeded pseudo-random helpers: every generator in {!module:Generate} is
    deterministic given the seed, so tests and benchmarks are
    reproducible. *)

type t

val make : int -> t

(** [int rng n] is uniform in [0, n). *)
val int : t -> int -> int

(** [range rng ~lo ~hi] is uniform in [lo, hi] inclusive. *)
val range : t -> lo:int -> hi:int -> int

val float : t -> float -> float

(** [chance rng p] is true with probability [p]. *)
val chance : t -> float -> bool

val choice : t -> 'a array -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [zipf_cdf ~n ~skew] precomputes the cumulative distribution of a Zipf
    law over ranks 1..n with exponent [skew]. *)
val zipf_cdf : n:int -> skew:float -> float array

(** [zipf rng cdf] samples a rank in 1..n from a precomputed CDF. *)
val zipf : t -> float array -> int
