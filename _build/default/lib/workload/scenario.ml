open Relalg

type t = {
  db : Database.t;
  columns : (string * Generate.column list) list;
}

let columns_of t name =
  match List.assoc_opt name t.columns with
  | Some c -> c
  | None -> raise Not_found

let single ~rng ~size ~key_range =
  let schema =
    Schema.make
      [ ("A", Value.Int_ty); ("B", Value.Int_ty); ("C", Value.Int_ty) ]
  in
  let columns =
    [
      Generate.Uniform (0, (size * 10) + 100);
      Generate.Uniform (0, key_range - 1);
      Generate.Uniform (0, 100);
    ]
  in
  let db = Database.create () in
  Database.register db "R" (Generate.relation rng schema columns size);
  { db; columns = [ ("R", columns) ] }

let pair ~rng ~size_r ~size_s ~key_range =
  let r_schema = Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ] in
  let s_schema = Schema.make [ ("B", Value.Int_ty); ("C", Value.Int_ty) ] in
  let r_columns =
    [ Generate.Uniform (0, (size_r * 10) + 100); Generate.Uniform (0, key_range - 1) ]
  in
  let s_columns =
    [ Generate.Uniform (0, key_range - 1); Generate.Uniform (0, (size_s * 10) + 100) ]
  in
  let db = Database.create () in
  Database.register db "R" (Generate.relation rng r_schema r_columns size_r);
  Database.register db "S" (Generate.relation rng s_schema s_columns size_s);
  { db; columns = [ ("R", r_columns); ("S", s_columns) ] }

let chain ~rng ~p ~size ~key_range =
  let db = Database.create () in
  let names = List.init p (fun i -> Printf.sprintf "R%d" (i + 1)) in
  let columns =
    List.mapi
      (fun i name ->
        let schema =
          Schema.make
            [
              (Printf.sprintf "K%d" i, Value.Int_ty);
              (Printf.sprintf "K%d" (i + 1), Value.Int_ty);
              (* A wide id column so relations can exceed key_range^2
                 distinct tuples. *)
              (Printf.sprintf "I%d" (i + 1), Value.Int_ty);
            ]
        in
        let cols =
          [
            Generate.Uniform (0, key_range - 1);
            Generate.Uniform (0, key_range - 1);
            Generate.Uniform (0, (size * 10) + 100);
          ]
        in
        Database.register db name (Generate.relation rng schema cols size);
        (name, cols))
      names
  in
  ({ db; columns }, names)

let orders ~rng ~customers ~orders =
  let regions = [| "north"; "south"; "east"; "west" |] in
  let customer_schema =
    Schema.make
      [
        ("cid", Value.Int_ty); ("region", Value.Str_ty); ("status", Value.Int_ty);
      ]
  in
  let order_schema =
    Schema.make
      [
        ("oid", Value.Int_ty);
        ("cid", Value.Int_ty);
        ("amount", Value.Int_ty);
        ("priority", Value.Int_ty);
      ]
  in
  let customer_columns =
    [
      Generate.Uniform (0, customers - 1);
      Generate.Strings regions;
      Generate.Uniform (0, 3);
    ]
  in
  let order_columns =
    [
      Generate.Uniform (0, (orders * 10) + 100);
      Generate.Uniform (0, customers - 1);
      Generate.Uniform (1, 1000);
      Generate.Uniform (0, 5);
    ]
  in
  let db = Database.create () in
  (* Customers get distinct cids: generate then fix the id column. *)
  let customer_relation = Relation.create customer_schema in
  for cid = 0 to customers - 1 do
    Relation.add customer_relation
      [|
        Value.Int cid;
        Generate.value rng (Generate.Strings regions);
        Generate.value rng (Generate.Uniform (0, 3));
      |]
  done;
  Database.register db "customers" customer_relation;
  Database.register db "orders"
    (Generate.relation rng order_schema order_columns orders);
  { db; columns = [ ("customers", customer_columns); ("orders", order_columns) ] }
