open Relalg

type column =
  | Uniform of int * int
  | Weighted of float array * int
  | Strings of string array

let zipf_column ~n ~skew ~offset = Weighted (Rng.zipf_cdf ~n ~skew, offset)

let value rng = function
  | Uniform (lo, hi) -> Value.Int (Rng.range rng ~lo ~hi)
  | Weighted (cdf, offset) -> Value.Int (offset + Rng.zipf rng cdf)
  | Strings pool -> Value.Str (Rng.choice rng pool)

let tuple rng columns = Array.of_list (List.map (value rng) columns)

let relation rng schema columns size =
  let r = Relation.create ~size_hint:size schema in
  let attempts = ref 0 in
  let budget = (size * 100) + 1000 in
  while Relation.cardinal r < size do
    incr attempts;
    if !attempts > budget then
      invalid_arg
        (Printf.sprintf
           "Generate.relation: could not produce %d distinct tuples" size);
    let t = tuple rng columns in
    if not (Relation.mem r t) then Relation.add r t
  done;
  r

let pick rng r n =
  let all = Array.of_list (List.map fst (Relation.elements r)) in
  Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 (min n (Array.length all)))

let fresh rng r columns n =
  let out = ref [] in
  let seen = Hashtbl.create (2 * n) in
  let count = ref 0 in
  let attempts = ref 0 in
  let budget = (n * 100) + 1000 in
  while !count < n do
    incr attempts;
    if !attempts > budget then
      invalid_arg
        (Printf.sprintf "Generate.fresh: could not produce %d fresh tuples" n);
    let t = tuple rng columns in
    if (not (Relation.mem r t)) && not (Hashtbl.mem seen t) then begin
      Hashtbl.replace seen t ();
      out := t :: !out;
      incr count
    end
  done;
  !out

let transaction rng db name ~columns ~inserts ~deletes =
  let r = Database.find db name in
  let to_delete = pick rng r deletes in
  let to_insert = fresh rng r columns inserts in
  List.map (fun t -> Transaction.delete name t) to_delete
  @ List.map (fun t -> Transaction.insert name t) to_insert

let mixed_transaction rng db specs =
  List.concat_map
    (fun (name, columns, inserts, deletes) ->
      transaction rng db name ~columns ~inserts ~deletes)
    specs
