type t = Value.t array

let make values = Array.of_list values
let of_ints ints = Array.of_list (List.map (fun i -> Value.Int i) ints)
let arity = Array.length
let get t i = t.(i)
let value schema t attr = t.(Schema.position schema attr)
let project positions t = Array.map (fun i -> t.(i)) positions
let concat = Array.append

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let check schema t =
  if arity t <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Tuple.check: arity %d, schema expects %d" (arity t)
         (Schema.arity schema));
  Array.iteri
    (fun i v ->
      if Value.ty_of v <> Schema.ty_at schema i then
        invalid_arg
          (Printf.sprintf "Tuple.check: type mismatch at attribute %s"
             (Schema.name_at schema i));
      match Schema.bounds_at schema i, v with
      | Some (lo, hi), Value.Int x when x < lo || x > hi ->
        invalid_arg
          (Printf.sprintf "Tuple.check: %d outside domain [%d, %d] of %s" x
             lo hi
             (Schema.name_at schema i))
      | (Some _ | None), (Value.Int _ | Value.Str _) -> ())
    t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
