(** Attribute names.

    An attribute is identified by a plain string.  When several base
    relations participate in a view, the canonical SPJ form qualifies each
    attribute with the source alias ("alias.attr"), guaranteeing disjoint
    schemas as assumed in Definition 4.3 of the paper. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [qualify ~alias name] is ["alias.name"]. *)
val qualify : alias:string -> t -> t

(** [base a] strips a qualification prefix: [base "o.price" = "price"];
    unqualified names are returned unchanged. *)
val base : t -> t

(** [alias_of a] is [Some "o"] for ["o.price"], [None] for ["price"]. *)
val alias_of : t -> string option

val is_qualified : t -> bool
