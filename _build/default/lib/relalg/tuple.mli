(** Tuples: flat arrays of values, positionally matching a schema. *)

type t = Value.t array

val make : Value.t list -> t

(** Convenience constructors for all-integer / all-string tuples. *)
val of_ints : int list -> t

val arity : t -> int
val get : t -> int -> Value.t

(** [value schema tuple attr] looks an attribute value up by name.
    @raise Not_found if [attr] is not in [schema]. *)
val value : Schema.t -> t -> Attr.t -> Value.t

(** [project positions t] keeps the components at [positions], in order. *)
val project : int array -> t -> t

val concat : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [check schema t] verifies arity, per-position types, and declared
    domain bounds.
    @raise Invalid_argument on mismatch. *)
val check : Schema.t -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
