(** Counted relational-algebra operators.

    These are the paper's redefined operators of Section 5.2: selection
    preserves counters, projection sums the counters of coalescing tuples,
    and joins multiply the counters of the participating tuples ('*' denotes
    scalar multiplication in the paper's definition). *)

(** [select p r] keeps the tuples satisfying [p], counters unchanged. *)
val select : (Tuple.t -> bool) -> Relation.t -> Relation.t

(** [project r attrs] projects onto [attrs]; coalescing tuples add their
    counters (the redefined pi of Section 5.2).
    @raise Not_found if an attribute is missing from the schema. *)
val project : Relation.t -> Attr.t list -> Relation.t

(** [product a b] is the cross product; result counters are products.
    @raise Invalid_argument if the schemas are not disjoint. *)
val product : Relation.t -> Relation.t -> Relation.t

(** [natural_join a b] hash-joins on all attributes common to both schemas
    (cross product when none); result counters are products and the shared
    attributes appear once, in [a]'s positions. *)
val natural_join : Relation.t -> Relation.t -> Relation.t

(** [equijoin a b ~keys] hash-joins on explicit attribute pairs
    [(attr_of_a, attr_of_b)], keeping all attributes of both sides.
    @raise Invalid_argument if the schemas are not disjoint. *)
val equijoin : Relation.t -> Relation.t -> keys:(Attr.t * Attr.t) list -> Relation.t

(** Nested-loop variant of [equijoin]; used as an evaluation baseline in the
    E8e ablation. Semantically identical. *)
val nested_loop_join :
  Relation.t -> Relation.t -> keys:(Attr.t * Attr.t) list -> Relation.t

(** [semijoin a b ~keys] keeps the tuples of [a] (counters unchanged) that
    match at least one tuple of [b] on the key pairs [(attr_of_a,
    attr_of_b)].  With [keys = []] this is [a] if [b] is non-empty, empty
    otherwise. *)
val semijoin : Relation.t -> Relation.t -> keys:(Attr.t * Attr.t) list -> Relation.t

(** [rename f r] renames every attribute through [f]. *)
val rename : (Attr.t -> Attr.t) -> Relation.t -> Relation.t
