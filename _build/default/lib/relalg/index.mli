(** Incrementally-maintained secondary hash indexes.

    An index mirrors one relation, keyed by a subset of its attributes,
    and follows every counter change through {!Relation.subscribe}.  The
    planner uses indexes to turn the repeated delta-against-base joins of
    differential maintenance from full scans of the base relation into
    per-delta-tuple probes — the dominant cost of small-update maintenance
    on join views (ablation E15).

    Built indexes register in a process-wide registry keyed by the
    relation's {!Relation.storage_id}, so {!Relation.reschema} views (the
    alias-qualified "old parts" of the differential evaluator) find the
    index of their underlying store. *)

type t

(** [build r attrs] builds (or returns the existing) index of [r] on
    [attrs], in the given order, and keeps it maintained.
    @raise Not_found if an attribute is missing from the schema. *)
val build : Relation.t -> Attr.t list -> t

(** [find r ~positions] looks the registry up by the underlying store of
    [r] and the attribute positions (order-sensitive). *)
val find : Relation.t -> positions:int array -> t option

(** [drop r attrs] unregisters the index (it stops receiving updates and
    is no longer found). *)
val drop : Relation.t -> Attr.t list -> unit

(** Key positions the index is built on. *)
val positions : t -> int array

(** [iter_matches index key f] calls [f tuple count] for every indexed
    tuple whose key columns equal [key]. *)
val iter_matches : t -> Tuple.t -> (Tuple.t -> int -> unit) -> unit

(** Number of distinct keys currently indexed. *)
val key_count : t -> int
