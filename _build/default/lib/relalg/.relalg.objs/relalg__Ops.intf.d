lib/relalg/ops.mli: Attr Relation Tuple
