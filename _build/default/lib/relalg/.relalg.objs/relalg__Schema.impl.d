lib/relalg/schema.ml: Array Attr Format Hashtbl List Printf Value
