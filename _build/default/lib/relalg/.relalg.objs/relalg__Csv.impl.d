lib/relalg/csv.ml: Array Buffer Database Filename Format In_channel List Out_channel Printf Relation Schema String Sys Tuple Value
