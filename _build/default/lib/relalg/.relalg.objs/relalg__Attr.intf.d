lib/relalg/attr.mli: Format
