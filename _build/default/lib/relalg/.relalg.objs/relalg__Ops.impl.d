lib/relalg/ops.ml: Array Hashtbl List Option Relation Schema Tuple Value
