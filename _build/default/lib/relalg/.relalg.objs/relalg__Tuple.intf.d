lib/relalg/tuple.mli: Attr Format Schema Value
