lib/relalg/database.mli: Format Relation
