lib/relalg/attr.ml: Format Hashtbl Option String
