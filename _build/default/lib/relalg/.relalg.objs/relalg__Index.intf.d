lib/relalg/index.mli: Attr Relation Tuple
