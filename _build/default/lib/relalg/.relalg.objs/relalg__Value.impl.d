lib/relalg/value.ml: Format Hashtbl Int Printf String
