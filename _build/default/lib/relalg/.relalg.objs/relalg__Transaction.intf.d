lib/relalg/transaction.mli: Database Format Tuple
