lib/relalg/relation.ml: Array Format Fun Hashtbl List Option Schema String Tuple Value
