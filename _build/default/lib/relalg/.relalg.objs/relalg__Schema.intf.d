lib/relalg/schema.mli: Attr Format Value
