lib/relalg/database.ml: Format Hashtbl List Printf Relation String
