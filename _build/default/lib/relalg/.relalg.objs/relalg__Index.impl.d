lib/relalg/index.ml: Array Hashtbl List Option Relation Schema Tuple
