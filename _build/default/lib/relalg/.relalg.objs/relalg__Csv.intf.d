lib/relalg/csv.mli: Database Relation
