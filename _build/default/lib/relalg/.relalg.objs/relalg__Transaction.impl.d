lib/relalg/transaction.ml: Database Format Hashtbl List Printf Relation String Tuple
