(** Plain-text serialization of relations and databases.

    Format: a header line describing the schema, then one line per
    distinct tuple.

    {v
    A:int[0..9],name:str,#
    3,"north",2
    7,"south, east",1
    v}

    - each header cell is [name:int] or [name:str], with an optional
      inclusive domain [\[lo..hi\]] on integers;
    - a final [#] column holds multiplicity counters and is written only
      when some counter exceeds one (it is always accepted on input);
    - string cells are double-quoted when they contain a comma, a quote or
      leading/trailing space, with embedded quotes doubled;
    - newlines inside strings are not supported.

    The format is deliberately minimal: it exists so example datasets and
    benchmark workloads can be inspected and checked in. *)

exception Parse_error of string
(** Raised with a line- and column-qualified message on malformed input. *)

val output_relation : out_channel -> Relation.t -> unit
val input_relation : in_channel -> Relation.t

(** [save path r] / [load path]: whole-file convenience wrappers. *)
val save : string -> Relation.t -> unit

val load : string -> Relation.t

(** [save_database ~dir db] writes one [<name>.csv] per relation (creating
    [dir] if needed); [load_database ~dir] reads every [.csv] back. *)
val save_database : dir:string -> Database.t -> unit

val load_database : dir:string -> Database.t

(** String round-trip helpers (used by tests and the CLI). *)
val to_string : Relation.t -> string

val of_string : string -> Relation.t
