(** Transactions over base relations.

    A transaction is an indivisible sequence of tuple insertions and
    deletions, possibly touching several relations (Section 3 of the paper).
    Its {e net effect} on a relation [r] is a pair of disjoint tuple sets
    [(i_r, d_r)] with [i_r] disjoint from [r] and [d_r] contained in [r],
    such that the post-state is [r U i_r - d_r].  A tuple inserted and then
    deleted inside the transaction (or vice versa) does not appear in the
    net effect at all, exactly as the paper requires. *)

type op =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type t = op list

exception Invalid of string

(** Net effect per relation: [(name, (inserts, deletes))], sorted by name.
    Only relations with a non-empty net effect appear. *)
type net = (string * (Tuple.t list * Tuple.t list)) list

(** [net_effect db txn] simulates [txn] against the current state of [db]
    (without modifying it) and returns the net effect.

    With [~strict:true] (the default), inserting a tuple that is already
    present, or deleting one that is absent, raises {!Invalid}; with
    [~strict:false] such operations are ignored. *)
val net_effect : ?strict:bool -> Database.t -> t -> net

(** [apply db net] installs the net effect into the base relations. *)
val apply : Database.t -> net -> unit

(** [of_sets assoc] builds a net effect directly from per-relation insert and
    delete lists, normalizing order and dropping empty entries. It does not
    validate against any database state. *)
val of_sets : (string * (Tuple.t list * Tuple.t list)) list -> net

(** Convenience constructors. *)
val insert : string -> Tuple.t -> op

val delete : string -> Tuple.t -> op

val pp_net : Format.formatter -> net -> unit
