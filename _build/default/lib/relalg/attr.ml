type t = string

let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

let qualify ~alias name = alias ^ "." ^ name

let split a =
  match String.index_opt a '.' with
  | None -> (None, a)
  | Some i ->
    (Some (String.sub a 0 i), String.sub a (i + 1) (String.length a - i - 1))

let base a = snd (split a)
let alias_of a = fst (split a)
let is_qualified a = Option.is_some (alias_of a)
