(** Atomic attribute values.

    The paper assumes all attributes range over discrete, finite domains and
    uses integers in every example.  We additionally support strings so that
    realistic example schemas (names, status codes) can be expressed; the
    satisfiability machinery of {!module:Condition} handles the integer
    fragment with the Rosenkrantz–Hunt procedure and the string fragment with
    an equality solver. *)

type ty =
  | Int_ty
  | Str_ty

type t =
  | Int of int
  | Str of string

val ty_of : t -> ty

val equal : t -> t -> bool

(** Total order: integers sort before strings; within a type the natural
    order is used. *)
val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val to_string : t -> string

(** [int v] extracts an integer payload.
    @raise Invalid_argument if [v] is not an [Int]. *)
val int : t -> int

(** [str v] extracts a string payload.
    @raise Invalid_argument if [v] is not a [Str]. *)
val str : t -> string
