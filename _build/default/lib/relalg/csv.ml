exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let needs_quoting s =
  String.length s = 0
  || String.exists (fun c -> c = ',' || c = '"') s
  || s.[0] = ' '
  || s.[String.length s - 1] = ' '
  || String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s

let quote s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buffer "\"\""
      else Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let render_value = function
  | Value.Int x -> string_of_int x
  | Value.Str s ->
    if String.contains s '\n' then
      invalid_arg "Csv: newlines inside strings are not supported";
    if needs_quoting s then quote s else s

let render_header schema =
  String.concat ","
    (List.mapi
       (fun i (name, ty) ->
         let base =
           Printf.sprintf "%s:%s" name
             (match ty with
             | Value.Int_ty -> "int"
             | Value.Str_ty -> "str")
         in
         match Schema.bounds_at schema i with
         | Some (lo, hi) -> Printf.sprintf "%s[%d..%d]" base lo hi
         | None -> base)
       (Schema.attrs schema))

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

(* Split one line into raw cells, handling quoted cells with doubled
   quotes.  Returns cells tagged with whether they were quoted. *)
let split_line ~line_number line =
  let cells = ref [] in
  let buffer = Buffer.create 16 in
  let quoted = ref false in
  let finish () =
    cells := (Buffer.contents buffer, !quoted) :: !cells;
    Buffer.clear buffer;
    quoted := false
  in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
        finish ();
        plain (i + 1)
      | '"' when Buffer.length buffer = 0 && not !quoted ->
        quoted := true;
        in_quotes (i + 1)
      | c ->
        Buffer.add_char buffer c;
        plain (i + 1)
  and in_quotes i =
    if i >= n then
      parse_error "line %d: unterminated quoted cell" line_number
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buffer '"';
        in_quotes (i + 2)
      | '"' -> after_quotes (i + 1)
      | c ->
        Buffer.add_char buffer c;
        in_quotes (i + 1)
  and after_quotes i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
        finish ();
        plain (i + 1)
      | c ->
        parse_error "line %d: unexpected %C after closing quote" line_number c
  in
  plain 0;
  List.rev !cells

let parse_header ~line_number line =
  let parse_cell (cell, quoted) =
    if quoted then
      parse_error "line %d: quoted header cell %S" line_number cell;
    if String.equal cell "#" then `Counts
    else
      match String.index_opt cell ':' with
      | None -> parse_error "line %d: header cell %S lacks a type" line_number cell
      | Some i -> (
        let name = String.sub cell 0 i in
        let ty_text = String.sub cell (i + 1) (String.length cell - i - 1) in
        let base, bounds =
          match String.index_opt ty_text '[' with
          | None -> (ty_text, None)
          | Some j ->
            if ty_text.[String.length ty_text - 1] <> ']' then
              parse_error "line %d: malformed bounds in %S" line_number cell;
            let inner =
              String.sub ty_text (j + 1) (String.length ty_text - j - 2)
            in
            (match String.index_opt inner '.' with
            | Some k
              when k + 1 < String.length inner && inner.[k + 1] = '.' -> (
              let lo = String.sub inner 0 k in
              let hi = String.sub inner (k + 2) (String.length inner - k - 2) in
              try
                ( String.sub ty_text 0 j,
                  Some (int_of_string lo, int_of_string hi) )
              with Failure _ ->
                parse_error "line %d: malformed bounds in %S" line_number cell)
            | Some _ | None ->
              parse_error "line %d: malformed bounds in %S" line_number cell)
        in
        match base with
        | "int" -> `Attr (name, Value.Int_ty, bounds)
        | "str" ->
          if bounds <> None then
            parse_error "line %d: bounds on string attribute %S" line_number
              name;
          `Attr (name, Value.Str_ty, None)
        | other ->
          parse_error "line %d: unknown type %S in header" line_number other)
  in
  let parsed = List.map parse_cell (split_line ~line_number line) in
  let rec split_counts acc = function
    | [] -> (List.rev acc, false)
    | [ `Counts ] -> (List.rev acc, true)
    | `Counts :: _ ->
      parse_error "line %d: '#' must be the last header column" line_number
    | `Attr a :: rest -> split_counts (a :: acc) rest
  in
  let attrs, with_counts = split_counts [] parsed in
  (Schema.make_bounded attrs, with_counts)

let parse_value ~line_number ty (cell, quoted) =
  match ty, quoted with
  | Value.Str_ty, _ -> Value.Str cell
  | Value.Int_ty, true ->
    parse_error "line %d: quoted integer cell %S" line_number cell
  | Value.Int_ty, false -> (
    match int_of_string_opt (String.trim cell) with
    | Some x -> Value.Int x
    | None -> parse_error "line %d: %S is not an integer" line_number cell)

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                               *)
(* ------------------------------------------------------------------ *)

let to_string r =
  let buffer = Buffer.create 256 in
  let schema = Relation.schema r in
  let with_counts = Relation.fold (fun _ c acc -> acc || c > 1) r false in
  Buffer.add_string buffer (render_header schema);
  if with_counts then Buffer.add_string buffer ",#";
  Buffer.add_char buffer '\n';
  List.iter
    (fun (t, c) ->
      let cells = List.map render_value (Array.to_list t) in
      let cells = if with_counts then cells @ [ string_of_int c ] else cells in
      Buffer.add_string buffer (String.concat "," cells);
      Buffer.add_char buffer '\n')
    (Relation.sorted_elements r);
  Buffer.contents buffer

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> parse_error "empty input: missing header"
  | header_line :: rest ->
    let schema, with_counts = parse_header ~line_number:1 header_line in
    let r = Relation.create schema in
    let arity = Schema.arity schema in
    List.iteri
      (fun idx line ->
        let line_number = idx + 2 in
        if not (String.equal line "") then begin
          let cells = split_line ~line_number line in
          let expected = if with_counts then arity + 1 else arity in
          if List.length cells <> expected then
            parse_error "line %d: expected %d cells, found %d" line_number
              expected (List.length cells);
          let value_cells, count =
            if with_counts then begin
              match List.rev cells with
              | (count_cell, false) :: rev_rest -> (
                match int_of_string_opt count_cell with
                | Some c when c > 0 -> (List.rev rev_rest, c)
                | Some _ | None ->
                  parse_error "line %d: bad counter %S" line_number count_cell)
              | (_, true) :: _ ->
                parse_error "line %d: quoted counter" line_number
              | [] -> assert false
            end
            else (cells, 1)
          in
          let t =
            Array.of_list
              (List.mapi
                 (fun i cell ->
                   parse_value ~line_number (Schema.ty_at schema i) cell)
                 value_cells)
          in
          Tuple.check schema t;
          Relation.add ~count r t
        end)
      rest;
    r

let output_relation channel r = output_string channel (to_string r)
let input_relation channel = of_string (In_channel.input_all channel)
let save path r = Out_channel.with_open_text path (fun c -> output_relation c r)
let load path = In_channel.with_open_text path input_relation

let save_database ~dir db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name -> save (Filename.concat dir (name ^ ".csv")) (Database.find db name))
    (Database.names db)

let load_database ~dir =
  let db = Database.create () in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".csv" then
        Database.register db
          (Filename.chop_suffix file ".csv")
          (load (Filename.concat dir file)))
    (Sys.readdir dir);
  db
