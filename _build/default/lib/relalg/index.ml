module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  positions : int array;
  buckets : int Tuple_table.t Tuple_table.t; (* key -> tuple -> count *)
  mutable active : bool; (* dropped indexes ignore updates *)
}

(* Process-wide registry: (storage id, positions) -> index. *)
let registry : (int * int list, t) Hashtbl.t = Hashtbl.create 16

let registry_key r positions_list = (Relation.storage_id r, positions_list)

let positions index = index.positions

let apply index tuple delta =
  if index.active then begin
    let key = Tuple.project index.positions tuple in
    let bucket =
      match Tuple_table.find_opt index.buckets key with
      | Some bucket -> bucket
      | None ->
        let bucket = Tuple_table.create 4 in
        Tuple_table.replace index.buckets key bucket;
        bucket
    in
    let current =
      Option.value ~default:0 (Tuple_table.find_opt bucket tuple)
    in
    let updated = current + delta in
    if updated <= 0 then begin
      Tuple_table.remove bucket tuple;
      if Tuple_table.length bucket = 0 then Tuple_table.remove index.buckets key
    end
    else Tuple_table.replace bucket tuple updated
  end

let positions_of r attrs =
  let schema = Relation.schema r in
  List.map (Schema.position schema) attrs

let build r attrs =
  let positions_list = positions_of r attrs in
  match Hashtbl.find_opt registry (registry_key r positions_list) with
  | Some index -> index
  | None ->
    let index =
      {
        positions = Array.of_list positions_list;
        buckets = Tuple_table.create (max 16 (Relation.cardinal r));
        active = true;
      }
    in
    Relation.iter (fun t c -> apply index t c) r;
    Relation.subscribe r (apply index);
    Hashtbl.replace registry (registry_key r positions_list) index;
    index

let find r ~positions =
  Hashtbl.find_opt registry (registry_key r (Array.to_list positions))

let drop r attrs =
  let positions_list = positions_of r attrs in
  match Hashtbl.find_opt registry (registry_key r positions_list) with
  | None -> ()
  | Some index ->
    index.active <- false;
    Hashtbl.remove registry (registry_key r positions_list)

let iter_matches index key f =
  match Tuple_table.find_opt index.buckets key with
  | None -> ()
  | Some bucket -> Tuple_table.iter f bucket

let key_count index = Tuple_table.length index.buckets
