type ty =
  | Int_ty
  | Str_ty

type t =
  | Int of int
  | Str of string

let ty_of = function
  | Int _ -> Int_ty
  | Str _ -> Str_ty

let equal a b =
  match a, b with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Str s -> Format.fprintf ppf "%S" s

let pp_ty ppf = function
  | Int_ty -> Format.pp_print_string ppf "int"
  | Str_ty -> Format.pp_print_string ppf "str"

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s

let int = function
  | Int x -> x
  | Str s -> invalid_arg (Printf.sprintf "Value.int: %S is not an integer" s)

let str = function
  | Str s -> s
  | Int x ->
    invalid_arg (Printf.sprintf "Value.str: %d is not a string" x)
