type op =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type t = op list

exception Invalid of string

type net = (string * (Tuple.t list * Tuple.t list)) list

let insert name tuple = Insert (name, tuple)
let delete name tuple = Delete (name, tuple)

module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Per relation we track, for every touched tuple, whether it was present
   before the transaction and whether it is present now.  The net effect
   falls out of comparing the two, which automatically cancels
   insert-then-delete pairs. *)
type track = {
  relation : Relation.t;
  touched : (bool * bool ref) Tuple_table.t; (* before, current *)
}

let net_effect ?(strict = true) db txn =
  let tracks : (string, track) Hashtbl.t = Hashtbl.create 8 in
  let track_of name =
    match Hashtbl.find_opt tracks name with
    | Some tr -> tr
    | None ->
      let tr = { relation = Database.find db name; touched = Tuple_table.create 16 }
      in
      Hashtbl.replace tracks name tr;
      tr
  in
  let presence tr tuple =
    match Tuple_table.find_opt tr.touched tuple with
    | Some (_, current) -> current
    | None ->
      let before = Relation.mem tr.relation tuple in
      let current = ref before in
      Tuple_table.replace tr.touched tuple (before, current);
      current
  in
  let step = function
    | Insert (name, tuple) ->
      let tr = track_of name in
      Tuple.check (Relation.schema tr.relation) tuple;
      let current = presence tr tuple in
      if !current then begin
        if strict then
          raise
            (Invalid
               (Printf.sprintf "insert of tuple %s already present in %S"
                  (Tuple.to_string tuple) name))
      end
      else current := true
    | Delete (name, tuple) ->
      let tr = track_of name in
      Tuple.check (Relation.schema tr.relation) tuple;
      let current = presence tr tuple in
      if not !current then begin
        if strict then
          raise
            (Invalid
               (Printf.sprintf "delete of tuple %s absent from %S"
                  (Tuple.to_string tuple) name))
      end
      else current := false
  in
  List.iter step txn;
  let per_relation =
    Hashtbl.fold
      (fun name tr acc ->
        let inserts, deletes =
          Tuple_table.fold
            (fun tuple (before, current) (ins, del) ->
              match before, !current with
              | false, true -> (tuple :: ins, del)
              | true, false -> (ins, tuple :: del)
              | true, true | false, false -> (ins, del))
            tr.touched ([], [])
        in
        if inserts = [] && deletes = [] then acc
        else (name, (inserts, deletes)) :: acc)
      tracks []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) per_relation

let apply db net =
  List.iter
    (fun (name, (inserts, deletes)) ->
      let r = Database.find db name in
      List.iter (fun t -> Relation.add r t) inserts;
      List.iter (fun t -> Relation.remove r t) deletes)
    net

let of_sets assoc =
  assoc
  |> List.filter (fun (_, (ins, del)) -> ins <> [] || del <> [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_net ppf net =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf (name, (ins, del)) ->
      Format.fprintf ppf "@[<v 2>%s: +%d -%d@,%a@,%a@]" name (List.length ins)
        (List.length del)
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf t ->
             Format.fprintf ppf "+ %a" Tuple.pp t))
        ins
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf t ->
             Format.fprintf ppf "- %a" Tuple.pp t))
        del)
    ppf net
