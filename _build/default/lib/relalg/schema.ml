type t = {
  attrs : (Attr.t * Value.ty) array;
  domain_bounds : (int * int) option array;
  positions : (Attr.t, int) Hashtbl.t;
}

let make_bounded attr_list =
  let attrs =
    Array.of_list (List.map (fun (name, ty, _) -> (name, ty)) attr_list)
  in
  let domain_bounds =
    Array.of_list (List.map (fun (_, _, b) -> b) attr_list)
  in
  let positions = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i (name, ty) ->
      if Hashtbl.mem positions name then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate attribute %S" name);
      if ty = Value.Str_ty && domain_bounds.(i) <> None then
        invalid_arg
          (Printf.sprintf
             "Schema.make_bounded: bounds on string attribute %S" name);
      (match domain_bounds.(i) with
      | Some (lo, hi) when lo > hi ->
        invalid_arg
          (Printf.sprintf "Schema.make_bounded: empty domain for %S" name)
      | Some _ | None -> ());
      Hashtbl.add positions name i)
    attrs;
  { attrs; domain_bounds; positions }

let make attr_list =
  make_bounded (List.map (fun (name, ty) -> (name, ty, None)) attr_list)

let bounds_at s i = s.domain_bounds.(i)

let attrs s = Array.to_list s.attrs
let names s = Array.to_list (Array.map fst s.attrs)
let arity s = Array.length s.attrs
let position_opt s a = Hashtbl.find_opt s.positions a

let position s a =
  match position_opt s a with
  | Some i -> i
  | None -> raise Not_found

let mem s a = Hashtbl.mem s.positions a
let ty s a = snd s.attrs.(position s a)
let bounds s a = s.domain_bounds.(position s a)
let ty_at s i = snd s.attrs.(i)
let name_at s i = fst s.attrs.(i)

let common a b = List.filter (mem b) (names a)

let disjoint a b = List.for_all (fun n -> not (mem b n)) (names a)

let bounded_attrs s =
  List.mapi
    (fun i (name, ty) -> (name, ty, s.domain_bounds.(i)))
    (Array.to_list s.attrs)

let concat a b =
  if not (disjoint a b) then
    invalid_arg "Schema.concat: schemas share attribute names";
  make_bounded (bounded_attrs a @ bounded_attrs b)

let project s attr_names =
  let positions = Array.of_list (List.map (position s) attr_names) in
  let sub =
    make_bounded
      (List.map (fun a -> (a, ty s a, bounds s a)) attr_names)
  in
  (sub, positions)

let rename f s =
  make_bounded (List.map (fun (a, t, b) -> (f a, t, b)) (bounded_attrs s))

let qualify ~alias s = rename (Attr.qualify ~alias) s

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun (n1, t1) (n2, t2) -> Attr.equal n1 n2 && t1 = t2)
       a.attrs b.attrs

let pp ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (a, t) -> Format.fprintf ppf "%a:%a" Attr.pp a Value.pp_ty t))
    (attrs s)
