(** Relation schemas: an ordered sequence of distinct, typed attributes. *)

type t

(** [make attrs] builds a schema.
    @raise Invalid_argument on duplicate attribute names. *)
val make : (Attr.t * Value.ty) list -> t

(** [make_bounded attrs] additionally declares inclusive integer domain
    bounds for some attributes — the paper assumes all domains are
    discrete and finite, and declared bounds let the irrelevance screen
    refute more conditions.  Bounds on string attributes are rejected.
    @raise Invalid_argument on duplicates or bounds on non-integer
    attributes. *)
val make_bounded : (Attr.t * Value.ty * (int * int) option) list -> t

(** Declared domain of an attribute, if any. *)
val bounds : t -> Attr.t -> (int * int) option

val bounds_at : t -> int -> (int * int) option

val attrs : t -> (Attr.t * Value.ty) list
val names : t -> Attr.t list
val arity : t -> int

(** [position s a] is the index of attribute [a].
    @raise Not_found if [a] is not in [s]. *)
val position : t -> Attr.t -> int

val position_opt : t -> Attr.t -> int option
val mem : t -> Attr.t -> bool
val ty : t -> Attr.t -> Value.ty
val ty_at : t -> int -> Value.ty
val name_at : t -> int -> Attr.t

(** Attributes common to both schemas, in the order of the first. *)
val common : t -> t -> Attr.t list

(** [disjoint a b] holds when the schemas share no attribute name. *)
val disjoint : t -> t -> bool

(** [concat a b] appends [b]'s attributes after [a]'s.
    @raise Invalid_argument if the schemas are not disjoint. *)
val concat : t -> t -> t

(** [project s attrs] is the sub-schema with exactly [attrs] in the given
    order, paired with their positions in [s].
    @raise Not_found if some attribute is missing. *)
val project : t -> Attr.t list -> t * int array

(** [rename f s] applies [f] to every attribute name.
    @raise Invalid_argument if renaming introduces duplicates. *)
val rename : (Attr.t -> Attr.t) -> t -> t

(** [qualify ~alias s] prefixes every attribute with ["alias."]. *)
val qualify : alias:string -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
