open Relalg
open Helpers
module F = Condition.Formula
module Expr = Query.Expr
module Parser = Query.Parser
open F.Dsl

let chain_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 10 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 10; 100 ]; [ 20; 200 ]; [ 30; 300 ] ]);
    ]

let lookup_in db name = Relation.schema (Database.find db name)

(* A parsed statement and a hand-built expression must evaluate to the
   same relation. *)
let check_same_eval db text expr =
  check_rel text
    (Query.Eval.eval db expr)
    (Query.Eval.eval db (Parser.view ~lookup:(lookup_in db) text))

let int_lookup assoc v =
  match List.assoc_opt v assoc with
  | Some x -> Value.Int x
  | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Conditions                                                         *)
(* ------------------------------------------------------------------ *)

let condition_tests =
  let equivalent text reference assignments =
    let parsed = Parser.condition text in
    List.for_all
      (fun assignment ->
        let l = int_lookup assignment in
        F.eval l parsed = F.eval l reference)
      assignments
  in
  let grid =
    List.concat_map
      (fun x -> List.map (fun y -> [ ("A", x); ("B", y) ]) [ 0; 5; 10; 15 ])
      [ 0; 5; 10; 15 ]
  in
  [
    quick "simple comparison" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "A < 10" (v "A" <% i 10) grid));
    quick "every comparator" (fun () ->
        List.iter
          (fun (text, reference) ->
            Alcotest.(check bool) text true (equivalent text reference grid))
          [
            ("A = 5", v "A" =% i 5);
            ("A <> 5", v "A" <>% i 5);
            ("A != 5", v "A" <>% i 5);
            ("A <= B", v "A" <=% v "B");
            ("A >= B", v "A" >=% v "B");
            ("A > 5", v "A" >% i 5);
          ]);
    quick "shifted comparison A < B + 3" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "A < B + 3" (v "A" <% v "B" +% 3) grid));
    quick "negative shift A >= B - 2" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "A >= B - 2" (v "A" >=% v "B" +% -2) grid));
    quick "and binds tighter than or" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "A = 0 OR A = 5 AND B = 5"
             ((v "A" =% i 0) ||% ((v "A" =% i 5) &&% (v "B" =% i 5)))
             grid));
    quick "parentheses override precedence" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "(A = 0 OR A = 5) AND B = 5"
             (((v "A" =% i 0) ||% (v "A" =% i 5)) &&% (v "B" =% i 5))
             grid));
    quick "not" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "NOT A < 10 AND B = 5"
             (not_ (v "A" <% i 10) &&% (v "B" =% i 5))
             grid));
    quick "string literal with escaped quote" (fun () ->
        match Parser.condition "name = 'O''Brien'" with
        | F.Atom { F.right = F.O_const (Value.Str "O'Brien"); _ } -> ()
        | _ -> Alcotest.fail "wrong string literal");
    quick "keywords are case-insensitive, identifiers are not" (fun () ->
        Alcotest.(check bool) "equivalent" true
          (equivalent "A = 1 and B = 2 Or A = 3"
             ((v "A" =% i 1) &&% (v "B" =% i 2) ||% (v "A" =% i 3))
             grid));
    quick "lexer errors carry positions" (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) text true
              (try
                 ignore (Parser.condition text);
                 false
               with Parser.Parse_error _ -> true))
          [ "A # 1"; "A <"; "A < 'oops"; "< 3"; "A = 1 AND"; "A = 1 2" ]);
  ]

(* ------------------------------------------------------------------ *)
(* SELECT statements                                                  *)
(* ------------------------------------------------------------------ *)

let select_tests =
  [
    quick "select star from one relation" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT * FROM R" (Expr.base "R"));
    quick "projection" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT B FROM R" Expr.(project [ "B" ] (base "R")));
    quick "selection" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT * FROM R WHERE A > 1"
          Expr.(select (v "A" >% i 1) (base "R")));
    quick "natural join via comma" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT A, C FROM R, S"
          Expr.(project [ "A"; "C" ] (join (base "R") (base "S"))));
    quick "JOIN keyword is a synonym" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT A, C FROM R JOIN S"
          Expr.(project [ "A"; "C" ] (join (base "R") (base "S"))));
    quick "full SPJ statement" (fun () ->
        let db = chain_db () in
        check_same_eval db "SELECT A, C FROM R, S WHERE A < 3 AND C > 100"
          Expr.(
            project [ "A"; "C" ]
              (select ((v "A" <% i 3) &&% (v "C" >% i 100))
                 (join (base "R") (base "S")))));
    quick "table alias renames attributes" (fun () ->
        let db = chain_db () in
        check_same_eval db
          "SELECT A, x_B FROM R, R AS x WHERE B = x_A"
          Expr.(
            project [ "A"; "x_B" ]
              (select
                 (v "B" =% v "x_A")
                 (join (base "R")
                    (rename [ ("A", "x_A"); ("B", "x_B") ] (base "R"))))));
    quick "parsed views maintain correctly" (fun () ->
        let db = chain_db () in
        let view =
          Ivm.View.define ~name:"parsed" ~db
            (Parser.view ~lookup:(lookup_in db)
               "SELECT A, C FROM R, S WHERE C <= 200")
        in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 9; 20 ]) ]);
        Alcotest.(check bool) "consistent" true (Ivm.View.consistent view db));
    quick "statement errors" (fun () ->
        let db = chain_db () in
        List.iter
          (fun text ->
            Alcotest.(check bool) text true
              (try
                 ignore (Parser.view ~lookup:(lookup_in db) text);
                 false
               with Parser.Parse_error _ -> true))
          [
            "FROM R";
            "SELECT FROM R";
            "SELECT * R";
            "SELECT * FROM";
            "SELECT * FROM R WHERE";
            "SELECT * FROM NOPE AS x WHERE A = 1";
            "SELECT * FROM R extra";
          ]);
    quick "unknown relation surfaces as a compile error downstream"
      (fun () ->
        (* Unaliased unknown relations parse (the name is only resolved at
           compile time) and fail in Spj.compile. *)
        let db = chain_db () in
        let e = Parser.view ~lookup:(lookup_in db) "SELECT * FROM NOPE" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Query.Spj.compile (lookup_in db) e);
             false
           with Query.Spj.Compile_error _ -> true));
  ]

let () =
  Alcotest.run "parser"
    [ ("condition", condition_tests); ("select", select_tests) ]
