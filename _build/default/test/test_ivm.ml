open Relalg
open Helpers
module F = Condition.Formula
module Expr = Query.Expr
module Delta = Ivm.Delta
module Delta_eval = Ivm.Delta_eval
module Irrelevance = Ivm.Irrelevance
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
open F.Dsl

(* ------------------------------------------------------------------ *)
(* Delta                                                              *)
(* ------------------------------------------------------------------ *)

let delta_tests =
  let schema = int_schema [ "A" ] in
  let t n = Tuple.of_ints [ n ] in
  [
    quick "empty delta" (fun () ->
        let d = Delta.empty schema in
        Alcotest.(check bool) "empty" true (Delta.is_empty d);
        Alcotest.(check int) "size" 0 (Delta.size d));
    quick "of_lists and size" (fun () ->
        let d = Delta.of_lists schema ([ t 1; t 2 ], [ t 3 ]) in
        Alcotest.(check bool) "not empty" false (Delta.is_empty d);
        Alcotest.(check int) "size" 3 (Delta.size d));
    quick "normalize cancels overlapping counts" (fun () ->
        let d =
          {
            Delta.inserts = counted_rel [ "A" ] [ ([ 1 ], 3); ([ 2 ], 1) ];
            deletes = counted_rel [ "A" ] [ ([ 1 ], 1); ([ 3 ], 2) ];
          }
        in
        let n = Delta.normalize d in
        Alcotest.(check int) "insert 1 count" 2
          (Relation.count n.Delta.inserts (t 1));
        Alcotest.(check bool) "delete 1 gone" false
          (Relation.mem n.Delta.deletes (t 1));
        Alcotest.(check int) "delete 3 kept" 2
          (Relation.count n.Delta.deletes (t 3)));
    quick "apply adjusts counters" (fun () ->
        let r = counted_rel [ "A" ] [ ([ 1 ], 1); ([ 2 ], 2) ] in
        Delta.apply
          {
            Delta.inserts = counted_rel [ "A" ] [ ([ 1 ], 1); ([ 3 ], 1) ];
            deletes = counted_rel [ "A" ] [ ([ 2 ], 2) ];
          }
          r;
        check_rel "applied"
          (counted_rel [ "A" ] [ ([ 1 ], 2); ([ 3 ], 1) ])
          r);
    quick "apply raises on inconsistent delete" (fun () ->
        let r = rel [ "A" ] [ [ 1 ] ] in
        Alcotest.(check bool) "raises" true
          (try
             Delta.apply
               {
                 Delta.inserts = Relation.create schema;
                 deletes = counted_rel [ "A" ] [ ([ 1 ], 2) ];
               }
               r;
             false
           with Relation.Negative_count _ -> true));
    quick "compose: disjoint updates accumulate" (fun () ->
        let d1 = Delta.of_lists schema ([ t 1 ], [ t 2 ]) in
        let d2 = Delta.of_lists schema ([ t 3 ], [ t 4 ]) in
        let c = Delta.compose ~first:d1 ~second:d2 in
        Alcotest.(check int) "inserts" 2 (Relation.cardinal c.Delta.inserts);
        Alcotest.(check int) "deletes" 2 (Relation.cardinal c.Delta.deletes));
    quick "compose: insert then delete vanishes" (fun () ->
        let d1 = Delta.of_lists schema ([ t 1 ], []) in
        let d2 = Delta.of_lists schema ([], [ t 1 ]) in
        Alcotest.(check bool) "empty" true
          (Delta.is_empty (Delta.compose ~first:d1 ~second:d2)));
    quick "compose: delete then reinsert vanishes" (fun () ->
        let d1 = Delta.of_lists schema ([], [ t 1 ]) in
        let d2 = Delta.of_lists schema ([ t 1 ], []) in
        Alcotest.(check bool) "empty" true
          (Delta.is_empty (Delta.compose ~first:d1 ~second:d2)));
    quick "compose equals sequential application" (fun () ->
        (* Randomized: applying compose(d1,d2) to the base state equals
           applying d1 then d2. *)
        let rng = Workload.Rng.make 3 in
        for _ = 1 to 100 do
          let universe = List.init 8 t in
          let base =
            List.filter (fun _ -> Workload.Rng.chance rng 0.5) universe
          in
          let r0 = Relation.of_tuples schema base in
          let present = List.filter (Relation.mem r0) universe in
          let absent =
            List.filter (fun x -> not (Relation.mem r0 x)) universe
          in
          let sample l p = List.filter (fun _ -> Workload.Rng.chance rng p) l in
          let d1_del = sample present 0.4 in
          let d1_ins = sample absent 0.4 in
          let d1 = Delta.of_lists schema (d1_ins, d1_del) in
          let r1 = Relation.copy r0 in
          Delta.apply d1 r1;
          let present1 = List.filter (Relation.mem r1) universe in
          let absent1 =
            List.filter (fun x -> not (Relation.mem r1 x)) universe
          in
          let d2_del = sample present1 0.4 in
          let d2_ins = sample absent1 0.4 in
          let d2 = Delta.of_lists schema (d2_ins, d2_del) in
          let r2 = Relation.copy r1 in
          Delta.apply d2 r2;
          let composed = Delta.compose ~first:d1 ~second:d2 in
          let r_composed = Relation.copy r0 in
          Delta.apply composed r_composed;
          check_rel "composed = sequential" r2 r_composed
        done);
    quick "reschema renames both parts" (fun () ->
        let d = Delta.of_lists schema ([ t 1 ], [ ]) in
        let d2 = Delta.reschema d (int_schema [ "r.A" ]) in
        Alcotest.(check (list string)) "renamed" [ "r.A" ]
          (Schema.names (Relation.schema d2.Delta.inserts)));
    quick "merge_into accumulates" (fun () ->
        let into = Delta.empty schema in
        Delta.merge_into ~into (Delta.of_lists schema ([ t 1 ], [ t 2 ]));
        Delta.merge_into ~into (Delta.of_lists schema ([ t 1 ], []));
        Alcotest.(check int) "insert count" 2
          (Relation.count into.Delta.inserts (t 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Delta_eval                                                         *)
(* ------------------------------------------------------------------ *)

let setup_join_view () =
  let db =
    db_of
      [
        ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ]);
        ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 6 ] ]);
      ]
  in
  (db, View.define ~name:"v" ~db Expr.(join (base "R") (base "S")))

let delta_eval_tests =
  [
    quick "no modified sources means no rows" (fun () ->
        let _, view = setup_join_view () in
        let inputs =
          List.map
            (fun (s : Query.Spj.source) ->
              {
                Delta_eval.alias = s.Query.Spj.alias;
                old_part =
                  Relation.create (View.qualified_schema view ~alias:s.Query.Spj.alias);
                delta = None;
              })
            (View.spj view).Query.Spj.sources
        in
        let result = Delta_eval.eval ~spj:(View.spj view) ~inputs () in
        Alcotest.(check int) "rows" 0 result.Delta_eval.rows_evaluated;
        Alcotest.(check bool) "empty delta" true
          (Delta.is_empty result.Delta_eval.delta));
    quick "empty-operand rows are skipped" (fun () ->
        (* Insert-only delta on R: the deletes side of every row is
           skipped, so only 1 of 2 evaluations runs. *)
        let db, view = setup_join_view () in
        let q alias = View.qualified_schema view ~alias in
        let inputs =
          [
            {
              Delta_eval.alias = "R";
              old_part = Relation.reschema (Database.find db "R") (q "R");
              delta =
                Some (Delta.of_lists (q "R") ([ Tuple.of_ints [ 3; 10 ] ], []));
            };
            {
              Delta_eval.alias = "S";
              old_part = Relation.reschema (Database.find db "S") (q "S");
              delta = None;
            };
          ]
        in
        let result = Delta_eval.eval ~spj:(View.spj view) ~inputs () in
        Alcotest.(check int) "one evaluation" 1 result.Delta_eval.rows_evaluated;
        Alcotest.(check int) "one insert" 1
          (Relation.total result.Delta_eval.delta.Delta.inserts));
    quick "reuse mode produces identical deltas" (fun () ->
        let db, view = setup_join_view () in
        let q alias = View.qualified_schema view ~alias in
        let inputs =
          [
            {
              Delta_eval.alias = "R";
              old_part = Relation.reschema (Database.find db "R") (q "R");
              delta =
                Some
                  (Delta.of_lists (q "R")
                     ( [ Tuple.of_ints [ 3; 10 ]; Tuple.of_ints [ 4; 20 ] ],
                       [ Tuple.of_ints [ 1; 10 ] ] ));
            };
            {
              Delta_eval.alias = "S";
              old_part = Relation.reschema (Database.find db "S") (q "S");
              delta =
                Some (Delta.of_lists (q "S") ([ Tuple.of_ints [ 30; 9 ] ], []));
            };
          ]
        in
        let plain = Delta_eval.eval ~spj:(View.spj view) ~inputs () in
        let reused = Delta_eval.eval ~reuse:true ~spj:(View.spj view) ~inputs () in
        check_rel "inserts" plain.Delta_eval.delta.Delta.inserts
          reused.Delta_eval.delta.Delta.inserts;
        check_rel "deletes" plain.Delta_eval.delta.Delta.deletes
          reused.Delta_eval.delta.Delta.deletes);
    quick "join order and impl do not change the delta" (fun () ->
        let db, view = setup_join_view () in
        let q alias = View.qualified_schema view ~alias in
        let inputs =
          [
            {
              Delta_eval.alias = "R";
              old_part = Relation.reschema (Database.find db "R") (q "R");
              delta =
                Some (Delta.of_lists (q "R") ([ Tuple.of_ints [ 7; 20 ] ], []));
            };
            {
              Delta_eval.alias = "S";
              old_part = Relation.reschema (Database.find db "S") (q "S");
              delta = None;
            };
          ]
        in
        let spj = View.spj view in
        let a = Delta_eval.eval ~order:`Greedy ~spj ~inputs () in
        let b = Delta_eval.eval ~order:`Declaration ~spj ~inputs () in
        let c = Delta_eval.eval ~join_impl:`Nested_loop ~spj ~inputs () in
        check_rel "greedy = declaration" a.Delta_eval.delta.Delta.inserts
          b.Delta_eval.delta.Delta.inserts;
        check_rel "hash = nested" a.Delta_eval.delta.Delta.inserts
          c.Delta_eval.delta.Delta.inserts);
    quick "missing alias raises" (fun () ->
        let _, view = setup_join_view () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Delta_eval.eval ~spj:(View.spj view) ~inputs:[] ());
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Irrelevance edge cases                                             *)
(* ------------------------------------------------------------------ *)

let irrelevance_tests =
  [
    quick "always irrelevant when the condition is false" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let view =
          View.define ~name:"v" ~db
            Expr.(select ((v "A" <% i 0) &&% (v "A" >% i 0)) (base "R"))
        in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "always" true
          (Irrelevance.always_irrelevant screen);
        Alcotest.(check bool) "tuple irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 5 ])));
    quick "true condition keeps everything" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let view = View.define ~name:"v" ~db (Expr.base "R") in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 42 ])));
    quick "disjunctive conditions: any live disjunct keeps the tuple"
      (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 1 ] ]) ] in
        let view =
          View.define ~name:"v" ~db
            Expr.(select ((v "A" <% i 10) ||% (v "B" >% i 100)) (base "R"))
        in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "first disjunct" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 5; 0 ]));
        Alcotest.(check bool) "second disjunct" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 50; 200 ]));
        Alcotest.(check bool) "neither" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 50; 50 ])));
    quick "variant formulae interact with invariant bounds" (fun () ->
        (* C = (A = D) /\ (D < 5) over R(A) x T(D): inserting A = 7 is
           irrelevant because D = 7 contradicts D < 5. *)
        let db =
          db_of [ ("R", rel [ "A" ] [ [ 1 ] ]); ("T", rel [ "D" ] [ [ 2 ] ]) ]
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(
              select ((v "A" =% v "D") &&% (v "D" <% i 5))
                (product (base "R") (base "T")))
        in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "A=3 relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 3 ]));
        Alcotest.(check bool) "A=7 irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 7 ])));
    quick "shifted join conditions" (fun () ->
        (* C = (D >= A + 10) /\ (D <= 15): A = 6 forces D >= 16, dead. *)
        let db =
          db_of [ ("R", rel [ "A" ] [ [ 1 ] ]); ("T", rel [ "D" ] [ [ 12 ] ]) ]
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(
              select ((v "D" >=% v "A" +% 10) &&% (v "D" <=% i 15))
                (product (base "R") (base "T")))
        in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "A=5 relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 5 ]));
        Alcotest.(check bool) "A=6 irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 6 ])));
    quick "string equality screening" (fun () ->
        let schema =
          Schema.make [ ("id", Value.Int_ty); ("region", Value.Str_ty) ]
        in
        let db =
          db_of
            [
              ( "C",
                Relation.of_tuples schema [ [| Value.Int 1; Value.Str "north" |] ]
              );
            ]
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(select (v "region" =% s "north") (base "C"))
        in
        let screen = View.screen_for view ~alias:"C" in
        Alcotest.(check bool) "north relevant" true
          (Irrelevance.relevant screen [| Value.Int 2; Value.Str "north" |]);
        Alcotest.(check bool) "south irrelevant" false
          (Irrelevance.relevant screen [| Value.Int 2; Value.Str "south" |]));
    quick "integer disequalities stay conservative" (fun () ->
        let db = db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 2 ] ]) ] in
        let view =
          View.define ~name:"v" ~db
            Expr.(select ((v "A" <>% i 5) &&% (v "B" <% i 10)) (base "R"))
        in
        let screen = View.screen_for view ~alias:"R" in
        (* B = 20 violates B < 10 regardless of the disequality. *)
        Alcotest.(check bool) "B kills it" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 1; 20 ]));
        (* A = 5 violates the disequality: variant evaluable, decidable. *)
        Alcotest.(check bool) "A=5 irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 5; 1 ]));
        Alcotest.(check bool) "A=4 relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 4; 1 ])));
    quick "declared domain bounds strengthen the screen" (fun () ->
        (* S.C has domain [0, 50]; the condition C >= A makes any insert
           into R with A > 50 provably irrelevant. *)
        let s_schema =
          Schema.make_bounded
            [ ("B", Value.Int_ty, None); ("C", Value.Int_ty, Some (0, 50)) ]
        in
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 1 ] ]);
              ("S", Relation.of_tuples s_schema [ Tuple.of_ints [ 1; 10 ] ]);
            ]
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(select (v "C" >=% v "A") (join (base "R") (base "S")))
        in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "A=50 relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 50; 1 ]));
        Alcotest.(check bool) "A=51 irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 51; 1 ]));
        (* The naive path must agree. *)
        Alcotest.(check bool) "naive agrees" false
          (Irrelevance.relevant_naive screen (Tuple.of_ints [ 51; 1 ])));
    quick "bounds make a whole view invariantly dead" (fun () ->
        let r_schema =
          Schema.make_bounded [ ("A", Value.Int_ty, Some (0, 9)) ]
        in
        let db =
          db_of [ ("R", Relation.of_tuples r_schema [ Tuple.of_ints [ 1 ] ]) ]
        in
        let view =
          View.define ~name:"v" ~db Expr.(select (v "A" >% i 100) (base "R"))
        in
        (* A > 100 with domain [0,9]: the condition never holds... but the
           substitution already evaluates it per tuple, so check that the
           screen at least rejects all legal tuples. *)
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "legal tuple irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 5 ])));
    quick "out-of-domain inserts are rejected at the transaction" (fun () ->
        let r_schema =
          Schema.make_bounded [ ("A", Value.Int_ty, Some (0, 9)) ]
        in
        let db =
          db_of [ ("R", Relation.of_tuples r_schema [ Tuple.of_ints [ 1 ] ]) ]
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Transaction.net_effect db
                  [ Transaction.insert "R" (Tuple.of_ints [ 12 ]) ]);
             false
           with Invalid_argument _ -> true));
    quick "naive agrees with incremental on random screens" (fun () ->
        let rng = Workload.Rng.make 21 in
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 1 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 1; 1 ] ]);
            ]
        in
        let conditions =
          [
            (v "A" <% i 10) &&% (v "B" =% v "S.B") &&% (v "C" >% i 5);
            (v "A" <% v "C") &&% (v "B" =% v "S.B");
            (v "A" <% i 3) ||% ((v "B" =% v "S.B") &&% (v "C" <% v "A"));
            (v "A" >=% v "B" +% 2) &&% (v "C" <=% i 7);
          ]
        in
        List.iter
          (fun cond ->
            (* Views are built on R(A,B) x S(B,C) with explicit product to
               avoid natural-join attribute capture; S.B is spelled via a
               rename below. *)
            ignore cond)
          [];
        (* Simpler: use the natural join view and random tuples. *)
        let view =
          View.define ~name:"v" ~db
            Expr.(
              select ((v "A" <% i 10) &&% (v "C" >% i 5)) (join (base "R") (base "S")))
        in
        let screen = View.screen_for view ~alias:"R" in
        ignore conditions;
        for _ = 1 to 200 do
          let t =
            Tuple.of_ints
              [
                Workload.Rng.range rng ~lo:(-5) ~hi:20;
                Workload.Rng.range rng ~lo:(-5) ~hi:20;
              ]
          in
          Alcotest.(check bool) "agree"
            (Irrelevance.relevant_naive screen t)
            (Irrelevance.relevant screen t)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* View                                                               *)
(* ------------------------------------------------------------------ *)

let view_tests =
  [
    quick "define materializes immediately" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        Alcotest.(check int) "one tuple" 1
          (Relation.cardinal (View.contents view)));
    quick "minimize flag controls join folding" (fun () ->
        let db = db_of [ ("S", rel [ "B"; "C" ] [ [ 1; 2 ] ]) ] in
        let duplicated = Expr.(join (base "S") (base "S")) in
        let minimized = View.define ~name:"v1" ~db duplicated in
        let unminimized =
          View.define ~minimize:false ~name:"v2" ~db duplicated
        in
        Alcotest.(check int) "folded" 1
          (List.length (View.spj minimized).Query.Spj.sources);
        Alcotest.(check int) "kept" 2
          (List.length (View.spj unminimized).Query.Spj.sources));
    quick "apply_delta rejects inconsistency" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let view = View.define ~name:"v" ~db (Expr.base "R") in
        Alcotest.(check bool) "raises" true
          (try
             View.apply_delta view
               (Delta.of_lists (View.schema view) ([], [ Tuple.of_ints [ 99 ] ]));
             false
           with Relation.Negative_count _ -> true));
    quick "recompute replaces contents" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let view = View.define ~name:"v" ~db (Expr.base "R") in
        Relation.add (Database.find db "R") (Tuple.of_ints [ 2 ]);
        Alcotest.(check bool) "stale" false (View.consistent view db);
        View.recompute view db;
        Alcotest.(check bool) "fresh" true (View.consistent view db));
    quick "qualified_schema unknown alias raises" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [] ) ] in
        let view = View.define ~name:"v" ~db (Expr.base "R") in
        Alcotest.check_raises "unknown" Not_found (fun () ->
            ignore (View.qualified_schema view ~alias:"zzz")));
  ]

(* ------------------------------------------------------------------ *)
(* Maintenance                                                        *)
(* ------------------------------------------------------------------ *)

let maintenance_tests =
  [
    quick "differential equals recompute strategy" (fun () ->
        let mk () =
          let db =
            db_of
              [
                ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ]);
                ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 6 ] ]);
              ]
          in
          (db, View.define ~name:"v" ~db Expr.(join (base "R") (base "S")))
        in
        let txn =
          [
            Transaction.insert "R" (Tuple.of_ints [ 3; 20 ]);
            Transaction.delete "S" (Tuple.of_ints [ 10; 5 ]);
          ]
        in
        let db1, v1 = mk () in
        ignore (Maintenance.process ~views:[ v1 ] ~db:db1 txn);
        let db2, v2 = mk () in
        ignore
          (Maintenance.process
             ~options:
               { Maintenance.default_options with strategy = Maintenance.Recompute }
             ~views:[ v2 ] ~db:db2 txn);
        check_rel "same contents" (View.contents v2) (View.contents v1));
    quick "reports count screened updates" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let reports =
          Maintenance.process ~views:[ view ] ~db
            [
              Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]);
              Transaction.insert "R" (Tuple.of_ints [ 11; 10 ]);
            ]
        in
        match reports with
        | [ r ] ->
          Alcotest.(check int) "screened out" 1 r.Maintenance.screened_out;
          Alcotest.(check int) "kept" 1 r.Maintenance.screened_kept
        | _ -> Alcotest.fail "expected one report");
    quick "screening disabled still correct" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        ignore
          (Maintenance.process
             ~options:{ Maintenance.default_options with screen = false }
             ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 11; 10 ]) ]);
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "invalid transaction leaves everything untouched" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let view = View.define ~name:"v" ~db (Expr.base "R") in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Maintenance.process ~views:[ view ] ~db
                  [
                    Transaction.insert "R" (Tuple.of_ints [ 2 ]);
                    Transaction.insert "R" (Tuple.of_ints [ 1 ]);
                  ]);
             false
           with Transaction.Invalid _ -> true);
        Alcotest.(check int) "base unchanged" 1
          (Relation.cardinal (Database.find db "R"));
        Alcotest.(check bool) "view consistent" true (View.consistent view db));
    quick "multiple views maintained in one commit" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 5 ] ]);
            ]
        in
        let v1 = View.define ~name:"v1" ~db Expr.(join (base "R") (base "S")) in
        let v2 = View.define ~name:"v2" ~db Expr.(project [ "B" ] (base "R")) in
        let v3 =
          View.define ~name:"v3" ~db Expr.(select (v "C" >% i 4) (base "S"))
        in
        ignore
          (Maintenance.process ~views:[ v1; v2; v3 ] ~db
             [
               Transaction.insert "R" (Tuple.of_ints [ 2; 10 ]);
               Transaction.insert "S" (Tuple.of_ints [ 20; 9 ]);
             ]);
        List.iter
          (fun view ->
            Alcotest.(check bool)
              (View.name view ^ " consistent")
              true (View.consistent view db))
          [ v1; v2; v3 ]);
    quick "per-view option override" (fun () ->
        let db = db_of [ ("R", rel [ "A" ] [ [ 1 ] ]) ] in
        let v1 = View.define ~name:"v1" ~db (Expr.base "R") in
        let v2 = View.define ~name:"v2" ~db (Expr.base "R") in
        let reports =
          Maintenance.process
            ~options_for:(fun name ->
              if String.equal name "v2" then
                Some
                  {
                    Maintenance.default_options with
                    strategy = Maintenance.Recompute;
                  }
              else None)
            ~views:[ v1; v2 ] ~db
            [ Transaction.insert "R" (Tuple.of_ints [ 2 ]) ]
        in
        let strategy_of name =
          (List.find (fun r -> r.Maintenance.view_name = name) reports)
            .Maintenance.strategy_used
        in
        Alcotest.(check bool) "v1 differential" true
          (strategy_of "v1" = Maintenance.Differential);
        Alcotest.(check bool) "v2 recompute" true
          (strategy_of "v2" = Maintenance.Recompute);
        Alcotest.(check bool) "both consistent" true
          (View.consistent v1 db && View.consistent v2 db));
  ]

(* ------------------------------------------------------------------ *)
(* Advisor                                                            *)
(* ------------------------------------------------------------------ *)

let advisor_tests =
  let setup () =
    let rng = Workload.Rng.make 77 in
    let scenario =
      Workload.Scenario.pair ~rng ~size_r:2_000 ~size_s:2_000 ~key_range:1_000
    in
    let db = scenario.Workload.Scenario.db in
    let view = View.define ~name:"v" ~db Expr.(join (base "R") (base "S")) in
    (rng, scenario, db, view)
  in
  [
    quick "small deltas choose differential" (fun () ->
        let rng, scenario, db, view = setup () in
        let txn =
          Workload.Generate.transaction rng db "R"
            ~columns:(Workload.Scenario.columns_of scenario "R") ~inserts:2
            ~deletes:2
        in
        let net = Transaction.net_effect db txn in
        let decision = Ivm.Advisor.decide view ~db ~net in
        Alcotest.(check bool) "differential" true
          decision.Ivm.Advisor.choose_differential);
    quick "full churn chooses recompute" (fun () ->
        let rng, scenario, db, view = setup () in
        let txn =
          Workload.Generate.transaction rng db "R"
            ~columns:(Workload.Scenario.columns_of scenario "R") ~inserts:1_000
            ~deletes:1_000
        in
        let net = Transaction.net_effect db txn in
        let decision = Ivm.Advisor.decide view ~db ~net in
        Alcotest.(check bool) "recompute" false
          decision.Ivm.Advisor.choose_differential);
    quick "empty net costs nothing differentially" (fun () ->
        let _, _, db, view = setup () in
        let decision = Ivm.Advisor.decide view ~db ~net:[] in
        Alcotest.(check bool) "differential at zero cost" true
          (decision.Ivm.Advisor.choose_differential
          && decision.Ivm.Advisor.differential_cost = 0.0));
    quick "adaptive maintenance stays consistent across the spectrum"
      (fun () ->
        let rng, scenario, db, view = setup () in
        let options =
          { Maintenance.default_options with strategy = Maintenance.Adaptive }
        in
        List.iter
          (fun batch ->
            let txn =
              Workload.Generate.transaction rng db "R"
                ~columns:(Workload.Scenario.columns_of scenario "R")
                ~inserts:batch ~deletes:batch
            in
            ignore (Maintenance.process ~options ~views:[ view ] ~db txn);
            Alcotest.(check bool)
              (Printf.sprintf "consistent at batch %d" batch)
              true (View.consistent view db))
          [ 1; 50; 800 ]);
    quick "adaptive through the manager" (fun () ->
        let rng, scenario, db, view = setup () in
        ignore view;
        let mgr = Manager.create db in
        let v2 =
          Manager.define_view mgr ~name:"adaptive"
            ~options:
              { Maintenance.default_options with strategy = Maintenance.Adaptive }
            Expr.(join (base "R") (base "S"))
        in
        List.iter
          (fun batch ->
            let txn =
              Workload.Generate.transaction rng db "R"
                ~columns:(Workload.Scenario.columns_of scenario "R")
                ~inserts:batch ~deletes:batch
            in
            ignore (Manager.commit mgr txn))
          [ 1; 900 ];
        Alcotest.(check bool) "consistent" true (View.consistent v2 db));
  ]

(* ------------------------------------------------------------------ *)
(* Manager                                                            *)
(* ------------------------------------------------------------------ *)

let manager_tests =
  [
    quick "immediate views follow every commit" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let view = Manager.define_view mgr ~name:"u" (example_4_1_expr ()) in
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
        Alcotest.(check int) "two tuples" 2
          (Relation.cardinal (View.contents view));
        Alcotest.(check bool) "consistent" true (Manager.consistent mgr "u"));
    quick "duplicate view name rejected" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        ignore (Manager.define_view mgr ~name:"u" (example_4_1_expr ()));
        Alcotest.(check bool) "raises" true
          (try
             ignore (Manager.define_view mgr ~name:"u" (example_4_1_expr ()));
             false
           with Invalid_argument _ -> true));
    quick "deferred views accumulate and refresh" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let view =
          Manager.define_view mgr ~name:"u" ~mode:Manager.Deferred
            (example_4_1_expr ())
        in
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 8; 10 ]) ]);
        (* Still stale before refresh. *)
        Alcotest.(check int) "stale" 1 (Relation.cardinal (View.contents view));
        Alcotest.(check int) "pending for R" 1
          (List.length (Manager.pending mgr "u"));
        ignore (Manager.refresh mgr "u");
        Alcotest.(check int) "fresh" 3 (Relation.cardinal (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db);
        Alcotest.(check int) "pending cleared" 0
          (List.length (Manager.pending mgr "u")));
    quick "deferred composition cancels churn" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let view =
          Manager.define_view mgr ~name:"u" ~mode:Manager.Deferred
            (example_4_1_expr ())
        in
        let t = Tuple.of_ints [ 9; 10 ] in
        ignore (Manager.commit mgr [ Transaction.insert "R" t ]);
        ignore (Manager.commit mgr [ Transaction.delete "R" t ]);
        let pending = Manager.pending mgr "u" in
        Alcotest.(check bool) "pending net empty" true
          (List.for_all (fun (_, d) -> Delta.is_empty d) pending);
        ignore (Manager.refresh mgr "u");
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "refresh of immediate view is a no-op" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        ignore (Manager.define_view mgr ~name:"u" (example_4_1_expr ()));
        Alcotest.(check bool) "none" true (Manager.refresh mgr "u" = None));
    quick "deferred and immediate converge" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let immediate = Manager.define_view mgr ~name:"imm" (example_4_1_expr ()) in
        let deferred =
          Manager.define_view mgr ~name:"def" ~mode:Manager.Deferred
            (example_4_1_expr ())
        in
        ignore
          (Manager.commit mgr
             [
               Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]);
               Transaction.delete "S" (Tuple.of_ints [ 12; 15 ]);
             ]);
        ignore
          (Manager.commit mgr [ Transaction.insert "S" (Tuple.of_ints [ 6; 1 ]) ]);
        ignore (Manager.refresh_all mgr);
        check_rel "same contents" (View.contents immediate)
          (View.contents deferred));
    quick "recompute-strategy views stay consistent through the manager"
      (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        let view =
          Manager.define_view mgr ~name:"u"
            ~options:
              {
                Ivm.Maintenance.default_options with
                strategy = Ivm.Maintenance.Recompute;
              }
            (example_4_1_expr ())
        in
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "view_names in definition order" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        ignore (Manager.define_view mgr ~name:"b" (Expr.base "R"));
        ignore (Manager.define_view mgr ~name:"a" (Expr.base "S"));
        Alcotest.(check (list string)) "order" [ "b"; "a" ]
          (Manager.view_names mgr));
  ]

let () =
  Alcotest.run "ivm"
    [
      ("delta", delta_tests);
      ("delta_eval", delta_eval_tests);
      ("irrelevance", irrelevance_tests);
      ("view", view_tests);
      ("advisor", advisor_tests);
      ("maintenance", maintenance_tests);
      ("manager", manager_tests);
    ]
