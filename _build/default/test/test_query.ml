open Relalg
open Helpers
module F = Condition.Formula
module Expr = Query.Expr
module Spj = Query.Spj
module Planner = Query.Planner
module Eval = Query.Eval
module Tableau = Query.Tableau
open F.Dsl

let lookup_in db name = Relation.schema (Database.find db name)

(* A small shared database: R(A,B), S(B,C), T(C,D). *)
let chain_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 10 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 10; 100 ]; [ 20; 200 ]; [ 30; 300 ] ]);
      ("T", rel [ "C"; "D" ] [ [ 100; 7 ]; [ 200; 8 ] ]);
    ]

(* ------------------------------------------------------------------ *)
(* Expr                                                               *)
(* ------------------------------------------------------------------ *)

let expr_tests =
  [
    quick "base_names in occurrence order" (fun () ->
        let e = Expr.(join (join (base "R") (base "S")) (base "R")) in
        Alcotest.(check (list string)) "names" [ "R"; "S"; "R" ]
          (Expr.base_names e));
    quick "schema of natural join merges shared attributes" (fun () ->
        let db = chain_db () in
        let e = Expr.(join (base "R") (base "S")) in
        Alcotest.(check (list string)) "schema" [ "A"; "B"; "C" ]
          (Schema.names (Expr.schema_of (lookup_in db) e)));
    quick "schema of product requires disjoint" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Expr.schema_of (lookup_in db)
                  Expr.(product (base "R") (base "R")));
             false
           with Invalid_argument _ -> true));
    quick "schema of projection" (fun () ->
        let db = chain_db () in
        let e = Expr.(project [ "B" ] (base "R")) in
        Alcotest.(check (list string)) "schema" [ "B" ]
          (Schema.names (Expr.schema_of (lookup_in db) e)));
    quick "join_all left-associates" (fun () ->
        let e = Expr.(join_all [ base "R"; base "S"; base "T" ]) in
        Alcotest.(check (list string)) "names" [ "R"; "S"; "T" ]
          (Expr.base_names e));
    quick "join_all rejects empty" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Expr.join_all: empty list") (fun () ->
            ignore (Expr.join_all [])));
  ]

(* ------------------------------------------------------------------ *)
(* Spj compilation                                                    *)
(* ------------------------------------------------------------------ *)

let spj_tests =
  [
    quick "base relation compiles to identity view" (fun () ->
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) (Expr.base "R") in
        Alcotest.(check int) "one source" 1 (List.length spj.Spj.sources);
        Alcotest.(check (list string)) "projection" [ "A"; "B" ]
          (List.map fst spj.Spj.projection));
    quick "natural join becomes equality atoms" (fun () ->
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) Expr.(join (base "R") (base "S")) in
        Alcotest.(check int) "two sources" 2 (List.length spj.Spj.sources);
        (match spj.Spj.condition_dnf with
        | [ [ atom ] ] -> (
          match atom with
          | { F.left = F.O_var "R.B"; cmp = F.Eq; right = F.O_var "S.B"; _ } ->
            ()
          | _ -> Alcotest.fail "wrong join atom")
        | _ -> Alcotest.fail "expected one equality atom");
        Alcotest.(check (list string)) "projection outputs" [ "A"; "B"; "C" ]
          (List.map fst spj.Spj.projection));
    quick "self-join gets distinct aliases" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(join (base "S") (project [ "B" ] (base "S")))
        in
        let aliases = List.map (fun s -> s.Spj.alias) spj.Spj.sources in
        Alcotest.(check bool) "distinct aliases" true
          (List.length (List.sort_uniq String.compare aliases) = 2));
    quick "selection conditions are qualified" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(select (v "A" <% i 10) (base "R"))
        in
        match spj.Spj.condition_dnf with
        | [ [ { F.left = F.O_var "R.A"; _ } ] ] -> ()
        | _ -> Alcotest.fail "selection not qualified");
    quick "selection on projected-away attribute fails" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Spj.compile (lookup_in db)
                  Expr.(select (v "A" <% i 1) (project [ "B" ] (base "R"))));
             false
           with Spj.Compile_error _ -> true));
    quick "projection of unknown attribute fails" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Spj.compile (lookup_in db) Expr.(project [ "Z" ] (base "R")));
             false
           with Spj.Compile_error _ -> true));
    quick "unknown base relation fails" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Spj.compile (lookup_in db) (Expr.base "NOPE"));
             false
           with Spj.Compile_error _ -> true));
    quick "product with overlapping visible attributes fails" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Spj.compile (lookup_in db) Expr.(product (base "R") (base "R")));
             false
           with Spj.Compile_error _ -> true));
    quick "projection composition keeps outer order" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(project [ "B"; "A" ] (project [ "A"; "B" ] (base "R")))
        in
        Alcotest.(check (list string)) "order" [ "B"; "A" ]
          (List.map fst spj.Spj.projection));
    quick "output_schema types" (fun () ->
        let db =
          db_of
            [
              ( "P",
                Relation.of_tuples
                  (Schema.make
                     [ ("id", Value.Int_ty); ("name", Value.Str_ty) ])
                  [ [| Value.Int 1; Value.Str "a" |] ] );
            ]
        in
        let spj = Spj.compile (lookup_in db) (Expr.base "P") in
        let out = Spj.output_schema (lookup_in db) spj in
        Alcotest.(check bool) "name is str" true
          (Schema.ty out "name" = Value.Str_ty));
    quick "typing resolves qualified attributes" (fun () ->
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) Expr.(join (base "R") (base "S")) in
        let typing = Spj.typing (lookup_in db) spj in
        Alcotest.(check bool) "int" true (typing "R.A" = Value.Int_ty));
    quick "eval matches the tree evaluator" (fun () ->
        let db = chain_db () in
        let exprs =
          [
            Expr.base "R";
            Expr.(select (v "A" >% i 1) (base "R"));
            Expr.(project [ "B" ] (base "R"));
            Expr.(join (base "R") (base "S"));
            Expr.(join (join (base "R") (base "S")) (base "T"));
            Expr.(
              project [ "A"; "D" ]
                (select (v "A" <% i 3) (join_all [ base "R"; base "S"; base "T" ])));
            Expr.(select ((v "A" =% i 1) ||% (v "C" >% i 150)) (join (base "R") (base "S")));
          ]
        in
        List.iteri
          (fun idx e ->
            let spj = Spj.compile (lookup_in db) e in
            check_rel
              (Printf.sprintf "expr %d" idx)
              (Eval.eval db e)
              (Spj.eval (lookup_in db) db spj))
          exprs);
  ]

(* ------------------------------------------------------------------ *)
(* Planner                                                            *)
(* ------------------------------------------------------------------ *)

let run_view db expr ~order ~join_impl =
  let spj = Spj.compile (lookup_in db) expr in
  let sources =
    List.map
      (fun (s : Spj.source) ->
        ( s.Spj.alias,
          Relation.reschema
            (Database.find db s.Spj.relation)
            (Spj.qualified_schema (lookup_in db) s) ))
      spj.Spj.sources
  in
  Planner.run ~order ~join_impl ~sources ~condition_dnf:spj.Spj.condition_dnf
    ~projection:spj.Spj.projection ()

let planner_tests =
  [
    quick "single source with filter" (fun () ->
        let db = chain_db () in
        check_rel "filtered" (rel [ "A"; "B" ] [ [ 2; 20 ]; [ 3; 10 ] ])
          (run_view db
             Expr.(select (v "A" >% i 1) (base "R"))
             ~order:`Greedy ~join_impl:`Hash));
    quick "declaration order agrees with greedy" (fun () ->
        let db = chain_db () in
        let e =
          Expr.(
            project [ "A"; "D" ]
              (select (v "A" <% i 3) (join_all [ base "R"; base "S"; base "T" ])))
        in
        check_rel "same result"
          (run_view db e ~order:`Greedy ~join_impl:`Hash)
          (run_view db e ~order:`Declaration ~join_impl:`Hash));
    quick "nested loop agrees with hash join" (fun () ->
        let db = chain_db () in
        let e = Expr.(join (base "R") (base "S")) in
        check_rel "same result"
          (run_view db e ~order:`Greedy ~join_impl:`Hash)
          (run_view db e ~order:`Greedy ~join_impl:`Nested_loop));
    quick "multi-disjunct condition" (fun () ->
        let db = chain_db () in
        let e =
          Expr.(
            select ((v "A" =% i 1) ||% (v "C" >% i 250)) (join (base "R") (base "S")))
        in
        check_rel "same as tree eval" (Eval.eval db e)
          (run_view db e ~order:`Greedy ~join_impl:`Hash));
    quick "disjunction across sources (no pushdown possible)" (fun () ->
        let db = chain_db () in
        let e =
          Expr.(
            select ((v "A" =% i 1) ||% (v "B" =% i 20)) (product (base "R") (base "T")))
        in
        check_rel "same as tree eval" (Eval.eval db e)
          (run_view db e ~order:`Greedy ~join_impl:`Hash));
    quick "empty source short-circuits" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]);
              ("S", rel [ "B"; "C" ] []);
            ]
        in
        let e = Expr.(join (base "R") (base "S")) in
        Alcotest.(check int) "empty" 0
          (Relation.cardinal (run_view db e ~order:`Greedy ~join_impl:`Hash)));
    quick "false condition yields the empty view" (fun () ->
        let db = chain_db () in
        let e = Expr.(select ((v "A" <% i 0) &&% (v "A" >% i 0)) (base "R")) in
        let out = run_view db e ~order:`Greedy ~join_impl:`Hash in
        Alcotest.(check int) "empty" 0 (Relation.cardinal out);
        Alcotest.(check (list string)) "schema kept" [ "A"; "B" ]
          (Schema.names (Relation.schema out)));
    quick "cross-source inequality applied while joining" (fun () ->
        let db = chain_db () in
        let e =
          Expr.(select (v "A" <% v "C") (product (base "R") (base "T")))
        in
        check_rel "same as tree eval" (Eval.eval db e)
          (run_view db e ~order:`Greedy ~join_impl:`Hash));
  ]

(* ------------------------------------------------------------------ *)
(* run_many                                                           *)
(* ------------------------------------------------------------------ *)

let run_many_tests =
  [
    quick "run_many equals run on every variant" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(
              project [ "A"; "C" ]
                (select (v "A" >% i 0) (join (base "R") (base "S"))))
        in
        let qualified s =
          Relation.reschema
            (Database.find db s.Spj.relation)
            (Spj.qualified_schema (lookup_in db) s)
        in
        let r_src, s_src =
          match spj.Spj.sources with
          | [ a; b ] -> (a, b)
          | _ -> Alcotest.fail "expected two sources"
        in
        let tiny =
          Relation.reschema
            (rel [ "A"; "B" ] [ [ 9; 10 ] ])
            (Spj.qualified_schema (lookup_in db) r_src)
        in
        let variants =
          [
            [ (r_src.Spj.alias, qualified r_src); (s_src.Spj.alias, qualified s_src) ];
            [ (r_src.Spj.alias, tiny); (s_src.Spj.alias, qualified s_src) ];
            (* shared prefix with variant 2 *)
            [ (r_src.Spj.alias, tiny); (s_src.Spj.alias, qualified s_src) ];
          ]
        in
        let many =
          Planner.run_many ~variants ~condition_dnf:spj.Spj.condition_dnf
            ~projection:spj.Spj.projection ()
        in
        List.iter2
          (fun sources result ->
            check_rel "variant agrees"
              (Planner.run ~sources ~condition_dnf:spj.Spj.condition_dnf
                 ~projection:spj.Spj.projection ())
              result)
          variants many);
    quick "run_many with empty variant operand" (fun () ->
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) Expr.(join (base "R") (base "S")) in
        let qualified s =
          Relation.reschema
            (Database.find db s.Spj.relation)
            (Spj.qualified_schema (lookup_in db) s)
        in
        let r_src, s_src =
          match spj.Spj.sources with
          | [ a; b ] -> (a, b)
          | _ -> Alcotest.fail "expected two sources"
        in
        let empty =
          Relation.create (Spj.qualified_schema (lookup_in db) r_src)
        in
        let variants =
          [ [ (r_src.Spj.alias, empty); (s_src.Spj.alias, qualified s_src) ] ]
        in
        let many =
          Planner.run_many ~variants ~condition_dnf:spj.Spj.condition_dnf
            ~projection:spj.Spj.projection ()
        in
        Alcotest.(check int) "empty result" 0
          (Relation.cardinal (List.hd many)));
  ]

(* ------------------------------------------------------------------ *)
(* Tableau minimization                                               *)
(* ------------------------------------------------------------------ *)

let tableau_tests =
  [
    quick "duplicate self-join folds away" (fun () ->
        (* S |x| S on the full schema: the second occurrence is redundant. *)
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) Expr.(join (base "S") (base "S")) in
        Alcotest.(check int) "two sources before" 2
          (List.length spj.Spj.sources);
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "one source after" 1
          (List.length minimized.Spj.sources);
        Alcotest.(check int) "folded count" 1 (Tableau.folded_sources spj);
        (* Visible tuples are preserved. *)
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "non-redundant join is untouched" (fun () ->
        let db = chain_db () in
        let spj = Spj.compile (lookup_in db) Expr.(join (base "R") (base "S")) in
        Alcotest.(check int) "still two" 2
          (List.length (Tableau.minimize spj).Spj.sources));
    quick "projected-away semijoin duplicate still folds" (fun () ->
        (* R |x| pi_B(R): the second occurrence is implied by the first,
           so folding is sound even though A2 is projected away. *)
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(join (base "R") (project [ "B" ] (base "R")))
        in
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "one source" 1 (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "partially-equated self-join with extra condition is kept" (fun () ->
        (* R |x| pi_B(sigma_{A>2}(R)): the second occurrence constrains A
           beyond the first, so it must not fold. *)
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(join (base "R") (project [ "B" ] (select (v "A" >% i 2) (base "R"))))
        in
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "still two" 2 (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "fold rewrites projection and condition" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(select (v "C" >% i 150) (join (base "S") (base "S")))
        in
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "one source" 1 (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "multi-disjunct views are left alone" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(
              select ((v "B" =% i 10) ||% (v "C" =% i 200))
                (join (base "S") (base "S")))
        in
        Alcotest.(check int) "unchanged" 2
          (List.length (Tableau.minimize spj).Spj.sources));
    quick "triple duplicate folds to one" (fun () ->
        let db = chain_db () in
        let spj =
          Spj.compile (lookup_in db)
            Expr.(join (join (base "S") (base "S")) (base "S"))
        in
        Alcotest.(check int) "one source" 1
          (List.length (Tableau.minimize spj).Spj.sources));
    quick "homomorphism folds a branching self-join" (fun () ->
        (* exists x y z u v. R(x,y) & R(x,z) & S(y,u) & S(z,v) is
           equivalent to exists x y u. R(x,y) & S(y,u) via theta(z)=y,
           theta(v)=u — a fold the plain duplicate test cannot see
           because z and y are different classes. *)
        let db = chain_db () in
        let r2 = Expr.(rename [ ("A", "A2"); ("B", "B2") ] (base "R")) in
        let s1 = Expr.(rename [ ("B", "SB1"); ("C", "C1") ] (base "S")) in
        let s2 = Expr.(rename [ ("B", "SB2"); ("C", "C2") ] (base "S")) in
        let branching =
          Expr.(
            project []
              (select
                 ((v "A" =% v "A2") &&% (v "B" =% v "SB1")
                 &&% (v "B2" =% v "SB2"))
                 (product (product (product (base "R") r2) s1) s2)))
        in
        let spj = Spj.compile (lookup_in db) branching in
        Alcotest.(check int) "four sources before" 4
          (List.length spj.Spj.sources);
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "two sources after" 2
          (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "distinguished endpoints block the path fold" (fun () ->
        (* ans(A, B2) :- R(A,y), R(y,B2): both end classes are projected,
           so no proper homomorphism exists. *)
        let db = chain_db () in
        let path2 =
          Expr.(
            project [ "A"; "B2" ]
              (select
                 (v "B" =% v "A2")
                 (product (base "R") (rename [ ("A", "A2"); ("B", "B2") ] (base "R")))))
        in
        let spj = Spj.compile (lookup_in db) path2 in
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "still two" 2 (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
    quick "a path query is already minimal (it is a core)" (fun () ->
        (* exists x y z. R(x,y) & R(y,z) does NOT fold onto one edge:
           R = {(1,2)} satisfies the one-edge query but not the path. *)
        let db = chain_db () in
        let path2 =
          Expr.(
            project []
              (select
                 (v "B" =% v "A2")
                 (product (base "R") (rename [ ("A", "A2"); ("B", "B2") ] (base "R")))))
        in
        let spj = Spj.compile (lookup_in db) path2 in
        let minimized = Tableau.minimize spj in
        Alcotest.(check int) "still two" 2 (List.length minimized.Spj.sources);
        Alcotest.check relation_set_testable "same visible tuples"
          (Spj.eval (lookup_in db) db spj)
          (Spj.eval (lookup_in db) db minimized));
  ]

(* ------------------------------------------------------------------ *)
(* Rename                                                             *)
(* ------------------------------------------------------------------ *)

let rename_tests =
  [
    quick "rename changes the output schema" (fun () ->
        let db = chain_db () in
        let e = Expr.(rename [ ("A", "X") ] (base "R")) in
        Alcotest.(check (list string)) "schema" [ "X"; "B" ]
          (Schema.names (Expr.schema_of (lookup_in db) e)));
    quick "rename enables self-products" (fun () ->
        let db = chain_db () in
        let e =
          Expr.(
            select (v "B" =% v "A2")
              (product (base "R") (rename [ ("A", "A2"); ("B", "B2") ] (base "R"))))
        in
        let spj = Spj.compile (lookup_in db) e in
        check_rel "tree eval agrees" (Eval.eval db e)
          (Spj.eval (lookup_in db) db spj));
    quick "rename collision rejected" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Spj.compile (lookup_in db)
                  Expr.(rename [ ("A", "B") ] (base "R")));
             false
           with Spj.Compile_error _ -> true));
    quick "rename in a maintained view" (fun () ->
        let db = chain_db () in
        let view =
          Ivm.View.define ~name:"self" ~db
            Expr.(
              project [ "A"; "B2" ]
                (select (v "B" =% v "A2")
                   (product (base "R")
                      (rename [ ("A", "A2"); ("B", "B2") ] (base "R")))))
        in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 10; 1 ]) ]);
        Alcotest.(check bool) "consistent" true (Ivm.View.consistent view db));
  ]

(* ------------------------------------------------------------------ *)
(* Key preservation (Section 5.2 alternative 2)                        *)
(* ------------------------------------------------------------------ *)

let keys_tests =
  let analyse db keys expr =
    Query.Keys.projection_preserves_keys ~keys
      (Spj.compile (lookup_in db) expr)
  in
  [
    quick "identity view preserves the key" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "preserved" true
          (analyse db [ ("R", [ "A" ]) ] (Expr.base "R")));
    quick "projecting the key away loses it" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "lost" false
          (analyse db [ ("R", [ "A" ]) ] Expr.(project [ "B" ] (base "R"))));
    quick "join view preserving both keys" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "preserved" true
          (analyse db
             [ ("R", [ "A" ]); ("S", [ "B" ]) ]
             Expr.(project [ "A"; "B" ] (join (base "R") (base "S")))));
    quick "key determined through an equality chain" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "preserved" true
          (analyse db
             [ ("R", [ "A"; "B" ]); ("S", [ "B" ]) ]
             Expr.(project [ "A"; "B" ] (join (base "R") (base "S")))));
    quick "key pinned by a constant counts as determined" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "preserved" true
          (analyse db
             [ ("R", [ "A" ]); ("S", [ "B" ]) ]
             Expr.(
               project [ "A" ]
                 (select (v "B" =% i 10) (join (base "R") (base "S"))))));
    quick "missing key declaration rejects" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "rejected" false
          (analyse db [ ("R", [ "A" ]) ] Expr.(join (base "R") (base "S"))));
    quick "multi-attribute keys" (fun () ->
        let db = chain_db () in
        Alcotest.(check bool) "preserved" true
          (analyse db [ ("R", [ "A"; "B" ]) ] (Expr.base "R"));
        Alcotest.(check bool) "half a key is not enough" false
          (analyse db [ ("R", [ "A"; "B" ]) ] Expr.(project [ "A" ] (base "R"))));
    quick "duplicate-free views really have unit counters" (fun () ->
        (* Soundness: maintain a key-preserving view through transactions
           that respect the declared keys; every counter must stay 1. *)
        let rng = Workload.Rng.make 37 in
        let db =
          db_of
            [
              (* A is genuinely unique in R; B is genuinely unique in S. *)
              ( "R",
                rel [ "A"; "B" ]
                  (List.init 50 (fun a -> [ a; a mod 10 ])) );
              ( "S",
                rel [ "B"; "C" ]
                  (List.init 10 (fun b -> [ b; 100 + b ])) );
            ]
        in
        let view =
          Ivm.View.define ~keys:[ ("R", [ "A" ]); ("S", [ "B" ]) ] ~name:"kp"
            ~db
            Expr.(project [ "A"; "B" ] (join (base "R") (base "S")))
        in
        Alcotest.(check bool) "flagged" true (Ivm.View.duplicate_free view);
        let next_a = ref 50 in
        for _ = 1 to 20 do
          (* Delete a random R row and insert a fresh one with a new
             unique A, keeping the key valid. *)
          let victims = Workload.Generate.pick rng (Database.find db "R") 1 in
          let fresh =
            Tuple.of_ints [ !next_a; Workload.Rng.int rng 10 ]
          in
          incr next_a;
          let txn =
            List.map (fun t -> Transaction.delete "R" t) victims
            @ [ Transaction.insert "R" fresh ]
          in
          ignore (Ivm.Maintenance.process ~views:[ view ] ~db txn);
          Relation.iter
            (fun _ c -> Alcotest.(check int) "unit counter" 1 c)
            (Ivm.View.contents view)
        done);
    quick "non-key-preserving view is not flagged" (fun () ->
        let db = chain_db () in
        let view =
          Ivm.View.define ~keys:[ ("R", [ "A" ]) ] ~name:"np" ~db
            Expr.(project [ "B" ] (base "R"))
        in
        Alcotest.(check bool) "not flagged" false
          (Ivm.View.duplicate_free view));
  ]

(* ------------------------------------------------------------------ *)
(* Hypergraph / Yannakakis                                            *)
(* ------------------------------------------------------------------ *)

let hypergraph_tests =
  let eval_both db expr =
    let lookup = lookup_in db in
    let spj = Spj.compile lookup expr in
    let sources =
      List.map
        (fun (s : Spj.source) ->
          ( s.Spj.alias,
            Relation.reschema
              (Database.find db s.Spj.relation)
              (Spj.qualified_schema lookup s) ))
        spj.Spj.sources
    in
    let planner =
      Planner.run ~sources ~condition_dnf:spj.Spj.condition_dnf
        ~projection:spj.Spj.projection ()
    in
    let yannakakis = Query.Hypergraph.eval ~lookup ~sources spj in
    (planner, yannakakis)
  in
  [
    quick "a chain is acyclic" (fun () ->
        let db = chain_db () in
        let lookup = lookup_in db in
        let spj =
          Spj.compile lookup Expr.(join_all [ base "R"; base "S"; base "T" ])
        in
        Alcotest.(check bool) "acyclic" true
          (Query.Hypergraph.acyclic ~lookup spj));
    quick "a triangle is cyclic" (fun () ->
        (* R(A,B) |x| S(B,C) |x| T2(C,A): the three join classes form a
           cycle. *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 1 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 1; 1 ] ]);
              ("T2", rel [ "C"; "A" ] [ [ 1; 1 ] ]);
            ]
        in
        let lookup = lookup_in db in
        let spj =
          Spj.compile lookup Expr.(join_all [ base "R"; base "S"; base "T2" ])
        in
        Alcotest.(check bool) "cyclic" false
          (Query.Hypergraph.acyclic ~lookup spj));
    quick "a star is acyclic" (fun () ->
        let db =
          db_of
            [
              ("Hub", rel [ "A"; "B"; "C" ] [ [ 1; 2; 3 ] ]);
              ("X", rel [ "A"; "P" ] [ [ 1; 0 ] ]);
              ("Y", rel [ "B"; "Q" ] [ [ 2; 0 ] ]);
              ("Z", rel [ "C"; "W" ] [ [ 3; 0 ] ]);
            ]
        in
        let lookup = lookup_in db in
        let spj =
          Spj.compile lookup
            Expr.(join_all [ base "Hub"; base "X"; base "Y"; base "Z" ])
        in
        Alcotest.(check bool) "acyclic" true
          (Query.Hypergraph.acyclic ~lookup spj));
    quick "multi-disjunct conditions have no tree" (fun () ->
        let db = chain_db () in
        let lookup = lookup_in db in
        let spj =
          Spj.compile lookup
            Expr.(
              select ((v "A" =% i 1) ||% (v "C" =% i 100))
                (join (base "R") (base "S")))
        in
        Alcotest.(check bool) "no tree" true
          (Query.Hypergraph.join_tree ~lookup spj = None));
    quick "yannakakis equals the planner on a chain" (fun () ->
        let db = chain_db () in
        let planner, yannakakis =
          eval_both db
            Expr.(
              project [ "A"; "D" ]
                (select (v "A" >% i 0)
                   (join_all [ base "R"; base "S"; base "T" ])))
        in
        check_rel "equal" planner yannakakis);
    quick "yannakakis falls back on cyclic queries" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 2; 3 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 2; 5 ]; [ 3; 5 ] ]);
              ("T2", rel [ "C"; "A" ] [ [ 5; 1 ] ]);
            ]
        in
        let planner, yannakakis =
          eval_both db Expr.(join_all [ base "R"; base "S"; base "T2" ])
        in
        check_rel "equal" planner yannakakis);
    quick "semijoin reduction prunes dangling tuples" (fun () ->
        (* Dangling R tuples (B = 99) must not inflate intermediates;
           result equality is the observable check. *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 99 ]; [ 3; 10 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 7 ] ]);
              ("T", rel [ "C"; "D" ] [ [ 7; 0 ] ]);
            ]
        in
        let planner, yannakakis =
          eval_both db Expr.(join_all [ base "R"; base "S"; base "T" ])
        in
        check_rel "equal" planner yannakakis;
        Alcotest.(check int) "two results" 2 (Relation.cardinal yannakakis));
    quick "yannakakis equals the planner on random inputs" (fun () ->
        let rng = Workload.Rng.make 19 in
        for _ = 1 to 30 do
          let scenario, names =
            Workload.Scenario.chain ~rng ~p:3
              ~size:(20 + Workload.Rng.int rng 40)
              ~key_range:6
          in
          let db = scenario.Workload.Scenario.db in
          let planner, yannakakis =
            eval_both db
              Expr.(
                project [ "K0"; "K3" ]
                  (select (v "K0" <=% v "K3" +% 3)
                     (join_all (List.map base names))))
          in
          check_rel "equal" planner yannakakis
        done);
    quick "counted semantics preserved through semijoins" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 7 ] ]);
            ]
        in
        let planner, yannakakis =
          eval_both db Expr.(project [ "B" ] (join (base "R") (base "S")))
        in
        (* B = 10 must carry counter 2 in both. *)
        check_rel "equal" planner yannakakis;
        Alcotest.(check int) "counter" 2
          (Relation.count yannakakis (Tuple.of_ints [ 10 ])));
  ]

let () =
  Alcotest.run "query"
    [
      ("expr", expr_tests);
      ("spj", spj_tests);
      ("planner", planner_tests);
      ("run_many", run_many_tests);
      ("tableau", tableau_tests);
      ("rename", rename_tests);
      ("keys", keys_tests);
      ("hypergraph", hypergraph_tests);
    ]
