(* Shared builders for the test suites. *)

open Relalg

let int_schema names =
  Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

(* [rel ["A"; "B"] [[1; 2]; [3; 4]]] builds a unit-count relation. *)
let rel names rows =
  Relation.of_tuples (int_schema names) (List.map Tuple.of_ints rows)

let counted_rel names rows =
  Relation.of_counted (int_schema names)
    (List.map (fun (row, c) -> (Tuple.of_ints row, c)) rows)

let db_of assoc =
  let db = Database.create () in
  List.iter (fun (name, relation) -> Database.register db name relation) assoc;
  db

let relation_testable = Alcotest.testable Relation.pp Relation.equal
let relation_set_testable = Alcotest.testable Relation.pp Relation.set_equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal

let schema_testable = Alcotest.testable Schema.pp Schema.equal

let value_testable = Alcotest.testable Value.pp Value.equal

let verdict_testable =
  Alcotest.testable Condition.Satisfiability.pp_verdict ( = )

let check_rel msg expected actual =
  Alcotest.check relation_testable msg expected actual

(* Sorted (tuple, count) view of a relation, for order-insensitive
   assertions with readable diffs. *)
let contents r =
  List.map
    (fun (t, c) -> (Array.to_list t, c))
    (Relation.sorted_elements r)

let ints_contents r =
  List.map (fun (vs, c) -> (List.map Value.int vs, c)) (contents r)

(* Paper Example 4.1 database: r(A,B) and s(C,D). *)
let example_4_1_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 2 ]; [ 5; 10 ] ]);
      ("S", rel [ "C"; "D" ] [ [ 2; 10 ]; [ 10; 20 ]; [ 12; 15 ] ]);
    ]

(* The view of Example 4.1: pi_{A,D}(sigma_{A<10 & C>5 & B=C}(R x S)). *)
let example_4_1_expr () =
  let open Condition.Formula.Dsl in
  let cond = (v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C") in
  Query.Expr.(project [ "A"; "D" ] (select cond (product (base "R") (base "S"))))

let quick name f = Alcotest.test_case name `Quick f
