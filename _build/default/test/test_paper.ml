(* Exact reproductions of every table and worked example in the paper
   (artifacts P1-P4 of DESIGN.md). *)

open Relalg
open Helpers
module F = Condition.Formula
module Expr = Query.Expr
module Tag = Ivm.Tag
module Truth_table = Ivm.Truth_table
module Delta = Ivm.Delta
module Delta_eval = Ivm.Delta_eval
module Irrelevance = Ivm.Irrelevance
module View = Ivm.View
open F.Dsl

(* ------------------------------------------------------------------ *)
(* P1 — Example 4.1: relevant and irrelevant insertions               *)
(* ------------------------------------------------------------------ *)

let example_4_1_tests =
  [
    quick "initial view is {(5, 20)}" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        Alcotest.(check (list (pair (list int) int)))
          "contents"
          [ ([ 5; 20 ], 1) ]
          (ints_contents (View.contents view)));
    quick "inserting (9,10) into r is relevant" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 9; 10 ])));
    quick "inserting (11,10) into r is provably irrelevant" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let screen = View.screen_for view ~alias:"R" in
        Alcotest.(check bool) "irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 11; 10 ])));
    quick "the same test applies to deletions" (fun () ->
        (* "The same argument applies for deletions" (Section 4). *)
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let screen = View.screen_for view ~alias:"R" in
        let delta =
          Irrelevance.screen_delta screen
            (Delta.of_lists
               (View.qualified_schema view ~alias:"R")
               ([], [ Tuple.of_ints [ 11; 10 ]; Tuple.of_ints [ 5; 10 ] ]))
        in
        Alcotest.(check int) "only (5,10) kept" 1
          (Relation.cardinal delta.Delta.deletes));
    quick "updates to s are screened on C > 5" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let screen = View.screen_for view ~alias:"S" in
        Alcotest.(check bool) "(6,1) relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 6; 1 ]));
        Alcotest.(check bool) "(5,1) irrelevant" false
          (Irrelevance.relevant screen (Tuple.of_ints [ 5; 1 ]));
        (* C = 5 fails C > 5; C = 12 passes it (whether it joins depends on
           the database state, so it must be kept). *)
        Alcotest.(check bool) "(12,99) relevant" true
          (Irrelevance.relevant screen (Tuple.of_ints [ 12; 99 ])));
    quick "naive decision agrees with Algorithm 4.1" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let screen = View.screen_for view ~alias:"R" in
        List.iter
          (fun row ->
            let t = Tuple.of_ints row in
            Alcotest.(check bool)
              (Printf.sprintf "agree on (%d,%d)" (List.nth row 0)
                 (List.nth row 1))
              (Irrelevance.relevant_naive screen t)
              (Irrelevance.relevant screen t))
          [ [ 9; 10 ]; [ 11; 10 ]; [ 0; 0 ]; [ 9; 5 ]; [ 9; 6 ]; [ 10; 6 ] ]);
    quick "inserting (9,10) updates the view with (9,20)" (fun () ->
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "contents"
          [ ([ 5; 20 ], 1); ([ 9; 20 ], 1) ]
          (ints_contents (View.contents view)));
    quick "theorem 4.2: jointly irrelevant tuple pair" (fun () ->
        (* Insert r-tuple (1,7) and s-tuple (8,50): individually both pass
           their local conditions, but together 7 = C and C = 8 clash. *)
        let db = example_4_1_db () in
        let view = View.define ~name:"u" ~db (example_4_1_expr ()) in
        let lookup name = Relation.schema (Database.find db name) in
        let spj = View.spj view in
        Alcotest.(check bool) "r tuple alone relevant" true
          (Irrelevance.combined_relevant ~lookup ~spj
             [ ("R", Tuple.of_ints [ 1; 7 ]) ]);
        Alcotest.(check bool) "s tuple alone relevant" true
          (Irrelevance.combined_relevant ~lookup ~spj
             [ ("S", Tuple.of_ints [ 8; 50 ]) ]);
        Alcotest.(check bool) "combination irrelevant" false
          (Irrelevance.combined_relevant ~lookup ~spj
             [ ("R", Tuple.of_ints [ 1; 7 ]); ("S", Tuple.of_ints [ 8; 50 ]) ]));
  ]

(* ------------------------------------------------------------------ *)
(* P2 — the binary truth table of Section 5.3                         *)
(* ------------------------------------------------------------------ *)

let truth_table_tests =
  [
    quick "p=3, all modified: 7 rows in table order" (fun () ->
        (* The paper's table for p = 3 lists 8 rows; row 1 (all old) is the
           current view and is skipped. *)
        let rows = Truth_table.rows ~modified:[| true; true; true |] in
        let names = [ "r1"; "r2"; "r3" ] in
        Alcotest.(check (list string))
          "rows"
          [
            "r1 |x| r2 |x| ur3";
            "r1 |x| ur2 |x| r3";
            "r1 |x| ur2 |x| ur3";
            "ur1 |x| r2 |x| r3";
            "ur1 |x| r2 |x| ur3";
            "ur1 |x| ur2 |x| r3";
            "ur1 |x| ur2 |x| ur3";
          ]
          (List.map (Truth_table.describe ~names) rows));
    quick "p=3, r1 and r2 modified: exactly rows 3, 5, 7" (fun () ->
        (* "discard all the rows for which B3 = 1, and row 1": the
           remaining rows are r1|x|ur2|x|r3, ur1|x|r2|x|r3, ur1|x|ur2|x|r3. *)
        let rows = Truth_table.rows ~modified:[| true; true; false |] in
        let names = [ "r1"; "r2"; "r3" ] in
        Alcotest.(check (list string))
          "rows"
          [ "r1 |x| ur2 |x| r3"; "ur1 |x| r2 |x| r3"; "ur1 |x| ur2 |x| r3" ]
          (List.map (Truth_table.describe ~names) rows));
    quick "row counts are 2^k - 1" (fun () ->
        Alcotest.(check int) "k=1" 1
          (Truth_table.row_count ~modified:[| false; true; false |]);
        Alcotest.(check int) "k=2" 3
          (Truth_table.row_count ~modified:[| true; false; true |]);
        Alcotest.(check int) "k=3" 7
          (Truth_table.row_count ~modified:[| true; true; true |]);
        Alcotest.(check int) "k=0" 0
          (Truth_table.row_count ~modified:[| false; false |]));
    quick "row_count matches rows length" (fun () ->
        List.iter
          (fun modified ->
            Alcotest.(check int) "consistent"
              (Truth_table.row_count ~modified)
              (List.length (Truth_table.rows ~modified)))
          [
            [| true |];
            [| false |];
            [| true; true |];
            [| true; false; true; true |];
          ]);
    quick "unmodified sources never draw from the update set" (fun () ->
        let rows = Truth_table.rows ~modified:[| false; true; false |] in
        List.iter
          (fun row ->
            Alcotest.(check bool) "r1 old" true (row.(0) = Truth_table.Old_part);
            Alcotest.(check bool) "r3 old" true (row.(2) = Truth_table.Old_part))
          rows);
  ]

(* ------------------------------------------------------------------ *)
(* P3 — the tag propagation tables                                    *)
(* ------------------------------------------------------------------ *)

let tag_tests =
  [
    quick "the nine-row join table matches the paper" (fun () ->
        (* p. 69: insert/insert -> insert; insert/delete -> ignore;
           insert/old -> insert; delete/insert -> ignore;
           delete/delete -> delete; delete/old -> delete;
           old/insert -> insert; old/delete -> delete; old/old -> old. *)
        let expected =
          [
            ((Tag.Insert, Tag.Insert), Some Tag.Insert);
            ((Tag.Insert, Tag.Delete), None);
            ((Tag.Insert, Tag.Old), Some Tag.Insert);
            ((Tag.Delete, Tag.Insert), None);
            ((Tag.Delete, Tag.Delete), Some Tag.Delete);
            ((Tag.Delete, Tag.Old), Some Tag.Delete);
            ((Tag.Old, Tag.Insert), Some Tag.Insert);
            ((Tag.Old, Tag.Delete), Some Tag.Delete);
            ((Tag.Old, Tag.Old), Some Tag.Old);
          ]
        in
        Alcotest.(check bool) "table" true (Tag.join_table = expected));
    quick "select and project preserve tags" (fun () ->
        List.iter
          (fun tag ->
            Alcotest.(check bool) "select" true (Tag.equal (Tag.select tag) tag);
            Alcotest.(check bool) "project" true
              (Tag.equal (Tag.project tag) tag))
          [ Tag.Insert; Tag.Delete; Tag.Old ]);
    quick "join is commutative" (fun () ->
        List.iter
          (fun (a, b) ->
            Alcotest.(check bool) "commutes" true (Tag.join a b = Tag.join b a))
          [
            (Tag.Insert, Tag.Delete);
            (Tag.Insert, Tag.Old);
            (Tag.Delete, Tag.Old);
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* P4 — Examples 5.1 through 5.5                                      *)
(* ------------------------------------------------------------------ *)

(* Example 5.1 uses r = {(1,10), (2,10), (3,20)} and V = pi_B(R). *)
let example_5_1_db () =
  db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ]) ]

let example_5_1_tests =
  [
    quick "initial counters are 2 and 1" (fun () ->
        let db = example_5_1_db () in
        let view =
          View.define ~name:"v" ~db Expr.(project [ "B" ] (base "R"))
        in
        Alcotest.(check (list (pair (list int) int)))
          "counters"
          [ ([ 10 ], 2); ([ 20 ], 1) ]
          (ints_contents (View.contents view)));
    quick "deleting (3,20) removes 20 from the view" (fun () ->
        let db = example_5_1_db () in
        let view =
          View.define ~name:"v" ~db Expr.(project [ "B" ] (base "R"))
        in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.delete "R" (Tuple.of_ints [ 3; 20 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "view" [ ([ 10 ], 2) ]
          (ints_contents (View.contents view)));
    quick "deleting (1,10) only decrements the counter" (fun () ->
        (* This is the case the counter exists for: without it the view
           would wrongly lose B = 10. *)
        let db = example_5_1_db () in
        let view =
          View.define ~name:"v" ~db Expr.(project [ "B" ] (base "R"))
        in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "view"
          [ ([ 10 ], 1); ([ 20 ], 1) ]
          (ints_contents (View.contents view)));
    quick "re-inserting restores the counter" (fun () ->
        let db = example_5_1_db () in
        let view =
          View.define ~name:"v" ~db Expr.(project [ "B" ] (base "R"))
        in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 1; 10 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "view"
          [ ([ 10 ], 2); ([ 20 ], 1) ]
          (ints_contents (View.contents view)));
  ]

(* Examples 5.2-5.4 use R(A,B) |x| S(B,C). *)
let join_db () =
  db_of
    [
      ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ]);
      ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 6 ]; [ 30; 7 ] ]);
    ]

let join_view db = View.define ~name:"v" ~db Expr.(join (base "R") (base "S"))

let example_5_2_to_5_4_tests =
  [
    quick "example 5.2: insertions contribute i_r |x| s" (fun () ->
        let db = join_db () in
        let view = join_view db in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 3; 10 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "view"
          [ ([ 1; 10; 5 ], 1); ([ 2; 20; 6 ], 1); ([ 3; 10; 5 ], 1) ]
          (ints_contents (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "example 5.3: deletions remove d_r |x| s" (fun () ->
        let db = join_db () in
        let view = join_view db in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "view"
          [ ([ 2; 20; 6 ], 1) ]
          (ints_contents (View.contents view)));
    quick "example 5.4: all six tag cases in one transaction" (fun () ->
        (* Build a transaction exercising every row of the tag table:
           - case 1 (i_r |x| i_s): insert (4,40) and (40,9)
           - case 2 (i_r |x| d_s): insert (5,30) while deleting (30,7)
           - case 3 (i_r |x| s):   insert (6,20) joining old (20,6)
           - case 4 (d_r |x| d_s): delete (1,10) and (10,5)
           - case 5 (d_r |x| s):   delete (2,20) joining old (20,6)
           - case 6 (r |x| s):     (nothing else touches the join) *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 9; 20 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 6 ]; [ 30; 7 ] ]);
            ]
        in
        let view = join_view db in
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [
               Transaction.insert "R" (Tuple.of_ints [ 4; 40 ]);
               Transaction.insert "S" (Tuple.of_ints [ 40; 9 ]);
               Transaction.insert "R" (Tuple.of_ints [ 5; 30 ]);
               Transaction.delete "S" (Tuple.of_ints [ 30; 7 ]);
               Transaction.insert "R" (Tuple.of_ints [ 6; 20 ]);
               Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]);
               Transaction.delete "S" (Tuple.of_ints [ 10; 5 ]);
               Transaction.delete "R" (Tuple.of_ints [ 2; 20 ]);
             ]);
        (* case 1 adds (4,40,9); case 2 adds nothing; case 3 adds (6,20,6);
           cases 4-5 remove (1,10,5) and (2,20,6); case 6 keeps (9,20,6). *)
        Alcotest.(check (list (pair (list int) int)))
          "view"
          [ ([ 4; 40; 9 ], 1); ([ 6; 20; 6 ], 1); ([ 9; 20; 6 ], 1) ]
          (ints_contents (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "example 5.4 via the literal tagged evaluator" (fun () ->
        (* Same scenario, evaluated by the reference implementation with
           per-tuple tags; its delta must agree and its old-tagged rows
           must be exactly the untouched part of the view. *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 9; 20 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 6 ]; [ 30; 7 ] ]);
            ]
        in
        let view = join_view db in
        let spj = View.spj view in
        let lookup name = Relation.schema (Database.find db name) in
        let r_delta =
          Delta.of_lists
            (View.qualified_schema view ~alias:"R")
            ( [ Tuple.of_ints [ 4; 40 ]; Tuple.of_ints [ 5; 30 ]; Tuple.of_ints [ 6; 20 ] ],
              [ Tuple.of_ints [ 1; 10 ]; Tuple.of_ints [ 2; 20 ] ] )
        in
        let s_delta =
          Delta.of_lists
            (View.qualified_schema view ~alias:"S")
            ( [ Tuple.of_ints [ 40; 9 ] ],
              [ Tuple.of_ints [ 30; 7 ]; Tuple.of_ints [ 10; 5 ] ] )
        in
        (* Old parts: pre-state minus deletions. *)
        let old_r =
          Relation.reschema
            (rel [ "A"; "B" ] [ [ 9; 20 ] ])
            (View.qualified_schema view ~alias:"R")
        in
        let old_s =
          Relation.reschema
            (rel [ "B"; "C" ] [ [ 20; 6 ] ])
            (View.qualified_schema view ~alias:"S")
        in
        ignore lookup;
        let tagged_result =
          Ivm.Tagged_eval.eval_spj ~spj
            ~inputs:
              [
                ("R", Ivm.Tagged_eval.of_parts ~old_part:old_r ~delta:r_delta);
                ("S", Ivm.Tagged_eval.of_parts ~old_part:old_s ~delta:s_delta);
              ]
        in
        let pair_result =
          Delta_eval.eval ~spj
            ~inputs:
              [
                { Delta_eval.alias = "R"; old_part = old_r; delta = Some r_delta };
                { Delta_eval.alias = "S"; old_part = old_s; delta = Some s_delta };
              ]
            ()
        in
        check_rel "inserts agree"
          tagged_result.Ivm.Tagged_eval.delta.Delta.inserts
          pair_result.Delta_eval.delta.Delta.inserts;
        check_rel "deletes agree"
          tagged_result.Ivm.Tagged_eval.delta.Delta.deletes
          pair_result.Delta_eval.delta.Delta.deletes;
        (* Case 6: the old part of the tagged result is the untouched
           (9,20,6) row. *)
        Alcotest.(check (list (pair (list int) int)))
          "unchanged part"
          [ ([ 9; 20; 6 ], 1) ]
          (ints_contents tagged_result.Ivm.Tagged_eval.unchanged));
    quick "example 5.5: SPJ view updated by pi(sigma(i_r |x| s))" (fun () ->
        (* V = pi_A(sigma_{C>10}(R |x| S)). *)
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 5 ]; [ 20; 15 ] ]);
            ]
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(
              project [ "A" ] (select (v "C" >% i 10) (join (base "R") (base "S"))))
        in
        Alcotest.(check (list (pair (list int) int)))
          "initial" [ ([ 2 ], 1) ]
          (ints_contents (View.contents view));
        ignore
          (Ivm.Maintenance.process ~views:[ view ] ~db
             [ Transaction.insert "R" (Tuple.of_ints [ 7; 20 ]) ]);
        Alcotest.(check (list (pair (list int) int)))
          "after insert"
          [ ([ 2 ], 1); ([ 7 ], 1) ]
          (ints_contents (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db));
  ]

let () =
  Alcotest.run "paper"
    [
      ("P1: example 4.1", example_4_1_tests);
      ("P2: truth table", truth_table_tests);
      ("P3: tag tables", tag_tests);
      ("P4a: example 5.1", example_5_1_tests);
      ("P4b: examples 5.2-5.5", example_5_2_to_5_4_tests);
    ]
