(* End-to-end flows: several views over one database, many transactions,
   mixed maintenance modes, full consistency checks along the way. *)

open Relalg
open Helpers
module F = Condition.Formula
module Expr = Query.Expr
module View = Ivm.View
module Manager = Ivm.Manager
module Maintenance = Ivm.Maintenance
module Rng = Workload.Rng
module Generate = Workload.Generate
module Scenario = Workload.Scenario
open F.Dsl

(* ------------------------------------------------------------------ *)
(* Order-monitoring scenario (the examples' schema)                   *)
(* ------------------------------------------------------------------ *)

let orders_tests =
  [
    quick "dashboard views stay consistent over a 50-transaction day"
      (fun () ->
        let rng = Rng.make 42 in
        let scenario = Scenario.orders ~rng ~customers:30 ~orders:200 in
        let db = scenario.Scenario.db in
        let mgr = Manager.create db in
        (* Big northern orders: select-join view with a string condition. *)
        ignore
          (Manager.define_view mgr ~name:"big_north"
             Expr.(
               project [ "oid"; "amount"; "region" ]
                 (select
                    ((v "amount" >% i 800) &&% (v "region" =% s "north"))
                    (join (base "orders") (base "customers")))));
        (* Per-customer presence: a project view needing counters. *)
        ignore
          (Manager.define_view mgr ~name:"active_customers"
             Expr.(project [ "cid" ] (base "orders")));
        (* High-priority order ids. *)
        ignore
          (Manager.define_view mgr ~name:"urgent"
             Expr.(select (v "priority" >=% i 4) (base "orders")));
        let order_columns = Scenario.columns_of scenario "orders" in
        for day = 1 to 50 do
          let txn =
            Generate.transaction rng db "orders" ~columns:order_columns
              ~inserts:(Rng.int rng 5) ~deletes:(Rng.int rng 5)
          in
          ignore (Manager.commit mgr txn);
          if day mod 10 = 0 then
            Alcotest.(check bool)
              (Printf.sprintf "consistent at day %d" day)
              true (Manager.all_consistent mgr)
        done);
    quick "screening statistics add up" (fun () ->
        let rng = Rng.make 7 in
        let scenario = Scenario.orders ~rng ~customers:20 ~orders:100 in
        let db = scenario.Scenario.db in
        let mgr = Manager.create db in
        ignore
          (Manager.define_view mgr ~name:"urgent"
             Expr.(select (v "priority" >=% i 4) (base "orders")));
        let order_columns = Scenario.columns_of scenario "orders" in
        let total_screened = ref 0 and total_kept = ref 0 in
        for _ = 1 to 20 do
          let txn =
            Generate.transaction rng db "orders" ~columns:order_columns
              ~inserts:3 ~deletes:2
          in
          let reports = Manager.commit mgr txn in
          List.iter
            (fun r ->
              total_screened := !total_screened + r.Maintenance.screened_out;
              total_kept := !total_kept + r.Maintenance.screened_kept)
            reports
        done;
        (* priority >= 4 keeps 2 of 6 priority values: both buckets must
           have been hit over 100 updates. *)
        Alcotest.(check bool) "some screened out" true (!total_screened > 0);
        Alcotest.(check bool) "some kept" true (!total_kept > 0);
        Alcotest.(check int) "all updates accounted" 100
          (!total_screened + !total_kept));
  ]

(* ------------------------------------------------------------------ *)
(* Multiway chain joins                                               *)
(* ------------------------------------------------------------------ *)

let chain_tests =
  [
    quick "3-way chain stays consistent under multi-relation transactions"
      (fun () ->
        let rng = Rng.make 11 in
        let scenario, names = Scenario.chain ~rng ~p:3 ~size:40 ~key_range:6 in
        let db = scenario.Scenario.db in
        let view =
          View.define ~name:"chain" ~db
            Expr.(join_all (List.map base names))
        in
        for _ = 1 to 25 do
          let specs =
            List.map
              (fun name ->
                ( name,
                  Scenario.columns_of scenario name,
                  Rng.int rng 3,
                  Rng.int rng 3 ))
              names
          in
          let txn = Generate.mixed_transaction rng db specs in
          ignore (Maintenance.process ~views:[ view ] ~db txn);
          Alcotest.(check bool) "consistent" true (View.consistent view db)
        done);
    quick "4-way chain with selective condition and row reuse" (fun () ->
        let rng = Rng.make 23 in
        let scenario, names = Scenario.chain ~rng ~p:4 ~size:25 ~key_range:5 in
        let db = scenario.Scenario.db in
        let view =
          View.define ~name:"chain4" ~db
            Expr.(
              project [ "K0"; "K4" ]
                (select (v "K0" <% v "K4" +% 3) (join_all (List.map base names))))
        in
        let options = { Maintenance.default_options with reuse = true } in
        for _ = 1 to 15 do
          let specs =
            List.map
              (fun name ->
                ( name,
                  Scenario.columns_of scenario name,
                  Rng.int rng 2,
                  Rng.int rng 2 ))
              names
          in
          let txn = Generate.mixed_transaction rng db specs in
          ignore (Maintenance.process ~options ~views:[ view ] ~db txn);
          Alcotest.(check bool) "consistent" true (View.consistent view db)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Deferred refresh (snapshot) flows                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_tests =
  [
    quick "periodic refresh converges to the immediate view" (fun () ->
        let rng = Rng.make 31 in
        let scenario = Scenario.pair ~rng ~size_r:60 ~size_s:60 ~key_range:10 in
        let db = scenario.Scenario.db in
        let mgr = Manager.create db in
        let expr = Expr.(join (base "R") (base "S")) in
        let imm = Manager.define_view mgr ~name:"imm" expr in
        let snap =
          Manager.define_view mgr ~name:"snap" ~mode:Manager.Deferred expr
        in
        for round = 1 to 30 do
          let txn =
            Generate.mixed_transaction rng db
              [
                ("R", Scenario.columns_of scenario "R", Rng.int rng 3, Rng.int rng 3);
                ("S", Scenario.columns_of scenario "S", Rng.int rng 3, Rng.int rng 3);
              ]
          in
          ignore (Manager.commit mgr txn);
          if round mod 5 = 0 then begin
            ignore (Manager.refresh mgr "snap");
            check_rel "snapshot caught up" (View.contents imm)
              (View.contents snap)
          end
        done);
    quick "refresh with deletions of tuples inserted since the snapshot"
      (fun () ->
        let db =
          db_of [ ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]) ]
        in
        let mgr = Manager.create db in
        let snap =
          Manager.define_view mgr ~name:"snap" ~mode:Manager.Deferred
            Expr.(project [ "B" ] (base "R"))
        in
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 2; 10 ]) ]);
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 3; 20 ]) ]);
        ignore
          (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 3; 20 ]) ]);
        ignore
          (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
        ignore (Manager.refresh mgr "snap");
        Alcotest.(check (list (pair (list int) int)))
          "refreshed"
          [ ([ 10 ], 1) ]
          (ints_contents (View.contents snap)));
  ]

(* ------------------------------------------------------------------ *)
(* Mixed-option soak                                                  *)
(* ------------------------------------------------------------------ *)

let soak_tests =
  [
    quick "every option combination survives a randomized soak" (fun () ->
        let combos =
          List.concat_map
            (fun screen ->
              List.concat_map
                (fun reuse ->
                  List.map
                    (fun order -> (screen, reuse, order))
                    [ `Greedy; `Declaration ])
                [ false; true ])
            [ false; true ]
        in
        List.iteri
          (fun idx (screen, reuse, order) ->
            let rng = Rng.make (100 + idx) in
            let scenario =
              Scenario.pair ~rng ~size_r:40 ~size_s:40 ~key_range:8
            in
            let db = scenario.Scenario.db in
            let view =
              View.define ~name:"v" ~db
                Expr.(
                  project [ "A"; "C" ]
                    (select (v "C" <% i 300) (join (base "R") (base "S"))))
            in
            let options =
              { Maintenance.default_options with screen; reuse; order }
            in
            for _ = 1 to 10 do
              let txn =
                Generate.mixed_transaction rng db
                  [
                    ("R", Scenario.columns_of scenario "R", Rng.int rng 3, Rng.int rng 3);
                    ("S", Scenario.columns_of scenario "S", Rng.int rng 3, Rng.int rng 3);
                  ]
              in
              ignore (Maintenance.process ~options ~views:[ view ] ~db txn)
            done;
            Alcotest.(check bool)
              (Printf.sprintf "combo %d consistent" idx)
              true (View.consistent view db))
          combos);
    quick "minimized duplicate-join view maintains correctly" (fun () ->
        let rng = Rng.make 55 in
        let scenario = Scenario.pair ~rng ~size_r:30 ~size_s:30 ~key_range:6 in
        let db = scenario.Scenario.db in
        (* S |x| S folds to S; maintenance then runs on the minimized
           definition. *)
        let view =
          View.define ~name:"dup" ~db Expr.(join (base "S") (base "S"))
        in
        Alcotest.(check int) "folded" 1
          (List.length (View.spj view).Query.Spj.sources);
        for _ = 1 to 10 do
          let txn =
            Generate.transaction rng db "S"
              ~columns:(Scenario.columns_of scenario "S") ~inserts:2 ~deletes:2
          in
          ignore (Maintenance.process ~views:[ view ] ~db txn)
        done;
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "empty view start grows and shrinks correctly" (fun () ->
        let db =
          db_of [ ("R", rel [ "A"; "B" ] []); ("S", rel [ "B"; "C" ] []) ]
        in
        let view = View.define ~name:"v" ~db Expr.(join (base "R") (base "S")) in
        Alcotest.(check int) "empty" 0 (Relation.cardinal (View.contents view));
        ignore
          (Maintenance.process ~views:[ view ] ~db
             [
               Transaction.insert "R" (Tuple.of_ints [ 1; 10 ]);
               Transaction.insert "S" (Tuple.of_ints [ 10; 5 ]);
             ]);
        Alcotest.(check int) "one row" 1 (Relation.cardinal (View.contents view));
        ignore
          (Maintenance.process ~views:[ view ] ~db
             [
               Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]);
               Transaction.delete "S" (Tuple.of_ints [ 10; 5 ]);
             ]);
        Alcotest.(check int) "empty again" 0
          (Relation.cardinal (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db));
  ]

(* ------------------------------------------------------------------ *)
(* Full-stack flows: parser + CSV + indexes + stats                    *)
(* ------------------------------------------------------------------ *)

let full_stack_tests =
  [
    quick "CSV-loaded database with a parsed view maintains correctly"
      (fun () ->
        let text_r = "A:int,B:int\n1,10\n2,20\n3,10\n" in
        let text_s = "B:int,C:int\n10,100\n20,200\n" in
        let db = db_of [] in
        Database.register db "R" (Csv.of_string text_r);
        Database.register db "S" (Csv.of_string text_s);
        let lookup name = Relation.schema (Database.find db name) in
        let view =
          View.define ~name:"q" ~db
            (Query.Parser.view ~lookup
               "SELECT A, C FROM R, S WHERE C <= 200 AND A > 1")
        in
        Alcotest.(check int) "initial rows" 2
          (Relation.cardinal (View.contents view));
        ignore
          (Maintenance.process ~views:[ view ] ~db
             [
               Transaction.insert "R" (Tuple.of_ints [ 9; 20 ]);
               Transaction.delete "S" (Tuple.of_ints [ 10; 100 ]);
             ]);
        Alcotest.(check bool) "consistent" true (View.consistent view db);
        (* Round-trip the mutated base through CSV and rebuild the view. *)
        let back = Csv.of_string (Csv.to_string (Database.find db "R")) in
        check_rel "base round-trips" (Database.find db "R") back);
    quick "manager statistics accumulate across commits" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        ignore (Manager.define_view mgr ~name:"u" (example_4_1_expr ()));
        ignore
          (Manager.commit mgr
             [
               Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]);
               Transaction.insert "R" (Tuple.of_ints [ 11; 10 ]);
             ]);
        ignore
          (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 9; 10 ]) ]);
        let stats = Manager.stats mgr "u" in
        Alcotest.(check int) "commits" 2 stats.Manager.commits;
        Alcotest.(check int) "screened out" 1 stats.Manager.screened_out;
        Alcotest.(check int) "inserted" 1 stats.Manager.tuples_inserted;
        Alcotest.(check int) "deleted" 1 stats.Manager.tuples_deleted;
        Alcotest.(check int) "no recomputations" 0 stats.Manager.recomputations);
    quick "recompute strategy counts in the statistics" (fun () ->
        let db = example_4_1_db () in
        let mgr = Manager.create db in
        ignore
          (Manager.define_view mgr ~name:"u"
             ~options:
               {
                 Maintenance.default_options with
                 strategy = Maintenance.Recompute;
               }
             (example_4_1_expr ()));
        ignore
          (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
        Alcotest.(check int) "recomputations" 1
          (Manager.stats mgr "u").Manager.recomputations);
    quick "indexes stay correct under deferred refresh" (fun () ->
        let rng = Rng.make 71 in
        let scenario = Scenario.pair ~rng ~size_r:500 ~size_s:500 ~key_range:50 in
        let db = scenario.Scenario.db in
        let mgr = Manager.create db in
        Manager.create_index mgr ~relation:"S" ~attrs:[ "B" ];
        Manager.create_index mgr ~relation:"R" ~attrs:[ "B" ];
        let view =
          Manager.define_view mgr ~name:"snap" ~mode:Manager.Deferred
            Expr.(join (base "R") (base "S"))
        in
        for round = 1 to 20 do
          let txn =
            Generate.mixed_transaction rng db
              [
                ("R", Scenario.columns_of scenario "R", Rng.int rng 4, Rng.int rng 4);
                ("S", Scenario.columns_of scenario "S", Rng.int rng 4, Rng.int rng 4);
              ]
          in
          ignore (Manager.commit mgr txn);
          if round mod 4 = 0 then begin
            ignore (Manager.refresh mgr "snap");
            Alcotest.(check bool) "consistent" true (View.consistent view db)
          end
        done);
    quick "churn on the same tuple across many transactions" (fun () ->
        let db =
          db_of
            [
              ("R", rel [ "A"; "B" ] [ [ 1; 10 ] ]);
              ("S", rel [ "B"; "C" ] [ [ 10; 5 ] ]);
            ]
        in
        let view = View.define ~name:"v" ~db Expr.(join (base "R") (base "S")) in
        let t = Tuple.of_ints [ 2; 10 ] in
        for _ = 1 to 10 do
          ignore
            (Maintenance.process ~views:[ view ] ~db [ Transaction.insert "R" t ]);
          ignore
            (Maintenance.process ~views:[ view ] ~db [ Transaction.delete "R" t ])
        done;
        Alcotest.(check int) "one row" 1 (Relation.cardinal (View.contents view));
        Alcotest.(check bool) "consistent" true (View.consistent view db));
    quick "adaptive + screening + reuse all at once over a long run"
      (fun () ->
        let rng = Rng.make 73 in
        let scenario = Scenario.pair ~rng ~size_r:300 ~size_s:300 ~key_range:40 in
        let db = scenario.Scenario.db in
        let options =
          {
            Maintenance.default_options with
            strategy = Maintenance.Adaptive;
            reuse = true;
          }
        in
        let view =
          View.define ~name:"v" ~db
            Expr.(
              project [ "A"; "C" ]
                (select (v "C" <% i 2500) (join (base "R") (base "S"))))
        in
        for _ = 1 to 30 do
          let txn =
            Generate.mixed_transaction rng db
              [
                ("R", Scenario.columns_of scenario "R", Rng.int rng 6, Rng.int rng 6);
                ("S", Scenario.columns_of scenario "S", Rng.int rng 6, Rng.int rng 6);
              ]
          in
          ignore (Maintenance.process ~options ~views:[ view ] ~db txn)
        done;
        Alcotest.(check bool) "consistent" true (View.consistent view db));
  ]

let () =
  Alcotest.run "integration"
    [
      ("orders", orders_tests);
      ("chain", chain_tests);
      ("snapshot", snapshot_tests);
      ("soak", soak_tests);
      ("full_stack", full_stack_tests);
    ]
