open Relalg
open Helpers
module F = Condition.Formula
module Norm = Condition.Norm
module Graph = Condition.Constraint_graph
module Sat = Condition.Satisfiability
module Sub = Condition.Substitute
module Eq = Condition.Eq_solver
open F.Dsl

let lookup_of assoc v =
  match List.assoc_opt v assoc with
  | Some x -> x
  | None -> raise Not_found

let int_lookup assoc v = Value.Int (lookup_of assoc v)

let check_verdict msg expected actual =
  Alcotest.check verdict_testable msg expected actual

(* ------------------------------------------------------------------ *)
(* Formula construction and evaluation                                *)
(* ------------------------------------------------------------------ *)

let formula_tests =
  [
    quick "eval atoms for every comparator" (fun () ->
        let l = int_lookup [ ("x", 5); ("y", 7) ] in
        let cases =
          [
            (v "x" =% i 5, true);
            (v "x" =% i 6, false);
            (v "x" <>% i 6, true);
            (v "x" <% v "y", true);
            (v "x" <=% i 5, true);
            (v "x" >% i 4, true);
            (v "x" >=% i 6, false);
          ]
        in
        List.iteri
          (fun idx (f, expected) ->
            Alcotest.(check bool)
              (Printf.sprintf "case %d" idx)
              expected (F.eval l f))
          cases);
    quick "shift arithmetic x < y + c" (fun () ->
        let l = int_lookup [ ("x", 9); ("y", 7) ] in
        Alcotest.(check bool) "9 < 7+3" true (F.eval l (v "x" <% v "y" +% 3));
        Alcotest.(check bool) "9 < 7+2 is false" false
          (F.eval l (v "x" <% v "y" +% 2)));
    quick "shift on the left side moves right" (fun () ->
        (* x + 2 <= y  <=>  x <= y - 2 *)
        let l = int_lookup [ ("x", 5); ("y", 7) ] in
        Alcotest.(check bool) "5+2 <= 7" true (F.eval l (v "x" +% 2 <=% v "y"));
        Alcotest.(check bool) "5+3 <= 7 false" false
          (F.eval l (v "x" +% 3 <=% v "y")));
    quick "constant folding in the smart constructor" (fun () ->
        match v "x" <% i 5 +% 3 with
        | F.Atom { F.right = F.O_const (Value.Int 8); shift = 0; _ } -> ()
        | _ -> Alcotest.fail "shift not folded into constant");
    quick "string shift rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (F.atom (F.O_var "x") F.Eq ~shift:1 (F.O_const (Value.Str "a")));
             false
           with Invalid_argument _ -> true));
    quick "boolean connectives" (fun () ->
        let l = int_lookup [ ("x", 5) ] in
        Alcotest.(check bool) "and" false
          (F.eval l ((v "x" <% i 10) &&% (v "x" >% i 5)));
        Alcotest.(check bool) "or" true
          (F.eval l ((v "x" <% i 3) ||% (v "x" =% i 5)));
        Alcotest.(check bool) "not" true (F.eval l (not_ (v "x" =% i 6))));
    quick "negate_atom truth tables" (fun () ->
        let l = int_lookup [ ("x", 5); ("y", 5) ] in
        List.iter
          (fun f ->
            match f with
            | F.Atom a ->
              Alcotest.(check bool) "negation flips" (not (F.eval_atom l a))
                (F.eval_atom l (F.negate_atom a))
            | _ -> Alcotest.fail "expected atom")
          [
            v "x" =% v "y";
            v "x" <>% v "y";
            v "x" <% v "y";
            v "x" <=% v "y";
            v "x" >% v "y";
            v "x" >=% v "y";
          ]);
    quick "converse comparators" (fun () ->
        let l = int_lookup [ ("x", 3); ("y", 8) ] in
        List.iter
          (fun cmp ->
            let direct = F.eval_atom l (F.atom (F.O_var "x") cmp (F.O_var "y")) in
            let flipped =
              F.eval_atom l (F.atom (F.O_var "y") (F.converse cmp) (F.O_var "x"))
            in
            Alcotest.(check bool) "converse agrees" direct flipped)
          [ F.Eq; F.Neq; F.Lt; F.Leq; F.Gt; F.Geq ]);
    quick "vars are sorted and unique" (fun () ->
        Alcotest.(check (list string)) "vars" [ "a"; "b"; "c" ]
          (F.vars ((v "c" <% v "a") &&% (v "b" =% v "a"))));
    quick "True and False" (fun () ->
        let l = int_lookup [] in
        Alcotest.(check bool) "true" true (F.eval l F.True);
        Alcotest.(check bool) "false" false (F.eval l F.False));
    quick "unbound variable raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (F.eval (int_lookup []) (v "z" <% i 1));
             false
           with Not_found -> true));
  ]

(* ------------------------------------------------------------------ *)
(* DNF conversion                                                     *)
(* ------------------------------------------------------------------ *)

let dnf_equiv f assignments =
  let d = F.to_dnf f in
  List.for_all
    (fun assignment ->
      let l = int_lookup assignment in
      F.eval l f = F.eval_dnf l d)
    assignments

let all_assignments vars lo hi =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
      let tails = go rest in
      List.concat_map
        (fun x -> List.map (fun tail -> (v, x) :: tail) tails)
        (List.init (hi - lo + 1) (fun k -> lo + k))
  in
  go vars

let dnf_tests =
  [
    quick "atom is a single disjunct" (fun () ->
        Alcotest.(check int) "one disjunct" 1
          (List.length (F.to_dnf (v "x" <% i 5))));
    quick "and of atoms stays one disjunct" (fun () ->
        Alcotest.(check int) "one" 1
          (List.length (F.to_dnf ((v "x" <% i 5) &&% (v "y" >% i 2)))));
    quick "or of atoms gives two disjuncts" (fun () ->
        Alcotest.(check int) "two" 2
          (List.length (F.to_dnf ((v "x" <% i 5) ||% (v "y" >% i 2)))));
    quick "distribution (a or b) and (c or d)" (fun () ->
        let f =
          ((v "a" <% i 1) ||% (v "b" <% i 1))
          &&% ((v "c" <% i 1) ||% (v "d" <% i 1))
        in
        Alcotest.(check int) "four" 4 (List.length (F.to_dnf f)));
    quick "de morgan under negation" (fun () ->
        let f = not_ ((v "x" <% i 5) &&% (v "y" >% i 2)) in
        Alcotest.(check int) "two disjuncts" 2 (List.length (F.to_dnf f)));
    quick "semantic equivalence on nested shapes" (fun () ->
        let shapes =
          [
            not_ ((v "x" <% i 2) ||% ((v "y" =% i 1) &&% (v "x" >=% i 1)));
            (v "x" <% v "y") &&% not_ (v "y" <% i 2) ||% (v "x" =% i 3);
            not_ (not_ (v "x" =% i 0));
            (v "x" <=% v "y") &&% ((v "y" <=% i 2) ||% not_ (v "x" =% i 1));
          ]
        in
        let assignments = all_assignments [ "x"; "y" ] 0 3 in
        List.iteri
          (fun idx f ->
            Alcotest.(check bool)
              (Printf.sprintf "shape %d" idx)
              true (dnf_equiv f assignments))
          shapes);
    quick "True gives the empty conjunction" (fun () ->
        Alcotest.(check bool) "[[]]" true (F.to_dnf F.True = [ [] ]));
    quick "False gives no disjuncts" (fun () ->
        Alcotest.(check bool) "[]" true (F.to_dnf F.False = []));
    quick "blowup guard" (fun () ->
        let big =
          F.conj (List.init 14 (fun k -> (v "x" =% i k) ||% (v "y" =% i k)))
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (F.to_dnf ~max_disjuncts:100 big);
             false
           with F.Dnf_too_large -> true));
    quick "of_dnf round trip" (fun () ->
        let f = (v "x" <% i 5) ||% ((v "y" =% i 1) &&% (v "x" >% i 0)) in
        let assignments = all_assignments [ "x"; "y" ] 0 3 in
        let round = F.of_dnf (F.to_dnf f) in
        Alcotest.(check bool) "equivalent" true
          (List.for_all
             (fun a ->
               let l = int_lookup a in
               F.eval l f = F.eval l round)
             assignments));
  ]

(* ------------------------------------------------------------------ *)
(* Normalization to difference constraints                            *)
(* ------------------------------------------------------------------ *)

let get_atom f =
  match f with
  | F.Atom a -> a
  | _ -> Alcotest.fail "expected an atom"

let norm_tests =
  [
    quick "x <= y + c" (fun () ->
        match Norm.normalize_atom (get_atom (v "x" <=% v "y" +% 3)) with
        | Norm.Constraints
            [ { Norm.from_node = Norm.Var "x"; to_node = Norm.Var "y"; bound = 3 } ]
          ->
          ()
        | _ -> Alcotest.fail "wrong normalization");
    quick "x < y becomes x - y <= -1" (fun () ->
        match Norm.normalize_atom (get_atom (v "x" <% v "y")) with
        | Norm.Constraints [ { Norm.bound = -1; _ } ] -> ()
        | _ -> Alcotest.fail "wrong bound");
    quick "x > y + c" (fun () ->
        match Norm.normalize_atom (get_atom (v "x" >% v "y" +% 2)) with
        | Norm.Constraints
            [
              { Norm.from_node = Norm.Var "y"; to_node = Norm.Var "x"; bound = -3 };
            ] ->
          ()
        | _ -> Alcotest.fail "wrong normalization");
    quick "equality yields two constraints" (fun () ->
        match Norm.normalize_atom (get_atom (v "x" =% v "y" +% 1)) with
        | Norm.Constraints [ _; _ ] -> ()
        | _ -> Alcotest.fail "expected two constraints");
    quick "x <= c uses the zero node" (fun () ->
        match Norm.normalize_atom (get_atom (v "x" <=% i 7)) with
        | Norm.Constraints
            [ { Norm.from_node = Norm.Var "x"; to_node = Norm.Zero; bound = 7 } ]
          ->
          ()
        | _ -> Alcotest.fail "wrong normalization");
    quick "c <= x flips through the converse" (fun () ->
        match Norm.normalize_atom (get_atom (i 7 <=% v "x")) with
        | Norm.Constraints
            [ { Norm.from_node = Norm.Zero; to_node = Norm.Var "x"; bound = -7 } ]
          ->
          ()
        | _ -> Alcotest.fail "wrong normalization");
    quick "constant atom evaluates" (fun () ->
        Alcotest.(check bool) "3 < 5" true
          (Norm.normalize_atom (get_atom (i 3 <% i 5)) = Norm.Truth true);
        Alcotest.(check bool) "5 < 3" true
          (Norm.normalize_atom (get_atom (i 5 <% i 3)) = Norm.Truth false));
    quick "integer disequality is outside the class" (fun () ->
        Alcotest.(check bool) "not normalizable" true
          (Norm.normalize_atom (get_atom (v "x" <>% v "y"))
          = Norm.Not_normalizable));
    quick "string operand rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Norm.normalize_atom (get_atom (v "x" =% s "a")));
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Constraint graph                                                   *)
(* ------------------------------------------------------------------ *)

let graph_of constraints vars =
  let g = Graph.create vars in
  List.iter (Graph.add_constraint g) constraints;
  g

let dc from_node to_node bound = { Norm.from_node; to_node; bound }

let graph_tests =
  [
    quick "consistent chain has no negative cycle" (fun () ->
        let g =
          graph_of
            [
              dc (Norm.Var "x") (Norm.Var "y") 0;
              dc (Norm.Var "y") (Norm.Var "z") 0;
              dc (Norm.Var "z") (Norm.Var "x") 0;
            ]
            [ "x"; "y"; "z" ]
        in
        Alcotest.(check bool) "no cycle" false
          (Graph.floyd_warshall g).Graph.negative);
    quick "strict cycle is negative" (fun () ->
        let g =
          graph_of
            [
              dc (Norm.Var "x") (Norm.Var "y") (-1);
              dc (Norm.Var "y") (Norm.Var "z") (-1);
              dc (Norm.Var "z") (Norm.Var "x") (-1);
            ]
            [ "x"; "y"; "z" ]
        in
        Alcotest.(check bool) "negative" true
          (Graph.floyd_warshall g).Graph.negative);
    quick "bellman-ford agrees with floyd" (fun () ->
        let cases =
          [
            ( [
                dc (Norm.Var "x") Norm.Zero 5; dc Norm.Zero (Norm.Var "x") (-6);
              ],
              true );
            ( [
                dc (Norm.Var "x") Norm.Zero 5; dc Norm.Zero (Norm.Var "x") (-5);
              ],
              false );
            ( [
                dc (Norm.Var "x") (Norm.Var "y") 2;
                dc (Norm.Var "y") (Norm.Var "x") (-3);
              ],
              true );
          ]
        in
        List.iteri
          (fun idx (cs, expected) ->
            let g = graph_of cs [ "x"; "y" ] in
            Alcotest.(check bool)
              (Printf.sprintf "floyd %d" idx)
              expected (Graph.floyd_warshall g).Graph.negative;
            Alcotest.(check bool)
              (Printf.sprintf "bellman %d" idx)
              expected
              (Graph.bellman_ford_negative g))
          cases);
    quick "parallel edges keep the minimum" (fun () ->
        let g = Graph.create [ "x" ] in
        Graph.add_constraint g (dc (Norm.Var "x") Norm.Zero 10);
        Graph.add_constraint g (dc (Norm.Var "x") Norm.Zero 3);
        Graph.add_constraint g (dc Norm.Zero (Norm.Var "x") (-4));
        Alcotest.(check bool) "negative" true
          (Graph.floyd_warshall g).Graph.negative);
    quick "incremental zero-edge detection" (fun () ->
        let g = graph_of [ dc (Norm.Var "x") (Norm.Var "y") 0 ] [ "x"; "y" ] in
        let apsp = Graph.floyd_warshall g in
        let ix = Graph.node_index g "x" and iy = Graph.node_index g "y" in
        Alcotest.(check bool) "negative" true
          (Graph.negative_with_zero_edges apsp ~extra_in:[ (ix, -6) ]
             ~extra_out:[ (iy, 5) ]);
        Alcotest.(check bool) "satisfiable variant" false
          (Graph.negative_with_zero_edges apsp ~extra_in:[ (ix, -6) ]
             ~extra_out:[ (iy, 6) ]));
    quick "incremental detection matches full recomputation" (fun () ->
        let rng = Workload.Rng.make 7 in
        for _ = 1 to 200 do
          let vars = [ "a"; "b"; "c" ] in
          let pick () =
            match Workload.Rng.int rng 4 with
            | 0 -> Norm.Zero
            | 1 -> Norm.Var "a"
            | 2 -> Norm.Var "b"
            | _ -> Norm.Var "c"
          in
          let invariant =
            List.filter
              (fun c -> c.Norm.from_node <> c.Norm.to_node)
              (List.init (Workload.Rng.int rng 4) (fun _ ->
                   dc (pick ()) (pick ()) (Workload.Rng.range rng ~lo:(-5) ~hi:5)))
          in
          let g = graph_of invariant vars in
          let apsp = Graph.floyd_warshall g in
          if not apsp.Graph.negative then begin
            let extras =
              List.init
                (1 + Workload.Rng.int rng 3)
                (fun _ ->
                  let var = List.nth vars (Workload.Rng.int rng 3) in
                  let w = Workload.Rng.range rng ~lo:(-5) ~hi:5 in
                  if Workload.Rng.chance rng 0.5 then `In (var, w)
                  else `Out (var, w))
            in
            let extra_in =
              List.filter_map
                (function
                  | `In (name, w) -> Some (Graph.node_index g name, w)
                  | `Out _ -> None)
                extras
            in
            let extra_out =
              List.filter_map
                (function
                  | `Out (name, w) -> Some (Graph.node_index g name, w)
                  | `In _ -> None)
                extras
            in
            let incremental =
              Graph.negative_with_zero_edges apsp ~extra_in ~extra_out
            in
            let full_graph = graph_of invariant vars in
            List.iter
              (function
                | `In (name, w) ->
                  Graph.add_edge full_graph ~from_index:Graph.zero_index
                    ~to_index:(Graph.node_index full_graph name)
                    w
                | `Out (name, w) ->
                  Graph.add_edge full_graph
                    ~from_index:(Graph.node_index full_graph name)
                    ~to_index:Graph.zero_index w)
              extras;
            let full = (Graph.floyd_warshall full_graph).Graph.negative in
            Alcotest.(check bool) "incremental = full" full incremental
          end
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Equality solver (string fragment)                                  *)
(* ------------------------------------------------------------------ *)

let eq_tests =
  [
    quick "equality chain satisfiable" (fun () ->
        Alcotest.(check bool) "sat" true
          (Eq.solve [ get_atom (v "a" =% v "b"); get_atom (v "b" =% v "c") ]
          = Eq.Sat));
    quick "constant conflict" (fun () ->
        Alcotest.(check bool) "unsat" true
          (Eq.solve [ get_atom (v "a" =% s "x"); get_atom (v "a" =% s "y") ]
          = Eq.Unsat));
    quick "transitive constant conflict" (fun () ->
        Alcotest.(check bool) "unsat" true
          (Eq.solve
             [
               get_atom (v "a" =% s "x");
               get_atom (v "a" =% v "b");
               get_atom (v "b" =% s "y");
             ]
          = Eq.Unsat));
    quick "disequality within a class" (fun () ->
        Alcotest.(check bool) "unsat" true
          (Eq.solve [ get_atom (v "a" =% v "b"); get_atom (v "a" <>% v "b") ]
          = Eq.Unsat));
    quick "disequality across classes is fine" (fun () ->
        Alcotest.(check bool) "sat" true
          (Eq.solve [ get_atom (v "a" <>% v "b") ] = Eq.Sat));
    quick "distinct classes pinned to the same constant" (fun () ->
        Alcotest.(check bool) "unsat" true
          (Eq.solve
             [
               get_atom (v "a" =% s "x");
               get_atom (v "b" =% s "x");
               get_atom (v "a" <>% v "b");
             ]
          = Eq.Unsat));
    quick "constant disequality" (fun () ->
        Alcotest.(check bool) "sat" true
          (Eq.solve [ get_atom (s "x" <>% s "y") ] = Eq.Sat);
        Alcotest.(check bool) "unsat" true
          (Eq.solve [ get_atom (s "x" <>% s "x") ] = Eq.Unsat));
    quick "ordering against a constant stays unknown" (fun () ->
        (* Strings have gaps (nothing between "a" and "a\x00"), so
           constant-adjacent orderings cannot be proven satisfiable. *)
        Alcotest.(check bool) "unknown" true
          (Eq.solve [ get_atom (v "a" <% s "m") ] = Eq.Unknown));
    quick "variable-only ordering chain is satisfiable" (fun () ->
        Alcotest.(check bool) "sat" true
          (Eq.solve [ get_atom (v "a" <% v "b"); get_atom (v "b" <=% v "c") ]
          = Eq.Sat));
    quick "strict ordering cycle is unsatisfiable" (fun () ->
        Alcotest.(check bool) "unsat" true
          (Eq.solve
             [
               get_atom (v "a" <% v "b");
               get_atom (v "b" <% v "c");
               get_atom (v "c" <% v "a");
             ]
          = Eq.Unsat));
    quick "weak ordering cycle is satisfiable" (fun () ->
        Alcotest.(check bool) "sat" true
          (Eq.solve
             [
               get_atom (v "a" <=% v "b");
               get_atom (v "b" <=% v "c");
               get_atom (v "c" <=% v "a");
             ]
          = Eq.Sat));
    quick "ordering contradicts an equality" (fun () ->
        (* a = b together with a < b collapses to a strict self-loop. *)
        Alcotest.(check bool) "unsat" true
          (Eq.solve [ get_atom (v "a" =% v "b"); get_atom (v "a" <% v "b") ]
          = Eq.Unsat));
    quick "constant order facts propagate" (fun () ->
        (* a <= "m" and a >= "z" forces "z" <= "m": false. *)
        Alcotest.(check bool) "unsat" true
          (Eq.solve [ get_atom (v "a" <=% s "m"); get_atom (v "a" >=% s "z") ]
          = Eq.Unsat));
    quick "ordering between pinned classes" (fun () ->
        (* a = "m", b = "z", b < a contradicts "m" < "z". *)
        Alcotest.(check bool) "unsat" true
          (Eq.solve
             [
               get_atom (v "a" =% s "m");
               get_atom (v "b" =% s "z");
               get_atom (v "b" <% v "a");
             ]
          = Eq.Unsat));
    quick "consistent constant orderings stay unknown, not unsat" (fun () ->
        Alcotest.(check bool) "unknown" true
          (Eq.solve [ get_atom (v "a" >% s "m"); get_atom (v "a" <% s "z") ]
          = Eq.Unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Satisfiability                                                     *)
(* ------------------------------------------------------------------ *)

let conj_of f =
  match F.to_dnf f with
  | [ c ] -> c
  | _ -> Alcotest.fail "expected a conjunction"

let sat_tests =
  [
    quick "paper example: C(9,10,C) is satisfiable" (fun () ->
        let c =
          conj_of ((i 9 <% i 10) &&% (v "C" >% i 5) &&% (i 10 =% v "C"))
        in
        check_verdict "sat" Sat.Sat (Sat.conjunction c));
    quick "paper example: C(11,10,C) is unsatisfiable" (fun () ->
        let c =
          conj_of ((i 11 <% i 10) &&% (v "C" >% i 5) &&% (i 10 =% v "C"))
        in
        check_verdict "unsat" Sat.Unsat (Sat.conjunction c));
    quick "empty range" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction (conj_of ((v "x" <% i 10) &&% (v "x" >% i 20)))));
    quick "tight but non-empty range" (fun () ->
        check_verdict "sat" Sat.Sat
          (Sat.conjunction (conj_of ((v "x" >=% i 10) &&% (v "x" <=% i 10)))));
    quick "integer gap: x > 5 and x < 6 is unsat" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction (conj_of ((v "x" >% i 5) &&% (v "x" <% i 6)))));
    quick "cyclic strict order" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction
             (conj_of
                ((v "x" <% v "y") &&% (v "y" <% v "z") &&% (v "z" <% v "x")))));
    quick "cyclic weak order is fine" (fun () ->
        check_verdict "sat" Sat.Sat
          (Sat.conjunction
             (conj_of
                ((v "x" <=% v "y") &&% (v "y" <=% v "z") &&% (v "z" <=% v "x")))));
    quick "shifted chain" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction
             (conj_of
                ((v "x" >=% v "y" +% 5)
                &&% (v "y" >=% v "z" +% 5)
                &&% (v "z" >=% v "x" +% -9)))));
    quick "equality propagation" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction
             (conj_of ((v "x" =% v "y") &&% (v "x" <% i 5) &&% (v "y" >% i 6)))));
    quick "disequality expansion finds the gap" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction
             (conj_of
                ((v "x" >=% i 0) &&% (v "x" <=% i 1) &&% (v "x" <>% i 0)
                &&% (v "x" <>% i 1)))));
    quick "disequality expansion keeps sat" (fun () ->
        check_verdict "sat" Sat.Sat
          (Sat.conjunction
             (conj_of ((v "x" >=% i 0) &&% (v "x" <=% i 2) &&% (v "x" <>% i 0)))));
    quick "too many disequalities degrade to unknown" (fun () ->
        let f =
          F.conj
            ((v "x" >=% i 0) :: (v "x" <=% i 10)
            :: List.init 6 (fun k -> v "x" <>% i k))
        in
        check_verdict "unknown" Sat.Unknown
          (Sat.conjunction ~neq_budget:3 (conj_of f)));
    quick "unsat dominates disequality budget" (fun () ->
        let f =
          F.conj
            ((v "x" >=% i 5) :: (v "x" <=% i 4)
            :: List.init 6 (fun k -> v "x" <>% i k))
        in
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction ~neq_budget:3 (conj_of f)));
    quick "constant-false atom kills the conjunction" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction (conj_of ((i 3 >% i 4) &&% (v "x" <% i 10)))));
    quick "string fragment integrates" (fun () ->
        let typing name =
          if String.length name = 1 then Value.Int_ty else Value.Str_ty
        in
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction ~typing
             (conj_of
                ((v "x" <% i 10) &&% (v "name" =% s "a") &&% (v "name" =% s "b")))));
    quick "cross-type equality is unsatisfiable" (fun () ->
        let typing _ = Value.Str_ty in
        check_verdict "unsat" Sat.Unsat
          (Sat.conjunction ~typing (conj_of (v "x" =% i 5))));
    quick "dnf: one satisfiable disjunct wins" (fun () ->
        check_verdict "sat" Sat.Sat
          (Sat.dnf
             (F.to_dnf (((v "x" <% i 0) &&% (v "x" >% i 0)) ||% (v "x" =% i 5)))));
    quick "dnf: all disjuncts unsat" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.dnf
             (F.to_dnf
                (((v "x" <% i 0) &&% (v "x" >% i 0))
                ||% ((v "x" <% i 5) &&% (v "x" >% i 7))))));
    quick "formula interface handles negation" (fun () ->
        check_verdict "unsat" Sat.Unsat
          (Sat.formula (not_ ((v "x" <% i 5) ||% (v "x" >=% i 5)))));
    quick "empty conjunction is satisfiable" (fun () ->
        check_verdict "sat" Sat.Sat (Sat.conjunction []));
    quick "brute force agreement on random conjunctions" (fun () ->
        let rng = Workload.Rng.make 13 in
        let vars = [ "x"; "y" ] in
        let random_atom () =
          let operand () =
            if Workload.Rng.chance rng 0.5 then
              F.O_var (List.nth vars (Workload.Rng.int rng 2))
            else F.O_const (Value.Int (Workload.Rng.range rng ~lo:0 ~hi:4))
          in
          let cmp =
            List.nth [ F.Eq; F.Lt; F.Leq; F.Gt; F.Geq ]
              (Workload.Rng.int rng 5)
          in
          F.atom (operand ()) cmp
            ~shift:(Workload.Rng.range rng ~lo:(-2) ~hi:2)
            (operand ())
        in
        for _ = 1 to 300 do
          let conj =
            List.init (1 + Workload.Rng.int rng 4) (fun _ -> random_atom ())
          in
          let verdict = Sat.conjunction conj in
          let witness =
            List.exists
              (fun assignment -> F.eval_conjunction (int_lookup assignment) conj)
              (all_assignments vars (-8) 12)
          in
          match verdict with
          | Sat.Unsat ->
            Alcotest.(check bool) "no witness when unsat" false witness
          | Sat.Sat -> Alcotest.(check bool) "witness when sat" true witness
          | Sat.Unknown -> Alcotest.fail "no disequalities were generated"
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Substitution (Definitions 4.1 - 4.3)                               *)
(* ------------------------------------------------------------------ *)

let substitute_tests =
  [
    quick "of_tuple binds schema attributes only" (fun () ->
        let schema = int_schema [ "A"; "B" ] in
        let lookup = Sub.of_tuple schema (Tuple.of_ints [ 4; 9 ]) in
        Alcotest.(check bool) "A bound" true (lookup "A" = Some (Value.Int 4));
        Alcotest.(check bool) "Z free" true (lookup "Z" = None));
    quick "atom substitution folds shifts" (fun () ->
        let schema = int_schema [ "B" ] in
        let lookup = Sub.of_tuple schema (Tuple.of_ints [ 9 ]) in
        match Sub.atom lookup (get_atom (v "x" <% v "B" +% 3)) with
        | { F.right = F.O_const (Value.Int 12); shift = 0; _ } -> ()
        | _ -> Alcotest.fail "shift not folded");
    quick "substitution leaves free variables" (fun () ->
        let schema = int_schema [ "A" ] in
        let lookup = Sub.of_tuple schema (Tuple.of_ints [ 1 ]) in
        match Sub.atom lookup (get_atom (v "A" =% v "C")) with
        | { F.left = F.O_const (Value.Int 1); right = F.O_var "C"; _ } -> ()
        | _ -> Alcotest.fail "wrong substitution");
    quick "combine takes the first binding" (fun () ->
        let l1 = Sub.of_tuple (int_schema [ "A" ]) (Tuple.of_ints [ 1 ]) in
        let l2 = Sub.of_tuple (int_schema [ "B" ]) (Tuple.of_ints [ 2 ]) in
        let combined = Sub.combine [ l1; l2 ] in
        Alcotest.(check bool) "A" true (combined "A" = Some (Value.Int 1));
        Alcotest.(check bool) "B" true (combined "B" = Some (Value.Int 2));
        Alcotest.(check bool) "C" true (combined "C" = None));
    quick "split into variant and invariant (Definition 4.2)" (fun () ->
        let conj =
          conj_of ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
        in
        let bound a = List.mem a [ "A"; "B" ] in
        let split = Sub.split_conjunction ~bound conj in
        Alcotest.(check int) "two variant" 2 (List.length split.Sub.variant);
        Alcotest.(check int) "one invariant" 1 (List.length split.Sub.invariant));
    quick "substitute whole dnf" (fun () ->
        let d = F.to_dnf ((v "A" <% i 10) ||% (v "A" >% i 20)) in
        let lookup = Sub.of_tuple (int_schema [ "A" ]) (Tuple.of_ints [ 25 ]) in
        let substituted = Sub.dnf lookup d in
        Alcotest.(check bool) "evaluates true" true
          (F.eval_dnf (fun _ -> raise Not_found) substituted));
  ]

let () =
  Alcotest.run "condition"
    [
      ("formula", formula_tests);
      ("dnf", dnf_tests);
      ("norm", norm_tests);
      ("graph", graph_tests);
      ("eq_solver", eq_tests);
      ("satisfiability", sat_tests);
      ("substitute", substitute_tests);
    ]
