test/test_properties.ml: Alcotest Condition Database Fun Helpers Ivm List Ops Option QCheck QCheck_alcotest Query Relalg Relation Schema Transaction Tuple Value Workload
