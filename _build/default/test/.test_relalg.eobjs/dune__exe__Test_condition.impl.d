test/test_condition.ml: Alcotest Condition Helpers List Printf Relalg String Tuple Value Workload
