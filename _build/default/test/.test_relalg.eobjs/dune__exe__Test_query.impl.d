test/test_query.ml: Alcotest Condition Database Helpers Ivm List Printf Query Relalg Relation Schema String Transaction Tuple Value Workload
