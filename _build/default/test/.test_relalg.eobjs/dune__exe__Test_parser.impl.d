test/test_parser.ml: Alcotest Condition Database Helpers Ivm List Query Relalg Relation Transaction Tuple Value
