test/test_integration.ml: Alcotest Condition Csv Database Helpers Ivm List Printf Query Relalg Relation Transaction Tuple Workload
