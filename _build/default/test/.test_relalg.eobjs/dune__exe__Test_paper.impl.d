test/test_paper.ml: Alcotest Array Condition Database Helpers Ivm List Printf Query Relalg Relation Transaction Tuple
