test/test_relalg.ml: Alcotest Array Attr Csv Database Filename Helpers Index Ivm List Ops Printf Query Relalg Relation Schema String Sys Transaction Tuple Value Workload
