(** Entry point of the view-definition static analyzer.

    Runs every check over a compiled SPJ definition and returns the
    diagnostics sorted by severity.  The checks and their codes:

    - [IVM001] Error — unsatisfiable condition, view provably empty
      ({!Check_satisfiable}, Theorem 4.1);
    - [IVM002] Hint — redundant atoms / dead disjuncts with a simplified
      equivalent condition ({!Check_redundancy}, Section 4);
    - [IVM010] Warning — source the irrelevance screen can never reject
      updates to ({!Check_screening}, Algorithm 4.1);
    - [IVM011] Hint — base relation all of whose updates are provably
      irrelevant ({!Check_screening}, Theorems 4.1–4.2);
    - [IVM020] Warning — disconnected join graph, hidden Cartesian product
      ({!Check_join_graph}, Section 3);
    - [IVM030] Error — dangling projection attributes, duplicate output
      names ({!Check_projection});
    - [IVM031] Hint — key retention: counters provably redundant or
      provably required ({!Check_projection}, Section 5.2);
    - [IVM040] Warning — mixed-type comparisons folded to constants
      ({!Check_types});
    - [IVM050]/[IVM051] Hint — insertions/deletions provably
      self-maintainable: the view delta needs no base-relation access
      ({!Check_self_maintain}; the [Self_maintain] strategy in [lib/core]
      exploits the proof);
    - [IVM052]–[IVM054] Warning — self-maintainability near-misses:
      unrecovered key attributes, a missing key declaration, a disjunction
      blocking the key analysis ({!Check_self_maintain}; only emitted when
      keys are declared);
    - [IVM060]/[IVM061] Error — non-aggregatable target / unsafe group
      key in a GROUP BY definition ({!Check_aggregate});
    - [IVM062] Error — self-referencing (cyclic) view definition
      ({!Check_aggregate.cycle}; only from {!run_expr} with
      [view_name]);
    - [IVM063] Hint — MIN/MAX targets rescan a group when the
      extremum's support drains ({!Check_aggregate});
    - [IVM000] Error — the definition does not compile at all (only from
      {!run_expr}).

    The registration gate ({!Ivm.Manager.define_view}) refuses definitions
    with [Error]-level diagnostics unless forced; the [ivm_cli lint]
    subcommand exposes the same analysis as a CI gate.

    The returned list is deterministic: sorted by {!Diagnostic.compare}
    (stable, so equal-ranked diagnostics keep check order), then exact
    duplicates from overlapping checks are dropped. *)

open Relalg

(** [run ~lookup spj] analyzes a compiled definition.  [keys] declares
    candidate keys of base relations for the Section 5.2 key-retention
    analysis and the IVM05x self-maintainability band; omitting it skips
    [IVM031] and the IVM05x near-miss warnings. *)
val run :
  ?keys:Query.Keys.t ->
  lookup:(string -> Schema.t) ->
  Query.Spj.t ->
  Diagnostic.t list

(** [run_expr ~lookup e] compiles (and, by default, tableau-minimizes —
    matching what {!Ivm.View.define} maintains) before analyzing; a
    {!Query.Spj.Compile_error} becomes a single [IVM000] error
    diagnostic instead of an exception.  A {!Query.Expr.Group_by}
    definition is split: the SPJ checks run over the inner expression
    and {!Check_aggregate} adds the IVM06x band.  [view_name] arms the
    IVM062 self-reference check (and short-circuits compilation when it
    fires — the name resolves to nothing yet). *)
val run_expr :
  ?view_name:string ->
  ?keys:Query.Keys.t ->
  ?minimize:bool ->
  lookup:(string -> Schema.t) ->
  Query.Expr.t ->
  Diagnostic.t list

(** [true] when no [Error]-level diagnostic is present. *)
val ok : Diagnostic.t list -> bool
