type severity =
  | Error
  | Warning
  | Hint

type t = {
  code : string;
  severity : severity;
  message : string;
  context : string option;
  paper : string option;
}

let make ~code ~severity ?context ?paper message =
  { code; severity; message; context; paper }

let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Hint -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let compare a b =
  match compare_severity a.severity b.severity with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> Option.compare String.compare a.context b.context
    | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* A trailing [*] matches a whole band: [IVM05*] selects IVM050–IVM059. *)
let code_matches ~query code =
  let n = String.length query in
  if n > 0 && query.[n - 1] = '*' then
    String.length code >= n - 1
    && String.equal (String.sub code 0 (n - 1)) (String.sub query 0 (n - 1))
  else String.equal code query

let with_code code ds = List.filter (fun d -> code_matches ~query:code d.code) ds

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with
    | Error -> "error"
    | Warning -> "warning"
    | Hint -> "hint")

let pp ppf d =
  Format.fprintf ppf "@[<hov 2>%a %s" pp_severity d.severity d.code;
  (match d.context with
  | Some c -> Format.fprintf ppf " [%s]" c
  | None -> ());
  Format.fprintf ppf ":@ %s" d.message;
  (match d.paper with
  | Some p -> Format.fprintf ppf "@ (paper: %s)" p
  | None -> ());
  Format.fprintf ppf "@]"

let pp_report ?code ppf ds =
  let ds =
    match code with
    | None -> ds
    | Some code -> with_code code ds
  in
  let ds = List.stable_sort compare ds in
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds;
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d hint(s)@]" (count Error)
    (count Warning) (count Hint)
