(** IVM040 — comparisons whose truth never depends on the data.

    The satisfiability machinery folds a comparison between an integer and
    a string operand to a constant (under {!Relalg.Value.compare} every
    integer sorts before every string), and an integer offset attached to
    string operands pushes the atom outside every decidable fragment.
    Both almost always indicate a mistyped attribute or literal in the
    view definition, so the analyzer surfaces them as Warnings with the
    folded truth value. *)

open Relalg

val check : lookup:(string -> Schema.t) -> Query.Spj.t -> Diagnostic.t list
