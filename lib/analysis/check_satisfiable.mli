(** IVM001 — provably empty view.

    A view whose selection condition is unsatisfiable is empty in every
    database state, and by Theorem 4.1 no update can ever populate it:
    registering such a view is almost certainly a definition mistake, so
    this is the analyzer's flagship [Error].  Decided by the Section 4
    satisfiability procedure over the compiled condition's DNF (p. 64). *)

open Relalg

val check : lookup:(string -> Schema.t) -> Query.Spj.t -> Diagnostic.t list
