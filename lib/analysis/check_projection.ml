open Relalg
module Keys = Query.Keys

type key_verdict =
  | Counters_redundant
  | Counters_required of string list

let key_retention ~keys (spj : Query.Spj.t) =
  if keys = [] then None
  else
    match Keys.undetermined_sources ~keys spj with
    | [] -> Some Counters_redundant
    | aliases -> Some (Counters_required aliases)

let check ?(keys = []) ~lookup (spj : Query.Spj.t) =
  let projection = spj.Query.Spj.projection in
  let sources = spj.Query.Spj.sources in
  (* Duplicate output names. *)
  let outputs = List.map fst projection in
  let duplicates =
    List.sort_uniq Attr.compare
      (List.filter
         (fun o ->
           List.length (List.filter (Attr.equal o) outputs) > 1)
         outputs)
  in
  let dup_diags =
    List.map
      (fun o ->
        Diagnostic.make ~code:"IVM030" ~severity:Diagnostic.Error ~context:o
          (Printf.sprintf
             "output attribute %s appears more than once in the projection: \
              the view schema would contain duplicate names"
             o))
      duplicates
  in
  (* Dangling qualified attributes. *)
  let provided =
    List.concat_map
      (fun (s : Query.Spj.source) ->
        Schema.names (Query.Spj.qualified_schema lookup s))
      sources
  in
  let dangling_diags =
    List.filter_map
      (fun (out, q) ->
        if List.exists (Attr.equal q) provided then None
        else
          Some
            (Diagnostic.make ~code:"IVM030" ~severity:Diagnostic.Error
               ~context:q
               (Printf.sprintf
                  "projection output %s is bound to %s, which no source of \
                   the view provides"
                  out q)))
      projection
  in
  (* Key retention, Section 5.2. *)
  let key_diags =
    match key_retention ~keys spj with
    | None -> []
    | Some Counters_redundant ->
      [
        Diagnostic.make ~code:"IVM031" ~severity:Diagnostic.Hint
          ~paper:"Section 5.2, alternative 2"
          "the projection retains a candidate key of every source: every \
           multiplicity counter is provably 1, so counters are redundant \
           and key-based maintenance would suffice";
      ]
    | Some (Counters_required aliases) ->
      [
        Diagnostic.make ~code:"IVM031" ~severity:Diagnostic.Hint
          ~context:(String.concat ", " aliases)
          ~paper:"Section 5.2, alternative 1; Example 5.1"
          (Printf.sprintf
             "the projection retains no candidate key of source(s) %s: \
              duplicate rows can arise, so multiplicity counters are \
              required to survive deletions"
             (String.concat ", " aliases));
      ]
  in
  dup_diags @ dangling_diags @ key_diags
