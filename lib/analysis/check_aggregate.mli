(** IVM060–IVM063 — GROUP BY aggregates and view towers.

    - [IVM060] (Error): an aggregate target is not computable — its source
      attribute is missing from the inner expression, or a SUM/AVG folds a
      STRING attribute into the int ring.
    - [IVM061] (Error): a group key is unsafe — missing from the inner
      expression, or the grouped output schema has duplicate column names.
    - [IVM062] (Error): a view definition references its own name; see
      {!cycle}.
    - [IVM063] (Hint): a MIN/MAX target has no additive inverse, so a
      deletion draining the extremum's support rescans that group. *)

open Relalg

val check :
  lookup:(string -> Schema.t) ->
  inner:Query.Spj.t ->
  Query.Aggregate.t ->
  Diagnostic.t list

(** [cycle ~view_name expr] is the IVM062 self-reference check: nonempty
    exactly when [expr] reads a source named [view_name].  Deeper cycles
    cannot be registered (a definition may only reference names that
    already exist), so self-reference is the one representable cycle. *)
val cycle : view_name:string -> Query.Expr.t -> Diagnostic.t list
