module Satisfiability = Condition.Satisfiability

let check ~lookup (spj : Query.Spj.t) =
  let typing = Query.Spj.typing lookup spj in
  match Satisfiability.dnf ~typing spj.Query.Spj.condition_dnf with
  | Satisfiability.Unsat ->
    [
      Diagnostic.make ~code:"IVM001" ~severity:Diagnostic.Error
        ~paper:"Section 4, Theorem 4.1"
        "the selection condition is unsatisfiable: the view is provably \
         empty in every database state and no update can ever populate it";
    ]
  | Satisfiability.Sat | Satisfiability.Unknown -> []
