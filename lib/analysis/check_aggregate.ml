open Relalg

(* Keys and aggregate outputs share one output namespace; a collision
   would make the grouped schema ambiguous before any maintenance runs. *)
let duplicates names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.add seen n ();
        false
      end)
    names

let check ~lookup ~(inner : Query.Spj.t) (agg : Query.Aggregate.t) =
  let schema = Query.Spj.output_schema lookup inner in
  let ty_of a =
    Option.map (Schema.ty_at schema) (Schema.position_opt schema a)
  in
  let key_diags =
    List.filter_map
      (fun key ->
        match ty_of key with
        | Some _ -> None
        | None ->
          Some
            (Diagnostic.make ~code:"IVM061" ~severity:Diagnostic.Error
               ~context:key ~paper:"Section 7 (further work: aggregates)"
               (Printf.sprintf
                  "group key %S is not produced by the inner expression — \
                   grouping on it is undefined"
                  key)))
      agg.Query.Aggregate.keys
  in
  let dup_diags =
    List.map
      (fun n ->
        Diagnostic.make ~code:"IVM061" ~severity:Diagnostic.Error ~context:n
          ~paper:"Section 7 (further work: aggregates)"
          (Printf.sprintf
             "output column %S appears more than once across the group keys \
              and aggregate targets"
             n))
      (List.sort_uniq String.compare
         (duplicates
            (agg.Query.Aggregate.keys
            @ List.map
                (fun (t : Query.Aggregate.target) -> t.Query.Aggregate.output)
                agg.Query.Aggregate.targets)))
  in
  let target_diags =
    List.concat_map
      (fun (t : Query.Aggregate.target) ->
        let func = t.Query.Aggregate.func in
        let name = Query.Aggregate.func_name func in
        let source_diags =
          match Query.Aggregate.source func with
          | None -> []
          | Some a -> (
            match ty_of a with
            | None ->
              [
                Diagnostic.make ~code:"IVM060" ~severity:Diagnostic.Error
                  ~context:a ~paper:"Section 7 (further work: aggregates)"
                  (Printf.sprintf
                     "%s(%s) reads an attribute the inner expression does \
                      not produce"
                     name a);
              ]
            | Some Value.Str_ty
              when not
                     (match func with
                     | Query.Aggregate.Min _ | Query.Aggregate.Max _ -> true
                     | _ -> false) ->
              [
                Diagnostic.make ~code:"IVM060" ~severity:Diagnostic.Error
                  ~context:a ~paper:"Section 7 (further work: aggregates)"
                  (Printf.sprintf
                     "%s(%s) folds in the %s ring, which cannot aggregate a \
                      STRING attribute"
                     name a
                     (Query.Aggregate.ring_name func));
              ]
            | Some _ -> [])
        in
        let rescan_diags =
          if Query.Aggregate.invertible func then []
          else
            [
              Diagnostic.make ~code:"IVM063" ~severity:Diagnostic.Hint
                ~context:t.Query.Aggregate.output
                ~paper:"Section 7 (further work: aggregates)"
                (Printf.sprintf
                   "%s has no additive inverse: a deletion that drains the \
                    extremum's support forces a per-group rescan of the \
                    inner materialization"
                   name);
            ]
        in
        source_diags @ rescan_diags)
      agg.Query.Aggregate.targets
  in
  key_diags @ dup_diags @ target_diags

let cycle ~view_name expr =
  if List.mem view_name (Query.Expr.base_names expr) then
    [
      Diagnostic.make ~code:"IVM062" ~severity:Diagnostic.Error
        ~context:view_name ~paper:"Section 6 (multiple views)"
        (Printf.sprintf
           "view %S reads itself — cyclic view dependencies cannot be \
            maintained (dependents must form a DAG, which definition order \
            enforces for every other shape)"
           view_name);
    ]
  else []
