open Relalg
module Formula = Condition.Formula

type binding =
  | From_output of int
  | Pinned of Value.t

type delete_plan = {
  alias : string;
  relation : string;
  key : Attr.t list;
  bindings : (int * binding) list;
}

type source_status =
  | Plan of delete_plan
  | No_declared_key
  | Undetermined of Attr.t list

type source_report = {
  source_alias : string;
  source_relation : string;
  status : source_status;
}

type t = {
  single_source : (string * string) option;
  disjunctive : bool;
  reports : source_report list;
}

(* Union-find over the qualified attributes of a single conjunct, exactly
   as in Query.Keys — but here we keep, per equality class, how its value
   can be read back off a view tuple (a projected output position or a
   pinned constant). *)
let rec find parent a =
  match Hashtbl.find_opt parent a with
  | None -> a
  | Some p ->
    let root = find parent p in
    if not (Attr.equal root p) then Hashtbl.replace parent a root;
    root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (Attr.equal ra rb) then Hashtbl.replace parent ra rb

(* The constant an [x = c (+ shift)] atom pins [x] to, with the shift
   folded in.  A shift against a string constant is ill-typed (IVM040
   catches it); such atoms pin nothing here. *)
let pinned_value (a : Formula.atom) =
  match (a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift) with
  | Formula.O_var x, Formula.Eq, Formula.O_const (Value.Int c), s ->
    Some (x, Value.Int (c + s))
  | Formula.O_const (Value.Int c), Formula.Eq, Formula.O_var x, s ->
    Some (x, Value.Int (c - s))
  | Formula.O_var x, Formula.Eq, Formula.O_const (Value.Str _ as c), 0
  | Formula.O_const (Value.Str _ as c), Formula.Eq, Formula.O_var x, 0 ->
    Some (x, c)
  | _ -> None

let keyed_reports ~keys ~lookup (spj : Query.Spj.t) conj =
  let parent = Hashtbl.create 16 in
  List.iter
    (fun (a : Formula.atom) ->
      match (a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift)
      with
      | Formula.O_var x, Formula.Eq, Formula.O_var y, 0 -> union parent x y
      | _ -> ())
    conj;
  (* Recovery rule per class root: projected outputs win over pins (they
     need no trust in the condition's satisfiability). *)
  let recover : (Attr.t, binding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Formula.atom) ->
      match pinned_value a with
      | Some (x, v) ->
        let root = find parent x in
        if not (Hashtbl.mem recover root) then
          Hashtbl.replace recover root (Pinned v)
      | None -> ())
    conj;
  List.iteri
    (fun j (_, q) -> Hashtbl.replace recover (find parent q) (From_output j))
    spj.Query.Spj.projection;
  List.map
    (fun (source : Query.Spj.source) ->
      let alias = source.Query.Spj.alias in
      let relation = source.Query.Spj.relation in
      let status =
        match List.assoc_opt relation keys with
        | None | Some [] -> No_declared_key
        | Some key ->
          let schema = lookup relation in
          let resolved =
            List.map
              (fun attr ->
                let qualified = Attr.qualify ~alias attr in
                ( Schema.position schema attr,
                  qualified,
                  Hashtbl.find_opt recover (find parent qualified) ))
              key
          in
          let missing =
            List.filter_map
              (fun (_, q, b) -> if b = None then Some q else None)
              resolved
          in
          if missing <> [] then Undetermined missing
          else
            Plan
              {
                alias;
                relation;
                key;
                bindings =
                  List.map (fun (pos, _, b) -> (pos, Option.get b)) resolved;
              }
      in
      { source_alias = alias; source_relation = relation; status })
    spj.Query.Spj.sources

let analyze ~keys ~lookup (spj : Query.Spj.t) =
  let single_source =
    match spj.Query.Spj.sources with
    | [ s ] -> Some (s.Query.Spj.alias, s.Query.Spj.relation)
    | _ -> None
  in
  match spj.Query.Spj.condition_dnf with
  | [ conj ] ->
    {
      single_source;
      disjunctive = false;
      reports = keyed_reports ~keys ~lookup spj conj;
    }
  | _ -> { single_source; disjunctive = true; reports = [] }

let relations t =
  List.sort_uniq String.compare
    (List.map (fun r -> r.source_relation) t.reports)

let insert_self_maintainable t relation =
  match t.single_source with
  | Some (_, r) -> String.equal r relation
  | None -> false

let delete_plans t relation =
  let over = List.filter (fun r -> String.equal r.source_relation relation) t.reports in
  if over = [] then None
  else
    let plans =
      List.filter_map
        (fun r -> match r.status with Plan p -> Some p | _ -> None)
        over
    in
    if List.length plans = List.length over then Some plans else None

let delete_self_maintainable t relation =
  insert_self_maintainable t relation
  || (t.single_source = None && delete_plans t relation <> None)

let pp_attrs attrs = String.concat ", " attrs

let check ?(keys = []) ~lookup (spj : Query.Spj.t) =
  let t = analyze ~keys ~lookup spj in
  let paper_single = "Algorithm 5.1, p = 1 truth table" in
  let paper_keyed = "Section 5.2 key retention; self-maintenance (PAPERS.md)" in
  match t.single_source with
  | Some (_, relation) ->
    [
      Diagnostic.make ~code:"IVM050" ~severity:Diagnostic.Hint ~context:relation
        ~paper:paper_single
        (Printf.sprintf
           "insertions into %s are self-maintainable: with a single source \
            the insert delta is pi_X(sigma_C({t})) per inserted tuple — no \
            base-relation access needed"
           relation);
      Diagnostic.make ~code:"IVM051" ~severity:Diagnostic.Hint ~context:relation
        ~paper:paper_single
        (Printf.sprintf
           "deletions from %s are self-maintainable: the delete delta is \
            computable from the deleted tuples alone"
           relation);
    ]
  | None ->
    (* Multi-source: keyed deletion facts (Hints), then near-misses
       (Warnings) — the latter only when the caller declared keys, like
       IVM031, so key-free lints stay quiet. *)
    let provable =
      List.filter_map
        (fun relation ->
          match delete_plans t relation with
          | Some plans ->
            Some
              (Diagnostic.make ~code:"IVM051" ~severity:Diagnostic.Hint
                 ~context:relation ~paper:paper_keyed
                 (Printf.sprintf
                    "deletions from %s are self-maintainable: the view \
                     recovers its candidate key (%s) at every source, so \
                     affected view tuples can be drained from the \
                     materialization by key"
                    relation
                    (pp_attrs (List.hd plans).key)))
          | None -> None)
        (relations t)
    in
    let near_misses =
      if keys = [] then []
      else if t.disjunctive then
        [
          Diagnostic.make ~code:"IVM054" ~severity:Diagnostic.Warning
            ~paper:paper_keyed
            "the condition's disjunction blocks key-based self-maintenance \
             analysis for this multi-source view: equality classes are only \
             sound per conjunct";
        ]
      else
        List.filter_map
          (fun r ->
            match r.status with
            | Plan _ -> None
            | No_declared_key ->
              Some
                (Diagnostic.make ~code:"IVM053" ~severity:Diagnostic.Warning
                   ~context:r.source_relation ~paper:paper_keyed
                   (Printf.sprintf
                      "near miss: no candidate key declared for %s — \
                       declaring one the view recovers would make its \
                       deletions self-maintainable"
                      r.source_relation))
            | Undetermined missing ->
              Some
                (Diagnostic.make ~code:"IVM052" ~severity:Diagnostic.Warning
                   ~context:r.source_alias ~paper:paper_keyed
                   (Printf.sprintf
                      "near miss: deletions from %s are not provably \
                       self-maintainable — the view does not recover key \
                       attribute(s) %s of source %s; projecting them (or \
                       pinning them in the condition) would enable key-based \
                       drain maintenance"
                      r.source_relation
                      (pp_attrs missing)
                      r.source_alias)))
          t.reports
    in
    provable @ near_misses
