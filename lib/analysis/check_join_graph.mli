(** IVM020 — hidden Cartesian products.

    The paper's SPJ class (Section 3) is a projection over a selection over
    a product of sources; joins are just products whose condition links the
    operands.  When the source-connection graph (two sources connected iff
    some atom mentions attributes of both — see {!Query.Hypergraph.components})
    has more than one component, the view is the Cartesian product of the
    components: its cardinality and every differential maintenance step
    multiply across them.  Rarely intended, hence a Warning. *)

open Relalg

val check : lookup:(string -> Schema.t) -> Query.Spj.t -> Diagnostic.t list
