let check ~lookup (spj : Query.Spj.t) =
  if List.length spj.Query.Spj.sources < 2 then []
  else
    match Query.Hypergraph.components ~lookup spj with
    | [] | [ _ ] -> []
    | components ->
      let describe c = "{" ^ String.concat ", " c ^ "}" in
      [
        Diagnostic.make ~code:"IVM020" ~severity:Diagnostic.Warning
          ~paper:"Section 3 (view class)"
          (Printf.sprintf
             "the join graph is disconnected: no predicate links the source \
              groups %s, so the view is their Cartesian product and every \
              maintenance step pays the multiplied cardinality"
             (String.concat " x " (List.map describe components)));
      ]
