open Relalg
module F = Condition.Formula
module Sat = Condition.Satisfiability

(* Atoms of the original condition, not its DNF: conversion duplicates
   shared atoms across disjuncts and would repeat the diagnostic. *)
let rec atoms_of = function
  | F.True | F.False -> []
  | F.Atom a -> [ a ]
  | F.And (f, g) | F.Or (f, g) -> atoms_of f @ atoms_of g
  | F.Not f -> atoms_of f

let check ~lookup (spj : Query.Spj.t) =
  let typing = Query.Spj.typing lookup spj in
  let operand_ty = function
    | F.O_var a -> typing a
    | F.O_const v -> Value.ty_of v
  in
  let atoms =
    List.sort_uniq compare (atoms_of spj.Query.Spj.condition)
  in
  List.filter_map
    (fun (a : F.atom) ->
      let lt = operand_ty a.F.left and rt = operand_ty a.F.right in
      if lt <> rt then
        let truth =
          Sat.cross_type_truth a.F.cmp ~int_on_left:(lt = Value.Int_ty)
        in
        Some
          (Diagnostic.make ~code:"IVM040" ~severity:Diagnostic.Warning
             ~paper:"Section 4 (decidable class)"
             (Format.asprintf
                "comparison %a mixes INT and STRING operands and is \
                 constantly %b under Value.compare — probably a mistyped \
                 attribute or literal"
                F.pp_atom a truth))
      else if lt = Value.Str_ty && a.F.shift <> 0 then
        Some
          (Diagnostic.make ~code:"IVM040" ~severity:Diagnostic.Warning
             ~paper:"Section 4 (decidable class)"
             (Format.asprintf
                "atom %a applies an integer offset to string-typed operands: \
                 it falls outside every decidable fragment and weakens \
                 screening to Unknown"
                F.pp_atom a))
      else None)
    atoms
