(** Structured diagnostics for the view-definition static analyzer.

    Every check emits diagnostics with a stable code ([IVM001], [IVM002],
    ...), a severity and a human-readable message tied to the section of
    the paper that grounds the check.  [Error]-level diagnostics reject
    view registration (unless forced); [Warning]s flag probable definition
    mistakes or performance traps; [Hint]s surface facts the maintenance
    machinery could exploit. *)

type severity =
  | Error  (** the definition is broken; registration is refused *)
  | Warning  (** almost certainly not what the author meant *)
  | Hint  (** a provable fact worth knowing, not a defect *)

type t = {
  code : string;  (** stable code, e.g. ["IVM001"] *)
  severity : severity;
  message : string;
  context : string option;  (** source alias, relation or attribute *)
  paper : string option;  (** paper section grounding the check *)
}

val make :
  code:string ->
  severity:severity ->
  ?context:string ->
  ?paper:string ->
  string ->
  t

(** [Error] before [Warning] before [Hint]. *)
val compare_severity : severity -> severity -> int

(** Orders by severity, then code, then context. *)
val compare : t -> t -> int

val errors : t list -> t list
val has_errors : t list -> bool

(** [code_matches ~query code]: exact match, or whole-band prefix match
    when [query] ends in [*] ([IVM05*] selects IVM050–IVM059). *)
val code_matches : query:string -> string -> bool

(** Diagnostics matching the given code query (see {!code_matches}). *)
val with_code : string -> t list -> t list

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit

(** Severity-sorted listing followed by a one-line summary; [?code]
    restricts to a code query first (see {!code_matches}). *)
val pp_report : ?code:string -> Format.formatter -> t list -> unit
