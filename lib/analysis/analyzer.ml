(* Overlapping checks can emit the same diagnostic (e.g. two sources of
   one relation, both without a declared key); after the severity sort a
   stable pass drops exact duplicates, so output is deterministic and
   duplicate-free across runs. *)
let dedupe ds =
  List.rev
    (List.fold_left
       (fun acc d ->
         match acc with
         | prev :: _ when prev = d -> acc
         | _ -> d :: acc)
       [] ds)

let run ?(keys = []) ~lookup spj =
  dedupe
    (List.stable_sort Diagnostic.compare
       (List.concat
          [
            Check_satisfiable.check ~lookup spj;
            Check_redundancy.check ~lookup spj;
            Check_screening.check ~lookup spj;
            Check_join_graph.check ~lookup spj;
            Check_projection.check ~keys ~lookup spj;
            Check_types.check ~lookup spj;
            Check_self_maintain.check ~keys ~lookup spj;
          ]))

let run_expr ?view_name ?keys ?(minimize = true) ~lookup expr =
  (* The cycle check runs before compilation: a self-referencing
     definition cannot be compiled (its own name resolves to nothing),
     and IVM062 beats an unhandled lookup exception. *)
  match
    match view_name with
    | Some view_name -> Check_aggregate.cycle ~view_name expr
    | None -> []
  with
  | _ :: _ as cycle -> cycle
  | [] -> (
    let aggregate, inner_expr =
      match Query.Expr.aggregate expr with
      | Some (agg, inner) -> (Some agg, inner)
      | None -> (None, expr)
    in
    match Query.Spj.compile lookup inner_expr with
    | spj -> (
      let spj = if minimize then Query.Tableau.minimize spj else spj in
      let base = run ?keys ~lookup spj in
      match aggregate with
      | None -> base
      | Some agg ->
        dedupe
          (List.stable_sort Diagnostic.compare
             (base @ Check_aggregate.check ~lookup ~inner:spj agg)))
    | exception Query.Spj.Compile_error message ->
      [
        Diagnostic.make ~code:"IVM000" ~severity:Diagnostic.Error
          (Printf.sprintf "the definition does not compile: %s" message);
      ])

let ok diagnostics = not (Diagnostic.has_errors diagnostics)
