(* Overlapping checks can emit the same diagnostic (e.g. two sources of
   one relation, both without a declared key); after the severity sort a
   stable pass drops exact duplicates, so output is deterministic and
   duplicate-free across runs. *)
let dedupe ds =
  List.rev
    (List.fold_left
       (fun acc d ->
         match acc with
         | prev :: _ when prev = d -> acc
         | _ -> d :: acc)
       [] ds)

let run ?(keys = []) ~lookup spj =
  dedupe
    (List.stable_sort Diagnostic.compare
       (List.concat
          [
            Check_satisfiable.check ~lookup spj;
            Check_redundancy.check ~lookup spj;
            Check_screening.check ~lookup spj;
            Check_join_graph.check ~lookup spj;
            Check_projection.check ~keys ~lookup spj;
            Check_types.check ~lookup spj;
            Check_self_maintain.check ~keys ~lookup spj;
          ]))

let run_expr ?keys ?(minimize = true) ~lookup expr =
  match Query.Spj.compile lookup expr with
  | spj ->
    let spj = if minimize then Query.Tableau.minimize spj else spj in
    run ?keys ~lookup spj
  | exception Query.Spj.Compile_error message ->
    [
      Diagnostic.make ~code:"IVM000" ~severity:Diagnostic.Error
        (Printf.sprintf "the definition does not compile: %s" message);
    ]

let ok diagnostics = not (Diagnostic.has_errors diagnostics)
