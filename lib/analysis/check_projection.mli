(** IVM030 / IVM031 — projection safety and key retention (Section 5.2).

    [IVM030] (Error) covers structurally broken projections: an output
    attribute bound to a qualified attribute that no source provides, or
    two outputs sharing a name (the materialized schema would be invalid).
    The compiler rejects most of these already; the analyzer re-checks so
    hand-built or programmatically transformed {!Query.Spj.t} values get
    the same guarantees.

    [IVM031] (Hint) is the Section 5.2 choice point: when candidate keys of
    the base relations are declared, the analyzer decides whether the
    projection retains a key of every source (alternative 2 — every
    multiplicity counter is provably 1 and counters are redundant) or drops
    one (alternative 1 — duplicates can arise, as in Example 5.1, and the
    counted-projection counters are required). *)

open Relalg

type key_verdict =
  | Counters_redundant
      (** the projection determines a key of every source *)
  | Counters_required of string list
      (** aliases whose key is not retained by the projection *)

(** [None] when no keys are declared; otherwise the Section 5.2 verdict. *)
val key_retention : keys:Query.Keys.t -> Query.Spj.t -> key_verdict option

val check :
  ?keys:Query.Keys.t ->
  lookup:(string -> Schema.t) ->
  Query.Spj.t ->
  Diagnostic.t list
