module F = Condition.Formula
module Sat = Condition.Satisfiability

let simplify_conjunction ~typing atoms =
  let rec go kept removed = function
    | [] -> (List.rev kept, List.rev removed)
    | a :: rest -> (
      let others = List.rev_append kept rest in
      match Sat.conjunction ~typing (F.negate_atom a :: others) with
      | Sat.Unsat -> go kept (a :: removed) rest
      | Sat.Sat | Sat.Unknown -> go (a :: kept) removed rest)
  in
  go [] [] atoms

let check ~lookup (spj : Query.Spj.t) =
  let typing = Query.Spj.typing lookup spj in
  let dnf = spj.Query.Spj.condition_dnf in
  match Sat.dnf ~typing dnf with
  | Sat.Unsat -> [] (* IVM001 owns the globally unsatisfiable case *)
  | Sat.Sat | Sat.Unknown ->
    let multi = List.length dnf > 1 in
    let dead = ref 0 and dropped = ref 0 in
    let simplified =
      List.filter_map
        (fun conj ->
          match Sat.conjunction ~typing conj with
          | Sat.Unsat ->
            (* Only reachable with several disjuncts, since the whole DNF
               is not unsatisfiable. *)
            incr dead;
            None
          | Sat.Unknown -> Some conj
          | Sat.Sat ->
            let kept, removed = simplify_conjunction ~typing conj in
            dropped := !dropped + List.length removed;
            Some kept)
        dnf
    in
    if !dead = 0 && !dropped = 0 then []
    else begin
      let parts =
        List.filter_map Fun.id
          [
            (if !dropped > 0 then
               Some
                 (Printf.sprintf "%d atom(s) are implied by the rest of their \
                                  conjunction"
                    !dropped)
             else None);
            (if !dead > 0 && multi then
               Some (Printf.sprintf "%d disjunct(s) are unsatisfiable" !dead)
             else None);
          ]
      in
      [
        Diagnostic.make ~code:"IVM002" ~severity:Diagnostic.Hint
          ~paper:"Section 4 (satisfiability, p. 64)"
          (Format.asprintf
             "the condition can be simplified (%s); an equivalent condition \
              is: %a"
             (String.concat "; " parts)
             F.pp
             (F.of_dnf simplified));
      ]
    end
