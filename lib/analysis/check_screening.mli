(** IVM010 / IVM011 — static screening power per source (Algorithm 4.1).

    For every source the condition splits, disjunct by disjunct, into an
    {e invariant} part (no attribute of the source) and a {e variant} part
    (at least one attribute of the source) — Definition 4.2.  Two
    diagnostics fall out of the split alone, before any update arrives:

    - [IVM010] (Warning): some satisfiable disjunct has an {e empty variant
      part} for the source.  Substituting a tuple of that source leaves the
      disjunct untouched and satisfiable, so the Theorem 4.1 test can never
      reject an update to it — the irrelevance screen is pure overhead for
      this source.
    - [IVM011] (Hint): for every occurrence (alias) of a base relation, the
      invariant part of {e every} disjunct is unsatisfiable.  Then no update
      to that relation can ever affect the view (cf. Theorems 4.1–4.2) and
      maintenance may skip it entirely. *)

open Relalg

type split = {
  alias : string;
  relation : string;
  per_disjunct : (Condition.Formula.atom list * Condition.Formula.atom list) list;
      (** [(invariant, variant)] for each disjunct of the condition's DNF *)
}

(** The Definition 4.2 split of the condition for every source. *)
val splits : lookup:(string -> Schema.t) -> Query.Spj.t -> split list

val check : lookup:(string -> Schema.t) -> Query.Spj.t -> Diagnostic.t list
