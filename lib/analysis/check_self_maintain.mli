(** IVM050–IVM054 — self-maintainability (ROADMAP open item 5).

    A view is {e self-maintainable} for an update class when its new
    contents are computable from the update set plus the current
    materialization, with no base-relation access.  The analysis works from
    the SPJ definition alone:

    - {b Insertions} ([IVM050], Hint): provable exactly for single-source
      views ([p = 1]).  The only truth-table row carrying the delta is
      [dR], so the insert delta is [pi_X(sigma_C({t}))] per inserted tuple
      — the condition is fully evaluable by substitution (Definition 4.1)
      and no old part is joined.  With [p > 1] the delta rows join against
      old parts of the {e other} sources, which the update set cannot
      provide.
    - {b Deletions} ([IVM051], Hint): provable for [p = 1] by the same
      direct computation, and for multi-source views by {e key recovery}:
      if, for every source over the deleted relation, the equality classes
      of the (single-conjunct) condition let a declared candidate key of
      that relation be read back off a view tuple — each key attribute's
      class contains a projected output or is pinned to a constant — then
      every derivation of a view tuple shares the one base tuple with that
      key, so deleting a base tuple drains exactly the view tuples whose
      recovered key matches, counters and all.  This is the Section 5.2
      key-retention argument turned from counter-redundancy into a
      maintenance procedure.

    Near-misses are Warnings, emitted only when the caller declared keys
    (mirroring [IVM031]): [IVM052] names the key attributes the projection
    fails to recover, [IVM053] flags a relation with no declared key at
    all, and [IVM054] reports that a disjunctive condition blocks the
    per-conjunct equality-class analysis for multi-source views.

    Declared keys are trusted, exactly as in {!Query.Keys}: declaring a
    non-key unsoundly widens what the analysis certifies. *)

open Relalg

(** How one attribute of a recovered candidate key is read back off a view
    tuple. *)
type binding =
  | From_output of int  (** view-tuple position carrying the value *)
  | Pinned of Value.t  (** the condition pins the attribute to a constant *)

(** Proof that deletions from one source are drainable by key: [bindings]
    pairs each key attribute's position in the {e base} schema with its
    recovery rule. *)
type delete_plan = {
  alias : string;
  relation : string;
  key : Attr.t list;  (** the declared candidate key the proof uses *)
  bindings : (int * binding) list;
}

type source_status =
  | Plan of delete_plan
  | No_declared_key
  | Undetermined of Attr.t list
      (** qualified key attributes the projection does not recover *)

type source_report = {
  source_alias : string;
  source_relation : string;
  status : source_status;
}

type t = {
  single_source : (string * string) option;
      (** [(alias, relation)] when [p = 1]: inserts and deletes are both
          directly computable, whatever the condition's shape *)
  disjunctive : bool;
      (** the DNF has several disjuncts, so the key analysis was skipped
          for multi-source views (equality classes are per-conjunct) *)
  reports : source_report list;  (** per source, in declaration order *)
}

val analyze :
  keys:Query.Keys.t -> lookup:(string -> Schema.t) -> Query.Spj.t -> t

(** [insert_self_maintainable t relation]: insertions into [relation] are
    provably self-maintainable. *)
val insert_self_maintainable : t -> string -> bool

(** [delete_self_maintainable t relation]: deletions from [relation] are
    provably self-maintainable (directly for [p = 1], by key recovery
    otherwise). *)
val delete_self_maintainable : t -> string -> bool

(** The key-recovery plans covering {e every} source over [relation], when
    the keyed argument applies; [None] otherwise (including the [p = 1]
    case, which needs no plan). *)
val delete_plans : t -> string -> delete_plan list option

val check :
  ?keys:Query.Keys.t ->
  lookup:(string -> Schema.t) ->
  Query.Spj.t ->
  Diagnostic.t list
