(** IVM002 — redundant atoms and dead disjuncts.

    An atom implied by the rest of its conjunction (the conjunction with
    the atom negated is unsatisfiable) can be dropped without changing the
    view; a disjunct that is itself unsatisfiable contributes nothing and
    only slows down screening and evaluation.  Both facts are established
    with the Section 4 satisfiability procedure, so every suggestion is a
    proof, not a heuristic.  Runs only on conditions that are not globally
    unsatisfiable — {!Check_satisfiable} owns that case. *)

open Relalg

(** [simplify_conjunction ~typing atoms] greedily removes atoms implied by
    the remaining ones; returns [(kept, removed)].  Equivalence is
    preserved at every step: an atom is removed only when its negation
    together with the currently surviving atoms is provably unsatisfiable. *)
val simplify_conjunction :
  typing:Condition.Satisfiability.typing ->
  Condition.Formula.atom list ->
  Condition.Formula.atom list * Condition.Formula.atom list

val check : lookup:(string -> Schema.t) -> Query.Spj.t -> Diagnostic.t list
