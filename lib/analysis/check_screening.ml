open Relalg
module Sat = Condition.Satisfiability
module Substitute = Condition.Substitute

type split = {
  alias : string;
  relation : string;
  per_disjunct : (Condition.Formula.atom list * Condition.Formula.atom list) list;
}

let splits ~lookup (spj : Query.Spj.t) =
  List.map
    (fun (s : Query.Spj.source) ->
      let schema = Query.Spj.qualified_schema lookup s in
      let bound = Schema.mem schema in
      let per_disjunct =
        List.map
          (fun conj ->
            let parts = Substitute.split_conjunction ~bound conj in
            (parts.Substitute.invariant, parts.Substitute.variant))
          spj.Query.Spj.condition_dnf
      in
      {
        alias = s.Query.Spj.alias;
        relation = s.Query.Spj.relation;
        per_disjunct;
      })
    spj.Query.Spj.sources

let check ~lookup (spj : Query.Spj.t) =
  let typing = Query.Spj.typing lookup spj in
  let source_splits = splits ~lookup spj in
  (* IVM010: a satisfiable disjunct the source cannot influence keeps the
     substituted condition satisfiable for every tuple. *)
  let unscreenable =
    List.filter
      (fun s ->
        List.exists
          (fun (invariant, variant) ->
            variant = [] && Sat.conjunction ~typing invariant <> Sat.Unsat)
          s.per_disjunct)
      source_splits
  in
  let ivm010 =
    List.map
      (fun s ->
        Diagnostic.make ~code:"IVM010" ~severity:Diagnostic.Warning
          ~context:s.alias ~paper:"Algorithm 4.1, Definition 4.2"
          (Printf.sprintf
             "no attribute of source %s (relation %s) occurs in a variant \
              position of the condition: the irrelevance screen can never \
              reject an update to it, so screening this source is pure \
              overhead"
             s.alias s.relation))
      unscreenable
  in
  (* IVM011: the invariant part alone refutes every disjunct, so no tuple
     substituted for this source can revive the condition. *)
  let always_irrelevant s =
    List.for_all
      (fun (invariant, _) -> Sat.conjunction ~typing invariant = Sat.Unsat)
      s.per_disjunct
  in
  let relations =
    List.sort_uniq String.compare
      (List.map (fun s -> s.relation) source_splits)
  in
  let ivm011 =
    List.filter_map
      (fun relation ->
        let occurrences =
          List.filter
            (fun s -> String.equal s.relation relation)
            source_splits
        in
        if occurrences <> [] && List.for_all always_irrelevant occurrences then
          Some
            (Diagnostic.make ~code:"IVM011" ~severity:Diagnostic.Hint
               ~context:relation ~paper:"Theorems 4.1 and 4.2"
               (Printf.sprintf
                  "every update to relation %s is provably irrelevant: the \
                   invariant part of the condition is unsatisfiable for each \
                   of its occurrences, so maintenance can skip this relation \
                   entirely"
                  relation))
        else None)
      relations
  in
  ivm010 @ ivm011
