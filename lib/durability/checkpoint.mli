(** Checkpoint snapshots: one {!State} image, atomically replaced.

    Layout mirrors the WAL: an ["IVMCKP" <u16le version>] header
    followed by a single [<u32le len> <u32le crc32> <payload>] frame
    holding the encoded state.  {!write} goes through a temp file +
    fsync + rename, so the checkpoint on disk is always whole: a crash
    mid-checkpoint leaves the previous one in place and the WAL tail
    still covers the difference. *)

val magic : string
val version : int

(** Atomically (tmp + fsync + rename) replace the checkpoint at [path].
    Raises [Unix.Unix_error] on I/O failure. *)
val write : string -> State.t -> unit

(** [read path] is [None] when no checkpoint exists.
    @raise Wal.Incompatible_wal on a foreign or wrong-version file.
    @raise Codec.Corrupt when the frame fails its checksum or does not
    decode (a checkpoint is atomic; a bad one is corruption, not a torn
    tail). *)
val read : string -> State.t option
