(** The write-ahead log file.

    On-disk layout (see [docs/recovery.md]):
    {v
    "IVMWAL" <u16le version>                      -- 8-byte header
    repeat: <u32le len> <u32le crc32> <payload>   -- one frame per record
    v}
    where [payload] is the record LSN (64-bit LE) followed by the
    {!Record} encoding, and [crc32] covers the payload bytes.

    LSNs increase monotonically across the lifetime of the log,
    surviving checkpoint truncation (the counter resumes past the
    checkpoint's covered LSN), so an LSN names one engine state
    unambiguously — the key the crash-recovery oracle uses.

    Opening scans the whole log: a frame that is cut short, fails its
    checksum, or does not decode marks the {e torn tail}, which is
    physically truncated away (a crash mid-append must not poison later
    appends).  A file that does not start with the magic/version header
    raises {!Incompatible_wal} and is left untouched. *)

exception Incompatible_wal of string
(** The file exists but is not a WAL this build can read: wrong magic
    (foreign file) or wrong format version.  The payload is a
    diagnostic naming the path and what was found. *)

type t

val magic : string
val version : int

(** [open_ ~fsync path] opens (creating if missing) the log, validates
    the header, truncates any torn tail, and returns the writer plus
    every surviving record with its LSN, in append order.
    @raise Incompatible_wal as above. *)
val open_ : fsync:Config.fsync -> string -> t * (int * Record.t) list

(** [append t record] frames, checksums and writes the record and
    returns its LSN.  It does {e not} sync — call {!maybe_sync} (policy)
    or {!sync} (unconditional) after; the split lets the manager place a
    crash-injection point between the write and the sync.  Raises
    [Unix.Unix_error] on I/O failure — the caller should treat that as
    fatal for durability (the in-memory commit has already happened). *)
val append : t -> Record.t -> int

(** Apply the configured fsync policy to buffered appends: [Always]
    syncs now, [Every n] syncs once [n] appends are buffered (group
    commit), [Never] leaves syncing to the OS. *)
val maybe_sync : t -> unit

(** Unconditional fsync of buffered appends (no-op when clean). *)
val sync : t -> unit

(** LSN of the last appended (or scanned, or [ensure_lsn]-advanced)
    record; 0 for a fresh log. *)
val last_lsn : t -> int

(** Advance the LSN counter to at least [lsn] (a checkpoint may cover
    records the truncated log no longer holds). *)
val ensure_lsn : t -> int -> unit

(** Bytes of torn tail discarded when the log was opened. *)
val torn_bytes : t -> int

(** Logical size in bytes (header included). *)
val size : t -> int

(** Drop every record (after a checkpoint made them redundant); the
    LSN counter is preserved. *)
val truncate_to_header : t -> unit

(** Read-only scan of a log file: [(lsn, offset, frame_length)] for
    every whole record, in order.  Torn tails are ignored, not
    truncated.  Used by tests to compute byte extents.
    @raise Incompatible_wal on a foreign header. *)
val entries : string -> (int * int * int) list
