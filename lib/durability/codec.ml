open Relalg

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Durability.Codec.Corrupt(%s)" msg)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)                 *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

(* ------------------------------------------------------------------ *)
(* primitives                                                           *)
(* ------------------------------------------------------------------ *)

let w_int b i = Buffer.add_int64_le b (Int64.of_int i)
let w_byte b i = Buffer.add_char b (Char.chr (i land 0xff))
let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_list w b xs =
  w_int b (List.length xs);
  List.iter (w b) xs

let w_option w b = function
  | None -> w_bool b false
  | Some v ->
    w_bool b true;
    w b v

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let pos r = r.pos

let need r n =
  if n < 0 || r.pos + n > String.length r.src then
    corrupt "truncated input: need %d bytes at offset %d of %d" n r.pos
      (String.length r.src)

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let r_byte r =
  need r 1;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_bool r =
  match r_byte r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool byte %d at offset %d" n (r.pos - 1)

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* Length sanity: a decoded collection can never hold more elements
   than remaining bytes (every element costs at least one byte). *)
let r_len r =
  let n = r_int r in
  if n < 0 || n > String.length r.src - r.pos then
    corrupt "implausible length %d at offset %d" n (r.pos - 8);
  n

let r_list rd r =
  let n = r_len r in
  let acc = ref [] in
  for _ = 1 to n do
    acc := rd r :: !acc
  done;
  List.rev !acc

let r_option rd r = if r_bool r then Some (rd r) else None

let expect_end r =
  if r.pos <> String.length r.src then
    corrupt "trailing garbage: %d of %d bytes unread"
      (String.length r.src - r.pos)
      (String.length r.src)

(* ------------------------------------------------------------------ *)
(* relalg values                                                        *)
(* ------------------------------------------------------------------ *)

let w_value b = function
  | Value.Int i ->
    Buffer.add_char b '\000';
    w_int b i
  | Value.Str s ->
    Buffer.add_char b '\001';
    w_string b s

let r_value r =
  match r_byte r with
  | 0 -> Value.Int (r_int r)
  | 1 -> Value.Str (r_string r)
  | t -> corrupt "bad value tag %d at offset %d" t (r.pos - 1)

let w_tuple b t =
  w_int b (Array.length t);
  Array.iter (w_value b) t

let r_tuple r =
  let n = r_len r in
  let a = Array.make n (Value.Int 0) in
  for i = 0 to n - 1 do
    a.(i) <- r_value r
  done;
  a

let w_ty b = function
  | Value.Int_ty -> Buffer.add_char b '\000'
  | Value.Str_ty -> Buffer.add_char b '\001'

let r_ty r =
  match r_byte r with
  | 0 -> Value.Int_ty
  | 1 -> Value.Str_ty
  | t -> corrupt "bad type tag %d at offset %d" t (r.pos - 1)

let w_bounds b bounds =
  w_option
    (fun b (lo, hi) ->
      w_int b lo;
      w_int b hi)
    b bounds

let r_bounds r =
  r_option
    (fun r ->
      let lo = r_int r in
      let hi = r_int r in
      (lo, hi))
    r

let w_schema b schema =
  w_list
    (fun b (attr, ty) ->
      w_string b attr;
      w_ty b ty;
      w_bounds b (Schema.bounds schema attr))
    b (Schema.attrs schema)

let r_schema r =
  let cols =
    r_list
      (fun r ->
        let attr = r_string r in
        let ty = r_ty r in
        let bounds = r_bounds r in
        (attr, ty, bounds))
      r
  in
  match Schema.make_bounded cols with
  | schema -> schema
  | exception Invalid_argument msg -> corrupt "bad schema: %s" msg

let w_relation b rel =
  w_schema b (Relation.schema rel);
  w_list
    (fun b (tuple, count) ->
      w_tuple b tuple;
      w_int b count)
    b
    (Relation.sorted_elements rel)

let r_relation r =
  let schema = r_schema r in
  let counted =
    r_list
      (fun r ->
        let tuple = r_tuple r in
        let count = r_int r in
        if count <= 0 then corrupt "non-positive counter %d" count;
        (tuple, count))
      r
  in
  match Relation.of_counted schema counted with
  | rel -> rel
  | exception Invalid_argument msg -> corrupt "bad relation: %s" msg

let w_net b (net : Transaction.net) =
  w_list
    (fun b (relation, (inserts, deletes)) ->
      w_string b relation;
      w_list w_tuple b inserts;
      w_list w_tuple b deletes)
    b net

let r_net r : Transaction.net =
  r_list
    (fun r ->
      let relation = r_string r in
      let inserts = r_list r_tuple r in
      let deletes = r_list r_tuple r in
      (relation, (inserts, deletes)))
    r
