(** WAL record payloads.

    One record per manager operation that changes durable state:

    - [Commit]: one per {e commit attempt} — the netted base deltas,
      the commit-start self-heal transitions, and each participating
      view's outcome.  An aborted commit logs an empty net (heals and
      the sequence bump are its only surviving effects).
    - [Heal], [Repair], [Refresh]: explicit manager calls that moved
      state outside a commit.

    Recovery replays records through the live maintenance machinery:
    [Applied] views re-run their maintenance (deterministic — the
    strategies all produce the same counters), [Faulted] views are
    forced back into quarantine with the recorded error, and [Cascade]
    quarantines re-emerge organically from the replayed parents. *)

(** A view's participation in a logged commit. *)
type outcome =
  | Applied  (** maintained successfully *)
  | Faulted of string
      (** quarantined by a maintenance fault; payload is the error
          rendering, reproduced verbatim on replay *)
  | Cascade of string
      (** quarantined because a parent was stale; reproduced by the
          replayed dependents phase, not forced *)

(** A health transition from one self-heal attempt. *)
type health_change = {
  view : string;
  healed : bool;  (** the view was healthy after the attempt *)
  health : State.health;  (** resulting health *)
}

type t =
  | Commit of {
      seq : int;
      heals : health_change list;  (** commit-start auto-heal attempts *)
      net : Relalg.Transaction.net;  (** [] for an aborted commit *)
      outcomes : (string * outcome) list;
    }
  | Heal of { seq : int; change : health_change }
  | Repair of { seq : int; view : string }
  | Refresh of { seq : int; view : string }

val seq : t -> int
val encode : Buffer.t -> t -> unit
val decode : Codec.reader -> t
val describe : t -> string
