open Relalg

type health =
  | Healthy
  | Quarantined of {
      error : string;
      since : int;
      heal_failures : int;
      next_eligible : int;
    }
  | Disabled of { error : string; since : int; heal_failures : int }

type view_state = {
  view : string;
  health : health;
  contents : Relation.t;
  grouped : Relation.t option;
  pending : (string * Relation.t * Relation.t) list;
}

type t = {
  seq : int;
  lsn : int;
  relations : (string * Relation.t) list;
  views : view_state list;
}

let w_health b = function
  | Healthy -> Buffer.add_char b '\000'
  | Quarantined { error; since; heal_failures; next_eligible } ->
    Buffer.add_char b '\001';
    Codec.w_string b error;
    Codec.w_int b since;
    Codec.w_int b heal_failures;
    Codec.w_int b next_eligible
  | Disabled { error; since; heal_failures } ->
    Buffer.add_char b '\002';
    Codec.w_string b error;
    Codec.w_int b since;
    Codec.w_int b heal_failures

let r_health r =
  match Codec.r_byte r with
  | 0 -> Healthy
  | 1 ->
    let error = Codec.r_string r in
    let since = Codec.r_int r in
    let heal_failures = Codec.r_int r in
    let next_eligible = Codec.r_int r in
    Quarantined { error; since; heal_failures; next_eligible }
  | 2 ->
    let error = Codec.r_string r in
    let since = Codec.r_int r in
    let heal_failures = Codec.r_int r in
    Disabled { error; since; heal_failures }
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad health tag %d" t))

let w_view b v =
  Codec.w_string b v.view;
  w_health b v.health;
  Codec.w_relation b v.contents;
  Codec.w_option Codec.w_relation b v.grouped;
  Codec.w_list
    (fun b (relation, inserts, deletes) ->
      Codec.w_string b relation;
      Codec.w_relation b inserts;
      Codec.w_relation b deletes)
    b v.pending

let encode b t =
  Codec.w_int b t.seq;
  Codec.w_int b t.lsn;
  Codec.w_list
    (fun b (name, rel) ->
      Codec.w_string b name;
      Codec.w_relation b rel)
    b t.relations;
  Codec.w_list w_view b t.views

let decode r =
  let seq = Codec.r_int r in
  let lsn = Codec.r_int r in
  let relations =
    Codec.r_list
      (fun r ->
        let name = Codec.r_string r in
        let rel = Codec.r_relation r in
        (name, rel))
      r
  in
  let views =
    Codec.r_list
      (fun r ->
        let view = Codec.r_string r in
        let health = r_health r in
        let contents = Codec.r_relation r in
        let grouped = Codec.r_option Codec.r_relation r in
        let pending =
          Codec.r_list
            (fun r ->
              let relation = Codec.r_string r in
              let inserts = Codec.r_relation r in
              let deletes = Codec.r_relation r in
              (relation, inserts, deletes))
            r
        in
        { view; health; contents; grouped; pending })
      r
  in
  { seq; lsn; relations; views }

let health_string = function
  | Healthy -> "healthy"
  | Quarantined { error; since; heal_failures; next_eligible } ->
    Printf.sprintf
      "quarantined(%s since %d, %d failed rounds, eligible at %d)" error since
      heal_failures next_eligible
  | Disabled { error; since; heal_failures } ->
    Printf.sprintf "disabled(%s since %d, %d failed rounds)" error since
      heal_failures

let pp_health ppf h = Format.pp_print_string ppf (health_string h)

let rel_diff what a b =
  if Relation.equal a b then None
  else
    Some
      (Printf.sprintf "%s differs: %d vs %d tuples (%d vs %d counted)" what
         (Relation.cardinal a) (Relation.cardinal b) (Relation.total a)
         (Relation.total b))

let rec first_some = function
  | [] -> None
  | f :: rest -> ( match f () with Some _ as d -> d | None -> first_some rest)

let pending_diff view a b =
  let keys l = List.sort_uniq compare (List.map (fun (r, _, _) -> r) l) in
  if keys a <> keys b then
    Some
      (Printf.sprintf "view %s pending relations differ: {%s} vs {%s}" view
         (String.concat "," (keys a))
         (String.concat "," (keys b)))
  else
    first_some
      (List.map
         (fun (relation, ins_a, del_a) () ->
           let _, ins_b, del_b =
             List.find (fun (r, _, _) -> r = relation) b
           in
           first_some
             [
               (fun () ->
                 rel_diff
                   (Printf.sprintf "view %s pending %s inserts" view relation)
                   ins_a ins_b);
               (fun () ->
                 rel_diff
                   (Printf.sprintf "view %s pending %s deletes" view relation)
                   del_a del_b);
             ])
         a)

let view_diff a b =
  if a.view <> b.view then
    Some (Printf.sprintf "view order differs: %s vs %s" a.view b.view)
  else
    first_some
      [
        (fun () ->
          if a.health <> b.health then
            Some
              (Printf.sprintf "view %s health differs: %s vs %s" a.view
                 (health_string a.health) (health_string b.health))
          else None);
        (fun () ->
          rel_diff (Printf.sprintf "view %s contents" a.view) a.contents
            b.contents);
        (fun () ->
          match (a.grouped, b.grouped) with
          | None, None -> None
          | Some ga, Some gb ->
            rel_diff (Printf.sprintf "view %s inner state" a.view) ga gb
          | _ -> Some (Printf.sprintf "view %s grouped-ness differs" a.view));
        (fun () -> pending_diff a.view a.pending b.pending);
      ]

let diff a b =
  first_some
    [
      (fun () ->
        if a.seq <> b.seq then
          Some (Printf.sprintf "commit seq differs: %d vs %d" a.seq b.seq)
        else None);
      (fun () ->
        let names l = List.map fst l in
        if names a.relations <> names b.relations then
          Some
            (Printf.sprintf "base relations differ: {%s} vs {%s}"
               (String.concat "," (names a.relations))
               (String.concat "," (names b.relations)))
        else
          first_some
            (List.map2
               (fun (name, ra) (_, rb) () ->
                 rel_diff (Printf.sprintf "base relation %s" name) ra rb)
               a.relations b.relations));
      (fun () ->
        if List.length a.views <> List.length b.views then
          Some
            (Printf.sprintf "view count differs: %d vs %d"
               (List.length a.views) (List.length b.views))
        else
          first_some
            (List.map2 (fun va vb () -> view_diff va vb) a.views b.views));
    ]

let equal a b = diff a b = None
