(** Durability configuration: where the log lives and how hard it
    syncs. *)

(** When appended WAL records reach the disk platter.  [Always] fsyncs
    every record (one commit, one fsync); [Every n] group-commits — the
    fsync is shared by up to [n] netted commits, the shape the paper's
    batched maintenance already encourages; [Never] leaves syncing to
    the OS (crash-safe against process kills, not power loss). *)
type fsync =
  | Always
  | Every of int
  | Never

type t = {
  dir : string;  (** directory holding [wal.bin] and [checkpoint.bin] *)
  fsync : fsync;
  checkpoint_every : int;
      (** write a checkpoint (and truncate the WAL) after this many
          appended records; 0 disables automatic checkpoints *)
}

(** [make ?fsync ?checkpoint_every dir] — defaults: [Always], [0].
    Creates [dir] (one level) if missing. *)
val make : ?fsync:fsync -> ?checkpoint_every:int -> string -> t

val wal_path : t -> string
val checkpoint_path : t -> string
