type fsync =
  | Always
  | Every of int
  | Never

type t = { dir : string; fsync : fsync; checkpoint_every : int }

let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let make ?(fsync = Always) ?(checkpoint_every = 0) dir =
  ensure_dir dir;
  { dir; fsync; checkpoint_every = max 0 checkpoint_every }

let wal_path t = Filename.concat t.dir "wal.bin"
let checkpoint_path t = Filename.concat t.dir "checkpoint.bin"
