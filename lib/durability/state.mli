(** A serializable image of the whole engine state — base relations,
    every view's materialization (inner state included for grouped
    views), banked pending deltas, and per-view health — plus the
    commit sequence number and the WAL position it corresponds to.

    This is the checkpoint payload and the unit of comparison for the
    crash-recovery oracle: two states are interchangeable iff {!diff}
    returns [None].  Health deliberately omits backtraces (they are
    diagnostic text, not state) so a recovered quarantine compares
    equal to the live one it mirrors. *)

open Relalg

type health =
  | Healthy
  | Quarantined of {
      error : string;
      since : int;
      heal_failures : int;
      next_eligible : int;
    }
  | Disabled of { error : string; since : int; heal_failures : int }

type view_state = {
  view : string;
  health : health;
  contents : Relation.t;
  grouped : Relation.t option;
      (** inner SPJ materialization of a GROUP BY view *)
  pending : (string * Relation.t * Relation.t) list;
      (** banked deltas: relation name, composed inserts, deletes *)
}

type t = {
  seq : int;  (** manager commit sequence at capture *)
  lsn : int;  (** last WAL record this state covers *)
  relations : (string * Relation.t) list;  (** base relations, by name *)
  views : view_state list;  (** definition order *)
}

val encode : Buffer.t -> t -> unit
val decode : Codec.reader -> t
val w_health : Buffer.t -> health -> unit
val r_health : Codec.reader -> health

(** First difference between two states, human-readable, or [None] when
    they are bit-identical (counters, health and pending included). *)
val diff : t -> t -> string option

val equal : t -> t -> bool
val pp_health : Format.formatter -> health -> unit
