exception Incompatible_wal of string

let () =
  Printexc.register_printer (function
    | Incompatible_wal msg ->
      Some (Printf.sprintf "Durability.Incompatible_wal(%s)" msg)
    | _ -> None)

let magic = "IVMWAL"
let version = 1
let header_size = String.length magic + 2

(* A frame longer than this is torn/garbage, not data: it bounds how
   much a corrupted length prefix can make the scanner allocate. *)
let max_frame = 1 lsl 26

let header_bytes =
  let b = Buffer.create header_size in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (version land 0xff));
  Buffer.add_char b (Char.chr ((version lsr 8) land 0xff));
  Buffer.contents b

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : Config.fsync;
  torn : int;  (* torn-tail bytes discarded at open *)
  mutable last_lsn : int;
  mutable size : int;
  mutable unsynced : int;
}

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

let check_header ~path content =
  let len = String.length content in
  if len < header_size then
    raise
      (Incompatible_wal
         (Printf.sprintf "%s: %d-byte file is shorter than the %d-byte header"
            path len header_size))
  else if String.sub content 0 (String.length magic) <> magic then
    raise
      (Incompatible_wal
         (Printf.sprintf "%s: bad magic %S (expected %S)" path
            (String.sub content 0 (min len (String.length magic)))
            magic))
  else
    let v =
      Char.code content.[String.length magic]
      lor (Char.code content.[String.length magic + 1] lsl 8)
    in
    if v <> version then
      raise
        (Incompatible_wal
           (Printf.sprintf "%s: format version %d (this build reads %d)" path v
              version))

(* Scan frames from [header_size]; returns the whole records (with their
   byte extents) and the offset where the good prefix ends. *)
let scan content =
  let size = String.length content in
  let records = ref [] in
  let off = ref header_size in
  let stop = ref false in
  while not !stop do
    let remaining = size - !off in
    if remaining = 0 then stop := true
    else if remaining < 8 then stop := true
    else begin
      let len = Int32.to_int (String.get_int32_le content !off) land 0xffffffff in
      let crc = String.get_int32_le content (!off + 4) in
      if len > max_frame || len > remaining - 8 then stop := true
      else if Codec.crc32 content ~pos:(!off + 8) ~len <> crc then stop := true
      else begin
        match
          let r = Codec.reader ~pos:(!off + 8) content in
          let lsn = Codec.r_int r in
          let record = Record.decode r in
          if Codec.pos r <> !off + 8 + len then
            raise (Codec.Corrupt "frame length does not match payload");
          (lsn, record)
        with
        | lsn, record ->
          records := (lsn, record, !off, 8 + len) :: !records;
          off := !off + 8 + len
        | exception Codec.Corrupt _ -> stop := true
      end
    end
  done;
  (List.rev !records, !off)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let open_ ~fsync path =
  let content = read_file path in
  let fresh = String.length content = 0 in
  if not fresh then check_header ~path content;
  let records, good = if fresh then ([], header_size) else scan content in
  let torn = if fresh then 0 else String.length content - good in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if fresh then begin
    write_all fd (Bytes.of_string header_bytes) 0 header_size;
    Unix.fsync fd
  end
  else if torn > 0 then begin
    (* A crash mid-append left a torn frame: cut it off physically so
       the next append starts on a clean boundary. *)
    Unix.ftruncate fd good;
    Unix.fsync fd;
    Obs.Metrics.add "ivm_wal_truncations_total" ~labels:[ ("kind", "torn") ] 1;
    Obs.Metrics.observe "ivm_recovery_torn_bytes" torn
  end;
  ignore (Unix.lseek fd good Unix.SEEK_SET);
  let last_lsn =
    List.fold_left (fun acc (lsn, _, _, _) -> max acc lsn) 0 records
  in
  let t = { path; fd; fsync; torn; last_lsn; size = good; unsynced = 0 } in
  (t, List.map (fun (lsn, record, _, _) -> (lsn, record)) records)

let torn_bytes t = t.torn

let last_lsn t = t.last_lsn
let size t = t.size
let ensure_lsn t lsn = if lsn > t.last_lsn then t.last_lsn <- lsn

let do_sync t =
  if t.unsynced > 0 then begin
    Unix.fsync t.fd;
    t.unsynced <- 0;
    Obs.Metrics.add "ivm_wal_fsyncs_total" ~labels:[] 1
  end

let sync = do_sync

let append t record =
  let lsn = t.last_lsn + 1 in
  let payload = Buffer.create 256 in
  Codec.w_int payload lsn;
  Record.encode payload record;
  let len = Buffer.length payload in
  (* One frame buffer, one write: the length prefix is known only after
     encoding, so the payload is blitted behind an 8-byte header rather
     than copied through a second Buffer. *)
  let frame = Bytes.create (8 + len) in
  Buffer.blit payload 0 frame 8 len;
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.set_int32_le frame 4
    (Codec.crc32 (Bytes.unsafe_to_string frame) ~pos:8 ~len);
  write_all t.fd frame 0 (8 + len);
  t.size <- t.size + 8 + len;
  t.last_lsn <- lsn;
  t.unsynced <- t.unsynced + 1;
  Obs.Metrics.add "ivm_wal_appends_total" ~labels:[] 1;
  Obs.Metrics.observe "ivm_wal_bytes" (8 + len);
  lsn

let maybe_sync t =
  match t.fsync with
  | Config.Always -> do_sync t
  | Config.Every n -> if t.unsynced >= max 1 n then do_sync t
  | Config.Never -> ()

let truncate_to_header t =
  Unix.ftruncate t.fd header_size;
  ignore (Unix.lseek t.fd header_size Unix.SEEK_SET);
  Unix.fsync t.fd;
  t.size <- header_size;
  t.unsynced <- 0;
  Obs.Metrics.add "ivm_wal_truncations_total"
    ~labels:[ ("kind", "checkpoint") ]
    1

let entries path =
  let content = read_file path in
  if String.length content = 0 then []
  else begin
    check_header ~path content;
    let records, _ = scan content in
    List.map (fun (lsn, _, off, len) -> (lsn, off, len)) records
  end
