type outcome =
  | Applied
  | Faulted of string
  | Cascade of string

type health_change = { view : string; healed : bool; health : State.health }

type t =
  | Commit of {
      seq : int;
      heals : health_change list;
      net : Relalg.Transaction.net;
      outcomes : (string * outcome) list;
    }
  | Heal of { seq : int; change : health_change }
  | Repair of { seq : int; view : string }
  | Refresh of { seq : int; view : string }

let seq = function
  | Commit { seq; _ } | Heal { seq; _ } | Repair { seq; _ } | Refresh { seq; _ }
    ->
    seq

let w_outcome b = function
  | Applied -> Codec.w_byte b 0
  | Faulted err ->
    Codec.w_byte b 1;
    Codec.w_string b err
  | Cascade detail ->
    Codec.w_byte b 2;
    Codec.w_string b detail

let r_outcome r =
  match Codec.r_byte r with
  | 0 -> Applied
  | 1 -> Faulted (Codec.r_string r)
  | 2 -> Cascade (Codec.r_string r)
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad outcome tag %d" t))

let w_change b c =
  Codec.w_string b c.view;
  Codec.w_bool b c.healed;
  State.w_health b c.health

let r_change r =
  let view = Codec.r_string r in
  let healed = Codec.r_bool r in
  let health = State.r_health r in
  { view; healed; health }

let encode b = function
  | Commit { seq; heals; net; outcomes } ->
    Codec.w_byte b 0;
    Codec.w_int b seq;
    Codec.w_list w_change b heals;
    Codec.w_net b net;
    Codec.w_list
      (fun b (view, outcome) ->
        Codec.w_string b view;
        w_outcome b outcome)
      b outcomes
  | Heal { seq; change } ->
    Codec.w_byte b 1;
    Codec.w_int b seq;
    w_change b change
  | Repair { seq; view } ->
    Codec.w_byte b 2;
    Codec.w_int b seq;
    Codec.w_string b view
  | Refresh { seq; view } ->
    Codec.w_byte b 3;
    Codec.w_int b seq;
    Codec.w_string b view

let decode r =
  match Codec.r_byte r with
  | 0 ->
    let seq = Codec.r_int r in
    let heals = Codec.r_list r_change r in
    let net = Codec.r_net r in
    let outcomes =
      Codec.r_list
        (fun r ->
          let view = Codec.r_string r in
          let outcome = r_outcome r in
          (view, outcome))
        r
    in
    Commit { seq; heals; net; outcomes }
  | 1 ->
    let seq = Codec.r_int r in
    let change = r_change r in
    Heal { seq; change }
  | 2 ->
    let seq = Codec.r_int r in
    let view = Codec.r_string r in
    Repair { seq; view }
  | 3 ->
    let seq = Codec.r_int r in
    let view = Codec.r_string r in
    Refresh { seq; view }
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad record tag %d" t))

let describe = function
  | Commit { seq; heals; net; outcomes } ->
    Printf.sprintf "commit %d (%d relations, %d heals, %d outcomes%s)" seq
      (List.length net) (List.length heals) (List.length outcomes)
      (if net = [] && outcomes = [] then ", aborted" else "")
  | Heal { seq; change } ->
    Printf.sprintf "heal %d (%s, %s)" seq change.view
      (if change.healed then "healed" else "failed")
  | Repair { seq; view } -> Printf.sprintf "repair %d (%s)" seq view
  | Refresh { seq; view } -> Printf.sprintf "refresh %d (%s)" seq view
