(** Durable commit pipeline: write-ahead log, checkpoints and crash
    recovery for the view maintenance engine.

    The layer is deliberately below [lib/core]: it speaks only
    {!Relalg} types (relations, tuples, net effects) plus its own
    {!State} and {!Record} vocabulary, and {!Ivm.Manager} does the
    translation at the boundary.  See [docs/recovery.md] for the
    on-disk format and the fsync policy discussion. *)

module Codec = Codec
module Config = Config
module State = State
module Record = Record
module Wal = Wal
module Checkpoint = Checkpoint

exception Incompatible_wal = Wal.Incompatible_wal
exception Corrupt = Codec.Corrupt
