let magic = "IVMCKP"
let version = 1
let header_size = String.length magic + 2

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let write path state =
  let payload = Buffer.create 4096 in
  State.encode payload state;
  let payload = Buffer.contents payload in
  let len = String.length payload in
  let file = Buffer.create (header_size + 8 + len) in
  Buffer.add_string file magic;
  Buffer.add_char file (Char.chr (version land 0xff));
  Buffer.add_char file (Char.chr ((version lsr 8) land 0xff));
  Buffer.add_int32_le file (Int32.of_int len);
  Buffer.add_int32_le file (Codec.crc32 payload ~pos:0 ~len);
  Buffer.add_string file payload;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let bytes = Buffer.to_bytes file in
      write_all fd bytes 0 (Bytes.length bytes);
      Unix.fsync fd);
  Unix.rename tmp path;
  Obs.Metrics.add "ivm_wal_checkpoints_total" ~labels:[] 1;
  Obs.Metrics.observe "ivm_wal_checkpoint_bytes" (header_size + 8 + len)

let read path =
  if not (Sys.file_exists path) then None
  else begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    let size = String.length content in
    if size < header_size + 8 then
      raise
        (Wal.Incompatible_wal
           (Printf.sprintf "%s: %d-byte file is too short for a checkpoint"
              path size));
    if String.sub content 0 (String.length magic) <> magic then
      raise
        (Wal.Incompatible_wal
           (Printf.sprintf "%s: bad magic %S (expected %S)" path
              (String.sub content 0 (String.length magic))
              magic));
    let v =
      Char.code content.[String.length magic]
      lor (Char.code content.[String.length magic + 1] lsl 8)
    in
    if v <> version then
      raise
        (Wal.Incompatible_wal
           (Printf.sprintf "%s: checkpoint version %d (this build reads %d)"
              path v version));
    let len = Int32.to_int (String.get_int32_le content header_size) land 0xffffffff in
    if header_size + 8 + len <> size then
      raise
        (Codec.Corrupt
           (Printf.sprintf "%s: frame length %d does not match file size %d"
              path len size));
    let crc = String.get_int32_le content (header_size + 4) in
    if Codec.crc32 content ~pos:(header_size + 8) ~len <> crc then
      raise (Codec.Corrupt (Printf.sprintf "%s: checksum mismatch" path));
    let r = Codec.reader ~pos:(header_size + 8) content in
    let state = State.decode r in
    Codec.expect_end r;
    Some state
  end
