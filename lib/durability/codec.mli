(** Binary codec for the durability layer.

    Fixed-width little-endian integers, length-prefixed strings, and
    encoders for the {!Relalg} values the WAL and checkpoint files
    carry.  Counted relations serialize via
    {!Relalg.Relation.sorted_elements}, so encoding is deterministic:
    the same state always produces the same bytes (the crash-recovery
    oracle depends on that).

    Decoders never read past the input; any malformed input raises
    {!Corrupt} with a diagnostic instead of an [Invalid_argument] or an
    out-of-bounds crash. *)

exception Corrupt of string

(** {2 CRC-32} *)

(** IEEE 802.3 (reflected) CRC-32 of [len] bytes of [s] at [pos];
    [crc] chains a running checksum. *)
val crc32 : ?crc:int32 -> string -> pos:int -> len:int -> int32

(** {2 Primitive writers (into a [Buffer.t])} *)

val w_int : Buffer.t -> int -> unit
(** 64-bit little-endian two's complement. *)

val w_byte : Buffer.t -> int -> unit
(** Low byte of the argument; used for small variant tags. *)

val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

(** {2 Primitive readers} *)

(** A cursor over an immutable byte string. *)
type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val r_int : reader -> int
val r_byte : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_list : (reader -> 'a) -> reader -> 'a list
val r_option : (reader -> 'a) -> reader -> 'a option

(** [expect_end r] raises {!Corrupt} unless the cursor consumed the
    whole input. *)
val expect_end : reader -> unit

(** {2 Relalg values} *)

val w_value : Buffer.t -> Relalg.Value.t -> unit
val r_value : reader -> Relalg.Value.t
val w_tuple : Buffer.t -> Relalg.Tuple.t -> unit
val r_tuple : reader -> Relalg.Tuple.t
val w_schema : Buffer.t -> Relalg.Schema.t -> unit
val r_schema : reader -> Relalg.Schema.t

(** Schema + sorted counted elements; decoding rebuilds with
    {!Relalg.Relation.of_counted}. *)
val w_relation : Buffer.t -> Relalg.Relation.t -> unit

val r_relation : reader -> Relalg.Relation.t

(** A transaction net effect: per-relation insert and delete tuple
    lists ({!Relalg.Transaction.net}). *)
val w_net : Buffer.t -> Relalg.Transaction.net -> unit

val r_net : reader -> Relalg.Transaction.net
