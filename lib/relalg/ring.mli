(** Payload rings: the algebraic structures view payloads live in.

    The paper's multiplicity counter (Section 5.2, alternative 1) is the
    COUNT instance; the other instances generalize maintenance to
    SUM/AVG (genuine rings, deletions are additions of negations) and
    MIN/MAX (idempotent monoids without inverses, so deletions of the
    extremum force a per-group rescan).  [Relation]'s counter arithmetic
    is routed through {!Count} so the counted-relation semantics are a
    special case, not a parallel code path. *)

module type S = sig
  type t

  val name : string
  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t

  (** [Some neg] when every element has an additive inverse (true
      rings: deletions maintain incrementally); [None] for the
      idempotent monoids MIN/MAX ("inverse where claimed" — the QCheck
      law suite only tests inverses for instances that claim one). *)
  val neg : (t -> t) option

  val is_zero : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The paper's multiplicity counter: (ℤ, +, ×). *)
module Count : S with type t = int

(** SUM over an int attribute: (ℤ, +, ×). *)
module Sum : S with type t = int

(** AVG as the product ring SUM × COUNT; rendered as sum/count only at
    the edge. *)
module Avg : S with type t = int * int

(** MIN as an idempotent commutative monoid over [Value.t option];
    [mul = add], [neg = None]. *)
module Min : S with type t = Value.t option

(** MAX, dually. *)
module Max : S with type t = Value.t option
