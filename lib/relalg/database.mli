(** A database instance: a catalog of named base relations. *)

type t

exception Unknown_relation of string
(** Raised by {!find} with the missing relation's name. *)

val create : unit -> t

(** [register db name relation] adds a base relation.
    @raise Invalid_argument if [name] is already registered. *)
val register : t -> string -> Relation.t -> unit

(** [find db name] returns the named relation.
    @raise Unknown_relation when missing. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool

(** Registered relation names, sorted. *)
val names : t -> string list

(** Deep copy: relations are copied, so mutations do not alias. *)
val copy : t -> t

(** [probe_reads f] runs [f] and additionally returns how many catalog
    lookups ({!find} / {!find_opt}, on {e any} database) the current domain
    performed during the call.  This is the base-relation read probe behind
    the [Self_maintain] strategy: a maintenance path that claims to need no
    base-relation access runs under a probe and fails loudly when the count
    is nonzero.  Counting is per-domain, so concurrent work on other pool
    domains never pollutes a probe; probes nest, and the counting flag costs
    one atomic load on the [find] hot path when no probe is active. *)
val probe_reads : (unit -> 'a) -> 'a * int

val pp : Format.formatter -> t -> unit
