(** A database instance: a catalog of named base relations. *)

type t

exception Unknown_relation of string
(** Raised by {!find} with the missing relation's name. *)

val create : unit -> t

(** [register db name relation] adds a base relation.
    @raise Invalid_argument if [name] is already registered. *)
val register : t -> string -> Relation.t -> unit

(** [find db name] returns the named relation.
    @raise Unknown_relation when missing. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool

(** Registered relation names, sorted. *)
val names : t -> string list

(** Deep copy: relations are copied, so mutations do not alias. *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
