let select predicate r =
  let out = Relation.create ~size_hint:(Relation.cardinal r) (Relation.schema r) in
  Relation.iter
    (fun t c -> if predicate t then Relation.update out t c)
    r;
  out

let project r attr_names =
  let sub, positions = Schema.project (Relation.schema r) attr_names in
  let out = Relation.create ~size_hint:(Relation.cardinal r) sub in
  Relation.iter
    (fun t c -> Relation.update out (Tuple.project positions t) c)
    r;
  out

let rename f r =
  let out = Relation.create ~size_hint:(Relation.cardinal r)
      (Schema.rename f (Relation.schema r))
  in
  Relation.iter (fun t c -> Relation.update out t c) r;
  out

let product a b =
  let schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let out =
    Relation.create ~size_hint:(Relation.cardinal a * max 1 (Relation.cardinal b))
      schema
  in
  Relation.iter
    (fun ta ca ->
      Relation.iter
        (fun tb cb -> Relation.update out (Tuple.concat ta tb) (ca * cb))
        b)
    a;
  out

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Hash join: build on the smaller side, probe with the larger.  [emit] maps
   a matching pair to the output tuple, so natural join and equijoin share
   the machinery. *)
let hash_join a b ~key_positions_a ~key_positions_b ~out_schema ~emit =
  let out = Relation.create out_schema in
  (* When one side already carries an incrementally-maintained secondary
     index on exactly the join columns, probe it instead of building a
     throwaway key table — on the base-relation side of the repeated
     delta-against-base joins of differential maintenance that skips the
     full scan entirely.  [a_indexed] says whether the probed matches
     come from [a], fixing the emit orientation. *)
  let probe_index index ~probe ~probe_keys ~a_indexed =
    Relation.iter
      (fun t c ->
        let key = Tuple.project probe_keys t in
        Index.iter_matches index key (fun t' c' ->
            if a_indexed then Relation.update out (emit t' t) (c' * c)
            else Relation.update out (emit t t') (c * c')))
      probe
  in
  let index_a = Index.find a ~positions:key_positions_a in
  let index_b = Index.find b ~positions:key_positions_b in
  match index_a, index_b with
  | Some ia, Some ib ->
    (* Both indexed: probe from the smaller side, as below. *)
    if Relation.cardinal a <= Relation.cardinal b then
      probe_index ib ~probe:a ~probe_keys:key_positions_a ~a_indexed:false
    else probe_index ia ~probe:b ~probe_keys:key_positions_b ~a_indexed:true;
    out
  | Some ia, None ->
    probe_index ia ~probe:b ~probe_keys:key_positions_b ~a_indexed:true;
    out
  | None, Some ib ->
    probe_index ib ~probe:a ~probe_keys:key_positions_a ~a_indexed:false;
    out
  | None, None ->
    let build_side, probe_side, build_keys, probe_keys, swapped =
      if Relation.cardinal a <= Relation.cardinal b then
        (a, b, key_positions_a, key_positions_b, false)
      else (b, a, key_positions_b, key_positions_a, true)
    in
    let index = Key_table.create (max 16 (Relation.cardinal build_side)) in
    Relation.iter
      (fun t c ->
        let key = Tuple.project build_keys t in
        let existing =
          Option.value ~default:[] (Key_table.find_opt index key)
        in
        Key_table.replace index key ((t, c) :: existing))
      build_side;
    Relation.iter
      (fun t c ->
        let key = Tuple.project probe_keys t in
        match Key_table.find_opt index key with
        | None -> ()
        | Some matches ->
          List.iter
            (fun (t', c') ->
              let ta, ca, tb, cb =
                if swapped then (t, c, t', c') else (t', c', t, c)
              in
              Relation.update out (emit ta tb) (ca * cb))
            matches)
      probe_side;
    out

let natural_join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = Schema.common sa sb in
  if shared = [] then product a b
  else begin
    let key_positions_a =
      Array.of_list (List.map (Schema.position sa) shared)
    in
    let key_positions_b =
      Array.of_list (List.map (Schema.position sb) shared)
    in
    let b_keep =
      List.filter (fun n -> not (Schema.mem sa n)) (Schema.names sb)
    in
    let b_keep_positions =
      Array.of_list (List.map (Schema.position sb) b_keep)
    in
    let out_schema =
      Schema.make
        (Schema.attrs sa
        @ List.map (fun n -> (n, Schema.ty sb n)) b_keep)
    in
    hash_join a b ~key_positions_a ~key_positions_b ~out_schema
      ~emit:(fun ta tb -> Tuple.concat ta (Tuple.project b_keep_positions tb))
  end

let equijoin a b ~keys =
  let sa = Relation.schema a and sb = Relation.schema b in
  let out_schema = Schema.concat sa sb in
  if keys = [] then product a b
  else
    let key_positions_a =
      Array.of_list (List.map (fun (ka, _) -> Schema.position sa ka) keys)
    in
    let key_positions_b =
      Array.of_list (List.map (fun (_, kb) -> Schema.position sb kb) keys)
    in
    hash_join a b ~key_positions_a ~key_positions_b ~out_schema
      ~emit:Tuple.concat

let semijoin a b ~keys =
  let sa = Relation.schema a and sb = Relation.schema b in
  if keys = [] then begin
    if Relation.is_empty b then Relation.create sa else Relation.copy a
  end
  else begin
    let positions_a =
      Array.of_list (List.map (fun (ka, _) -> Schema.position sa ka) keys)
    in
    let positions_b =
      Array.of_list (List.map (fun (_, kb) -> Schema.position sb kb) keys)
    in
    let index = Key_table.create (max 16 (Relation.cardinal b)) in
    Relation.iter
      (fun t _ -> Key_table.replace index (Tuple.project positions_b t) ())
      b;
    let out = Relation.create ~size_hint:(Relation.cardinal a) sa in
    Relation.iter
      (fun t c ->
        if Key_table.mem index (Tuple.project positions_a t) then
          Relation.update out t c)
      a;
    out
  end

let nested_loop_join a b ~keys =
  let sa = Relation.schema a and sb = Relation.schema b in
  let out = Relation.create (Schema.concat sa sb) in
  let positions =
    List.map
      (fun (ka, kb) -> (Schema.position sa ka, Schema.position sb kb))
      keys
  in
  Relation.iter
    (fun ta ca ->
      Relation.iter
        (fun tb cb ->
          let matches =
            List.for_all
              (fun (ia, ib) -> Value.equal (Tuple.get ta ia) (Tuple.get tb ib))
              positions
          in
          if matches then Relation.update out (Tuple.concat ta tb) (ca * cb))
        b)
    a;
  out
