type t = (string, Relation.t) Hashtbl.t

exception Unknown_relation of string

let () =
  Printexc.register_printer (function
    | Unknown_relation name ->
      Some (Printf.sprintf "Database.Unknown_relation %S" name)
    | _ -> None)

let create () = Hashtbl.create 16

(* Read probe: while any probe is active anywhere in the process, every
   catalog access on the probing domain is counted.  The flag is a single
   atomic load on the [find] hot path (zero cost when no probe runs); the
   counter lives in domain-local storage so concurrent maintenance tasks
   on other domains never pollute a probe's count. *)
let probing = Atomic.make 0
let probe_key = Domain.DLS.new_key (fun () -> ref 0)
let note_read () = if Atomic.get probing > 0 then incr (Domain.DLS.get probe_key)

let probe_reads f =
  let counter = Domain.DLS.get probe_key in
  let before = !counter in
  Atomic.incr probing;
  match f () with
  | v ->
    Atomic.decr probing;
    (v, !counter - before)
  | exception exn ->
    Atomic.decr probing;
    raise exn

let register db name relation =
  if Hashtbl.mem db name then
    invalid_arg (Printf.sprintf "Database.register: %S already exists" name);
  Hashtbl.replace db name relation

let find_opt db name =
  note_read ();
  Hashtbl.find_opt db name

let find db name =
  match find_opt db name with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let mem db name = Hashtbl.mem db name

let names db =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) db [])

let copy db =
  let out = create () in
  Hashtbl.iter (fun name r -> Hashtbl.replace out name (Relation.copy r)) db;
  out

let pp ppf db =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf name ->
      Format.fprintf ppf "@[<v 2>%s:@,%a@]" name Relation.pp (find db name))
    ppf (names db)
