type t = (string, Relation.t) Hashtbl.t

exception Unknown_relation of string

let () =
  Printexc.register_printer (function
    | Unknown_relation name ->
      Some (Printf.sprintf "Database.Unknown_relation %S" name)
    | _ -> None)

let create () = Hashtbl.create 16

let register db name relation =
  if Hashtbl.mem db name then
    invalid_arg (Printf.sprintf "Database.register: %S already exists" name);
  Hashtbl.replace db name relation

let find_opt db name = Hashtbl.find_opt db name

let find db name =
  match find_opt db name with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let mem db name = Hashtbl.mem db name

let names db =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) db [])

let copy db =
  let out = create () in
  Hashtbl.iter (fun name r -> Hashtbl.replace out name (Relation.copy r)) db;
  out

let pp ppf db =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf name ->
      Format.fprintf ppf "@[<v 2>%s:@,%a@]" name Relation.pp (find db name))
    ppf (names db)
