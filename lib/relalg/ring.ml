(* Payload rings.

   The paper's multiplicity counter (Section 5.2, alternative 1) is the
   COUNT instance of a more general construction: a relation is a map
   from tuples to elements of a commutative ring, with zero-valued
   entries absent.  Maintenance then works for any payload whose deltas
   combine by ring addition — SUM over an attribute, AVG as the product
   ring SUM x COUNT, and (losing invertibility) MIN/MAX as idempotent
   monoids.  See Olteanu's survey in PAPERS.md ("Recent Increments in
   Incremental View Maintenance") for the F-IVM generalization this
   follows. *)

module type S = sig
  type t

  val name : string
  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t

  (** [Some neg] when the structure is a genuine ring (every element has
      an additive inverse, so deletions are insertions of the negation);
      [None] for the idempotent monoids MIN/MAX, whose maintenance must
      fall back to a rescan when support drains. *)
  val neg : (t -> t) option

  val is_zero : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Count = struct
  type t = int

  let name = "count"
  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let neg = Some Int.neg
  let is_zero c = c = 0
  let equal = Int.equal
  let pp = Format.pp_print_int
end

module Sum = struct
  type t = int

  let name = "sum"
  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let neg = Some Int.neg
  let is_zero s = s = 0
  let equal = Int.equal
  let pp = Format.pp_print_int
end

(* AVG is not ring-valued on its own (averages of averages lose the
   weights), but the pair (sum, count) is: the product ring of Sum and
   Count, projected to sum/count only at rendering time. *)
module Avg = struct
  type t = int * int

  let name = "avg"
  let zero = (Sum.zero, Count.zero)
  let one = (Sum.one, Count.one)
  let add (s1, c1) (s2, c2) = (Sum.add s1 s2, Count.add c1 c2)
  let mul (s1, c1) (s2, c2) = (Sum.mul s1 s2, Count.mul c1 c2)
  let neg =
    match Sum.neg, Count.neg with
    | Some ns, Some nc -> Some (fun (s, c) -> (ns s, nc c))
    | _ -> None

  let is_zero (s, c) = Sum.is_zero s && Count.is_zero c
  let equal (s1, c1) (s2, c2) = Sum.equal s1 s2 && Count.equal c1 c2
  let pp ppf (s, c) = Format.fprintf ppf "(%d, %d)" s c
end

(* MIN and MAX are commutative idempotent monoids over [Value.t option]
   ([None] = no support yet): [add] keeps the extremum, there is no
   additive inverse ([neg = None] — deleting the extremum needs a
   rescan), and [mul = add] so both distributive laws hold trivially
   (idempotence: a+(a*b) = a+a+b = a+b). *)
module Min = struct
  type t = Value.t option

  let name = "min"
  let zero = None
  let one = None

  let add a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if Value.compare x y <= 0 then x else y)

  let mul = add
  let neg = None
  let is_zero = Option.is_none
  let equal = Option.equal Value.equal

  let pp ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some v -> Value.pp ppf v
end

module Max = struct
  type t = Value.t option

  let name = "max"
  let zero = None
  let one = None

  let add a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if Value.compare x y >= 0 then x else y)

  let mul = add
  let neg = None
  let is_zero = Option.is_none
  let equal = Option.equal Value.equal

  let pp ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some v -> Value.pp ppf v
end
