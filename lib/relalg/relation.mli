(** Counted relations.

    A relation maps each tuple to a strictly positive multiplicity counter.
    This implements alternative (1) of Section 5.2 of the paper: view
    materializations carry a counter recording how many operand tuples
    contribute to each visible tuple, which restores the distributivity of
    projection over difference.  Base relations are plain sets, i.e. counted
    relations in which every counter equals one (enforced by
    {!module:Transaction}). *)

type t

exception Negative_count of Tuple.t

val create : ?size_hint:int -> Schema.t -> t
val schema : t -> Schema.t

(** Number of distinct tuples. *)
val cardinal : t -> int

(** Sum of all counters. *)
val total : t -> int

val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

(** [count r t] is the multiplicity of [t] (0 when absent). *)
val count : t -> Tuple.t -> int

(** [update r t delta] adds [delta] to the counter of [t], removing the
    tuple when the counter reaches zero.
    @raise Negative_count if the counter would become negative. *)
val update : t -> Tuple.t -> int -> unit

(** [add r t] is [update r t 1]; [add ~count r t] uses a larger increment.
    @raise Invalid_argument if [count <= 0]. *)
val add : ?count:int -> t -> Tuple.t -> unit

(** [remove r t] is [update r t (-1)].
    @raise Negative_count if [t] is absent. *)
val remove : t -> Tuple.t -> unit

val iter : (Tuple.t -> int -> unit) -> t -> unit
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** Distinct tuples with their counts, in unspecified order. *)
val elements : t -> (Tuple.t * int) list

(** Distinct tuples with their counts, sorted by tuple order (stable for
    printing and comparison in tests). *)
val sorted_elements : t -> (Tuple.t * int) list

(** [of_tuples schema tuples] builds a relation with counter increments of
    one per listed tuple (duplicates accumulate). Type-checks every tuple. *)
val of_tuples : Schema.t -> Tuple.t list -> t

val of_counted : Schema.t -> (Tuple.t * int) list -> t
val copy : t -> t

(** Identity of the underlying tuple store: preserved by {!reschema},
    fresh for {!copy} and {!create}.  Used to associate {!Index.t}es with
    the store they mirror. *)
val storage_id : t -> int

(** [subscribe r observe] registers a callback invoked as [observe tuple
    delta] after every counter change (including removals, where the new
    counter is zero).  Used by incrementally-maintained indexes. *)
val subscribe : t -> (Tuple.t -> int -> unit) -> unit

(** [reschema r s] is [r] viewed under schema [s] (same arity, same value
    types positionally — checked on attribute types only when both schemas
    are non-empty).  O(1): storage is shared, so the result must be treated
    as read-only while [r] is live.
    @raise Invalid_argument on arity mismatch. *)
val reschema : t -> Schema.t -> t

(** [shard ~n r] partitions [r] by tuple hash into [n] fresh relations
    ([n] clamped to at least 1): every counted tuple lands in exactly
    one shard, counters preserved, so {!union_into}-ing all shards into
    an empty relation rebuilds [r].  The placement depends only on the
    tuple's hash, never on iteration order or shard history, which is
    what makes shard-wise evaluation deterministic.  SPJ operators are
    linear over multiset union, so evaluating a query once per shard of
    one operand and unioning the results equals evaluating it against
    the whole operand — the identity behind intra-view parallelism in
    [Delta_eval]. *)
val shard : n:int -> t -> t array

(** [union_into ~into r] adds every counted tuple of [r] into [into]. *)
val union_into : into:t -> t -> unit

(** [assign ~into src] overwrites [into]'s contents with those of [src],
    in place, expressed as counter updates so observers stay in sync and
    aliases of [into]'s store remain valid.  Schemas must agree in
    arity.  Used by in-place view recompute/restore, where the
    materialization object is registered in a catalog and must not be
    replaced wholesale. *)
val assign : into:t -> src:t -> unit

(** [diff_into ~into r] subtracts every counted tuple of [r] from [into].
    @raise Negative_count if some counter would go negative. *)
val diff_into : into:t -> t -> unit

val union : t -> t -> t

(** Multiset difference.
    @raise Negative_count when the second operand is not contained in the
    first — for view maintenance this signals an inconsistent delta. *)
val diff : t -> t -> t

(** Counter-wise equality (schemas must match too). *)
val equal : t -> t -> bool

(** [set_equal a b] ignores counters and compares tuple sets only. *)
val set_equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Render as an ASCII table with a header row; counters are shown in a
    [#] column when some counter exceeds one or [counts] is [true]. *)
val to_ascii : ?counts:bool -> t -> string
