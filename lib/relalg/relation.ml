module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* The multiplicity counter is the COUNT instance of the payload-ring
   family ([Ring.Count]); routing the arithmetic through it keeps the
   counted relation a special case of the ring-valued map rather than a
   parallel code path.  The only operation outside the ring signature is
   the positivity check in [update]: counted relations additionally
   maintain the paper's invariant that stored multiplicities are
   strictly positive. *)
module R = Ring.Count

type t = {
  schema : Schema.t;
  table : int Tuple_table.t;
  storage_id : int;
  observers : (Tuple.t -> int -> unit) list ref;
  mutable total : int;
}

(* Atomic: relations are created from pool worker domains during
   parallel maintenance, and duplicate storage ids would alias entries
   in the index registry. *)
let next_storage_id = Atomic.make 0

let fresh_storage_id () = 1 + Atomic.fetch_and_add next_storage_id 1

exception Negative_count of Tuple.t

let create ?(size_hint = 64) schema =
  {
    schema;
    table = Tuple_table.create size_hint;
    storage_id = fresh_storage_id ();
    observers = ref [];
    total = 0;
  }

let storage_id r = r.storage_id
let subscribe r observer = r.observers := observer :: !(r.observers)

let schema r = r.schema
let cardinal r = Tuple_table.length r.table
let total r = r.total
let is_empty r = cardinal r = 0
let count r t = Option.value ~default:R.zero (Tuple_table.find_opt r.table t)
let mem r t = Tuple_table.mem r.table t

let update r t delta =
  if not (R.is_zero delta) then begin
    let current = count r t in
    let updated = R.add current delta in
    if updated < 0 then raise (Negative_count t)
    else if R.is_zero updated then Tuple_table.remove r.table t
    else Tuple_table.replace r.table t updated;
    r.total <- R.add r.total delta;
    match !(r.observers) with
    | [] -> ()
    | observers -> List.iter (fun observe -> observe t delta) observers
  end

let add ?(count = 1) r t =
  if count <= 0 then invalid_arg "Relation.add: count must be positive";
  update r t count

let remove r t = update r t (-1)
let iter f r = Tuple_table.iter f r.table
let fold f r init = Tuple_table.fold f r.table init
let elements r = fold (fun t c acc -> (t, c) :: acc) r []

let sorted_elements r =
  List.sort (fun (a, _) (b, _) -> Tuple.compare a b) (elements r)

let of_tuples schema tuples =
  let r = create ~size_hint:(List.length tuples) schema in
  List.iter
    (fun t ->
      Tuple.check schema t;
      add r t)
    tuples;
  r

let of_counted schema counted =
  let r = create ~size_hint:(List.length counted) schema in
  List.iter
    (fun (t, c) ->
      Tuple.check schema t;
      add ~count:c r t)
    counted;
  r

let copy r =
  (* A copy is a distinct store: fresh identity, no observers. *)
  {
    schema = r.schema;
    table = Tuple_table.copy r.table;
    storage_id = fresh_storage_id ();
    observers = ref [];
    total = r.total;
  }

let reschema r s =
  if Schema.arity s <> Schema.arity r.schema then
    invalid_arg "Relation.reschema: arity mismatch";
  { r with schema = s }

let shard ~n r =
  let n = max 1 n in
  let shards =
    Array.init n (fun _ -> create ~size_hint:((cardinal r / n) + 1) r.schema)
  in
  iter
    (fun t c ->
      let slot = (Tuple.hash t land max_int) mod n in
      add ~count:c shards.(slot) t)
    r;
  shards

let union_into ~into r = iter (fun t c -> update into t c) r
let diff_into ~into r = iter (fun t c -> update into t (-c)) r

(* In-place overwrite via counter updates, so subscribed observers (and
   anything else aliasing the store, e.g. a manager catalog entry) see a
   coherent sequence of deltas rather than a swapped object. *)
let assign ~into ~src =
  if Schema.arity into.schema <> Schema.arity src.schema then
    invalid_arg "Relation.assign: arity mismatch";
  List.iter
    (fun (t, c) ->
      let target = count src t in
      if not (R.equal target c) then update into t (R.add target (-c)))
    (elements into);
  iter (fun t c -> if not (mem into t) then update into t c) src

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

let equal a b =
  Schema.equal a.schema b.schema
  && cardinal a = cardinal b
  && (try
        iter (fun t c -> if not (R.equal (count b t) c) then raise Exit) a;
        true
      with Exit -> false)

let set_equal a b =
  Schema.equal a.schema b.schema
  && cardinal a = cardinal b
  && (try
        iter (fun t _ -> if not (mem b t) then raise Exit) a;
        true
      with Exit -> false)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a |- %d tuples@,%a@]" Schema.pp r.schema
    (cardinal r)
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (t, c) ->
         if c = 1 then Tuple.pp ppf t
         else Format.fprintf ppf "%a x%d" Tuple.pp t c))
    (sorted_elements r)

(* ASCII rendering used by the examples and the CLI. *)
let to_ascii ?(counts = false) r =
  let headers = Schema.names r.schema in
  let show_counts = counts || fold (fun _ c acc -> acc || c > 1) r false in
  let headers = if show_counts then headers @ [ "#" ] else headers in
  let rows =
    List.map
      (fun (t, c) ->
        let cells = List.map Value.to_string (Array.to_list t) in
        if show_counts then cells @ [ string_of_int c ] else cells)
      (sorted_elements r)
  in
  let widths =
    List.map
      (fun i ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length (List.nth headers i))
          rows)
      (List.init (List.length headers) Fun.id)
  in
  let render_row cells =
    let padded =
      List.map2
        (fun cell width -> cell ^ String.make (width - String.length cell) ' ')
        cells widths
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  String.concat "\n"
    ([ rule; render_row headers; rule ] @ List.map render_row rows @ [ rule ])
