(** Fixed-size domain pool with per-worker queues, work stealing and
    futures.

    Submissions are distributed round-robin over [domains - 1] worker
    queues, each behind its own lock; a worker drains its own queue
    first and steals from the others when it runs dry.  Completions
    signal per-future conditions (never a pool-wide one), and workers
    are woken only when a push finds them asleep, so neither the hot
    submit path nor task completion serializes on a global lock.

    [await] is a {e helping} wait — while its future is pending, the
    awaiting domain pops and runs other queued tasks instead of
    blocking.  This makes nested submission safe (a task may submit
    sub-tasks to the same pool and await them without deadlock) and
    gives an effective parallel degree equal to the pool size.

    A pool of size 1 spawns no domains and runs every submission inline
    in the caller, so sequential behaviour is the graceful fallback on
    single-core hosts and the default when no configuration asks for
    parallelism. *)

type t

type 'a future

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns a pool of the given size (clamped to at
    least 1).  Default: [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Configured pool size (worker domains + the submitting caller). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  On a size-1 or shut-down pool the task runs inline
    in the caller before [submit] returns. *)

val submit_batch : t -> (unit -> 'a) list -> 'a future list
(** Enqueue many tasks at once: one metrics bump and at most one lock
    acquisition per worker queue for the whole batch, instead of per
    task — use this when fanning out sub-millisecond tasks whose
    individual submission overhead would dominate.  Order of the
    returned futures matches the input.  Inline on size-1 pools. *)

val await : 'a future -> 'a
(** Wait for a future, helping run other queued tasks meanwhile.  If the
    task raised, the exception is re-raised here with its original
    backtrace. *)

val await_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await}, but returns the task's failure instead of re-raising
    it — for callers awaiting a whole batch that must not abandon
    sibling futures mid-flight. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: submits one task per element, then
    awaits them in order.  Sequential [List.map] on a size-1 pool. *)

val map_list_results :
  t -> ('a -> 'b) -> 'a list -> ('b, exn * Printexc.raw_backtrace) result list
(** Like {!map_list}, but awaits {e all} tasks and returns a per-task
    [result] instead of re-raising the first failure mid-flight — the
    fault-isolation primitive: one failing view-maintenance task must
    not abandon its siblings' futures. *)

val chunks : size:int -> 'a list -> 'a list list
(** Split a list into consecutive chunks of at most [size] elements
    (order preserved; [size] clamped to at least 1). *)

val map_chunked : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over {e chunks}: the list is split
    into [chunk_size] pieces (default: about two chunks per domain),
    each chunk becomes one task submitted via {!submit_batch}, and the
    per-chunk results are concatenated in order.  Equivalent to
    [List.map f] on a size-1 pool. *)

val coalesce : cost:('a -> int) -> threshold:int -> 'a list -> 'a list list
(** Greedy in-order grouping by predicted cost: consecutive elements
    are packed into one group until the summed [cost] would exceed
    [threshold], so sub-threshold tasks are submitted together instead
    of individually.  An element whose own cost meets the threshold
    gets a singleton group.  Concatenating the groups yields the input;
    [threshold] is clamped to at least 1 and negative costs count as
    0. *)

val shutdown : t -> unit
(** Drain the queue, join the workers.  Idempotent; safe to call
    concurrently with [submit] (late submissions run inline). *)

val shared : domains:int -> t
(** Process-wide pool registry, one pool per size, created on first
    use and kept for the life of the process.  Lets many short-lived
    clients (e.g. test-suite managers) share workers instead of leaking
    a domain per client. *)

val env_domains : unit -> int option
(** Parsed [IVM_DOMAINS] environment override, if set to a positive
    integer. *)
