(* Domain pool with helping futures.

   Layout: one shared FIFO of packed tasks behind a mutex, [size - 1]
   worker domains looping on it, and futures that the submitting domain
   can help along.  [await] never parks while work is queued: a pending
   future makes the caller pop and run tasks itself, which both keeps
   the caller productive and makes nested submit/await (tasks that fan
   out sub-tasks on the same pool) deadlock-free — the dependency chain
   always has a domain running its head.

   Pools of size 1 take none of these locks: [submit] runs the thunk
   inline and [await] just unpacks the result, so the sequential
   fallback costs nothing and behaves exactly like direct calls. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type t = {
  size : int;
  mutex : Mutex.t;
  wake : Condition.t; (* signalled on new tasks and shutdown only *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

(* Each future carries its own mutex + condition so a completion wakes
   exactly the domains parked on *that* future.  The previous design
   broadcast the pool-wide condition on every completion, waking every
   idle worker and every helper just to have most of them re-check an
   empty queue and go back to sleep — a thundering herd that grew with
   the domain count and showed up as negative scaling in E18. *)
type 'a future = {
  pool : t;
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable cell : 'a state;
}

let run_now f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let size pool = pool.size

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec next () =
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      worker_loop pool
    end
    else if pool.stopped then Mutex.unlock pool.mutex
    else begin
      Condition.wait pool.wake pool.mutex;
      next ()
    end
  in
  next ()

let create ?domains () =
  let size =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopped = false;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let make_future pool cell =
  { pool; fmutex = Mutex.create (); fcond = Condition.create (); cell }

let submit pool f =
  if pool.size <= 1 then make_future pool (run_now f)
  else begin
    let fut = make_future pool Pending in
    let task () =
      let result = run_now f in
      (* Resolve under the future's own lock: the lock edge publishes the
         task's side effects to awaiters, and the signal reaches only the
         domains parked on this future — workers and helpers chasing
         other futures stay asleep. *)
      Mutex.lock fut.fmutex;
      fut.cell <- result;
      Condition.broadcast fut.fcond;
      Mutex.unlock fut.fmutex
    in
    Mutex.lock pool.mutex;
    if pool.stopped then begin
      Mutex.unlock pool.mutex;
      fut.cell <- run_now f
    end
    else begin
      Queue.push task pool.queue;
      Condition.signal pool.wake;
      Mutex.unlock pool.mutex
    end;
    fut
  end

(* Read the cell through the future's mutex: the lock edge is what
   publishes the completing task's side effects (e.g. view-state
   mutations) to this domain. *)
let resolved fut =
  Mutex.lock fut.fmutex;
  let r = match fut.cell with Pending -> false | Done _ | Failed _ -> true in
  Mutex.unlock fut.fmutex;
  r

let help_until_resolved fut =
  let pool = fut.pool in
  if pool.size > 1 then begin
    let rec help () =
      if not (resolved fut) then begin
        Mutex.lock pool.mutex;
        if not (Queue.is_empty pool.queue) then begin
          let task = Queue.pop pool.queue in
          Mutex.unlock pool.mutex;
          task ();
          help ()
        end
        else begin
          (* Queue empty and future unresolved: its task is running on
             some other domain (a task observed queued is only removed by
             a domain about to run it), so park on the future's own
             condition until that domain resolves it.  Nested submit/
             await stays deadlock-free: the domain running our task helps
             its own sub-futures along, so the dependency chain always
             has a domain executing its head. *)
          Mutex.unlock pool.mutex;
          Mutex.lock fut.fmutex;
          let rec wait () =
            match fut.cell with
            | Pending ->
              Condition.wait fut.fcond fut.fmutex;
              wait ()
            | Done _ | Failed _ -> ()
          in
          wait ();
          Mutex.unlock fut.fmutex
        end
      end
    in
    help ()
  end

let await fut =
  help_until_resolved fut;
  match fut.cell with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await_result fut =
  help_until_resolved fut;
  match fut.cell with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let map_list pool f xs =
  if pool.size <= 1 then List.map f xs
  else List.map await (List.map (fun x -> submit pool (fun () -> f x)) xs)

let map_list_results pool f xs =
  let wrap x = match f x with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ()) in
  if pool.size <= 1 then List.map wrap xs
  else
    List.map await_result (List.map (fun x -> submit pool (fun () -> f x)) xs)

let chunks ~size xs =
  let size = max 1 size in
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let chunk, rest = take size [] xs in
      go (chunk :: acc) rest
  in
  go [] xs

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  if not pool.stopped then begin
    pool.stopped <- true;
    Condition.broadcast pool.wake
  end;
  Mutex.unlock pool.mutex;
  (* Workers drain the queue before exiting, so queued futures still
     complete; joining twice is impossible because the list was taken
     under the lock. *)
  List.iter Domain.join workers

(* Process-wide registry: one pool per requested size, never torn down.
   Managers are cheap to create (tests build hundreds), so giving each
   its own workers would leak a domain per manager. *)
let shared_mutex = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~domains =
  let domains = max 1 domains in
  Mutex.lock shared_mutex;
  let pool =
    match Hashtbl.find_opt shared_pools domains with
    | Some pool -> pool
    | None ->
      let pool = create ~domains () in
      Hashtbl.add shared_pools domains pool;
      pool
  in
  Mutex.unlock shared_mutex;
  pool

let env_domains () =
  match Sys.getenv_opt "IVM_DOMAINS" with
  | None -> None
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)
