(* Domain pool with per-worker queues, work stealing and helping futures.

   Layout: [size - 1] worker queues, each a FIFO behind its own small
   mutex, with submissions distributed round-robin.  A worker drains its
   own queue first and steals from the others when it runs dry, so load
   imbalance self-corrects without any shared-queue contention.  Futures
   carry their own mutex + condition: a completion wakes exactly the
   domains parked on that future, and the pool-wide idle condition is
   touched only when a push finds workers asleep — the two hot-path
   global serialization points of the original single-FIFO design (one
   mutex around every push/pop, one broadcast per completion) are gone.

   [await] never parks while work is queued: a pending future makes the
   caller pop and run tasks itself, which both keeps the caller
   productive and makes nested submit/await (tasks that fan out
   sub-tasks on the same pool) deadlock-free — the dependency chain
   always has a domain running its head.

   Pools of size 1 take none of these locks: [submit] runs the thunk
   inline and [await] just unpacks the result, so the sequential
   fallback costs nothing and behaves exactly like direct calls. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type worker_queue = { qlock : Mutex.t; tasks : (unit -> unit) Queue.t }

type t = {
  size : int;
  queues : worker_queue array; (* length [size - 1]; empty for size 1 *)
  rr : int Atomic.t; (* round-robin submission cursor *)
  pending : int Atomic.t; (* tasks pushed but not yet popped *)
  sleepers : int Atomic.t; (* workers parked on [idle_cond] *)
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  stopped : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

(* Each future has its own mutex + condition so a completion wakes only
   the domains parked on *that* future.  Broadcasting a pool-wide
   condition on every completion woke every idle worker and every
   helper just to re-check their queues and sleep again — a thundering
   herd that grew with the domain count and showed up as negative
   scaling in E18. *)
type 'a future = {
  pool : t;
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable cell : 'a state;
}

let run_now f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let size pool = pool.size

let make_future pool cell =
  { pool; fmutex = Mutex.create (); fcond = Condition.create (); cell }

(* Resolve under the future's own lock: the lock edge publishes the
   task's side effects (e.g. view-state mutations) to awaiters. *)
let resolve fut result =
  Mutex.lock fut.fmutex;
  fut.cell <- result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let resolved fut =
  Mutex.lock fut.fmutex;
  let r = match fut.cell with Pending -> false | Done _ | Failed _ -> true in
  Mutex.unlock fut.fmutex;
  r

let pop_queue q =
  Mutex.lock q.qlock;
  let r = if Queue.is_empty q.tasks then None else Some (Queue.pop q.tasks) in
  Mutex.unlock q.qlock;
  r

(* Scan all queues starting from [home].  Workers pass their own index
   and count pops from other queues as steals; helping awaiters have no
   queue of their own, so their pops are just help, not steals. *)
let try_pop ?(count_steals = false) pool ~home =
  let n = Array.length pool.queues in
  let rec scan i =
    if i >= n then None
    else
      let j = (home + i) mod n in
      match pop_queue pool.queues.(j) with
      | Some task ->
        Atomic.decr pool.pending;
        if count_steals && j <> home then
          Obs.Metrics.add "ivm_exec_steal_total" 1;
        Some task
      | None -> scan (i + 1)
  in
  scan 0

(* Lost-wakeup-free parking: the worker publishes itself as a sleeper
   (under [idle_mutex]) *before* re-checking [pending]; a submitter
   increments [pending] *before* reading [sleepers].  OCaml atomics are
   sequentially consistent, so a worker that reads pending = 0 ordered
   its sleeper increment before the submitter's pending increment, which
   forces the submitter to read sleepers >= 1 and take the signalling
   path — and the signal itself cannot be lost because the worker holds
   [idle_mutex] from the re-check through [Condition.wait]. *)
let rec worker_loop pool home =
  match try_pop ~count_steals:true pool ~home with
  | Some task ->
    task ();
    worker_loop pool home
  | None ->
    if Atomic.get pool.stopped then () (* queues drained: exit *)
    else begin
      Mutex.lock pool.idle_mutex;
      Atomic.incr pool.sleepers;
      if Atomic.get pool.pending = 0 && not (Atomic.get pool.stopped) then
        Condition.wait pool.idle_cond pool.idle_mutex;
      Atomic.decr pool.sleepers;
      Mutex.unlock pool.idle_mutex;
      worker_loop pool home
    end

let create ?domains () =
  let size =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      size;
      queues =
        Array.init (max 0 (size - 1)) (fun _ ->
            { qlock = Mutex.create (); tasks = Queue.create () });
      rr = Atomic.make 0;
      pending = Atomic.make 0;
      sleepers = Atomic.make 0;
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      stopped = Atomic.make false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool i));
  pool

let positive_mod x n = ((x mod n) + n) mod n

let wake_sleepers pool n =
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.idle_mutex;
    if n >= Atomic.get pool.sleepers then Condition.broadcast pool.idle_cond
    else
      for _ = 1 to n do
        Condition.signal pool.idle_cond
      done;
    Mutex.unlock pool.idle_mutex
  end

let enqueue pool task =
  let n = Array.length pool.queues in
  let slot = positive_mod (Atomic.fetch_and_add pool.rr 1) n in
  (* [pending] goes up before the push so it never undercounts queued
     work; see the parking protocol above [worker_loop]. *)
  Atomic.incr pool.pending;
  let q = pool.queues.(slot) in
  Mutex.lock q.qlock;
  Queue.push task q.tasks;
  Mutex.unlock q.qlock;
  wake_sleepers pool 1

let submit pool f =
  if pool.size <= 1 || Atomic.get pool.stopped then make_future pool (run_now f)
  else begin
    let fut = make_future pool Pending in
    Obs.Metrics.add "ivm_exec_tasks_total" 1;
    enqueue pool (fun () -> resolve fut (run_now f));
    fut
  end

(* One registry bump, one [pending] bump and at most one lock
   acquisition per *queue* for the whole batch, instead of per task —
   this is the submission-overhead amortization that E18 showed the
   per-task path needed. *)
let submit_batch pool fs =
  if pool.size <= 1 || Atomic.get pool.stopped then
    List.map (fun f -> make_future pool (run_now f)) fs
  else begin
    let pairs =
      List.map
        (fun f ->
          let fut = make_future pool Pending in
          (fut, fun () -> resolve fut (run_now f)))
        fs
    in
    let count = List.length pairs in
    if count = 0 then []
    else begin
      Obs.Metrics.add "ivm_exec_tasks_total" count;
      let n = Array.length pool.queues in
      let buckets = Array.make n [] in
      let start = positive_mod (Atomic.fetch_and_add pool.rr count) n in
      List.iteri
        (fun i (_, task) ->
          let slot = (start + i) mod n in
          buckets.(slot) <- task :: buckets.(slot))
        pairs;
      ignore (Atomic.fetch_and_add pool.pending count);
      Array.iteri
        (fun j rev_tasks ->
          match List.rev rev_tasks with
          | [] -> ()
          | tasks ->
            let q = pool.queues.(j) in
            Mutex.lock q.qlock;
            List.iter (fun task -> Queue.push task q.tasks) tasks;
            Mutex.unlock q.qlock)
        buckets;
      wake_sleepers pool count;
      List.map fst pairs
    end
  end

let help_until_resolved fut =
  let pool = fut.pool in
  if pool.size > 1 then begin
    (* Helpers have no home queue; start the scan at a domain-dependent
       offset so concurrent awaiters do not all hammer queue 0. *)
    let home =
      positive_mod (Domain.self () :> int) (Array.length pool.queues)
    in
    let rec help () =
      if not (resolved fut) then begin
        match try_pop pool ~home with
        | Some task ->
          task ();
          help ()
        | None ->
          (* Every queue is empty and the future is unresolved, so its
             task was already popped and is running on another domain
             (a queued task is only ever removed by a domain about to
             run it): park on the future's own condition until that
             domain resolves it.  Nested submit/await stays deadlock-
             free because the domain running our task helps its own
             sub-futures along — the dependency chain always has a
             domain executing its head. *)
          Mutex.lock fut.fmutex;
          let rec wait () =
            match fut.cell with
            | Pending ->
              Condition.wait fut.fcond fut.fmutex;
              wait ()
            | Done _ | Failed _ -> ()
          in
          wait ();
          Mutex.unlock fut.fmutex
      end
    in
    help ()
  end

let await fut =
  help_until_resolved fut;
  match fut.cell with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await_result fut =
  help_until_resolved fut;
  match fut.cell with
  | Done v -> Ok v
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let map_list pool f xs =
  if pool.size <= 1 then List.map f xs
  else List.map await (submit_batch pool (List.map (fun x () -> f x) xs))

let map_list_results pool f xs =
  let wrap x =
    match f x with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  if pool.size <= 1 then List.map wrap xs
  else
    List.map await_result (submit_batch pool (List.map (fun x () -> f x) xs))

let chunks ~size xs =
  let size = max 1 size in
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let chunk, rest = take size [] xs in
      go (chunk :: acc) rest
  in
  go [] xs

let map_chunked ?chunk_size pool f xs =
  if pool.size <= 1 then List.map f xs
  else begin
    let len = List.length xs in
    let chunk_size =
      match chunk_size with
      | Some s -> max 1 s
      (* Default: ~2 chunks per domain — enough slack for stealing to
         even out imbalance without per-element submission overhead. *)
      | None -> max 1 ((len + (2 * pool.size) - 1) / (2 * pool.size))
    in
    let futures =
      submit_batch pool
        (List.map (fun chunk () -> List.map f chunk) (chunks ~size:chunk_size xs))
    in
    List.concat_map await futures
  end

let coalesce ~cost ~threshold xs =
  let threshold = max 1 threshold in
  let rec go group group_cost acc = function
    | [] -> List.rev (if group = [] then acc else List.rev group :: acc)
    | x :: rest ->
      let c = max 0 (cost x) in
      if group <> [] && group_cost + c > threshold then
        go [ x ] c (List.rev group :: acc) rest
      else go (x :: group) (group_cost + c) acc rest
  in
  go [] 0 [] xs

let shutdown pool =
  if Atomic.compare_and_set pool.stopped false true then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end;
  let workers =
    (* Take the list under a lock so joining twice is impossible. *)
    Mutex.lock pool.idle_mutex;
    let ws = pool.workers in
    pool.workers <- [];
    Mutex.unlock pool.idle_mutex;
    ws
  in
  (* Workers drain every queue before exiting, so queued futures still
     complete; any task that raced past the stopped flag after the
     drain is run here (and a helping awaiter would run it anyway). *)
  List.iter Domain.join workers;
  let rec drain () =
    if Array.length pool.queues > 0 then
      match try_pop pool ~home:0 with
      | Some task ->
        task ();
        drain ()
      | None -> ()
  in
  drain ()

(* Process-wide registry: one pool per requested size, never torn down.
   Managers are cheap to create (tests build hundreds), so giving each
   its own workers would leak a domain per manager. *)
let shared_mutex = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~domains =
  let domains = max 1 domains in
  Mutex.lock shared_mutex;
  let pool =
    match Hashtbl.find_opt shared_pools domains with
    | Some pool -> pool
    | None ->
      let pool = create ~domains () in
      Hashtbl.add shared_pools domains pool;
      pool
  in
  Mutex.unlock shared_mutex;
  pool

let env_domains () =
  match Sys.getenv_opt "IVM_DOMAINS" with
  | None -> None
  | Some raw -> (
    match int_of_string_opt (String.trim raw) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)
