(** Satisfiability of selection conditions (Section 4 of the paper).

    Conjunctions of atoms [x op y], [x op y + c], [x op c] with
    [op ∈ {=, <, >, <=, >=}] over integer attributes are decided exactly in
    O(n^3) by normalization + negative-cycle detection, following
    Rosenkrantz and Hunt [RH80].  Disjunctions are decided per disjunct
    (O(m n^3)).  Extensions beyond the paper's class degrade gracefully:

    - integer [<>] atoms are expanded into [< \/ >] pairs when at most
      [neq_budget] of them occur in a conjunction, and otherwise yield
      [Unknown];
    - string-typed atoms are decided by {!Eq_solver} ([=]/[<>] complete,
      orderings conservative);
    - comparisons between operands of different types have constant truth
      under {!Value.compare} and are folded away.

    [Unknown] must be treated as "possibly satisfiable" by callers; for
    irrelevant-update detection this errs on the safe side (the update is
    kept). *)

open Relalg

type verdict =
  | Sat
  | Unsat
  | Unknown

(** [true] iff the verdict is [Unsat]. *)
val is_unsat : verdict -> bool

(** Typing environment for variables; defaults to all-integer, which matches
    the paper's examples. *)
type typing = Attr.t -> Value.ty

val int_typing : typing

(** [of_schema s] derives a typing from a relation schema, defaulting to
    integer for unknown attributes. *)
val of_schema : Schema.t -> typing

(** Decide a conjunction of atoms. *)
val conjunction :
  ?typing:typing -> ?neq_budget:int -> Formula.atom list -> verdict

(** Decide a DNF: satisfiable iff some disjunct is (p. 64). *)
val dnf : ?typing:typing -> ?neq_budget:int -> Formula.dnf -> verdict

(** Decide an arbitrary formula by DNF conversion; a formula whose DNF
    exceeds the bound yields [Unknown]. *)
val formula :
  ?typing:typing ->
  ?neq_budget:int ->
  ?max_disjuncts:int ->
  Formula.t ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Exposed pieces for Algorithm 4.1}

    The irrelevance screener precomputes the invariant part of a conjunction
    once and re-checks per tuple; it needs access to the typed partition of
    a conjunction. *)

type fragment = {
  int_atoms : Formula.atom list;
  str_atoms : Formula.atom list;
  constant_false : bool;  (** some atom is constantly false *)
  unknown : bool;  (** some atom fell outside every decidable fragment *)
}

(** Partition a conjunction into typed fragments, folding constant-truth
    atoms away. *)
val partition : typing -> Formula.atom list -> fragment

(** Constant truth value of a comparison whose operands have different
    types: under {!Value.compare} every integer sorts before every string,
    so such an atom does not depend on the operand values at all.  Exposed
    for the static analyzer's mixed-type diagnostic. *)
val cross_type_truth : Formula.comparator -> int_on_left:bool -> bool

(** Decide the integer fragment alone (with disequality expansion). *)
val int_fragment : ?neq_budget:int -> Formula.atom list -> verdict
