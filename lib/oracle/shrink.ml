open Relalg

let remove_range l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

(* ddmin-style greedy list reduction: try dropping chunks of halving size;
   [fails] receives the candidate list and says whether the failure is
   still there. *)
let shrink_list fails items =
  let result = ref items in
  let size = ref (max 1 (List.length items / 2)) in
  let finished = ref (items = []) in
  while not !finished do
    let i = ref 0 in
    while !i < List.length !result do
      let candidate = remove_range !result !i !size in
      if List.length candidate < List.length !result && fails candidate then
        result := candidate
      else i := !i + !size
    done;
    if !size = 1 then finished := true else size := max 1 (!size / 2)
  done;
  !result

let replace_nth l n x = List.mapi (fun i y -> if i = n then x else y) l

(* ------------------------------------------------------------------ *)
(* passes                                                              *)
(* ------------------------------------------------------------------ *)

let drop_transactions fails (s : Stream.t) =
  let transactions =
    shrink_list
      (fun transactions -> fails { s with Stream.transactions })
      s.Stream.transactions
  in
  { s with Stream.transactions }

let drop_operations fails (s : Stream.t) =
  let transactions = ref s.Stream.transactions in
  List.iteri
    (fun j _ ->
      let txn = List.nth !transactions j in
      let shrunk =
        shrink_list
          (fun candidate ->
            fails
              {
                s with
                Stream.transactions = replace_nth !transactions j candidate;
              })
          txn
      in
      transactions := replace_nth !transactions j shrunk)
    s.Stream.transactions;
  { s with Stream.transactions = !transactions }

(* Candidates that drop a parent out from under a tower child are not
   replayable streams; reject them before they reach [fails] so the
   shrinker never adopts an orphaning step (it can still remove a whole
   parent+child chain in one larger chunk). *)
let drop_views fails (s : Stream.t) =
  let views =
    shrink_list
      (fun views ->
        let candidate = { s with Stream.views } in
        Stream.well_formed candidate && fails candidate)
      s.Stream.views
  in
  { s with Stream.views }

let drop_initial_tuples fails (s : Stream.t) =
  let relations = ref s.Stream.relations in
  List.iteri
    (fun j _ ->
      let (name, schema, columns, tuples) = List.nth !relations j in
      let shrunk =
        shrink_list
          (fun candidate ->
            fails
              {
                s with
                Stream.relations =
                  replace_nth !relations j (name, schema, columns, candidate);
              })
          tuples
      in
      relations := replace_nth !relations j (name, schema, columns, shrunk))
    s.Stream.relations;
  { s with Stream.relations = !relations }

let shrink_values fails (s : Stream.t) =
  let current = ref s in
  (* Value shrinking never changes list shapes, so (transaction, operation,
     column) coordinates stay valid; the operation is re-read from the
     adopted stream at every step so earlier shrinks are kept. *)
  let try_position j k m =
    let txn = List.nth !current.Stream.transactions j in
    let relation, tuple, rebuild =
      match List.nth txn k with
      | Transaction.Insert (r, t) -> (r, t, fun t -> Transaction.insert r t)
      | Transaction.Delete (r, t) -> (r, t, fun t -> Transaction.delete r t)
    in
    ignore relation;
    match tuple.(m) with
    | Value.Int n when n <> 0 ->
      let attempt replacement =
        let candidate_tuple = Array.copy tuple in
        candidate_tuple.(m) <- Value.Int replacement;
        let candidate =
          {
            !current with
            Stream.transactions =
              replace_nth !current.Stream.transactions j
                (replace_nth txn k (rebuild candidate_tuple));
          }
        in
        if fails candidate then begin
          current := candidate;
          true
        end
        else false
      in
      if not (attempt 0) then ignore (attempt (n / 2))
    | _ -> ()
  in
  List.iteri
    (fun j txn ->
      List.iteri
        (fun k op ->
          let arity =
            match op with
            | Transaction.Insert (_, t) | Transaction.Delete (_, t) ->
              Array.length t
          in
          for m = 0 to arity - 1 do
            try_position j k m
          done)
        txn)
    s.Stream.transactions;
  !current

let minimize ?(max_rounds = 10) fails stream =
  let current = ref stream in
  let rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < max_rounds do
    incr rounds;
    let before = Stream.size !current in
    current := drop_transactions fails !current;
    current := drop_operations fails !current;
    current := drop_views fails !current;
    current := drop_initial_tuples fails !current;
    current := shrink_values fails !current;
    progress := Stream.size !current < before
  done;
  !current
