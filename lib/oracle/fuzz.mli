(** Top-level fuzz loop: generate streams, replay them against the
    reference, shrink the first divergence into a minimal replayable
    counterexample. *)

type counterexample = {
  stream : Stream.t;  (** minimized *)
  original_size : int;  (** {!Stream.size} before shrinking *)
  divergence : Harness.divergence;  (** on the minimized stream *)
}

type outcome = {
  streams_run : int;
  transactions_run : int;
  failure : counterexample option;
}

(** [run ~seed ~streams ~transactions ~domains ()] replays [streams]
    independent streams — stream [k] is generated from seed [seed + k] —
    each [transactions] transactions long, stopping at (and shrinking) the
    first divergence.  [progress] is called after every clean stream. *)
val run :
  ?progress:(int -> unit) ->
  seed:int ->
  streams:int ->
  transactions:int ->
  domains:int ->
  unit ->
  outcome

val pp_counterexample : Format.formatter -> counterexample -> unit
