(** Top-level fuzz loop: generate streams, replay them against the
    reference, shrink the first divergence into a minimal replayable
    counterexample. *)

type counterexample = {
  stream : Stream.t;  (** minimized *)
  original_size : int;  (** {!Stream.size} before shrinking *)
  divergence : Harness.divergence;  (** on the minimized stream *)
  fault_rate : float;  (** fault settings the failure replays under *)
  policy : Resilience.Policy.t;
}

type outcome = {
  streams_run : int;
  transactions_run : int;
  stats : Harness.run_stats;  (** commit outcomes across all streams *)
  failure : counterexample option;
}

(** [run ~seed ~streams ~transactions ~domains ()] replays [streams]
    independent streams — stream [k] is generated from seed [seed + k] —
    each [transactions] transactions long, stopping at (and shrinking) the
    first divergence.  [progress] is called after every clean stream.

    With [fault_rate] > 0, every replay runs under deterministic fault
    injection ({!Harness.run}'s fault-tolerance contract) and streams
    alternate between the [Abort] (even) and [Quarantine] (odd) failure
    policies; shrinking replays candidates under the failing stream's
    settings.

    With [~aggregates:true] every stream also draws GROUP BY views and a
    view tower ({!Stream.generate}), so the lockstep check covers
    ring-valued aggregates and views over views. *)
val run :
  ?progress:(int -> unit) ->
  ?fault_rate:float ->
  ?aggregates:bool ->
  seed:int ->
  streams:int ->
  transactions:int ->
  domains:int ->
  unit ->
  outcome

val pp_counterexample : Format.formatter -> counterexample -> unit
