module Manager = Ivm.Manager
module Fault = Resilience.Fault

(* Crash-recovery lockstep: run a fuzz stream against a durable manager
   with fault injection armed over both the maintenance points and the
   WAL kill points; a fault escaping from a WAL point is a simulated
   process death.  At the kill (seed-chosen, since the schedule is the
   fault hash) we optionally tear the last WAL record at an arbitrary
   byte offset, then recover into a fresh manager and require the
   recovered state to be bit-identical — health words, banked pending
   deltas and counters included — to the snapshot taken when that WAL
   position was the durable frontier.  Recovery is then re-run (in
   place, and from a byte-for-byte copy of the directory) to check
   idempotence, and the rest of the stream continues in lockstep
   against a reference rebuilt over the recovered base state. *)

let wal_points =
  [ "wal-apply"; "wal-append"; "wal-fsync"; "wal-checkpoint"; "wal-truncate" ]

type report = {
  crashed : bool;
  crash_point : string option;
  crash_index : int;  (** transaction index of the kill, -1 if none *)
  torn_bytes : int;  (** bytes cut off the last record, 0 if whole *)
  records_replayed : int;
  commits_before_crash : int;
}

let copy_file src dst =
  if Sys.file_exists src then begin
    let content = In_channel.with_open_bin src In_channel.input_all in
    Out_channel.with_open_bin dst (fun oc ->
        Out_channel.output_string oc content)
  end

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Truncate the file to [len] bytes — the torn-tail injector. *)
let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let diverged ~index ~view kind detail =
  raise
    (Harness.Diverged
       { Harness.transaction_index = index; view; kind; detail })

(* The durable frontier of [dir]: the last WAL position recovery can
   reach — the checkpoint's covered LSN or the last whole record's,
   whichever is later. *)
let durable_lsn (config : Durability.Config.t) =
  let ckpt_lsn =
    match Durability.Checkpoint.read (Durability.Config.checkpoint_path config)
    with
    | Some st -> st.Durability.State.lsn
    | None -> 0
  in
  let records = Durability.Wal.entries (Durability.Config.wal_path config) in
  List.fold_left (fun acc (lsn, _, _) -> max acc lsn) ckpt_lsn records

let define_all mgr (s : Stream.t) =
  List.iter
    (fun (spec : Stream.view_spec) ->
      ignore
        (Manager.define_view mgr ~name:spec.Stream.view_name ~force:true
           ~options:spec.Stream.options ~keys:spec.Stream.keys
           spec.Stream.expr))
    s.Stream.views

(* Expect recovery of [dir] (views re-defined over a fresh build of the
   stream's initial state) to land exactly on [expected]. *)
let recover_and_check ~index ~what ~policy (s : Stream.t) config expected =
  let db = Stream.build_db s in
  let mgr =
    Manager.create ~domains:s.Stream.domains ~policy ~durability:config db
  in
  define_all mgr s;
  let info = Manager.recover mgr in
  (match Durability.State.diff expected (Manager.capture_state mgr) with
  | None -> ()
  | Some d ->
    diverged ~index ~view:"" Harness.Materialization
      (Printf.sprintf "%s: recovered state diverges: %s" what d));
  (mgr, db, info)

let run ?(fault_rate = 0.05) ~dir (s : Stream.t) =
  let h salt k = Fault.hash_unit ~seed:(s.Stream.seed lxor 0xC4A5) salt k in
  (* Seed-chosen durability parameters, so the corpus covers the fsync
     and checkpoint policy matrix. *)
  let fsync =
    if h "fsync" 0 < 0.5 then Durability.Config.Always
    else Durability.Config.Every (1 + int_of_float (h "fsync-every" 0 *. 4.0))
  in
  let checkpoint_every =
    match s.Stream.seed mod 3 with 0 -> 0 | 1 -> 3 | _ -> 5
  in
  let policy =
    if s.Stream.seed mod 2 = 0 then Resilience.Policy.Abort
    else Resilience.Policy.Quarantine
  in
  let dir2 = dir ^ ".copy" in
  remove_dir dir;
  remove_dir dir2;
  let config = Durability.Config.make ~fsync ~checkpoint_every dir in
  let db = Stream.build_db s in
  let mgr = Manager.create ~domains:s.Stream.domains ~policy ~durability:config db in
  define_all mgr s;
  let reference = Reference.create db in
  List.iter
    (fun (spec : Stream.view_spec) ->
      Reference.define reference ~name:spec.Stream.view_name spec.Stream.expr)
    s.Stream.views;
  (* Snapshot of the engine state at every WAL frontier: [snaps.(lsn)]
     is what recovery must reproduce when [lsn] is the last durable
     record.  The kill handler adds the entry for a record that was
     written by the dying operation itself. *)
  let snaps : (int, Durability.State.t) Hashtbl.t = Hashtbl.create 64 in
  let snap () =
    Hashtbl.replace snaps (Manager.wal_lsn mgr) (Manager.capture_state mgr)
  in
  snap ();
  Fault.configure ~seed:(s.Stream.seed lxor 0x5EED) ~rate:fault_rate ();
  let crash = ref None in
  let commits = ref 0 in
  let continue_from = ref 0 in
  (try
     List.iteri
       (fun index raw ->
         match !crash with
         | Some _ -> ()
         | None -> (
           let txn = Stream.filter_valid db raw in
           let seq_before = Manager.commit_seq mgr in
           match Manager.commit mgr txn with
           | (_ : Ivm.Maintenance.report list) ->
             incr commits;
             Reference.step reference txn;
             Harness.compare_states ~skip:(Harness.unhealthy mgr) reference mgr
               db s index;
             snap ()
           | exception Manager.Commit_failed _ ->
             (* Clean abort: the reference does not step, but the abort
                still consumed a sequence number and logged a record. *)
             Harness.compare_states ~skip:(Harness.unhealthy mgr) reference mgr
               db s index;
             snap ()
           | exception Fault.Injected p when List.mem p wal_points ->
             (* Simulated process death.  If the dying operation already
                wrote its record, the in-memory state (fully committed
                by then — appends happen last) is what recovery must
                reach; snapshot it under that LSN. *)
             Fault.disable ();
             if not (Hashtbl.mem snaps (Manager.wal_lsn mgr)) then snap ();
             crash := Some (p, index, seq_before)
           | exception exn ->
             diverged ~index ~view:"" Harness.Materialization
               ("engine raised: " ^ Printexc.to_string exn)))
       s.Stream.transactions;
     Fault.disable ()
   with exn ->
     Fault.disable ();
     raise exn);
  let crash_point, crash_index, seq_before_crash =
    match !crash with
    | Some (p, i, sb) -> (Some p, i, sb)
    | None -> (None, List.length s.Stream.transactions, 0)
  in
  (* Torn-tail injection: cut the last record at a seed-chosen byte
     offset, simulating a crash mid-append.  Recovery must fall back to
     the preceding durable frontier. *)
  let torn_bytes =
    match List.rev (Durability.Wal.entries (Durability.Config.wal_path config))
    with
    | (_, off, len) :: _ when Option.is_some !crash && h "tear" crash_index < 0.5
      ->
      let keep = 1 + int_of_float (h "tear-at" crash_index *. float_of_int (len - 1)) in
      let keep = min (len - 1) (max 1 keep) in
      truncate_file (Durability.Config.wal_path config) (off + keep);
      len - keep
    | _ -> 0
  in
  (* Freeze a byte-for-byte copy of the directory now: recovery rewrites
     the checkpoint and truncates the WAL, so idempotence-from-disk must
     be checked against a copy. *)
  let config2 = Durability.Config.make ~fsync ~checkpoint_every dir2 in
  copy_file
    (Durability.Config.wal_path config)
    (Durability.Config.wal_path config2);
  copy_file
    (Durability.Config.checkpoint_path config)
    (Durability.Config.checkpoint_path config2);
  let target = durable_lsn config in
  let expected =
    match Hashtbl.find_opt snaps target with
    | Some st -> st
    | None ->
      diverged ~index:crash_index ~view:"" Harness.Materialization
        (Printf.sprintf "no snapshot for durable lsn %d" target)
  in
  let mgr2, db2, info =
    recover_and_check ~index:crash_index ~what:"first recovery" ~policy s
      config expected
  in
  (* Idempotence, twice over: recover the same manager again (the tail
     is consumed, the fresh checkpoint must round-trip), and recover a
     third manager from the pre-recovery on-disk image. *)
  let (_ : Manager.recovery) = Manager.recover mgr2 in
  (match Durability.State.diff expected (Manager.capture_state mgr2) with
  | None -> ()
  | Some d ->
    diverged ~index:crash_index ~view:"" Harness.Materialization
      ("in-place re-recovery diverges: " ^ d));
  let _mgr3, _db3, info3 =
    recover_and_check ~index:crash_index ~what:"recovery from copied image"
      ~policy s config2 expected
  in
  if info3.Manager.records_replayed <> info.Manager.records_replayed then
    diverged ~index:crash_index ~view:"" Harness.Materialization
      (Printf.sprintf "replay count not deterministic: %d vs %d"
         info.Manager.records_replayed info3.Manager.records_replayed);
  (* Continue the stream on the recovered manager, faults off, against a
     reference rebuilt over the recovered base state.  If the killed
     attempt's record survived (seq moved past it), its transaction is
     consumed; otherwise it is retried. *)
  (match !crash with
  | None -> ()
  | Some _ ->
    continue_from :=
      (if info.Manager.last_seq > seq_before_crash then crash_index + 1
       else crash_index));
  let reference2 = Reference.create db2 in
  List.iter
    (fun (spec : Stream.view_spec) ->
      Reference.define reference2 ~name:spec.Stream.view_name spec.Stream.expr)
    s.Stream.views;
  List.iteri
    (fun index raw ->
      if index >= !continue_from && Option.is_some !crash then begin
        let txn = Stream.filter_valid db2 raw in
        match Manager.commit mgr2 txn with
        | (_ : Ivm.Maintenance.report list) ->
          Reference.step reference2 txn;
          Harness.compare_states ~skip:(Harness.unhealthy mgr2) reference2 mgr2
            db2 s index
        | exception exn ->
          diverged ~index ~view:"" Harness.Materialization
            ("post-recovery commit raised: " ^ Printexc.to_string exn)
      end)
    s.Stream.transactions;
  (* End of stream: heal or repair what the faults left behind, then the
     whole state must agree with the oracle. *)
  let last = max 0 (List.length s.Stream.transactions - 1) in
  List.iter
    (fun name ->
      if not (Manager.heal mgr2 name) then ignore (Manager.repair mgr2 name))
    (Harness.unhealthy mgr2);
  Reference.refresh reference2;
  Harness.compare_states reference2 mgr2 db2 s last;
  if not (Manager.all_consistent mgr2) then
    diverged ~index:last ~view:"" Harness.Health
      "all_consistent false after recovery";
  remove_dir dir;
  remove_dir dir2;
  {
    crashed = Option.is_some !crash;
    crash_point;
    crash_index = (match !crash with Some _ -> crash_index | None -> -1);
    torn_bytes;
    records_replayed = info.Manager.records_replayed;
    commits_before_crash = !commits;
  }

type outcome = {
  streams_run : int;
  crashes : int;
  torn : int;  (** crashes with a torn-tail injection *)
  replayed : int;  (** WAL records replayed across all recoveries *)
  failure : (Stream.t * Harness.divergence) option;
}

let fuzz ?(progress = fun _ -> ()) ?(fault_rate = 0.05) ?(aggregates = true)
    ~dir ~seed ~streams ~transactions ~domains () =
  let rec loop k crashes torn replayed =
    if k >= streams then
      { streams_run = streams; crashes; torn; replayed; failure = None }
    else begin
      let stream =
        Stream.generate ~domains ~aggregates ~seed:(seed + k) ~transactions ()
      in
      let dir = Printf.sprintf "%s-%d" dir k in
      match run ~fault_rate ~dir stream with
      | r ->
        progress (k + 1);
        loop (k + 1)
          (crashes + if r.crashed then 1 else 0)
          (torn + if r.torn_bytes > 0 then 1 else 0)
          (replayed + r.records_replayed)
      | exception Harness.Diverged d ->
        { streams_run = k + 1; crashes; torn; replayed; failure = Some (stream, d) }
    end
  in
  loop 0 0 0 0
