(** Model-based comparison of the maintenance engine against the naive
    reference.

    {!run} replays a stream twice in lockstep — once through the full
    stack ({!Ivm.Manager} with the stream's domain count and per-view
    options) and once through {!Reference} — and checks after {e every}
    commit that:

    - the base relations agree (transactions installed identically);
    - every materialization agrees tuple for tuple {e and counter for
      counter} with a from-scratch recompute;
    - every screening decision is sound: an update tuple the engine's
      Theorem 4.1 screens drop for all aliases of a view must leave that
      view's from-scratch evaluation unchanged when toggled in the
      pre-transaction state.

    The first violated check stops the run and is reported as a
    {!divergence}; [None] means the whole stream replayed cleanly. *)

type kind =
  | Base_relations  (** engine and reference base states differ *)
  | Materialization  (** visible tuple sets differ *)
  | Counters  (** same tuple set, different multiplicities *)
  | Screening  (** a screened-out tuple changes the view *)
  | Health  (** a quarantined view failed to heal by end of stream *)

type divergence = {
  transaction_index : int;  (** 0-based index into the stream *)
  view : string;
  kind : kind;
  detail : string;
}

val kind_name : kind -> string
val pp_divergence : Format.formatter -> divergence -> unit

(** Commit outcomes observed during one {!run}. *)
type run_stats = {
  mutable committed : int;
  mutable aborted : int;  (** clean [Commit_failed] aborts (faults only) *)
  mutable quarantined : int;  (** views newly quarantined by a commit *)
  mutable healed : int;  (** quarantined views that later healed *)
  mutable faults : int;  (** faults injected across the replay *)
}

val fresh_stats : unit -> run_stats

(** Names of views currently quarantined or disabled. *)
val unhealthy : Ivm.Manager.t -> string list

(** Raised by {!compare_states} (and internally by {!run}) on the first
    violated check. *)
exception Diverged of divergence

(** One lockstep comparison: base relations, then every materialization
    (tuples {e and} counters) not in [skip], against the reference.
    @raise Diverged on the first mismatch.  Exposed for the
    crash-recovery harness ({!Crash}), which interleaves comparisons
    with kills and recoveries. *)
val compare_states :
  ?skip:string list ->
  Reference.t ->
  Ivm.Manager.t ->
  Relalg.Database.t ->
  Stream.t ->
  int ->
  unit

(** [run ?corrupt ?fault_rate ?policy ?stats stream] replays [stream];
    [corrupt], used by the test suite to simulate maintenance bugs, runs
    after each commit with the manager and the 0-based transaction index
    and may tamper with the engine's state.

    With [fault_rate] > 0, {!Resilience.Fault} is armed (deterministically
    from the stream's seed) for the duration of the replay and the checks
    widen to the fault-tolerance contract: every commit must either
    succeed (healthy views agree with the oracle), abort cleanly
    ([Commit_failed] with the engine bit-identical to the oracle's
    pre-commit state — the reference does not step), or quarantine views
    that must self-heal; at end of stream every quarantined view is
    healed, the full state compared, and {!Ivm.Manager.all_consistent}
    must hold.  Without faults, any commit exception is an engine bug and
    reported as a divergence.  [policy] (default [Abort]) is the
    manager's failure policy; [stats] accumulates commit outcomes. *)
val run :
  ?corrupt:(Ivm.Manager.t -> int -> unit) ->
  ?fault_rate:float ->
  ?policy:Resilience.Policy.t ->
  ?stats:run_stats ->
  Stream.t ->
  divergence option
