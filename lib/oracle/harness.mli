(** Model-based comparison of the maintenance engine against the naive
    reference.

    {!run} replays a stream twice in lockstep — once through the full
    stack ({!Ivm.Manager} with the stream's domain count and per-view
    options) and once through {!Reference} — and checks after {e every}
    commit that:

    - the base relations agree (transactions installed identically);
    - every materialization agrees tuple for tuple {e and counter for
      counter} with a from-scratch recompute;
    - every screening decision is sound: an update tuple the engine's
      Theorem 4.1 screens drop for all aliases of a view must leave that
      view's from-scratch evaluation unchanged when toggled in the
      pre-transaction state.

    The first violated check stops the run and is reported as a
    {!divergence}; [None] means the whole stream replayed cleanly. *)

type kind =
  | Base_relations  (** engine and reference base states differ *)
  | Materialization  (** visible tuple sets differ *)
  | Counters  (** same tuple set, different multiplicities *)
  | Screening  (** a screened-out tuple changes the view *)

type divergence = {
  transaction_index : int;  (** 0-based index into the stream *)
  view : string;
  kind : kind;
  detail : string;
}

val kind_name : kind -> string
val pp_divergence : Format.formatter -> divergence -> unit

(** [run ?corrupt stream] replays [stream]; [corrupt], used by the test
    suite to simulate maintenance bugs, runs after each commit with the
    manager and the 0-based transaction index and may tamper with the
    engine's state. *)
val run : ?corrupt:(Ivm.Manager.t -> int -> unit) -> Stream.t -> divergence option
