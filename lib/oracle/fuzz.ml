type counterexample = {
  stream : Stream.t;
  original_size : int;
  divergence : Harness.divergence;
  fault_rate : float;
  policy : Resilience.Policy.t;
}

type outcome = {
  streams_run : int;
  transactions_run : int;
  stats : Harness.run_stats;
  failure : counterexample option;
}

let shrink_failure ~fault_rate ~policy stream =
  let fails candidate = Harness.run ~fault_rate ~policy candidate <> None in
  let minimized = Shrink.minimize fails stream in
  let counterexample divergence =
    {
      stream = minimized;
      original_size = Stream.size stream;
      divergence;
      fault_rate;
      policy;
    }
  in
  match Harness.run ~fault_rate ~policy minimized with
  | Some divergence -> counterexample divergence
  | None ->
    (* Cannot happen: minimize only adopts failing candidates and its
       input fails.  Fall back to the unshrunk stream defensively. *)
    {
      stream;
      original_size = Stream.size stream;
      divergence = Option.get (Harness.run ~fault_rate ~policy stream);
      fault_rate;
      policy;
    }

(* Under fault injection both failure policies must uphold the contract,
   so streams alternate between them: even streams run [Abort]
   (all-or-nothing), odd streams [Quarantine] (isolate-and-heal). *)
let policy_for ~fault_rate k =
  if fault_rate <= 0.0 then Resilience.Policy.Abort
  else if k mod 2 = 0 then Resilience.Policy.Abort
  else Resilience.Policy.Quarantine

let run ?(progress = fun _ -> ()) ?(fault_rate = 0.0) ?(aggregates = false)
    ~seed ~streams ~transactions ~domains () =
  let stats = Harness.fresh_stats () in
  let rec loop k transactions_run =
    if k >= streams then
      { streams_run = streams; transactions_run; stats; failure = None }
    else begin
      let stream =
        Stream.generate ~domains ~aggregates ~seed:(seed + k) ~transactions ()
      in
      let policy = policy_for ~fault_rate k in
      match Harness.run ~fault_rate ~policy ~stats stream with
      | None ->
        progress (k + 1);
        loop (k + 1) (transactions_run + List.length stream.Stream.transactions)
      | Some _ ->
        {
          streams_run = k + 1;
          transactions_run =
            transactions_run + List.length stream.Stream.transactions;
          stats;
          failure = Some (shrink_failure ~fault_rate ~policy stream);
        }
    end
  in
  loop 0 0

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>%a@,@,minimal counterexample (shrunk from size %d to %d):@,%a@]"
    Harness.pp_divergence c.divergence c.original_size (Stream.size c.stream)
    Stream.pp c.stream;
  if c.fault_rate > 0.0 then
    Format.fprintf ppf "@,replay with --fault-rate %g under policy %s"
      c.fault_rate
      (Resilience.Policy.name c.policy)
