type counterexample = {
  stream : Stream.t;
  original_size : int;
  divergence : Harness.divergence;
}

type outcome = {
  streams_run : int;
  transactions_run : int;
  failure : counterexample option;
}

let shrink_failure stream =
  let fails candidate = Harness.run candidate <> None in
  let minimized = Shrink.minimize fails stream in
  match Harness.run minimized with
  | Some divergence ->
    { stream = minimized; original_size = Stream.size stream; divergence }
  | None ->
    (* Cannot happen: minimize only adopts failing candidates and its
       input fails.  Fall back to the unshrunk stream defensively. *)
    {
      stream;
      original_size = Stream.size stream;
      divergence =
        Option.get (Harness.run stream);
    }

let run ?(progress = fun _ -> ()) ~seed ~streams ~transactions ~domains () =
  let rec loop k transactions_run =
    if k >= streams then
      { streams_run = streams; transactions_run; failure = None }
    else begin
      let stream =
        Stream.generate ~domains ~seed:(seed + k) ~transactions ()
      in
      match Harness.run stream with
      | None ->
        progress (k + 1);
        loop (k + 1) (transactions_run + List.length stream.Stream.transactions)
      | Some _ ->
        {
          streams_run = k + 1;
          transactions_run =
            transactions_run + List.length stream.Stream.transactions;
          failure = Some (shrink_failure stream);
        }
    end
  in
  loop 0 0

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>%a@,@,minimal counterexample (shrunk from size %d to %d):@,%a@]"
    Harness.pp_divergence c.divergence c.original_size (Stream.size c.stream)
    Stream.pp c.stream
