(** Greedy stream minimization.

    Given a failing stream (one some predicate — normally "{!Harness.run}
    reports a divergence" — holds for), {!minimize} searches for a smaller
    stream that still fails, in decreasing order of payoff:

    + drop whole transactions (binary chunks first, then one by one);
    + drop individual operations inside the remaining transactions;
    + drop whole views (a counterexample rarely needs more than one);
    + drop initial tuples from the base relations;
    + shrink integer values toward zero.

    Passes repeat until a full round makes no progress.  Every candidate
    is replayable because {!Stream.filter_valid} makes streams closed
    under element removal, so the predicate is always well-defined. *)

(** [minimize fails stream] returns a (weakly) smaller stream on which
    [fails] still holds; [fails stream] must be [true] on entry.
    [max_rounds] (default 10) bounds the pass iterations. *)
val minimize : ?max_rounds:int -> (Stream.t -> bool) -> Stream.t -> Stream.t
