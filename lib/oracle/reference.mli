(** Deliberately naive reference engine for differential testing.

    The whole maintenance stack (screening, counted tagged evaluation,
    domain-pool commits) is checked against the one definition nobody can
    argue with: after every transaction, a view's contents are whatever a
    full re-evaluation of its defining expression over the current base
    relations produces (Algorithm 5.1's correctness statement, Theorems
    4.1/4.2).  This engine implements exactly that and {e nothing} else:

    - transactions are applied tuple by tuple to plain set relations (no
      netting, no deltas);
    - every view is recomputed from scratch via {!Query.Eval.eval} after
      each transaction, so multiplicity counters come straight from the
      counted operator semantics over raw base multiplicities;
    - no code is shared with [lib/core]'s maintenance path — a bug there
      cannot cancel out here. *)

open Relalg

type t

(** [create db] snapshots a deep copy of [db]; the reference evolves
    independently of the engine under test. *)
val create : Database.t -> t

(** The reference's own base state. *)
val database : t -> Database.t

(** [define t ~name expr] registers a view and materializes it by direct
    evaluation.
    @raise Invalid_argument if the name is taken. *)
val define : t -> name:string -> Query.Expr.t -> unit

val view_names : t -> string list

(** Current reference materialization.
    @raise Not_found for unknown names. *)
val contents : t -> string -> Relation.t

(** [apply t txn] installs a transaction naively: each insert must be
    absent, each delete present.
    @raise Invalid_argument on an invalid operation (the state is then
    partially updated — callers feed only valid transactions). *)
val apply : t -> Transaction.t -> unit

(** Recompute every view from scratch against the current base state. *)
val refresh : t -> unit

(** [step t txn] is {!apply} followed by {!refresh}. *)
val step : t -> Transaction.t -> unit

(** [tuple_affects t ~view ~relation ~insert tuple] brute-forces the
    relevance question in the current state: toggle [tuple]'s membership
    in [relation] the way the operation would ([insert = true] adds it,
    otherwise removes it), re-evaluate [view] from scratch, undo the
    toggle, and report whether the materialization changed.  A tuple the
    engine screens out as irrelevant by Theorem 4.1 must never affect the
    view — in this state or any other. *)
val tuple_affects :
  t -> view:string -> relation:string -> insert:bool -> Tuple.t -> bool
