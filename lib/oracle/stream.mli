(** Concrete, replayable transaction streams for the oracle harness.

    A stream is pure data: the initial base relations (schema, generator
    recipe and exact tuples), the view definitions with their maintenance
    options, and the transaction list.  Everything the fuzzer does —
    generation, replay, shrinking, counterexample printing — goes through
    this one representation, so a failure reproduces from what is printed.

    Streams are closed under shrinking: {!filter_valid} drops operations
    that are invalid against the current state (duplicate inserts,
    deletions of absent tuples), so removing a transaction, an operation
    or an initial tuple always leaves a replayable stream. *)

open Relalg

type view_spec = {
  view_name : string;
  expr : Query.Expr.t;
  options : Ivm.Maintenance.options;
  keys : Query.Keys.t;
      (** declared candidate keys — generated streams declare each
          relation's full attribute list, which set semantics makes sound,
          so the [Self_maintain] arm gets real certificates to exercise *)
}

type t = {
  seed : int;
  domains : int;  (** maintenance parallelism for the engine under test *)
  relations : (string * Schema.t * Workload.Generate.column list * Tuple.t list) list;
      (** name, schema, generator recipe, initial contents *)
  views : view_spec list;
  transactions : Transaction.t list;
}

(** Counted size of the stream, for shrinker progress: transactions +
    operations + initial tuples + views. *)
val size : t -> int

(** [generate ~seed ~transactions ~domains ()] derives a full random
    scenario from the seed: the joinable R(A,B) / S(B,C) / T(C,D) family
    with random sizes, 2–4 views mixing forced and advisor-chosen
    strategies with screening on and off, and a transaction stream mixing
    plain insert/delete batches, overlapping multi-relation updates,
    correlated deletes, update-as-delete+insert pairs, no-op transactions
    and inserts provably irrelevant by Theorem 4.1.

    With [~aggregates:true] the scenario additionally draws 1–2 GROUP BY
    views (COUNT/SUM/AVG/MIN/MAX over the same family, grouped and
    keyless) and a 1–2 view tower of dependents stacked on randomly
    chosen parents — selects, projects and aggregates over view names —
    so the lockstep check covers ring-valued payloads and views over
    views. *)
val generate :
  ?domains:int -> ?aggregates:bool -> seed:int -> transactions:int -> unit -> t

(** Views reference only base relations or earlier views, each name
    defined once.  Generated streams always satisfy this; the shrinker
    uses it to reject candidates that would orphan a tower child. *)
val well_formed : t -> bool

(** Fresh database holding the initial contents. *)
val build_db : t -> Database.t

(** [filter_valid db txn] keeps the longest valid subsequence of [txn]
    against the current state of [db] (simulated, not applied): inserts of
    present tuples and deletes of absent tuples are dropped. *)
val filter_valid : Database.t -> Transaction.t -> Transaction.t

(** Pretty-print the whole stream as a replayable counterexample. *)
val pp : Format.formatter -> t -> unit

(** Break-free one-line tuple rendering, shared by the divergence
    reports. *)
val tuple_to_string : Tuple.t -> string
