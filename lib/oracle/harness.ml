open Relalg
module Manager = Ivm.Manager
module View = Ivm.View

type kind =
  | Base_relations
  | Materialization
  | Counters
  | Screening
  | Health

type divergence = {
  transaction_index : int;
  view : string;
  kind : kind;
  detail : string;
}

let kind_name = function
  | Base_relations -> "base relations"
  | Materialization -> "materialization"
  | Counters -> "counters"
  | Screening -> "screening"
  | Health -> "health"

let pp_divergence ppf d =
  Format.fprintf ppf "%s divergence on %S after transaction %d: %s"
    (kind_name d.kind) d.view (d.transaction_index + 1) d.detail

exception Diverged of divergence

(* Up to [limit] (tuple, engine count, reference count) entries where the
   two relations disagree, for a readable detail line. *)
let describe_diff ?(limit = 4) engine reference =
  let disagreements = ref [] in
  let note t ce cr =
    if ce <> cr && not (List.mem_assoc t !disagreements) then
      disagreements := (t, (ce, cr)) :: !disagreements
  in
  Relation.iter (fun t ce -> note t ce (Relation.count reference t)) engine;
  Relation.iter (fun t cr -> note t (Relation.count engine t) cr) reference;
  let shown = List.filteri (fun i _ -> i < limit) (List.rev !disagreements) in
  let entries =
    List.map
      (fun (t, (ce, cr)) ->
        Printf.sprintf "%s engine#%d reference#%d" (Stream.tuple_to_string t)
          ce cr)
      shown
  in
  Printf.sprintf "%d vs %d tuples; %s%s" (Relation.cardinal engine)
    (Relation.cardinal reference)
    (String.concat ", " entries)
    (if List.length !disagreements > limit then ", ..." else "")

(* Screening soundness in the pre-transaction state: for every operation
   whose tuple is valid against that state, if the engine's screens drop
   the tuple for every alias of the relation in a view, toggling it must
   leave the reference's from-scratch evaluation of that view unchanged. *)
let check_screening reference mgr (s : Stream.t) index txn =
  let ref_db = Reference.database reference in
  List.iter
    (fun (spec : Stream.view_spec) ->
      if spec.Stream.options.Ivm.Maintenance.screen then begin
        let view = Manager.view mgr spec.Stream.view_name in
        let spj = View.spj view in
        List.iter
          (fun op ->
            let relation, tuple, insert =
              match op with
              | Transaction.Insert (r, t) -> (r, t, true)
              | Transaction.Delete (r, t) -> (r, t, false)
            in
            let valid_in_pre_state =
              let present = Relation.mem (Database.find ref_db relation) tuple in
              if insert then not present else present
            in
            let aliases = Query.Spj.sources_of_relation spj relation in
            if valid_in_pre_state && aliases <> [] then begin
              let engine_irrelevant =
                List.for_all
                  (fun (source : Query.Spj.source) ->
                    not
                      (Ivm.Irrelevance.relevant
                         (View.screen_for view ~alias:source.Query.Spj.alias)
                         tuple))
                  aliases
              in
              if
                engine_irrelevant
                && Reference.tuple_affects reference
                     ~view:spec.Stream.view_name ~relation ~insert tuple
              then
                raise
                  (Diverged
                     {
                       transaction_index = index;
                       view = spec.Stream.view_name;
                       kind = Screening;
                       detail =
                         Printf.sprintf
                           "screens prove %s %s %s %S irrelevant, but it \
                            changes the recomputed view"
                           (if insert then "inserting" else "deleting")
                           (Stream.tuple_to_string tuple)
                           (if insert then "into" else "from")
                           relation;
                     })
            end)
          txn
      end)
    s.Stream.views

(* [skip] names views whose materialization is knowingly stale
   (quarantined): their comparison is deferred until they heal. *)
let compare_states ?(skip = []) reference mgr db (s : Stream.t) index =
  let ref_db = Reference.database reference in
  List.iter
    (fun name ->
      let engine = Database.find db name in
      let oracle = Database.find ref_db name in
      if not (Relation.equal engine oracle) then
        raise
          (Diverged
             {
               transaction_index = index;
               view = name;
               kind = Base_relations;
               detail = describe_diff engine oracle;
             }))
    (Database.names db);
  List.iter
    (fun (spec : Stream.view_spec) ->
      if not (List.mem spec.Stream.view_name skip) then begin
        let engine = View.contents (Manager.view mgr spec.Stream.view_name) in
        let oracle = Reference.contents reference spec.Stream.view_name in
        if not (Relation.equal engine oracle) then
          raise
            (Diverged
               {
                 transaction_index = index;
                 view = spec.Stream.view_name;
                 kind =
                   (if Relation.set_equal engine oracle then Counters
                    else Materialization);
                 detail = describe_diff engine oracle;
               })
      end)
    s.Stream.views

type run_stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable quarantined : int;
  mutable healed : int;
  mutable faults : int;
}

let fresh_stats () =
  { committed = 0; aborted = 0; quarantined = 0; healed = 0; faults = 0 }

let unhealthy mgr =
  List.filter_map
    (fun (name, h) ->
      match h with
      | Manager.Healthy -> None
      | Manager.Quarantined _ | Manager.Disabled _ -> Some name)
    (Manager.health mgr)

let run ?(corrupt = fun _ _ -> ()) ?(fault_rate = 0.0)
    ?(policy = Resilience.Policy.Abort) ?stats (s : Stream.t) =
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let db = Stream.build_db s in
  let mgr = Manager.create ~domains:s.Stream.domains ~policy db in
  List.iter
    (fun (spec : Stream.view_spec) ->
      ignore
        (Manager.define_view mgr ~name:spec.Stream.view_name ~force:true
           ~options:spec.Stream.options ~keys:spec.Stream.keys
           spec.Stream.expr))
    s.Stream.views;
  let reference = Reference.create db in
  List.iter
    (fun (spec : Stream.view_spec) ->
      Reference.define reference ~name:spec.Stream.view_name spec.Stream.expr)
    s.Stream.views;
  (* Faults activate only after setup, and deterministically per stream:
     the same stream replays the same fault sequence (at domains = 1;
     parallel interleaving may permute per-point occurrence numbering). *)
  if fault_rate > 0.0 then
    Resilience.Fault.configure ~seed:(s.Stream.seed lxor 0x5EED) ~rate:fault_rate
      ();
  Fun.protect
    ~finally:(fun () ->
      if fault_rate > 0.0 then
        stats.faults <- stats.faults + Resilience.Fault.injected ();
      Resilience.Fault.disable ())
  @@ fun () ->
  match
    List.iteri
      (fun index raw ->
        let txn = Stream.filter_valid db raw in
        check_screening reference mgr s index txn;
        let stale_before = unhealthy mgr in
        match Manager.commit mgr txn with
        | (_ : Ivm.Maintenance.report list) ->
          stats.committed <- stats.committed + 1;
          let stale = unhealthy mgr in
          stats.quarantined <-
            stats.quarantined
            + List.length
                (List.filter (fun n -> not (List.mem n stale_before)) stale);
          stats.healed <-
            stats.healed
            + List.length
                (List.filter (fun n -> not (List.mem n stale)) stale_before);
          corrupt mgr index;
          (* Every commit outcome is checked against the oracle: on
             success the reference steps and all healthy views must
             agree (quarantined ones are stale by contract — they are
             checked after their heal). *)
          Reference.step reference txn;
          compare_states ~skip:stale reference mgr db s index
        | exception Manager.Commit_failed _ when fault_rate > 0.0 ->
          (* Clean abort: the reference does not step, and the engine
             must be bit-identical to the oracle's pre-commit deep
             copy — base relations and every healthy materialization.
             Without injected faults an abort is an engine bug and falls
             through to the divergence branch below. *)
          stats.aborted <- stats.aborted + 1;
          compare_states ~skip:(unhealthy mgr) reference mgr db s index
        | exception exn ->
          raise
            (Diverged
               {
                 transaction_index = index;
                 view = "";
                 kind = Materialization;
                 detail = "engine raised: " ^ Printexc.to_string exn;
               }))
      s.Stream.transactions
  with
  | () ->
    let last = List.length s.Stream.transactions - 1 in
    (* End of stream: every quarantined view must self-heal (faults are
       still active — healing is what the retry/recompute ladder is
       for), after which the full state must agree with the oracle. *)
    let stale_at_end = unhealthy mgr in
    let still_stale =
      List.filter (fun name -> not (Manager.heal mgr name)) stale_at_end
    in
    (match still_stale with
    | [] -> ()
    | name :: _ ->
      raise
        (Diverged
           {
             transaction_index = last;
             view = name;
             kind = Health;
             detail = "view failed to self-heal by end of stream";
           }));
    stats.healed <- stats.healed + List.length stale_at_end;
    compare_states reference mgr db s last;
    if not (Manager.all_consistent mgr) then
      raise
        (Diverged
           {
             transaction_index = last;
             view = "";
             kind = Health;
             detail = "all_consistent false at end of stream";
           });
    None
  | exception Diverged d -> Some d
