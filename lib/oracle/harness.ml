open Relalg
module Manager = Ivm.Manager
module View = Ivm.View

type kind =
  | Base_relations
  | Materialization
  | Counters
  | Screening

type divergence = {
  transaction_index : int;
  view : string;
  kind : kind;
  detail : string;
}

let kind_name = function
  | Base_relations -> "base relations"
  | Materialization -> "materialization"
  | Counters -> "counters"
  | Screening -> "screening"

let pp_divergence ppf d =
  Format.fprintf ppf "%s divergence on %S after transaction %d: %s"
    (kind_name d.kind) d.view (d.transaction_index + 1) d.detail

exception Diverged of divergence

(* Up to [limit] (tuple, engine count, reference count) entries where the
   two relations disagree, for a readable detail line. *)
let describe_diff ?(limit = 4) engine reference =
  let disagreements = ref [] in
  let note t ce cr =
    if ce <> cr && not (List.mem_assoc t !disagreements) then
      disagreements := (t, (ce, cr)) :: !disagreements
  in
  Relation.iter (fun t ce -> note t ce (Relation.count reference t)) engine;
  Relation.iter (fun t cr -> note t (Relation.count engine t) cr) reference;
  let shown = List.filteri (fun i _ -> i < limit) (List.rev !disagreements) in
  let entries =
    List.map
      (fun (t, (ce, cr)) ->
        Printf.sprintf "%s engine#%d reference#%d" (Stream.tuple_to_string t)
          ce cr)
      shown
  in
  Printf.sprintf "%d vs %d tuples; %s%s" (Relation.cardinal engine)
    (Relation.cardinal reference)
    (String.concat ", " entries)
    (if List.length !disagreements > limit then ", ..." else "")

(* Screening soundness in the pre-transaction state: for every operation
   whose tuple is valid against that state, if the engine's screens drop
   the tuple for every alias of the relation in a view, toggling it must
   leave the reference's from-scratch evaluation of that view unchanged. *)
let check_screening reference mgr (s : Stream.t) index txn =
  let ref_db = Reference.database reference in
  List.iter
    (fun (spec : Stream.view_spec) ->
      if spec.Stream.options.Ivm.Maintenance.screen then begin
        let view = Manager.view mgr spec.Stream.view_name in
        let spj = View.spj view in
        List.iter
          (fun op ->
            let relation, tuple, insert =
              match op with
              | Transaction.Insert (r, t) -> (r, t, true)
              | Transaction.Delete (r, t) -> (r, t, false)
            in
            let valid_in_pre_state =
              let present = Relation.mem (Database.find ref_db relation) tuple in
              if insert then not present else present
            in
            let aliases = Query.Spj.sources_of_relation spj relation in
            if valid_in_pre_state && aliases <> [] then begin
              let engine_irrelevant =
                List.for_all
                  (fun (source : Query.Spj.source) ->
                    not
                      (Ivm.Irrelevance.relevant
                         (View.screen_for view ~alias:source.Query.Spj.alias)
                         tuple))
                  aliases
              in
              if
                engine_irrelevant
                && Reference.tuple_affects reference
                     ~view:spec.Stream.view_name ~relation ~insert tuple
              then
                raise
                  (Diverged
                     {
                       transaction_index = index;
                       view = spec.Stream.view_name;
                       kind = Screening;
                       detail =
                         Printf.sprintf
                           "screens prove %s %s %s %S irrelevant, but it \
                            changes the recomputed view"
                           (if insert then "inserting" else "deleting")
                           (Stream.tuple_to_string tuple)
                           (if insert then "into" else "from")
                           relation;
                     })
            end)
          txn
      end)
    s.Stream.views

let compare_states reference mgr db (s : Stream.t) index =
  let ref_db = Reference.database reference in
  List.iter
    (fun name ->
      let engine = Database.find db name in
      let oracle = Database.find ref_db name in
      if not (Relation.equal engine oracle) then
        raise
          (Diverged
             {
               transaction_index = index;
               view = name;
               kind = Base_relations;
               detail = describe_diff engine oracle;
             }))
    (Database.names db);
  List.iter
    (fun (spec : Stream.view_spec) ->
      let engine = View.contents (Manager.view mgr spec.Stream.view_name) in
      let oracle = Reference.contents reference spec.Stream.view_name in
      if not (Relation.equal engine oracle) then
        raise
          (Diverged
             {
               transaction_index = index;
               view = spec.Stream.view_name;
               kind =
                 (if Relation.set_equal engine oracle then Counters
                  else Materialization);
               detail = describe_diff engine oracle;
             }))
    s.Stream.views

let run ?(corrupt = fun _ _ -> ()) (s : Stream.t) =
  let db = Stream.build_db s in
  let mgr = Manager.create ~domains:s.Stream.domains db in
  List.iter
    (fun (spec : Stream.view_spec) ->
      ignore
        (Manager.define_view mgr ~name:spec.Stream.view_name ~force:true
           ~options:spec.Stream.options spec.Stream.expr))
    s.Stream.views;
  let reference = Reference.create db in
  List.iter
    (fun (spec : Stream.view_spec) ->
      Reference.define reference ~name:spec.Stream.view_name spec.Stream.expr)
    s.Stream.views;
  match
    List.iteri
      (fun index raw ->
        let txn = Stream.filter_valid db raw in
        check_screening reference mgr s index txn;
        (match Manager.commit mgr txn with
        | (_ : Ivm.Maintenance.report list) -> ()
        | exception exn ->
          raise
            (Diverged
               {
                 transaction_index = index;
                 view = "";
                 kind = Materialization;
                 detail = "engine raised: " ^ Printexc.to_string exn;
               }));
        corrupt mgr index;
        Reference.step reference txn;
        compare_states reference mgr db s index)
      s.Stream.transactions
  with
  | () -> None
  | exception Diverged d -> Some d
