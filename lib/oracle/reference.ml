open Relalg

type entry = {
  name : string;
  expr : Query.Expr.t;
  mutable materialization : Relation.t;
}

type t = {
  db : Database.t;
  mutable views : entry list; (* in definition order *)
}

let create db = { db = Database.copy db; views = [] }
let database t = t.db

(* Evaluation scope: the base relations plus every already-registered
   view's materialization under its name, so a view over views resolves
   its parents naively — whatever their last full recompute produced. *)
let scope t =
  let scope = Database.create () in
  List.iter
    (fun n -> Database.register scope n (Database.find t.db n))
    (Database.names t.db);
  List.iter (fun e -> Database.register scope e.name e.materialization) t.views;
  scope

let define t ~name expr =
  if List.exists (fun e -> String.equal e.name name) t.views then
    invalid_arg (Printf.sprintf "Reference.define: %S already exists" name);
  t.views <-
    t.views @ [ { name; expr; materialization = Query.Eval.eval (scope t) expr } ]

let view_names t = List.map (fun e -> e.name) t.views

let entry t name =
  match List.find_opt (fun e -> String.equal e.name name) t.views with
  | Some e -> e
  | None -> raise Not_found

let contents t name = (entry t name).materialization

let apply t txn =
  List.iter
    (fun op ->
      match op with
      | Transaction.Insert (relation, tuple) ->
        let r = Database.find t.db relation in
        if Relation.mem r tuple then
          invalid_arg
            (Printf.sprintf "Reference.apply: duplicate insert into %S"
               relation);
        Relation.add r tuple
      | Transaction.Delete (relation, tuple) ->
        let r = Database.find t.db relation in
        if not (Relation.mem r tuple) then
          invalid_arg
            (Printf.sprintf "Reference.apply: delete of absent tuple from %S"
               relation);
        Relation.remove r tuple)
    txn

(* Full recompute, in definition order: parents refresh before the
   children that read them, so one pass settles an arbitrarily tall
   tower (a child can only reference earlier definitions). *)
let refresh t =
  let scope = Database.create () in
  List.iter
    (fun n -> Database.register scope n (Database.find t.db n))
    (Database.names t.db);
  List.iter
    (fun e ->
      let m = Query.Eval.eval scope e.expr in
      e.materialization <- m;
      Database.register scope e.name m)
    t.views

let step t txn =
  apply t txn;
  refresh t

(* Evaluate one view from scratch in the current base state, rebuilding
   every ancestor on the way (without touching any stored
   materialization). *)
let eval_view t name =
  let scope = Database.create () in
  List.iter
    (fun n -> Database.register scope n (Database.find t.db n))
    (Database.names t.db);
  let rec go = function
    | [] -> raise Not_found
    | e :: rest ->
      let m = Query.Eval.eval scope e.expr in
      if String.equal e.name name then m
      else begin
        Database.register scope e.name m;
        go rest
      end
  in
  go t.views

let tuple_affects t ~view ~relation ~insert tuple =
  ignore (entry t view);
  let r = Database.find t.db relation in
  let toggle () =
    if insert then Relation.add r tuple else Relation.remove r tuple
  in
  let untoggle () =
    if insert then Relation.remove r tuple else Relation.add r tuple
  in
  let before = eval_view t view in
  toggle ();
  let after =
    match eval_view t view with
    | after -> after
    | exception exn ->
      untoggle ();
      raise exn
  in
  untoggle ();
  not (Relation.equal before after)
