open Relalg

type entry = {
  name : string;
  expr : Query.Expr.t;
  mutable materialization : Relation.t;
}

type t = {
  db : Database.t;
  mutable views : entry list; (* in definition order *)
}

let create db = { db = Database.copy db; views = [] }
let database t = t.db

let define t ~name expr =
  if List.exists (fun e -> String.equal e.name name) t.views then
    invalid_arg (Printf.sprintf "Reference.define: %S already exists" name);
  t.views <-
    t.views @ [ { name; expr; materialization = Query.Eval.eval t.db expr } ]

let view_names t = List.map (fun e -> e.name) t.views

let entry t name =
  match List.find_opt (fun e -> String.equal e.name name) t.views with
  | Some e -> e
  | None -> raise Not_found

let contents t name = (entry t name).materialization

let apply t txn =
  List.iter
    (fun op ->
      match op with
      | Transaction.Insert (relation, tuple) ->
        let r = Database.find t.db relation in
        if Relation.mem r tuple then
          invalid_arg
            (Printf.sprintf "Reference.apply: duplicate insert into %S"
               relation);
        Relation.add r tuple
      | Transaction.Delete (relation, tuple) ->
        let r = Database.find t.db relation in
        if not (Relation.mem r tuple) then
          invalid_arg
            (Printf.sprintf "Reference.apply: delete of absent tuple from %S"
               relation);
        Relation.remove r tuple)
    txn

let refresh t =
  List.iter (fun e -> e.materialization <- Query.Eval.eval t.db e.expr) t.views

let step t txn =
  apply t txn;
  refresh t

let tuple_affects t ~view ~relation ~insert tuple =
  let e = entry t view in
  let r = Database.find t.db relation in
  let toggle () =
    if insert then Relation.add r tuple else Relation.remove r tuple
  in
  let untoggle () =
    if insert then Relation.remove r tuple else Relation.add r tuple
  in
  let before = Query.Eval.eval t.db e.expr in
  toggle ();
  let after =
    match Query.Eval.eval t.db e.expr with
    | after -> after
    | exception exn ->
      untoggle ();
      raise exn
  in
  untoggle ();
  not (Relation.equal before after)
