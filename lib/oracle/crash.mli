(** Crash-recovery lockstep gate.

    Extends the oracle harness to the durability contract: a fuzz
    stream runs against a write-ahead-logged manager with fault
    injection armed over the WAL kill points ([wal-apply],
    [wal-append], [wal-fsync], [wal-checkpoint], [wal-truncate]) as
    well as the usual maintenance points.  An injected fault escaping
    from a kill point is a simulated process death; the harness then

    - optionally tears the last WAL record at a seed-chosen byte
      offset (a crash mid-append),
    - recovers into a fresh manager and requires
      {!Durability.State.diff} to find {e no} difference against the
      snapshot taken when that WAL position was the durable frontier —
      quarantined and banked views come back in the same health state,
    - recovers again, in place and from a byte-for-byte copy of the
      pre-recovery directory, to check idempotence,
    - and continues the stream on the recovered manager against a
      rebuilt reference, finishing with the usual end-of-stream
      heal-and-compare.

    Streams that never crash still recover at end of stream, so every
    run exercises the checkpoint/replay path. *)

type report = {
  crashed : bool;
  crash_point : string option;
  crash_index : int;  (** transaction index of the kill, -1 if none *)
  torn_bytes : int;  (** bytes cut off the last record, 0 if whole *)
  records_replayed : int;
  commits_before_crash : int;
}

(** [run ~dir stream] runs the whole protocol in [dir] (created,
    cleaned up on success; a [.copy] sibling holds the frozen image).
    The fsync policy, checkpoint cadence and failure policy are derived
    from the stream's seed.
    @raise Harness.Diverged on the first violated check. *)
val run : ?fault_rate:float -> dir:string -> Stream.t -> report

type outcome = {
  streams_run : int;
  crashes : int;  (** streams that died at a kill point *)
  torn : int;  (** crashes with a torn-tail injection *)
  replayed : int;  (** WAL records replayed across all recoveries *)
  failure : (Stream.t * Harness.divergence) option;
}

(** [fuzz ~dir ~seed ~streams ~transactions ~domains ()] runs
    [streams] independent streams (stream [k] from seed [seed + k], in
    directory [dir-k]) through {!run}, stopping at the first
    divergence. *)
val fuzz :
  ?progress:(int -> unit) ->
  ?fault_rate:float ->
  ?aggregates:bool ->
  dir:string ->
  seed:int ->
  streams:int ->
  transactions:int ->
  domains:int ->
  unit ->
  outcome
