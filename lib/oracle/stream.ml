open Relalg
module Generate = Workload.Generate
module Rng = Workload.Rng
module Maintenance = Ivm.Maintenance
module View = Ivm.View

type view_spec = {
  view_name : string;
  expr : Query.Expr.t;
  options : Maintenance.options;
  keys : Query.Keys.t;
}

type t = {
  seed : int;
  domains : int;
  relations : (string * Schema.t * Generate.column list * Tuple.t list) list;
  views : view_spec list;
  transactions : Transaction.t list;
}

let size s =
  List.length s.transactions
  + List.fold_left (fun acc txn -> acc + List.length txn) 0 s.transactions
  + List.fold_left (fun acc (_, _, _, ts) -> acc + List.length ts) 0 s.relations
  + List.length s.views

let build_db s =
  let db = Database.create () in
  List.iter
    (fun (name, schema, _, tuples) ->
      Database.register db name (Relation.of_tuples schema tuples))
    s.relations;
  db

let filter_valid db txn =
  (* Simulated membership: overrides accumulate as ops are admitted, so a
     tuple inserted earlier in the transaction is deletable later and vice
     versa — the same evolving-state rule Transaction.net_effect enforces. *)
  let overrides : (string * Tuple.t, bool) Hashtbl.t = Hashtbl.create 16 in
  let mem relation tuple =
    match Hashtbl.find_opt overrides (relation, tuple) with
    | Some present -> present
    | None -> Relation.mem (Database.find db relation) tuple
  in
  List.filter
    (function
      | Transaction.Insert (relation, tuple) ->
        if mem relation tuple then false
        else begin
          Hashtbl.replace overrides (relation, tuple) true;
          true
        end
      | Transaction.Delete (relation, tuple) ->
        if mem relation tuple then begin
          Hashtbl.replace overrides (relation, tuple) false;
          true
        end
        else false)
    txn

(* ------------------------------------------------------------------ *)
(* generation                                                          *)
(* ------------------------------------------------------------------ *)

let int_schema names =
  Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

(* The R/S/T chain family: narrow join keys so joins hit, a wide id-like
   column so relations reach their target sizes. *)
let key_range = 8

let relation_family =
  [
    ( "R",
      [ "A"; "B" ],
      [ Generate.Uniform (0, 400); Generate.Uniform (0, key_range - 1) ],
      1 );
    ( "S",
      [ "B"; "C" ],
      [ Generate.Uniform (0, key_range - 1); Generate.Uniform (0, 20) ],
      0 );
    ( "T",
      [ "C"; "D" ],
      [ Generate.Uniform (0, 20); Generate.Uniform (0, 400) ],
      0 );
  ]

(* Join-key column index per relation, for correlated churn. *)
let key_column name =
  let (_, _, _, key) =
    List.find (fun (n, _, _, _) -> String.equal n name) relation_family
  in
  key

let columns_of relations name =
  let (_, _, columns, _) =
    List.find (fun (n, _, _, _) -> String.equal n name) relations
  in
  columns

let view_templates =
  let open Condition.Formula.Dsl in
  [|
    Query.Expr.(select (v "A" <% i 200) (base "R"));
    Query.Expr.(project [ "B" ] (base "R"));
    Query.Expr.(join (base "R") (base "S"));
    Query.Expr.(
      project [ "A"; "C" ]
        (select
           ((v "A" <% i 200) &&% (v "C" >% i 5))
           (join (base "R") (base "S"))));
    Query.Expr.(
      select ((v "B" =% i 3) ||% (v "C" <% i 4))
        (join_all [ base "R"; base "S"; base "T" ]));
    Query.Expr.(
      project [ "B"; "D" ]
        (select
           ((v "C" >% i 2) &&% (v "D" <% i 300))
           (join (base "S") (base "T"))));
    Query.Expr.(project [ "C" ] (select (v "C" <>% i 7) (base "S")));
  |]

(* Base relations are sets, so the full attribute list is always a sound
   candidate key — streams declare it for every relation, which arms the
   self-maintainability analysis without trusting anything beyond set
   semantics.  (Join views recover both full keys through the equality
   classes; single-source views need no key at all.) *)
let stream_keys =
  [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "D" ]) ]

let agg func output = { Query.Aggregate.func; output }

(* Grouped views over the same family: every ring instance appears, MIN
   and MAX both grouped and global (the keyless forms exercise the
   group-disappears-at-zero rule hardest), AVG for the product ring. *)
let aggregate_templates =
  let open Condition.Formula.Dsl in
  [|
    Query.Expr.(
      group_by ~keys:[ "B" ]
        [ agg Query.Aggregate.Count "cnt"; agg (Query.Aggregate.Sum "A") "sum_a" ]
        (base "R"));
    Query.Expr.(
      group_by ~keys:[]
        [ agg Query.Aggregate.Count "cnt"; agg (Query.Aggregate.Min "A") "min_a" ]
        (base "R"));
    Query.Expr.(
      group_by ~keys:[ "B" ]
        [
          agg (Query.Aggregate.Min "A") "min_a";
          agg (Query.Aggregate.Max "A") "max_a";
        ]
        (select (v "A" <% i 300) (base "R")));
    Query.Expr.(
      group_by ~keys:[ "C" ]
        [ agg Query.Aggregate.Count "cnt"; agg (Query.Aggregate.Sum "A") "sum_a" ]
        (join (base "R") (base "S")));
    Query.Expr.(
      group_by ~keys:[ "B" ] [ agg (Query.Aggregate.Avg "C") "avg_c" ] (base "S"));
  |]

(* A dependent view over [parent], shaped from the parent's output
   schema so it compiles whatever template the parent drew: plain
   select/project children keep counted multiplicities flowing through
   the tower, aggregate children stack GROUP BY on GROUP BY. *)
let tower_child rng ~parent ~schema =
  let ints =
    List.filter_map
      (fun (a, ty) -> if ty = Value.Int_ty then Some a else None)
      (Schema.attrs schema)
  in
  let open Condition.Formula.Dsl in
  match ints with
  | [] ->
    Query.Expr.(group_by ~keys:[] [ agg Query.Aggregate.Count "cnt" ] (base parent))
  | a :: rest -> (
    match Rng.int rng 4 with
    | 0 -> Query.Expr.(select (v a >% i 0) (base parent))
    | 1 -> Query.Expr.(project [ a ] (base parent))
    | 2 ->
      Query.Expr.(
        group_by ~keys:[]
          [
            agg Query.Aggregate.Count "cnt";
            agg (Query.Aggregate.Sum a) ("sum_" ^ a);
          ]
          (base parent))
    | _ -> (
      match rest with
      | key :: _ ->
        Query.Expr.(
          group_by ~keys:[ key ]
            [ agg (Query.Aggregate.Min a) ("min_" ^ a) ]
            (base parent))
      | [] ->
        Query.Expr.(
          group_by ~keys:[]
            [ agg (Query.Aggregate.Max a) ("max_" ^ a) ]
            (base parent))))

(* Shrinking can drop a parent out from under its children; candidates
   that orphan (or self-reference, or redefine) a view are not
   replayable and must be rejected before they reach the engine. *)
let well_formed (s : t) =
  let base = List.map (fun (name, _, _, _) -> name) s.relations in
  let rec go defined = function
    | [] -> true
    | v :: rest ->
      (not (List.mem v.view_name defined))
      && List.for_all
           (fun n -> List.mem n base || List.mem n defined)
           (Query.Expr.base_names v.expr)
      && go (v.view_name :: defined) rest
  in
  go [] s.views

let random_options rng =
  let strategy =
    match Rng.int rng 5 with
    | 0 -> Maintenance.Recompute
    | 1 | 2 -> Maintenance.Differential
    | 3 -> Maintenance.Self_maintain
    | _ -> Maintenance.Adaptive
  in
  {
    Maintenance.strategy;
    screen = Rng.chance rng 0.7;
    reuse = Rng.chance rng 0.5;
    order = (if Rng.chance rng 0.5 then `Greedy else `Declaration);
    join_impl = (if Rng.chance rng 0.8 then `Hash else `Nested_loop);
    (* A threshold of 1 forces intra-view sharding onto the tiny fuzz
       relations, so multi-domain fuzz runs lockstep-check the sharded
       evaluation path against the oracle, not just the default that
       would never trigger at this scale. *)
    shard_min =
      (if Rng.chance rng 0.5 then 1 else Ivm.Delta_eval.default_shard_min);
  }

(* Every update to [relation] that all screens of all views prove
   irrelevant (Theorem 4.1).  Views whose screens keep everything make the
   predicate unsatisfiable in practice; fresh_where then returns nothing
   and the caller falls back to ordinary churn. *)
let irrelevant_pred views relation tuple =
  List.for_all
    (fun view ->
      List.for_all
        (fun (source : Query.Spj.source) ->
          not
            (Ivm.Irrelevance.relevant
               (View.screen_for view ~alias:source.Query.Spj.alias)
               tuple))
        (Query.Spj.sources_of_relation (View.spj view) relation))
    views

let generate ?(domains = 1) ?(aggregates = false) ~seed ~transactions () =
  let rng = Rng.make seed in
  let relations =
    List.map
      (fun (name, attrs, columns, _) ->
        let schema = int_schema attrs in
        let cardinality = Rng.range rng ~lo:5 ~hi:30 in
        let contents =
          List.map fst
            (Relation.elements (Generate.relation rng schema columns cardinality))
        in
        (name, schema, columns, contents))
      relation_family
  in
  let view_count = Rng.range rng ~lo:2 ~hi:4 in
  let template_order =
    let indices = Array.init (Array.length view_templates) Fun.id in
    Rng.shuffle rng indices;
    indices
  in
  let views =
    List.init view_count (fun k ->
        {
          view_name = Printf.sprintf "v%d" k;
          expr = view_templates.(template_order.(k));
          options = random_options rng;
          keys = stream_keys;
        })
  in
  (* Scratch state the transactions are generated against: the stream must
     be valid when replayed from the initial contents.  Compiled views give
     the screens the irrelevant-insert hunt needs; screens depend only on
     the definition, never on the evolving contents. *)
  let scratch =
    let db = Database.create () in
    List.iter
      (fun (name, schema, _, tuples) ->
        Database.register db name (Relation.of_tuples schema tuples))
      relations;
    db
  in
  let compiled =
    List.map (fun v -> View.define ~name:v.view_name ~db:scratch v.expr) views
  in
  (* The aggregate arm appends grouped views and a small tower on top of
     whatever was already drawn.  Each compiled view's contents are
     registered into the scratch database under the view's name, so a
     child's [View.define] resolves its parent exactly the way the
     manager's catalog will at replay; transactions only ever touch the
     base family, so the registered view contents going stale under
     churn is harmless. *)
  let views, compiled =
    if not aggregates then (views, compiled)
    else begin
      let agg_specs =
        List.init
          (1 + Rng.int rng 2)
          (fun k ->
            {
              view_name = Printf.sprintf "a%d" k;
              expr =
                aggregate_templates.(Rng.int rng
                                       (Array.length aggregate_templates));
              options = random_options rng;
              keys = stream_keys;
            })
      in
      let define_spec v = View.define ~name:v.view_name ~db:scratch v.expr in
      let register v c =
        Database.register scratch v.view_name (View.contents c)
      in
      List.iter2 register views compiled;
      let agg_compiled =
        List.map
          (fun v ->
            let c = define_spec v in
            register v c;
            c)
          agg_specs
      in
      let tower = ref [] in
      for k = 0 to Rng.int rng 2 do
        let parents =
          List.map2
            (fun v c -> (v.view_name, View.schema c))
            (views @ agg_specs @ List.rev_map fst !tower)
            (compiled @ agg_compiled @ List.rev_map snd !tower)
        in
        let pname, pschema =
          List.nth parents (Rng.int rng (List.length parents))
        in
        let spec =
          {
            view_name = Printf.sprintf "w%d" k;
            expr = tower_child rng ~parent:pname ~schema:pschema;
            options = random_options rng;
            keys = stream_keys;
          }
        in
        let c = define_spec spec in
        register spec c;
        tower := (spec, c) :: !tower
      done;
      ( views @ agg_specs @ List.rev_map fst !tower,
        compiled @ agg_compiled @ List.rev_map snd !tower )
    end
  in
  let relation_names = List.map (fun (name, _, _, _) -> name) relations in
  let random_relation () =
    List.nth relation_names (Rng.int rng (List.length relation_names))
  in
  let mixed () =
    Generate.mixed_transaction rng scratch
      (List.filter_map
         (fun name ->
           if Rng.chance rng 0.7 then
             Some (name, columns_of relations name, Rng.int rng 4, Rng.int rng 4)
           else None)
         relation_names)
  in
  let txns =
    List.init transactions (fun _ ->
        let txn =
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 -> mixed ()
          | 5 ->
            let name = random_relation () in
            Generate.update_transaction rng scratch name
              ~columns:(columns_of relations name)
              ~updates:(1 + Rng.int rng 3)
          | 6 ->
            let name = random_relation () in
            Generate.noop_transaction rng scratch name
              ~columns:(columns_of relations name)
              ~n:(1 + Rng.int rng 3)
          | 7 ->
            let name = random_relation () in
            Generate.correlated_transaction rng scratch name
              ~key:(key_column name)
              ~columns:(columns_of relations name)
              ~inserts:(Rng.int rng 3) ~deletes:(1 + Rng.int rng 3)
          | _ ->
            (* Inserts every view provably ignores, to stress screening;
               falls back to ordinary churn when no such tuple exists. *)
            let name = random_relation () in
            let base = Database.find scratch name in
            let irrelevant =
              Generate.fresh_where rng base
                (columns_of relations name)
                ~pred:(irrelevant_pred compiled name)
                (1 + Rng.int rng 3)
            in
            if irrelevant = [] then mixed ()
            else List.map (fun t -> Transaction.insert name t) irrelevant
        in
        Transaction.apply scratch (Transaction.net_effect scratch txn);
        txn)
  in
  { seed; domains; relations; views; transactions = txns }

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_options ppf (o : Maintenance.options) =
  Format.fprintf ppf "%s, screen=%s, %s order, %s join, shard_min=%d"
    (Maintenance.strategy_name o.Maintenance.strategy)
    (if o.Maintenance.screen then "on" else "off")
    (match o.Maintenance.order with
    | `Greedy -> "greedy"
    | `Declaration -> "declaration")
    (match o.Maintenance.join_impl with
    | `Hash -> "hash"
    | `Nested_loop -> "nested-loop")
    o.Maintenance.shard_min

(* Break-free renderings: counterexamples should paste back as one line
   per item, which the boxed Schema.pp/Tuple.pp printers do not ensure. *)
let tuple_to_string t =
  "("
  ^ String.concat ", "
      (List.map (Format.asprintf "%a" Value.pp) (Array.to_list t))
  ^ ")"

let schema_to_string schema =
  "("
  ^ String.concat ", "
      (List.map
         (fun (attr, ty) ->
           Printf.sprintf "%s:%s" attr
             (match ty with Value.Int_ty -> "int" | Value.Str_ty -> "str"))
         (Schema.attrs schema))
  ^ ")"

let pp_op ppf = function
  | Transaction.Insert (relation, tuple) ->
    Format.fprintf ppf "insert %s %s" relation (tuple_to_string tuple)
  | Transaction.Delete (relation, tuple) ->
    Format.fprintf ppf "delete %s %s" relation (tuple_to_string tuple)

let pp ppf s =
  Format.fprintf ppf "@[<v>seed %d, domains %d@," s.seed s.domains;
  List.iter
    (fun (name, schema, _, tuples) ->
      Format.fprintf ppf "relation %s %s: %d tuple(s)@," name
        (schema_to_string schema) (List.length tuples);
      List.iter
        (fun t -> Format.fprintf ppf "  %s@," (tuple_to_string t))
        tuples)
    s.relations;
  List.iter
    (fun v ->
      Format.fprintf ppf "view %s [%a]:@,  %a@," v.view_name pp_options
        v.options Query.Expr.pp v.expr)
    s.views;
  List.iteri
    (fun i txn ->
      Format.fprintf ppf "transaction %d:%s@," (i + 1)
        (if txn = [] then " (empty)" else "");
      List.iter (fun op -> Format.fprintf ppf "  %a@," pp_op op) txn)
    s.transactions;
  Format.fprintf ppf "@]"
