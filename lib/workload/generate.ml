open Relalg

type column =
  | Uniform of int * int
  | Weighted of float array * int
  | Strings of string array

let zipf_column ~n ~skew ~offset = Weighted (Rng.zipf_cdf ~n ~skew, offset)

let value rng = function
  | Uniform (lo, hi) -> Value.Int (Rng.range rng ~lo ~hi)
  | Weighted (cdf, offset) -> Value.Int (offset + Rng.zipf rng cdf)
  | Strings pool -> Value.Str (Rng.choice rng pool)

let tuple rng columns = Array.of_list (List.map (value rng) columns)

let relation rng schema columns size =
  let r = Relation.create ~size_hint:size schema in
  let attempts = ref 0 in
  let budget = (size * 100) + 1000 in
  while Relation.cardinal r < size do
    incr attempts;
    if !attempts > budget then
      invalid_arg
        (Printf.sprintf
           "Generate.relation: could not produce %d distinct tuples" size);
    let t = tuple rng columns in
    if not (Relation.mem r t) then Relation.add r t
  done;
  r

let pick rng r n =
  let all = Array.of_list (List.map fst (Relation.elements r)) in
  Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 (min n (Array.length all)))

let fresh rng r columns n =
  let out = ref [] in
  let seen = Hashtbl.create (2 * n) in
  let count = ref 0 in
  let attempts = ref 0 in
  let budget = (n * 100) + 1000 in
  while !count < n do
    incr attempts;
    if !attempts > budget then
      invalid_arg
        (Printf.sprintf "Generate.fresh: could not produce %d fresh tuples" n);
    let t = tuple rng columns in
    if (not (Relation.mem r t)) && not (Hashtbl.mem seen t) then begin
      Hashtbl.replace seen t ();
      out := t :: !out;
      incr count
    end
  done;
  !out

let fresh_where rng r columns ~pred n =
  let out = ref [] in
  let seen = Hashtbl.create (2 * n) in
  let count = ref 0 in
  let attempts = ref 0 in
  let budget = (n * 200) + 2000 in
  while !count < n && !attempts <= budget do
    incr attempts;
    let t = tuple rng columns in
    if
      (not (Relation.mem r t))
      && (not (Hashtbl.mem seen t))
      && pred t
    then begin
      Hashtbl.replace seen t ();
      out := t :: !out;
      incr count
    end
  done;
  !out

let transaction rng db name ~columns ~inserts ~deletes =
  let r = Database.find db name in
  let to_delete = pick rng r deletes in
  let to_insert = fresh rng r columns inserts in
  List.map (fun t -> Transaction.delete name t) to_delete
  @ List.map (fun t -> Transaction.insert name t) to_insert

let mixed_transaction rng db specs =
  List.concat_map
    (fun (name, columns, inserts, deletes) ->
      transaction rng db name ~columns ~inserts ~deletes)
    specs

let update_transaction rng db name ~columns ~updates =
  let r = Database.find db name in
  let victims = pick rng r updates in
  let replacements = fresh rng r columns (List.length victims) in
  List.concat
    (List.map2
       (fun old_t new_t ->
         [ Transaction.delete name old_t; Transaction.insert name new_t ])
       victims replacements)

let noop_transaction rng db name ~columns ~n =
  let r = Database.find db name in
  let tuples = fresh rng r columns n in
  List.map (fun t -> Transaction.insert name t) tuples
  @ List.map (fun t -> Transaction.delete name t) tuples

let correlated_transaction rng db name ~key ~columns ~inserts ~deletes =
  let r = Database.find db name in
  match pick rng r 1 with
  | [] -> []
  | pivot :: _ ->
    let pivot_value = Tuple.get pivot key in
    let sharing =
      Relation.fold
        (fun t _ acc ->
          if Value.equal (Tuple.get t key) pivot_value then t :: acc else acc)
        r []
    in
    let sharing = Array.of_list sharing in
    Rng.shuffle rng sharing;
    let to_delete =
      Array.to_list (Array.sub sharing 0 (min deletes (Array.length sharing)))
    in
    let to_insert =
      fresh_where rng r columns
        ~pred:(fun t -> Value.equal (Tuple.get t key) pivot_value)
        inserts
    in
    List.map (fun t -> Transaction.delete name t) to_delete
    @ List.map (fun t -> Transaction.insert name t) to_insert
