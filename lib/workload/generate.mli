(** Synthetic relations and update streams for benchmarks and tests. *)

open Relalg

(** Per-attribute value generator. *)
type column =
  | Uniform of int * int  (** inclusive integer range *)
  | Weighted of float array * int
      (** Zipf-style CDF over ranks, plus offset: value = offset + rank *)
  | Strings of string array  (** uniform choice *)

(** Zipf column helper: values [offset + 1 .. offset + n], rank 1 the most
    frequent. *)
val zipf_column : n:int -> skew:float -> offset:int -> column

val value : Rng.t -> column -> Value.t
val tuple : Rng.t -> column list -> Tuple.t

(** [relation rng schema columns size] generates a base relation of exactly
    [size] {e distinct} tuples.
    @raise Invalid_argument when the column domains cannot produce [size]
    distinct tuples within a retry budget. *)
val relation : Rng.t -> Schema.t -> column list -> int -> Relation.t

(** [pick rng r n] samples up to [n] distinct existing tuples. *)
val pick : Rng.t -> Relation.t -> int -> Tuple.t list

(** [fresh rng r columns n] generates [n] distinct tuples that are not in
    [r].
    @raise Invalid_argument when the domain is too small. *)
val fresh : Rng.t -> Relation.t -> column list -> int -> Tuple.t list

(** [fresh_where rng r columns ~pred n] is like {!fresh} restricted to
    tuples satisfying [pred], but {e best-effort}: when the retry budget
    runs out it returns however many tuples it found (possibly none)
    instead of raising.  Used to hunt for rare tuples — e.g. updates a
    Theorem 4.1 screen provably ignores. *)
val fresh_where :
  Rng.t ->
  Relation.t ->
  column list ->
  pred:(Tuple.t -> bool) ->
  int ->
  Tuple.t list

(** [transaction rng db name ~columns ~inserts ~deletes] builds a valid
    transaction against the current state: deletions sample existing
    tuples, insertions are fresh. *)
val transaction :
  Rng.t ->
  Database.t ->
  string ->
  columns:column list ->
  inserts:int ->
  deletes:int ->
  Transaction.t

(** [mixed_transaction] spreads updates over several relations. *)
val mixed_transaction :
  Rng.t ->
  Database.t ->
  (string * column list * int * int) list ->
  Transaction.t

(** [update_transaction rng db name ~columns ~updates] models in-place
    updates as the paper's delete+insert pairs: up to [updates] existing
    tuples are each deleted and replaced by a fresh tuple in the same
    transaction. *)
val update_transaction :
  Rng.t ->
  Database.t ->
  string ->
  columns:column list ->
  updates:int ->
  Transaction.t

(** [noop_transaction rng db name ~columns ~n] inserts [n] fresh tuples and
    deletes them again within the same transaction — a valid transaction
    whose net effect is empty, exactly the case Section 3 requires netting
    to cancel. *)
val noop_transaction :
  Rng.t ->
  Database.t ->
  string ->
  columns:column list ->
  n:int ->
  Transaction.t

(** [correlated_transaction rng db name ~key ~columns ~inserts ~deletes]
    generates churn correlated on the value of column index [key]: a pivot
    value is sampled from an existing tuple, deletions target only tuples
    sharing it, and insertions are fresh tuples forced (best-effort, via
    {!fresh_where}) to share it too.  Returns the empty transaction on an
    empty relation. *)
val correlated_transaction :
  Rng.t ->
  Database.t ->
  string ->
  key:int ->
  columns:column list ->
  inserts:int ->
  deletes:int ->
  Transaction.t
