open Relalg

type source_input = {
  alias : string;
  old_part : Relation.t;
  delta : Delta.t option;
}

type result = {
  delta : Delta.t;
  rows_evaluated : int;
}

let input_for inputs alias =
  match List.find_opt (fun i -> String.equal i.alias alias) inputs with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Delta_eval.eval: missing input for alias %S" alias)

let output_schema ~(spj : Query.Spj.t) ~inputs =
  let ty_of q =
    let rec search = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Delta_eval.output_schema: unknown attribute %S" q)
      | input :: rest -> (
        let s = Relation.schema input.old_part in
        match Schema.position_opt s q with
        | Some i -> Schema.ty_at s i
        | None -> search rest)
    in
    search inputs
  in
  Schema.make
    (List.map (fun (out, q) -> (out, ty_of q)) spj.Query.Spj.projection)

(* Operand relation for one source in one row, for the given part of the
   update set. *)
let operand (input : source_input) (choice : Truth_table.operand) part =
  match choice, input.delta with
  | Truth_table.Old_part, _ -> input.old_part
  | Truth_table.Delta_part, Some d -> (
    match part with
    | `Inserts -> d.Delta.inserts
    | `Deletes -> d.Delta.deletes)
  | Truth_table.Delta_part, None ->
    invalid_arg "Delta_eval: delta operand for an unmodified source"

let eval ?(order = `Greedy) ?(join_impl = `Hash) ?(reuse = false)
    ~(spj : Query.Spj.t) ~inputs () =
  (* Reorder inputs to the view's source order; with [reuse], place
     modified sources first (smallest deltas lead the shared prefixes). *)
  let ordered_inputs =
    List.map (fun s -> input_for inputs s.Query.Spj.alias) spj.Query.Spj.sources
  in
  let ordered_inputs =
    if not reuse then ordered_inputs
    else
      let modified, unmodified =
        List.partition
          (fun (i : source_input) ->
            match i.delta with
            | Some d -> not (Delta.is_empty d)
            | None -> false)
          ordered_inputs
      in
      let by_size f = List.sort (fun a b -> Int.compare (f a) (f b)) in
      by_size
        (fun (i : source_input) ->
          match i.delta with
          | Some d -> Delta.size d
          | None -> 0)
        modified
      @ by_size (fun i -> Relation.cardinal i.old_part) unmodified
  in
  let out_schema = output_schema ~spj ~inputs in
  let out = Delta.empty out_schema in
  let modified =
    Array.of_list
      (List.map
         (fun (i : source_input) ->
           match i.delta with
           | Some d -> not (Delta.is_empty d)
           | None -> false)
         ordered_inputs)
  in
  if not (Array.exists Fun.id modified) then { delta = out; rows_evaluated = 0 }
  else begin
    let rows = Truth_table.rows ~modified in
    (* One (part, sources) evaluation task per non-empty row side. *)
    let tasks =
      List.concat_map
        (fun row ->
          let side part =
            let sources =
              List.mapi
                (fun i input ->
                  (input.alias, operand input row.(i) part))
                ordered_inputs
            in
            if List.exists (fun (_, r) -> Relation.is_empty r) sources then
              None
            else Some (part, sources)
          in
          List.filter_map side [ `Inserts; `Deletes ])
        rows
    in
    let merge (part, relation) =
      match part with
      | `Inserts -> Relation.union_into ~into:out.Delta.inserts relation
      | `Deletes -> Relation.union_into ~into:out.Delta.deletes relation
    in
    let rows_evaluated = List.length tasks in
    let part_name = function `Inserts -> "inserts" | `Deletes -> "deletes" in
    if reuse then begin
      (* Shared-prefix evaluation runs all rows as one batch, so the rows
         cannot be traced individually; one span covers the batch. *)
      let results =
        Obs.Span.with_span "row"
          ~args:(fun () ->
            [ ("mode", Obs.Json.Str "reuse"); ("rows", Obs.Json.Int rows_evaluated) ])
          (fun () ->
            Resilience.Fault.point "row";
            Query.Planner.run_many ~join_impl
              ~variants:(List.map snd tasks)
              ~condition_dnf:spj.Query.Spj.condition_dnf
              ~projection:spj.Query.Spj.projection ())
      in
      List.iter2 (fun (part, _) r -> merge (part, r)) tasks results
    end
    else
      List.iteri
        (fun row_index (part, sources) ->
          let r =
            Obs.Span.with_span "row"
              ~args:(fun () ->
                [
                  ("row", Obs.Json.Int row_index);
                  ("part", Obs.Json.Str (part_name part));
                  ("operands", Obs.Json.Int (List.length sources));
                ])
              (fun () ->
                Resilience.Fault.point "row";
                Query.Planner.run ~order ~join_impl ~sources
                  ~condition_dnf:spj.Query.Spj.condition_dnf
                  ~projection:spj.Query.Spj.projection ())
          in
          merge (part, r))
        tasks;
    { delta = out; rows_evaluated }
  end
