open Relalg

type source_input = {
  alias : string;
  old_part : Relation.t;
  delta : Delta.t option;
}

type result = {
  delta : Delta.t;
  rows_evaluated : int;
}

let input_for inputs alias =
  match List.find_opt (fun i -> String.equal i.alias alias) inputs with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Delta_eval.eval: missing input for alias %S" alias)

let output_schema ~(spj : Query.Spj.t) ~inputs =
  let ty_of q =
    let rec search = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Delta_eval.output_schema: unknown attribute %S" q)
      | input :: rest -> (
        let s = Relation.schema input.old_part in
        match Schema.position_opt s q with
        | Some i -> Schema.ty_at s i
        | None -> search rest)
    in
    search inputs
  in
  Schema.make
    (List.map (fun (out, q) -> (out, ty_of q)) spj.Query.Spj.projection)

(* Operand relation for one source in one row, for the given part of the
   update set. *)
let operand (input : source_input) (choice : Truth_table.operand) part =
  match choice, input.delta with
  | Truth_table.Old_part, _ -> input.old_part
  | Truth_table.Delta_part, Some d -> (
    match part with
    | `Inserts -> d.Delta.inserts
    | `Deletes -> d.Delta.deletes)
  | Truth_table.Delta_part, None ->
    invalid_arg "Delta_eval: delta operand for an unmodified source"

let default_shard_min = 2048

let eval ?(order = `Greedy) ?(join_impl = `Hash) ?(reuse = false) ?pool
    ?(shard_min = default_shard_min) ~(spj : Query.Spj.t) ~inputs () =
  (* Reorder inputs to the view's source order; with [reuse], place
     modified sources first (smallest deltas lead the shared prefixes). *)
  let ordered_inputs =
    List.map (fun s -> input_for inputs s.Query.Spj.alias) spj.Query.Spj.sources
  in
  let ordered_inputs =
    if not reuse then ordered_inputs
    else
      let modified, unmodified =
        List.partition
          (fun (i : source_input) ->
            match i.delta with
            | Some d -> not (Delta.is_empty d)
            | None -> false)
          ordered_inputs
      in
      let by_size f = List.sort (fun a b -> Int.compare (f a) (f b)) in
      by_size
        (fun (i : source_input) ->
          match i.delta with
          | Some d -> Delta.size d
          | None -> 0)
        modified
      @ by_size (fun i -> Relation.cardinal i.old_part) unmodified
  in
  let out_schema = output_schema ~spj ~inputs in
  let out = Delta.empty out_schema in
  let modified =
    Array.of_list
      (List.map
         (fun (i : source_input) ->
           match i.delta with
           | Some d -> not (Delta.is_empty d)
           | None -> false)
         ordered_inputs)
  in
  if not (Array.exists Fun.id modified) then { delta = out; rows_evaluated = 0 }
  else begin
    let rows = Truth_table.rows ~modified in
    (* One (part, sources) evaluation task per non-empty row side. *)
    let tasks =
      List.concat_map
        (fun row ->
          let side part =
            let sources =
              List.mapi
                (fun i input ->
                  (input.alias, operand input row.(i) part))
                ordered_inputs
            in
            if List.exists (fun (_, r) -> Relation.is_empty r) sources then
              None
            else Some (part, sources)
          in
          List.filter_map side [ `Inserts; `Deletes ])
        rows
    in
    let merge (part, relation) =
      match part with
      | `Inserts -> Relation.union_into ~into:out.Delta.inserts relation
      | `Deletes -> Relation.union_into ~into:out.Delta.deletes relation
    in
    let rows_evaluated = List.length tasks in
    let part_name = function `Inserts -> "inserts" | `Deletes -> "deletes" in
    let pool_size =
      match pool with Some p -> Exec.Pool.size p | None -> 1
    in
    let run_sources sources =
      Query.Planner.run ~order ~join_impl ~sources
        ~condition_dnf:spj.Query.Spj.condition_dnf
        ~projection:spj.Query.Spj.projection ()
    in
    if reuse then begin
      (* Shared-prefix evaluation runs all rows as one batch, so the rows
         cannot be traced individually; one span covers the batch. *)
      let results =
        Obs.Span.with_span "row"
          ~args:(fun () ->
            [ ("mode", Obs.Json.Str "reuse"); ("rows", Obs.Json.Int rows_evaluated) ])
          (fun () ->
            Resilience.Fault.point "row";
            Query.Planner.run_many ~join_impl
              ~variants:(List.map snd tasks)
              ~condition_dnf:spj.Query.Spj.condition_dnf
              ~projection:spj.Query.Spj.projection ())
      in
      List.iter2 (fun (part, _) r -> merge (part, r)) tasks results
    end
    else if pool_size <= 1 then
      List.iteri
        (fun row_index (part, sources) ->
          let r =
            Obs.Span.with_span "row"
              ~args:(fun () ->
                [
                  ("row", Obs.Json.Int row_index);
                  ("part", Obs.Json.Str (part_name part));
                  ("operands", Obs.Json.Int (List.length sources));
                ])
              (fun () ->
                Resilience.Fault.point "row";
                run_sources sources)
          in
          merge (part, r))
        tasks
    else begin
      (* Intra-view sharding: partition the largest operand of each
         sufficiently big row across [pool_size] hash shards, fan the
         shard evaluations out on the pool, and union the shard results
         — SPJ evaluation is linear in any single operand over multiset
         union, so the merged delta is exactly the unsharded one.  The
         merge-order independence is a payload-ring property, not an int
         one: [Relation.union_into] combines counters with the
         commutative, associative [Ring.Count.add], never by comparing
         payload magnitudes, so the bit-identity check against the
         sequential path holds for any payload ring with those laws.
         Sub-[shard_min] rows run inline on the caller while the workers
         chew, which keeps every domain busy without paying submission
         overhead for tiny rows. *)
      let pool = Option.get pool in
      let shard_cache : (int, Relation.t array) Hashtbl.t =
        Hashtbl.create 8
      in
      (* Inserts and Deletes sides of a row share their [Old_part]
         operands, so shards are cached per physical store. *)
      let shards_of r =
        match Hashtbl.find_opt shard_cache (Relation.storage_id r) with
        | Some shards -> shards
        | None ->
          let shards =
            Obs.Span.with_span "shard"
              ~args:(fun () ->
                [
                  ("tuples", Obs.Json.Int (Relation.cardinal r));
                  ("shards", Obs.Json.Int pool_size);
                ])
              (fun () -> Relation.shard ~n:pool_size r)
          in
          Hashtbl.add shard_cache (Relation.storage_id r) shards;
          shards
      in
      let failure = ref None in
      let fail e = if !failure = None then failure := Some e in
      let inline_jobs = ref [] and shard_jobs = ref [] in
      (* Fire each row's fault point in submission order, before any
         fan-out: an injected fault aborts the eval without ever
         spawning shard tasks, so no orphaned worker can be left
         reading relations the caller mutates after the raise. *)
      (try
         List.iteri
           (fun row_index (part, sources) ->
             Resilience.Fault.point "row";
             let lead, lead_cardinal =
               List.fold_left
                 (fun (best, best_n) (i, (_, r)) ->
                   let n = Relation.cardinal r in
                   if n > best_n then (i, n) else (best, best_n))
                 (-1, -1)
                 (List.mapi (fun i s -> (i, s)) sources)
             in
             if lead_cardinal < shard_min then
               inline_jobs := (row_index, part, sources) :: !inline_jobs
             else
               Array.iteri
                 (fun shard_index shard ->
                   if not (Relation.is_empty shard) then
                     let sources =
                       List.mapi
                         (fun i (alias, r) ->
                           (alias, if i = lead then shard else r))
                         sources
                     in
                     let thunk () =
                       Obs.Span.with_span "row"
                         ~args:(fun () ->
                           [
                             ("row", Obs.Json.Int row_index);
                             ("part", Obs.Json.Str (part_name part));
                             ("shard", Obs.Json.Int shard_index);
                             ("operands", Obs.Json.Int (List.length sources));
                           ])
                         (fun () -> run_sources sources)
                     in
                     shard_jobs := (part, thunk) :: !shard_jobs)
                 (shards_of (snd (List.nth sources lead))))
           tasks
       with e -> fail (e, Printexc.get_raw_backtrace ()));
      let shard_jobs = List.rev !shard_jobs in
      let futures =
        match !failure with
        | Some _ -> []
        | None -> Exec.Pool.submit_batch pool (List.map snd shard_jobs)
      in
      (match !failure with
      | Some _ -> ()
      | None -> (
        try
          List.iter
            (fun (row_index, part, sources) ->
              let r =
                Obs.Span.with_span "row"
                  ~args:(fun () ->
                    [
                      ("row", Obs.Json.Int row_index);
                      ("part", Obs.Json.Str (part_name part));
                      ("operands", Obs.Json.Int (List.length sources));
                    ])
                  (fun () -> run_sources sources)
              in
              merge (part, r))
            (List.rev !inline_jobs)
        with e -> fail (e, Printexc.get_raw_backtrace ())));
      (* Await every submitted future even after a failure: a shard task
         still in flight must finish before control returns to a caller
         that may mutate its operands. *)
      List.iter2
        (fun (part, _) future ->
          match Exec.Pool.await_result future with
          | Ok r -> if !failure = None then merge (part, r)
          | Error e -> fail e)
        shard_jobs futures;
      match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end;
    { delta = out; rows_evaluated }
  end
