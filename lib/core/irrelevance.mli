(** Detection of irrelevant updates (Section 4).

    An inserted or deleted tuple [t] is {e irrelevant} to a view iff the
    condition obtained by substituting [t]'s values — C(t, Y2) — is
    unsatisfiable, independently of the database state (Theorem 4.1).

    {!prepare} implements the compile-time part of Algorithm 4.1: the
    condition is split into invariant and variant formulae with respect to
    the updated relation (Definition 4.2), the invariant difference
    constraints are loaded into a graph, and its all-pairs shortest paths
    are precomputed.  {!relevant} is the per-tuple part: variant evaluable
    formulae are tested directly, variant non-evaluable formulae [x op c]
    become edges incident to the virtual node 0, and a negative cycle is
    detected incrementally in O(n^2) instead of rerunning Floyd–Warshall.

    The test errs on the side of relevance wherever the decidable class is
    exceeded (integer disequalities, string orderings): it never reports a
    relevant update as irrelevant. *)

open Relalg

type screen

(** [prepare ~lookup ~spj ~alias] precomputes the screen for updates to the
    source named [alias] of the view [spj].
    @raise Not_found if [alias] is not a source of the view. *)
val prepare :
  lookup:(string -> Schema.t) -> spj:Query.Spj.t -> alias:string -> screen

(** [true] when the view condition is invariantly unsatisfiable for this
    source: every update to it is irrelevant. *)
val always_irrelevant : screen -> bool

(** The Theorem 4.1 clause (or decision procedure) that proved a tuple
    irrelevant.  {!rule_id} reuses the diagnostic-code bands of
    [lib/analysis]: IVM011 for the static always-irrelevant verdict,
    IVM001 for the per-tuple unsatisfiability clauses. *)
type rule =
  | Invariant_unsat
      (** the invariant split (Definition 4.2) is unsatisfiable: every
          update to this source is irrelevant *)
  | Substituted_false
      (** substitution made an atom of every surviving disjunct
          constant-false *)
  | String_conflict
      (** the substituted string equalities are contradictory *)
  | Negative_cycle
      (** the substituted difference constraints close a negative cycle
          (Algorithm 4.1) *)

val all_rules : rule list

val rule_id : rule -> string
(** Stable machine-readable identifier, e.g. ["IVM001:negative-cycle"]. *)

val rule_description : rule -> string
(** One-sentence human explanation anchored to the paper. *)

(** [relevant screen t] decides Theorem 4.1 for one (unqualified) tuple of
    the updated relation; [false] means provably irrelevant. *)
val relevant : screen -> Tuple.t -> bool

val explain : screen -> Tuple.t -> rule option
(** [explain screen t] is [None] iff [relevant screen t]; [Some rule]
    names the refutation that screened the tuple out.  Same per-tuple
    cost as {!relevant}. *)

(** Per-tuple decision without the incremental precomputation: substitutes
    into the whole condition and runs the full satisfiability procedure.
    Semantically identical to {!relevant}; ablation E8a baseline. *)
val relevant_naive : screen -> Tuple.t -> bool

(** [screen_delta ?pool screen d] drops provably irrelevant tuples from both
    parts of a delta.  With a [pool] of size > 1, update sets of at least
    1024 tuples are split into chunks screened in parallel (screening is a
    pure per-tuple check); results are identical to the sequential path. *)
val screen_delta : ?pool:Exec.Pool.t -> screen -> Delta.t -> Delta.t

(** Statistics of the last [screen_delta] call are returned alongside when
    using [screen_delta_stats]: (kept, dropped). *)
val screen_delta_stats :
  ?pool:Exec.Pool.t -> screen -> Delta.t -> Delta.t * (int * int)

(** Like {!screen_delta_stats}, but additionally returns how many dropped
    tuples each screening {!rule} accounted for (rules with zero drops are
    omitted; order follows {!all_rules}).  Counts merge identically across
    the sequential and chunked-parallel paths. *)
val screen_delta_explain :
  ?pool:Exec.Pool.t ->
  screen ->
  Delta.t ->
  Delta.t * (int * int) * (rule * int) list

(** Theorem 4.2: a set of tuples inserted into (or deleted from) several
    relations with disjoint schemes is irrelevant iff the simultaneous
    substitution is unsatisfiable.  [tuples] maps source aliases to
    (unqualified) tuples. *)
val combined_relevant :
  lookup:(string -> Schema.t) ->
  spj:Query.Spj.t ->
  (string * Tuple.t) list ->
  bool
