open Relalg

(* Runtime state of a GROUP BY view: the maintained inner SPJ
   materialization plus one accumulator per (group, target).  COUNT and
   SUM deltas combine by ring addition, so deletions are additions of
   negations; MIN/MAX have no additive inverse, so a deletion that
   drains the current extremum's support marks the target stale and the
   group is rescanned against the inner materialization after the delta
   has been fully applied (the only place the non-invertible monoids pay
   for their missing [neg]). *)

type sum_state = { mutable sum : int }

type ext_state = {
  is_min : bool;
  mutable ext : Value.t option;
  mutable support : int; (* multiplicity of rows attaining [ext] *)
  mutable stale : bool;
}

type target_state =
  | Ts_count
  | Ts_sum of sum_state
  | Ts_avg of sum_state
  | Ts_ext of ext_state

type group = {
  mutable members : int; (* total inner multiplicity in the group *)
  targets : target_state array;
}

module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash key = Hashtbl.hash (List.map Value.hash key)
end)

type t = {
  spec : Query.Aggregate.t;
  inner : Relation.t;
  schema : Schema.t; (* grouped output schema *)
  key_positions : int list;
  source_positions : int array; (* -1 for COUNT *)
  groups : group Key_table.t;
}

let spec t = t.spec
let inner t = t.inner
let schema t = t.schema

let fresh_group t =
  {
    members = 0;
    targets =
      Array.of_list
        (List.map
           (fun tgt ->
             match tgt.Query.Aggregate.func with
             | Query.Aggregate.Count -> Ts_count
             | Query.Aggregate.Sum _ -> Ts_sum { sum = 0 }
             | Query.Aggregate.Avg _ -> Ts_avg { sum = 0 }
             | Query.Aggregate.Min _ ->
               Ts_ext { is_min = true; ext = None; support = 0; stale = false }
             | Query.Aggregate.Max _ ->
               Ts_ext { is_min = false; ext = None; support = 0; stale = false })
           t.spec.Query.Aggregate.targets);
  }

let key_of t tuple = List.map (fun i -> Tuple.get tuple i) t.key_positions

let group_of t key =
  match Key_table.find_opt t.groups key with
  | Some g -> g
  | None ->
    let g = fresh_group t in
    Key_table.replace t.groups key g;
    g

(* Fold one signed counted inner tuple into its group's accumulators. *)
let ingest t tuple c =
  let g = group_of t (key_of t tuple) in
  g.members <- g.members + c;
  Array.iteri
    (fun j state ->
      match state with
      | Ts_count -> ()
      | Ts_sum s | Ts_avg s ->
        s.sum <- s.sum + (c * Value.int (Tuple.get tuple t.source_positions.(j)))
      | Ts_ext e ->
        if not e.stale then begin
          let v = Tuple.get tuple t.source_positions.(j) in
          if c > 0 then begin
            match e.ext with
            | None ->
              e.ext <- Some v;
              e.support <- c
            | Some cur ->
              let cmp = Value.compare v cur in
              let better = if e.is_min then cmp < 0 else cmp > 0 in
              if better then begin
                e.ext <- Some v;
                e.support <- c
              end
              else if cmp = 0 then e.support <- e.support + c
          end
          else begin
            match e.ext with
            | Some cur when Value.compare v cur = 0 ->
              e.support <- e.support + c;
              if e.support <= 0 then begin
                (* The extremum's support drained: only a rescan of the
                   group can tell what the new extremum is. *)
                e.stale <- true;
                e.ext <- None
              end
            | _ -> ()
          end
        end)
    g.targets;
  g

let render_group t key g =
  let rendered =
    List.mapi
      (fun j tgt ->
        match tgt.Query.Aggregate.func, g.targets.(j) with
        | Query.Aggregate.Count, Ts_count -> Value.Int g.members
        | Query.Aggregate.Sum _, Ts_sum s -> Value.Int s.sum
        | Query.Aggregate.Avg _, Ts_avg s -> Value.Int (s.sum / g.members)
        | (Query.Aggregate.Min _ | Query.Aggregate.Max _), Ts_ext e ->
          Option.get e.ext
        | _ -> assert false)
      t.spec.Query.Aggregate.targets
  in
  Array.of_list (key @ rendered)

let rebuild t =
  Key_table.reset t.groups;
  Relation.iter (fun tuple c -> ignore (ingest t tuple c)) t.inner

let create spec ~inner =
  let inner_schema = Relation.schema inner in
  let position what a =
    match Schema.position_opt inner_schema a with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Grouped.create: unknown %s %S" what a)
  in
  let t =
    {
      spec;
      inner;
      schema = Query.Aggregate.output_schema spec ~inner:inner_schema;
      key_positions = List.map (position "group key") spec.Query.Aggregate.keys;
      source_positions =
        Array.of_list
          (List.map
             (fun tgt ->
               match Query.Aggregate.source tgt.Query.Aggregate.func with
               | None -> -1
               | Some a -> position "aggregate source" a)
             spec.Query.Aggregate.targets);
      groups = Key_table.create 16;
    }
  in
  rebuild t;
  t

let render t =
  let out = Relation.create t.schema in
  Key_table.iter
    (fun key g -> if g.members > 0 then Relation.add out (render_group t key g))
    t.groups;
  out

let step ?on_inner t delta =
  let touched = Key_table.create 8 in
  let touch key =
    if not (Key_table.mem touched key) then
      Key_table.replace touched key
        (match Key_table.find_opt t.groups key with
        | Some g when g.members > 0 -> Some (render_group t key g)
        | _ -> None)
  in
  let apply_tuple sign tuple c =
    let c = sign * c in
    (* The pre-change render must be captured before the accumulators
       move, and the inner update must go through the caller's hook so
       it lands in the undo journal. *)
    touch (key_of t tuple);
    (match on_inner with
    | Some f -> f tuple c
    | None -> Relation.update t.inner tuple c);
    ignore (ingest t tuple c)
  in
  Relation.iter (fun tp c -> apply_tuple (-1) tp c) delta.Delta.deletes;
  Relation.iter (fun tp c -> apply_tuple 1 tp c) delta.Delta.inserts;
  (* Rescan pass: one sweep over the inner materialization repairs every
     group whose extremum drained, after the delta is fully applied. *)
  let stale = Key_table.create 4 in
  Key_table.iter
    (fun key _ ->
      match Key_table.find_opt t.groups key with
      | Some g
        when g.members > 0
             && Array.exists
                  (function Ts_ext e -> e.stale | _ -> false)
                  g.targets -> Key_table.replace stale key g
      | _ -> ())
    touched;
  let rescans = Key_table.length stale in
  if rescans > 0 then begin
    Relation.iter
      (fun tuple c ->
        match Key_table.find_opt stale (key_of t tuple) with
        | None -> ()
        | Some g ->
          Array.iteri
            (fun j state ->
              match state with
              | Ts_ext e when e.stale -> (
                let v = Tuple.get tuple t.source_positions.(j) in
                match e.ext with
                | None ->
                  e.ext <- Some v;
                  e.support <- c
                | Some cur ->
                  let cmp = Value.compare v cur in
                  let better = if e.is_min then cmp < 0 else cmp > 0 in
                  if better then begin
                    e.ext <- Some v;
                    e.support <- c
                  end
                  else if cmp = 0 then e.support <- e.support + c)
              | _ -> ())
            g.targets)
      t.inner;
    Key_table.iter
      (fun _ g ->
        Array.iter
          (function Ts_ext e -> e.stale <- false | _ -> ())
          g.targets)
      stale
  end;
  (* Diff the touched groups' renders into an outer delta. *)
  let out = Delta.empty t.schema in
  Key_table.iter
    (fun key old ->
      match Key_table.find_opt t.groups key with
      | Some g when g.members > 0 -> (
        let now = render_group t key g in
        match old with
        | Some o when Tuple.equal o now -> ()
        | Some o ->
          Relation.add out.Delta.deletes o;
          Relation.add out.Delta.inserts now
        | None -> Relation.add out.Delta.inserts now)
      | Some g when g.members = 0 -> (
        Key_table.remove t.groups key;
        match old with
        | Some o -> Relation.add out.Delta.deletes o
        | None -> ())
      | Some _ -> invalid_arg "Grouped.step: inconsistent aggregate delta"
      | None -> (
        match old with
        | Some o -> Relation.add out.Delta.deletes o
        | None -> ()))
    touched;
  (out, Key_table.length touched, rescans)
