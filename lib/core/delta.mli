(** Update sets: the net effect of a transaction on one relation.

    A delta pairs the set of inserted tuples with the set of deleted tuples
    (Section 3: [T(r) = r U i_r - d_r] with [r], [i_r], [d_r] mutually
    disjoint).  Deltas of base relations have unit counts; deltas of derived
    relations are counted, matching the redefined operators of Section 5.2. *)

open Relalg

type t = {
  inserts : Relation.t;
  deletes : Relation.t;
}

val empty : Schema.t -> t
val is_empty : t -> bool

(** Total counted size (inserts + deletes). *)
val size : t -> int

(** [of_lists schema (inserts, deletes)] builds a unit-count delta. *)
val of_lists : Schema.t -> Tuple.t list * Tuple.t list -> t

val copy : t -> t

(** [reschema d s] renames both parts in O(1) (see {!Relation.reschema}). *)
val reschema : t -> Schema.t -> t

(** [merge_into ~into d] accumulates [d]'s parts into [into]. *)
val merge_into : into:t -> t -> unit

(** [normalize d] cancels tuples present in both parts (counter-wise):
    applying the result to a view has the same effect. *)
val normalize : t -> t

(** [between ~before ~after] is the counted delta that takes [before] to
    [after]: applying it to [before] yields [after].  Used to extract
    the view delta out of a recomputation so dependent views can be
    maintained differentially from it. *)
val between : before:Relation.t -> after:Relation.t -> t

(** [apply d r] applies the delta to a counted relation: insert counts are
    added, delete counts subtracted.
    @raise Relation.Negative_count when deleting more than present — an
    inconsistency for view maintenance. *)
val apply : t -> Relation.t -> unit

(** [compose ~first ~second] is the net effect of running [first] then
    [second] over the same relation, for set-semantics base deltas (all
    counts one):
    inserts = (i1 - d2) U (i2 - d1), deletes = (d1 - i2) U (d2 - i1). *)
val compose : first:t -> second:t -> t

val pp : Format.formatter -> t -> unit
