open Relalg

let log_src = Logs.Src.create "ivm.maintenance" ~doc:"View maintenance"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy =
  | Differential
  | Recompute
  | Adaptive
  | Self_maintain

type options = {
  strategy : strategy;
  screen : bool;
  reuse : bool;
  order : Query.Planner.join_order;
  join_impl : Query.Planner.join_impl;
  shard_min : int;
}

let default_options =
  {
    strategy = Differential;
    screen = true;
    reuse = false;
    order = `Greedy;
    join_impl = `Hash;
    shard_min = Delta_eval.default_shard_min;
  }

type report = {
  view_name : string;
  strategy_used : strategy;
  screened_out : int;
  screened_kept : int;
  screen_rules : (string * int) list;
  rows_evaluated : int;
  delta_inserts : int;
  delta_deletes : int;
  groups_touched : int;
  rescans : int;
  screen_ns : int;
  eval_ns : int;
  apply_ns : int;
  total_ns : int;
  advisor : Advisor.decision option;
  fallback : string option;
  delta : Delta.t option;
      (* the applied view delta, when the maintenance path produced one;
         dependent views consume it as their input transaction *)
}

let empty_report ~view_name ~strategy_used =
  {
    view_name;
    strategy_used;
    screened_out = 0;
    screened_kept = 0;
    screen_rules = [];
    rows_evaluated = 0;
    delta_inserts = 0;
    delta_deletes = 0;
    groups_touched = 0;
    rescans = 0;
    screen_ns = 0;
    eval_ns = 0;
    apply_ns = 0;
    total_ns = 0;
    advisor = None;
    fallback = None;
    delta = None;
  }

(* Self-maintenance screens deletions through the key, not Theorem 4.1;
   provenance labels that verdict with its own rule id. *)
let keyed_drain_rule_id = "IVM051:keyed-drain"

let strategy_name = function
  | Differential -> "differential"
  | Recompute -> "recompute"
  | Adaptive -> "adaptive"
  | Self_maintain -> "self_maintain"

(* The arm a sample executes, for advisor calibration. *)
let arm_of_strategy = function
  | Recompute -> Advisor.Recompute
  | Self_maintain -> Advisor.Self_maintain
  | Differential | Adaptive -> Advisor.Differential

let self_maintain_applies view ~net =
  match View.self_maintain view with
  | Some plan -> Self_maintain.applies plan ~net
  | None -> false

(* Why a requested [Self_maintain] cannot run on this transaction;
   [None] when it can.  The distinction matters for provenance: "no
   certificate" is a property of the view, "not covered" of the
   transaction. *)
let self_maintain_fallback view ~net =
  match View.self_maintain view with
  | None -> Some "view has no self-maintenance certificate"
  | Some plan ->
    if Self_maintain.applies plan ~net then None
    else Some "certificate does not cover this transaction's update sets"

let concrete_strategy options view ~net ~decision =
  match options.strategy with
  | Differential -> Differential
  | Recompute -> Recompute
  | Self_maintain ->
    (* Forced self-maintenance still degrades gracefully: when the
       certificate does not cover this transaction, differential is the
       always-applicable default. *)
    if self_maintain_applies view ~net then Self_maintain else Differential
  | Adaptive -> (
    match (decision : Advisor.decision).Advisor.choose with
    | Advisor.Self_maintain -> Self_maintain
    | Advisor.Differential -> Differential
    | Advisor.Recompute -> Recompute)

let resolve_strategy options view ~db ~net =
  concrete_strategy options view ~net
    ~decision:(Advisor.decide view ~db ~net)

(* [resolve_with_decision] always evaluates the cost model, so its
   prediction can be recorded against the measured cost even when the
   strategy is forced — that is what calibrates the advisor. *)
let resolve_with_decision options view ~db ~net =
  let decision = Advisor.decide view ~db ~net in
  (concrete_strategy options view ~net ~decision, decision)

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %s, screened %d/%d irrelevant, %d rows, +%d -%d view tuples, %s"
    r.view_name
    (strategy_name r.strategy_used)
    r.screened_out
    (r.screened_out + r.screened_kept)
    r.rows_evaluated r.delta_inserts r.delta_deletes
    (Obs.Summary.fmt_ns r.total_ns);
  if r.groups_touched > 0 || r.rescans > 0 then
    Format.fprintf ppf " [groups: %d touched, %d rescanned]" r.groups_touched
      r.rescans;
  List.iter
    (fun (rule, n) -> Format.fprintf ppf " [%s x%d]" rule n)
    r.screen_rules;
  (match r.fallback with
  | None -> ()
  | Some why -> Format.fprintf ppf " [fallback: %s]" why);
  match r.advisor with
  | None -> ()
  | Some d -> Format.fprintf ppf " [advisor: %a]" Advisor.pp_decision d

(* Feed one finished report into the metrics registry (no-op when
   telemetry is off). *)
let record_report r =
  if Obs.Control.enabled () then begin
    let view_label = [ ("view", r.view_name) ] in
    Obs.Metrics.observe "ivm_maintenance_ns" ~labels:view_label r.total_ns;
    Obs.Metrics.add "ivm_commits_total"
      ~labels:
        (view_label @ [ ("strategy", strategy_name r.strategy_used) ])
      1;
    if r.screen_ns > 0 then
      Obs.Metrics.observe "ivm_phase_ns"
        ~labels:(view_label @ [ ("phase", "screen") ])
        r.screen_ns;
    if r.eval_ns > 0 then
      Obs.Metrics.observe "ivm_phase_ns"
        ~labels:(view_label @ [ ("phase", "eval") ])
        r.eval_ns;
    if r.apply_ns > 0 then
      Obs.Metrics.observe "ivm_phase_ns"
        ~labels:(view_label @ [ ("phase", "apply") ])
        r.apply_ns;
    Obs.Metrics.add "ivm_rows_evaluated_total" ~labels:view_label
      r.rows_evaluated;
    Obs.Metrics.add "ivm_view_tuples_inserted_total" ~labels:view_label
      r.delta_inserts;
    Obs.Metrics.add "ivm_view_tuples_deleted_total" ~labels:view_label
      r.delta_deletes
  end

(* Rule tallies merge across a view's sources (each source has its own
   screen, several can drop tuples for the same reason). *)
let merge_rule_counts acc rules =
  List.fold_left
    (fun acc (rule, n) ->
      let id = Irrelevance.rule_id rule in
      match List.assoc_opt id acc with
      | Some m -> (id, m + n) :: List.remove_assoc id acc
      | None -> acc @ [ (id, n) ])
    acc rules

let view_delta ?(options = default_options) ?pool view ~db ~net =
  let t_start = Obs.Clock.now_ns () in
  let spj = View.spj view in
  let screened_out = ref 0 and screened_kept = ref 0 in
  let screen_rules = ref [] in
  let screen_ns = ref 0 in
  let inputs =
    List.map
      (fun (source : Query.Spj.source) ->
        let qualified = View.qualified_schema view ~alias:source.Query.Spj.alias in
        let base = Database.find db source.Query.Spj.relation in
        let old_part = Relation.reschema base qualified in
        let delta =
          match List.assoc_opt source.Query.Spj.relation net with
          | None -> None
          | Some (inserts, deletes) ->
            let raw = Delta.of_lists qualified (inserts, deletes) in
            if options.screen then begin
              let screen = View.screen_for view ~alias:source.Query.Spj.alias in
              let t0 = Obs.Clock.now_ns () in
              let row_stats = ref (0, 0) in
              let screened =
                Obs.Span.with_span "screen"
                  ~args:(fun () ->
                    let kept, out = !row_stats in
                    [
                      ("view", Obs.Json.Str (View.name view));
                      ("alias", Obs.Json.Str source.Query.Spj.alias);
                      ("kept", Obs.Json.Int kept);
                      ("out", Obs.Json.Int out);
                    ])
                  (fun () ->
                    Resilience.Fault.point "screen";
                    let screened, stats, rules =
                      Irrelevance.screen_delta_explain ?pool screen raw
                    in
                    row_stats := stats;
                    screen_rules := merge_rule_counts !screen_rules rules;
                    screened)
              in
              screen_ns := !screen_ns + (Obs.Clock.now_ns () - t0);
              let kept, out = !row_stats in
              screened_kept := !screened_kept + kept;
              screened_out := !screened_out + out;
              Some screened
            end
            else Some raw
        in
        { Delta_eval.alias = source.Query.Spj.alias; old_part; delta })
      spj.Query.Spj.sources
  in
  let t_eval = Obs.Clock.now_ns () in
  let result =
    Obs.Span.with_span "eval"
      ~args:(fun () -> [ ("view", Obs.Json.Str (View.name view)) ])
      (fun () ->
        Resilience.Fault.point "eval";
        Delta_eval.eval ~order:options.order ~join_impl:options.join_impl
          ~reuse:options.reuse ?pool ~shard_min:options.shard_min ~spj ~inputs
          ())
  in
  let eval_ns = Obs.Clock.now_ns () - t_eval in
  let delta = result.Delta_eval.delta in
  Log.debug (fun m ->
      m "view %s: %d rows evaluated, +%d -%d, screened %d/%d"
        (View.name view) result.Delta_eval.rows_evaluated
        (Relation.total delta.Delta.inserts)
        (Relation.total delta.Delta.deletes)
        !screened_out
        (!screened_out + !screened_kept));
  ( delta,
    {
      (empty_report ~view_name:(View.name view) ~strategy_used:Differential) with
      screened_out = !screened_out;
      screened_kept = !screened_kept;
      screen_rules = !screen_rules;
      rows_evaluated = result.Delta_eval.rows_evaluated;
      delta_inserts = Relation.total delta.Delta.inserts;
      delta_deletes = Relation.total delta.Delta.deletes;
      screen_ns = !screen_ns;
      eval_ns;
      total_ns = Obs.Clock.now_ns () - t_start;
    } )

(* Every base or view mutation optionally goes through the undo
   journal, so a failed commit can be rolled back to the exact
   pre-commit state. *)
let journaled_update ?journal r t delta =
  match journal with
  | None -> Relation.update r t delta
  | Some j -> Resilience.Journal.update j r t delta

let apply_deletes ?journal db net =
  Obs.Span.with_span "apply"
    ~args:(fun () ->
      [ ("target", Obs.Json.Str "base"); ("part", Obs.Json.Str "deletes") ])
    (fun () ->
      Resilience.Fault.point "apply";
      List.iter
        (fun (name, (_, deletes)) ->
          let r = Database.find db name in
          List.iter (fun t -> journaled_update ?journal r t (-1)) deletes)
        net)

let apply_inserts ?journal db net =
  Obs.Span.with_span "apply"
    ~args:(fun () ->
      [ ("target", Obs.Json.Str "base"); ("part", Obs.Json.Str "inserts") ])
    (fun () ->
      Resilience.Fault.point "apply";
      List.iter
        (fun (name, (inserts, _)) ->
          let r = Database.find db name in
          List.iter (fun t -> journaled_update ?journal r t 1) inserts)
        net)

(* [Delta.apply] mutates tuple by tuple and can fail partway through,
   so the journaled path records each counter update individually —
   rollback then rewinds exactly the applied prefix. *)
let apply_view_delta ?journal view (delta : Delta.t) =
  match journal with
  | None -> View.apply_delta view delta
  | Some j ->
    let state = View.contents view in
    Relation.iter
      (fun t c -> Resilience.Journal.update j state t c)
      delta.Delta.inserts;
    Relation.iter
      (fun t c -> Resilience.Journal.update j state t (-c))
      delta.Delta.deletes

(* For an aggregate view, the evaluated delta is the {e inner} SPJ
   delta; fold it through the group accumulators and apply the resulting
   outer delta.  Journal ordering matters: the group-rebuild closure is
   recorded first so rollback runs it {e after} the per-tuple inner
   inverses, i.e. against the restored inner materialization. *)
let apply_grouped_delta ?journal g view (delta : Delta.t) =
  (match journal with
  | None -> ()
  | Some j -> Resilience.Journal.record_restore_fn j (fun () -> Grouped.rebuild g));
  let on_inner =
    Option.map
      (fun j t c -> Resilience.Journal.update j (Grouped.inner g) t c)
      journal
  in
  let outer, groups_touched, rescans = Grouped.step ?on_inner g delta in
  apply_view_delta ?journal view outer;
  (outer, groups_touched, rescans)

(* Differential maintenance of one view against a netted update set whose
   deletions are already installed: evaluate, then apply the view delta,
   completing the report's timing fields. *)
let maintain_differential ~options ?pool ?journal ?fallback ~decision view ~db
    ~net =
  let t0 = Obs.Clock.now_ns () in
  let delta, report = view_delta ~options ?pool view ~db ~net in
  let t_apply = Obs.Clock.now_ns () in
  let applied, groups_touched, rescans =
    Obs.Span.with_span "apply"
      ~args:(fun () ->
        [
          ("target", Obs.Json.Str "view");
          ("view", Obs.Json.Str (View.name view));
        ])
      (fun () ->
        Resilience.Fault.point "apply";
        match View.grouped view with
        | None ->
          apply_view_delta ?journal view delta;
          (delta, 0, 0)
        | Some g -> apply_grouped_delta ?journal g view delta)
  in
  let now = Obs.Clock.now_ns () in
  let report =
    {
      report with
      delta_inserts = Relation.total applied.Delta.inserts;
      delta_deletes = Relation.total applied.Delta.deletes;
      groups_touched;
      rescans;
      apply_ns = now - t_apply;
      total_ns = now - t0;
      advisor = decision;
      fallback;
      delta = Some applied;
    }
  in
  record_report report;
  (match decision with
  | Some d ->
    Advisor.record ~view:report.view_name ~used:Advisor.Differential
      ~actual_ns:report.total_ns d
  | None -> ());
  report

(* Certified self-maintenance: the delta comes from the net effect plus
   the current materialization alone.  The whole evaluation runs under the
   base-relation read probe — a certificate bug surfaces as a loud
   [Self_maintain.Base_read_detected], never as silent corruption. *)
let maintain_self_maintain ?journal ~decision view ~net =
  let t0 = Obs.Clock.now_ns () in
  let plan =
    match View.self_maintain view with
    | Some plan -> plan
    | None ->
      invalid_arg
        (Printf.sprintf "maintain_self_maintain: view %s has no certificate"
           (View.name view))
  in
  let rows =
    List.fold_left
      (fun acc (_, (inserts, deletes)) ->
        acc + List.length inserts + List.length deletes)
      0 net
  in
  let drained =
    List.fold_left
      (fun acc (_, (_, deletes)) -> acc + List.length deletes)
      0 net
  in
  let t_eval = Obs.Clock.now_ns () in
  let delta, reads =
    Obs.Span.with_span "eval"
      ~args:(fun () ->
        [
          ("view", Obs.Json.Str (View.name view));
          ("strategy", Obs.Json.Str "self_maintain");
        ])
      (fun () ->
        Resilience.Fault.point "eval";
        Database.probe_reads (fun () ->
            Self_maintain.delta plan ~contents:(View.contents view) ~net))
  in
  if reads > 0 then
    raise (Self_maintain.Base_read_detected { view = View.name view; reads });
  let eval_ns = Obs.Clock.now_ns () - t_eval in
  let t_apply = Obs.Clock.now_ns () in
  Obs.Span.with_span "apply"
    ~args:(fun () ->
      [
        ("target", Obs.Json.Str "view");
        ("view", Obs.Json.Str (View.name view));
      ])
    (fun () ->
      Resilience.Fault.point "apply";
      apply_view_delta ?journal view delta);
  let now = Obs.Clock.now_ns () in
  let report =
    {
      (empty_report ~view_name:(View.name view) ~strategy_used:Self_maintain) with
      screen_rules =
        (if drained > 0 then [ (keyed_drain_rule_id, drained) ] else []);
      rows_evaluated = rows;
      delta_inserts = Relation.total delta.Delta.inserts;
      delta_deletes = Relation.total delta.Delta.deletes;
      eval_ns;
      apply_ns = now - t_apply;
      total_ns = now - t0;
      advisor = decision;
      delta = Some delta;
    }
  in
  record_report report;
  (match decision with
  | Some d ->
    Advisor.record ~view:report.view_name ~used:Advisor.Self_maintain
      ~actual_ns:report.total_ns d
  | None -> ());
  report

let maintain_recompute ?journal ?(want_delta = false) ~decision view ~db =
  let t0 = Obs.Clock.now_ns () in
  (* Dependent views consume the recompute as a differential input, so
     the pre-state is copied only when someone will read the delta. *)
  let before =
    if want_delta then Some (Relation.copy (View.contents view)) else None
  in
  Obs.Span.with_span "recompute"
    ~args:(fun () -> [ ("view", Obs.Json.Str (View.name view)) ])
    (fun () ->
      Resilience.Fault.point "recompute";
      (match journal with
      | None -> ()
      | Some j -> Resilience.Journal.record_restore_fn j (View.checkpoint view));
      View.recompute view db);
  let total_ns = Obs.Clock.now_ns () - t0 in
  let report =
    {
      (empty_report ~view_name:(View.name view) ~strategy_used:Recompute) with
      total_ns;
      advisor = decision;
      delta =
        Option.map
          (fun b -> Delta.between ~before:b ~after:(View.contents view))
          before;
    }
  in
  record_report report;
  (match decision with
  | Some d ->
    Advisor.record ~view:report.view_name ~used:Advisor.Recompute
      ~actual_ns:total_ns d
  | None -> ());
  report

let process ?(options = default_options) ?(options_for = fun _ -> None) ?pool
    ~views ~db txn =
  (* With a pool, independent views are maintained in parallel: each task
     reads the shared base relations (frozen between the two apply
     phases) and writes only its own view's materialization. *)
  let pmap f xs =
    match pool with
    | Some pool -> Exec.Pool.map_list pool f xs
    | None -> List.map f xs
  in
  Obs.Span.with_span "commit"
    ~args:(fun () -> [ ("views", Obs.Json.Int (List.length views)) ])
    (fun () ->
      let net =
        Obs.Span.with_span "net"
          ~args:(fun () -> [ ("ops", Obs.Json.Int (List.length txn)) ])
          (fun () -> Transaction.net_effect db txn)
      in
      Log.info (fun m ->
          m "commit: %d ops, %d relations touched, %d views" (List.length txn)
            (List.length net) (List.length views));
      let options_of view =
        Option.value ~default:options (options_for (View.name view))
      in
      (* Resolve strategies against the pre-state; the decision is kept
         only when the advisor actually ran (Adaptive), the low-level API
         leaves always-on calibration to Manager. *)
      let resolved =
        List.map
          (fun view ->
            let view_options = options_of view in
            match view_options.strategy with
            | Differential -> (view, view_options, Differential, None, None)
            | Recompute -> (view, view_options, Recompute, None, None)
            | Self_maintain -> (
              match self_maintain_fallback view ~net with
              | None -> (view, view_options, Self_maintain, None, None)
              | Some why -> (view, view_options, Differential, None, Some why))
            | Adaptive ->
              let strategy, decision =
                resolve_with_decision view_options view ~db ~net
              in
              (view, view_options, strategy, Some decision, None))
          views
      in
      apply_deletes db net;
      (* Self-maintained views run in the differential phase: both need
         the deletions-applied, insertions-pending base state (the former
         only to leave it untouched). *)
      let differential, recomputed =
        List.partition
          (fun (_, _, strategy, _, _) ->
            match strategy with
            | Recompute -> false
            | Differential | Adaptive | Self_maintain -> true)
          resolved
      in
      let reports =
        pmap
          (fun (view, view_options, strategy, decision, fallback) ->
            match strategy with
            | Self_maintain -> maintain_self_maintain ~decision view ~net
            | _ ->
              maintain_differential ~options:view_options ?pool ?fallback
                ~decision view ~db ~net)
          differential
      in
      apply_inserts db net;
      let recompute_reports =
        pmap
          (fun (view, _, _, decision, _) ->
            maintain_recompute ~decision view ~db)
          recomputed
      in
      reports @ recompute_reports)
