(** Materialized views: a compiled SPJ definition plus counted contents.

    The materialization carries the multiplicity counter of Section 5.2
    (alternative 1), so project views survive deletions.  A view is bound
    to the database it was defined over. *)

open Relalg

type t

(** [define ~name ~db expr] compiles [expr], optionally minimizes its join
    count ([minimize] defaults to [true]; see {!Query.Tableau}), and
    materializes the initial contents from [db].

    [keys] declares candidate keys of base relations; when the projection
    preserves a key of every source (Section 5.2, alternative 2) the view
    is flagged {!duplicate_free}.
    @raise Query.Spj.Compile_error on malformed definitions. *)
val define :
  ?minimize:bool ->
  ?keys:Query.Keys.t ->
  name:string ->
  db:Database.t ->
  Query.Expr.t ->
  t

val name : t -> string

(** The original definition, aggregation included. *)
val expr : t -> Query.Expr.t

(** The compiled SPJ form — of the {e inner} expression for aggregate
    views (what the delta machinery maintains). *)
val spj : t -> Query.Spj.t

(** Output schema: the grouped schema for aggregate views. *)
val schema : t -> Schema.t

(** Live contents — treat as read-only. *)
val contents : t -> Relation.t

(** The grouped runtime state when the definition is a {!Query.Expr.Group_by}. *)
val grouped : t -> Grouped.t option

(** The aggregate spec when the definition is grouped. *)
val aggregate : t -> Query.Aggregate.t option

(** [true] when the key-preservation analysis proved every multiplicity
    counter is 1 (Section 5.2, alternative 2): key-based maintenance
    without counters would suffice for this view. *)
val duplicate_free : t -> bool

(** Schema lookup for the base relations of the defining database. *)
val lookup : t -> string -> Schema.t

(** The compiled self-maintainability certificate (see {!Self_maintain}),
    when the definition plus the declared keys admit one. *)
val self_maintain : t -> Self_maintain.t option

(** Qualified schema of the source with the given alias. *)
val qualified_schema : t -> alias:string -> Schema.t

(** Irrelevance screen for a source, built on first use and cached. *)
val screen_for : t -> alias:string -> Irrelevance.screen

(** [lint v] runs the static analyzer (see {!Analysis.Analyzer}) over the
    compiled definition.  [keys] defaults to the candidate keys supplied at
    definition time. *)
val lint : ?keys:Query.Keys.t -> t -> Analysis.Diagnostic.t list

(** Apply a view delta to the contents.
    @raise Relation.Negative_count on an inconsistent delta. *)
val apply_delta : t -> Delta.t -> unit

(** Overwrite the contents by complete re-evaluation against [db] — in
    place, so aliases of the contents relation (e.g. a manager catalog
    feeding dependent views) stay valid.  Aggregate views re-evaluate
    the inner SPJ form and rebuild their group state. *)
val recompute : t -> Database.t -> unit

(** [checkpoint v] captures the full materialization state (contents
    plus, for aggregate views, the inner materialization) and returns
    the closure that restores it.  Record it in an undo journal before a
    destructive operation such as {!recompute}. *)
val checkpoint : t -> unit -> unit

(** [restore v saved] installs a previously captured materialization
    (a {!contents} value taken before a mutation), in place.  For
    aggregate views this rebuilds group state from the current inner
    materialization — use {!checkpoint} when the inner state moved
    too. *)
val restore : t -> Relation.t -> unit

(** [consistent v db] re-evaluates from scratch and compares with the
    maintained contents, counters included. *)
val consistent : t -> Database.t -> bool

val pp : Format.formatter -> t -> unit
