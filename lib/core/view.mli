(** Materialized views: a compiled SPJ definition plus counted contents.

    The materialization carries the multiplicity counter of Section 5.2
    (alternative 1), so project views survive deletions.  A view is bound
    to the database it was defined over. *)

open Relalg

type t

(** [define ~name ~db expr] compiles [expr], optionally minimizes its join
    count ([minimize] defaults to [true]; see {!Query.Tableau}), and
    materializes the initial contents from [db].

    [keys] declares candidate keys of base relations; when the projection
    preserves a key of every source (Section 5.2, alternative 2) the view
    is flagged {!duplicate_free}.
    @raise Query.Spj.Compile_error on malformed definitions. *)
val define :
  ?minimize:bool ->
  ?keys:Query.Keys.t ->
  name:string ->
  db:Database.t ->
  Query.Expr.t ->
  t

val name : t -> string
val spj : t -> Query.Spj.t
val schema : t -> Schema.t

(** Live contents — treat as read-only. *)
val contents : t -> Relation.t

(** [true] when the key-preservation analysis proved every multiplicity
    counter is 1 (Section 5.2, alternative 2): key-based maintenance
    without counters would suffice for this view. *)
val duplicate_free : t -> bool

(** Schema lookup for the base relations of the defining database. *)
val lookup : t -> string -> Schema.t

(** The compiled self-maintainability certificate (see {!Self_maintain}),
    when the definition plus the declared keys admit one. *)
val self_maintain : t -> Self_maintain.t option

(** Qualified schema of the source with the given alias. *)
val qualified_schema : t -> alias:string -> Schema.t

(** Irrelevance screen for a source, built on first use and cached. *)
val screen_for : t -> alias:string -> Irrelevance.screen

(** [lint v] runs the static analyzer (see {!Analysis.Analyzer}) over the
    compiled definition.  [keys] defaults to the candidate keys supplied at
    definition time. *)
val lint : ?keys:Query.Keys.t -> t -> Analysis.Diagnostic.t list

(** Apply a view delta to the contents.
    @raise Relation.Negative_count on an inconsistent delta. *)
val apply_delta : t -> Delta.t -> unit

(** Replace the contents by complete re-evaluation against [db]. *)
val recompute : t -> Database.t -> unit

(** [restore v saved] installs a previously captured materialization
    (a {!contents} value taken before a mutation).  Used by the
    resilience layer to roll a failed commit back. *)
val restore : t -> Relation.t -> unit

(** [consistent v db] re-evaluates from scratch and compares with the
    maintained contents, counters included. *)
val consistent : t -> Database.t -> bool

val pp : Format.formatter -> t -> unit
