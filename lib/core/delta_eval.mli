(** Differential re-evaluation of SPJ views (Section 5, Algorithm 5.1).

    Given the pre-transaction state of every source (with deletions already
    removed: r° = r - d_r) and the per-source update sets, the new view
    state is the union over the truth-table rows of Section 5.3.  Because
    mixed insert/delete tag combinations are ignored (Tag.join), each row
    contributes exactly two evaluations: one with every delta operand bound
    to its insert part (producing view insertions) and one with every delta
    operand bound to its delete part (producing view deletions).  A QCheck
    property asserts this pair form agrees with the literal tagged
    evaluator {!Tagged_eval}.

    Rows whose operands include an empty relation are skipped without
    evaluation; with [~reuse:true] the surviving rows share partial join
    prefixes through {!Query.Planner.run_many}. *)

open Relalg

type source_input = {
  alias : string;
  old_part : Relation.t;
      (** qualified schema; pre-state minus deletions for modified sources *)
  delta : Delta.t option;  (** qualified; [None] for unmodified sources *)
}

type result = {
  delta : Delta.t;  (** view delta over the output schema *)
  rows_evaluated : int;  (** truth-table rows actually evaluated *)
}

(** [eval ~spj ~inputs ()] computes the view delta.  [inputs] must cover
    every source alias of [spj].

    - [order] (default [`Greedy]) picks the join order per row; greedy
      starts from the smallest operand, typically a delta.
    - [reuse] (default [false]) shares partial joins across rows.
    - [pool] enables intra-view parallelism: each row whose largest
      operand has at least [shard_min] distinct tuples (default
      {!default_shard_min}) has that operand hash-partitioned into one
      shard per pool domain via {!Relalg.Relation.shard}; the shard
      evaluations run on the pool and their results are unioned into
      the row's delta.  SPJ evaluation is linear in any one operand
      over multiset union, so the merged delta — materialization,
      counters and [rows_evaluated] alike — is bit-identical to the
      sequential result.  Rows below the threshold run inline on the
      caller.  Ignored with [~reuse:true] (shared-prefix batches are
      evaluated as one unit) and on size-1 pools.
    @raise Invalid_argument if an alias is missing. *)
val eval :
  ?order:Query.Planner.join_order ->
  ?join_impl:Query.Planner.join_impl ->
  ?reuse:bool ->
  ?pool:Exec.Pool.t ->
  ?shard_min:int ->
  spj:Query.Spj.t ->
  inputs:source_input list ->
  unit ->
  result

val default_shard_min : int
(** Minimum distinct-tuple count of a row's largest operand before the
    row is sharded across the pool (2048: below this, submission and
    shard-construction overhead outweigh the parallel win). *)

(** Output schema of the view delta, derived from the inputs' schemas. *)
val output_schema : spj:Query.Spj.t -> inputs:source_input list -> Schema.t
